"""Perf smoke for compressed leaf pages (DESIGN.md Section 16).

Runs the ``compression`` experiment (codec x index x device, uniform
lookups against a shared-size buffer pool) and archives the rows as
``BENCH_compression.json``.  Two layers of gating:

* **Deterministic assertions** (always on): the simulated cost model
  makes density and charged-I/O ratios machine-independent, so the
  acceptance bars hold on any runner — with the FoR codec, pgm and
  hybrid-pgm must pack at least 2x the entries per leaf block AND charge
  at most 70% of the raw layout's read blocks per uniform lookup.
* **Ratchet** (against the archived baseline, when present): each
  (device, index, codec) cell's ratios may not regress past the margin
  below, so a codec or pager change that silently erodes the win fails
  CI even while still clearing the static bars.

The bars are asserted for the FoR codec only: DeltaVarintCodec hovers
right at 2.0x density on uniform 62-bit keys (LEB128 needs ~8 key bytes
either way), which is exactly the bar and too close to gate on.
"""

import json

from conftest import RESULTS_DIR, run_and_emit

#: Indexes the acceptance bars apply to (with the "for" codec).
GATED_INDEXES = ("pgm", "hybrid-pgm")

#: Minimum entries-per-leaf ratio vs the raw layout.
MIN_ENTRIES_RATIO = 2.0

#: Maximum charged-read-blocks-per-lookup ratio vs the raw layout.
MAX_BLOCKS_RATIO = 0.70

#: A fresh ratio may not regress past the archived one by this margin
#: (entries: fraction of baseline it must keep; blocks: growth allowed).
RATCHET_MARGIN = 0.15


def test_compression(benchmark):
    out_path = RESULTS_DIR / "BENCH_compression.json"
    baseline_rows = {}
    if out_path.exists():
        archived = json.loads(out_path.read_text())
        baseline_rows = {(r["device"], r["index"], r["codec"]): r
                         for r in archived.get("rows", [])}

    result = run_and_emit(benchmark, "compression")
    RESULTS_DIR.mkdir(exist_ok=True)
    out_path.write_text(
        json.dumps({"experiment": result.experiment_id, "rows": result.rows},
                   indent=2))

    gated = [row for row in result.rows
             if row["codec"] == "for" and row["index"] in GATED_INDEXES]
    assert len(gated) >= 2 * len(GATED_INDEXES), (
        "compression experiment did not produce the gated cells")
    for row in gated:
        cell = f"{row['device']}/{row['index']}/{row['codec']}"
        assert row["entries_ratio"] >= MIN_ENTRIES_RATIO, (
            f"{cell}: entries per leaf only {row['entries_ratio']}x raw, "
            f"need >= {MIN_ENTRIES_RATIO}x")
        assert row["blocks_ratio"] <= MAX_BLOCKS_RATIO, (
            f"{cell}: charged read blocks per lookup at "
            f"{row['blocks_ratio']}x raw, need <= {MAX_BLOCKS_RATIO}x")

    for row in result.rows:
        if row["codec"] == "raw":
            continue
        archived = baseline_rows.get(
            (row["device"], row["index"], row["codec"]))
        if not archived:
            continue
        cell = f"{row['device']}/{row['index']}/{row['codec']}"
        entries_floor = (1.0 - RATCHET_MARGIN) * archived["entries_ratio"]
        assert row["entries_ratio"] >= entries_floor, (
            f"{cell}: entries ratio {row['entries_ratio']} regressed below "
            f"{entries_floor:.2f} (archived {archived['entries_ratio']})")
        blocks_ceiling = (1.0 + RATCHET_MARGIN) * archived["blocks_ratio"]
        assert row["blocks_ratio"] <= blocks_ceiling, (
            f"{cell}: blocks ratio {row['blocks_ratio']} regressed above "
            f"{blocks_ceiling:.2f} (archived {archived['blocks_ratio']})")
