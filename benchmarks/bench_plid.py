"""Extension: PLID (the paper's design principles P1-P5) vs the field."""

from conftest import run_and_emit


def test_plid(benchmark):
    result = run_and_emit(benchmark, "plid")
    for row in result.rows:
        learned = max(row[name] for name in ("fiting", "pgm", "alex", "lipp"))
        if row["workload"] in ("lookup_only", "scan_only"):
            # P1/P3/P4 pay off where learned indexes struggle on disk.
            assert row["plid"] >= 0.9 * row["btree"], row
        if row["workload"] == "scan_only":
            assert row["plid"] > 0.95 * learned, row
