"""Shared plumbing for the benchmark suite.

Each ``bench_*`` file regenerates one table/figure of the paper: the
pytest-benchmark timer wraps the full experiment, the resulting rows are
printed and archived under ``benchmarks/results/``.

Scale: benchmarks default to 50% of the library's default experiment
scale — large enough for the paper's tree-height relationships (a
3-level B+-tree) while the whole suite finishes in minutes.  Set
``REPRO_BENCH_SCALE`` (e.g. ``1.0`` or ``4.0``) for larger runs.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.bench import ExperimentResult, Scale, default_scale, format_result

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def pytest_addoption(parser):
    parser.addoption(
        "--shards", action="store", type=int, default=1,
        help="serve sharding-aware benchmarks (bench_concurrency) from a "
             "range-partitioned tier with this many shards; 1 (default) "
             "keeps the flat single-index path")
    parser.addoption(
        "--replicas", action="store", type=int, default=3,
        help="replica count (primary included) for the replica-aware "
             "benchmarks: bench_sharding's fan-out section compares 1 vs "
             "this many copies, and bench_chaos serves its fault sweep "
             "from tiers replicated this wide")
    parser.addoption(
        "--wallclock", action="store_true",
        help="gate on real wall-clock assertions (bench_wallclock speedup "
             "floors and the archived-baseline ratchet); without it only "
             "the deterministic charged-I/O identity checks run")


@pytest.fixture
def wallclock(request) -> bool:
    """True when the run opted into wall-clock ratio assertions.

    Charged-I/O assertions are deterministic and always on; real-time
    ratios depend on the machine, so benchmarks consult this fixture
    before enforcing them.  The CI perf-smoke job passes ``--wallclock``.
    """
    return request.config.getoption("--wallclock")


def bench_scale() -> Scale:
    factor = float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))
    return default_scale().scaled(factor)


def emit(result: ExperimentResult) -> None:
    """Print the regenerated table and archive it."""
    text = format_result(result)
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{result.experiment_id}.txt").write_text(text)


def run_and_emit(benchmark, experiment_id: str,
                 **experiment_kwargs) -> ExperimentResult:
    """Time one full experiment regeneration and archive its rows.

    Extra keyword arguments pass through to the experiment function
    (e.g. ``shards`` for the ``concurrency`` experiment).
    """
    from repro.bench import run_experiment

    scale = bench_scale()
    result = benchmark.pedantic(
        run_experiment, args=(experiment_id, scale),
        kwargs=experiment_kwargs, rounds=1, iterations=1)
    emit(result)
    return result
