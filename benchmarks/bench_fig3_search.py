"""Figure 3: lookup/scan throughput on HDD and SSD, entire index on disk."""

from conftest import run_and_emit


def test_fig3_search(benchmark):
    result = run_and_emit(benchmark, "fig3")
    for row in result.rows:
        if row["device"] == "ssd":
            # SSD runs the same block counts at lower latency: throughput
            # must be strictly higher than the HDD row (O1 family).
            twin = next(r for r in result.rows
                        if r["device"] == "hdd"
                        and r["workload"] == row["workload"]
                        and r["dataset"] == row["dataset"])
            assert row["btree"] > twin["btree"]
    # O2: LIPP competitive or best on easy-data lookups.
    ycsb = next(r for r in result.rows
                if r["device"] == "hdd" and r["workload"] == "lookup_only"
                and r["dataset"] == "ycsb")
    assert ycsb["lipp"] >= ycsb["btree"]
