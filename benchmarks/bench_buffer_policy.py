"""Extension: LRU vs CLOCK vs FIFO buffer replacement."""

from conftest import run_and_emit


def test_buffer_policy(benchmark):
    result = run_and_emit(benchmark, "buffer-policy")
    for row in result.rows:
        # CLOCK approximates LRU within a small margin.
        assert row["clock_blocks"] <= row["lru_blocks"] * 1.5 + 0.05
