"""Ablation: ALEX Layout#1 vs Layout#2 (paper Section 4.1)."""

from conftest import run_and_emit


def test_ablation_alex_layout(benchmark):
    result = run_and_emit(benchmark, "ablation-alex-layout")
    for row in result.rows:
        # Layout#2 never fetches more blocks than Layout#1.
        assert row["layout2_blocks"] <= row["layout1_blocks"] + 0.05
