"""Fault sweep: self-healing storage under injected device faults.

Beyond the paper: every block write stamps a CRC32C envelope, reads
verify it, transient read errors are retried with backoff charged as
simulated latency, and detected corruption is rebuilt from checkpoint +
WAL redo (DESIGN.md Section 12).  Rows are archived both as the usual
text table and as ``BENCH_faults.json`` for the CI fault-smoke job.

The benchmark row assertions check the sweep's shape; two deterministic
sections then pin the PR's acceptance bar exactly: checksums add zero
block accesses on the clean path, and a scrub detects 100% of injected
single-block corruptions which repair restores byte-identical.
"""

import json
import random

from conftest import RESULTS_DIR, bench_scale, run_and_emit

from repro.bench import fresh_index
from repro.durability import repair_blocks, take_checkpoint
from repro.workloads import run_workload


def _clean_run_stats(checksums):
    """Full device counters for one fault-free Read-Heavy run."""
    setup = fresh_index("btree", "ycsb", "read_heavy", bench_scale())
    setup.device.checksums = checksums
    run_workload(setup.index, setup.ops, workload="read_heavy")
    stats = setup.device.stats
    return (stats.reads, stats.writes, stats.read_positionings,
            stats.write_positionings, stats.coalesced_runs,
            stats.coalesced_blocks, stats.elapsed_us)


def test_fault_sweep(benchmark):
    result = run_and_emit(benchmark, "fault_sweep")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_faults.json").write_text(
        json.dumps({"experiment": result.experiment_id, "rows": result.rows},
                   indent=2))

    by_cell = {(r["device"], r["index"], r["transient_rate"]): r
               for r in result.rows}
    rates = sorted({r["transient_rate"] for r in result.rows})
    for device in ("hdd", "ssd"):
        for index in ("btree", "alex"):
            # The zero-rate row is the clean baseline: the fault
            # machinery must be invisible when nothing faults.
            clean = by_cell[(device, index, 0.0)]
            assert clean["io_retries"] == 0
            assert clean["checksum_failures"] == 0
            assert clean["repaired_blocks"] == 0
            assert clean["healed_faults"] == 0
            # Retries track the injected rate (x10 per step), and every
            # detected corruption was healed: the run completing proves
            # no fault escaped, the repair counters prove the healer
            # actually rewrote blocks rather than suppressing errors.
            cells = [by_cell[(device, index, rate)] for rate in rates[1:]]
            retries = [cell["io_retries"] for cell in cells]
            assert retries == sorted(retries)
            assert retries[-1] > retries[0] >= 0
            for cell in cells:
                if cell["checksum_failures"]:
                    assert cell["healed_faults"] > 0
                    assert cell["repaired_blocks"] > 0
            assert sum(cell["checksum_failures"] for cell in cells) > 0

    # -- checksums are free on the clean path --------------------------
    # Verification happens on bytes the read already paid for, so with
    # and without checksums every counter — including the simulated
    # clock — is bit-identical.
    assert _clean_run_stats(True) == _clean_run_stats(False)

    # -- 100% detection, byte-identical repair -------------------------
    setup = fresh_index("btree", "ycsb", "read_heavy", bench_scale(),
                        wal_group_commit=bench_scale().group_commit)
    checkpoint = take_checkpoint(setup.index, setup.wal)
    rng = random.Random(97)
    data_files = [f for name, f in sorted(setup.device.files.items())
                  if name != setup.wal.file.name and f.num_blocks]
    corrupted = {}
    while len(corrupted) < 8:
        handle = rng.choice(data_files)
        block_no = rng.randrange(handle.num_blocks)
        if (handle.name, block_no) in corrupted:
            continue
        corrupted[(handle.name, block_no)] = bytes(handle.blocks[block_no])
        block = bytearray(handle.blocks[block_no])
        block[rng.randrange(len(block))] ^= 0xFF
        handle.blocks[block_no] = block
    setup.pager.drop_dirty()
    report = setup.pager.scrub()
    assert set(report.bad_blocks) == set(corrupted)  # 100% detection
    repair = repair_blocks(setup.index, checkpoint, report.bad_blocks,
                           setup.wal)
    assert set(repair.repaired) == set(corrupted)    # 100% repair
    for (name, block_no), original in corrupted.items():
        assert bytes(setup.device.get_file(name).blocks[block_no]) == original
    assert not setup.pager.scrub().bad_blocks
