"""Figure 14: all six workloads on YCSB and FB, normalized throughput."""

from conftest import run_and_emit


def test_fig14_overall(benchmark):
    result = run_and_emit(benchmark, "fig14")
    for row in result.rows:
        # "Except for Lookup-Only workloads, the B+-tree is either
        # competitive or outperforms learned indexes" — competitive
        # meaning within ~35% of the winner or beaten only by PGM.
        if row["workload"] in ("scan_only", "read_heavy", "balanced"):
            assert row["btree"] >= 0.6, row
        if row["workload"] == "write_only":
            assert row["pgm"] == 1.0, row
