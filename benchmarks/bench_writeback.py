"""Write-back pool sweep: {write-through, write-back} x {HDD, SSD}.

Beyond the paper: the write-back pager absorbs block writes as dirty
pool frames and flushes them sorted at the phase boundary, so adjacent
SMO rewrites merge into contiguous runs charged one positioning each
(DESIGN.md Section 11).  Rows are archived both as the usual text table
and as ``BENCH_writeback.json`` for the CI perf-smoke job.
"""

import json

from conftest import RESULTS_DIR, run_and_emit


def test_write_back(benchmark):
    result = run_and_emit(benchmark, "write_back")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_writeback.json").write_text(
        json.dumps({"experiment": result.experiment_id, "rows": result.rows},
                   indent=2))

    by_cell = {(r["device"], r["workload"], r["index"], r["mode"]): r
               for r in result.rows}
    for device in ("hdd", "ssd"):
        for workload in ("write_heavy", "balanced"):
            for index in ("btree", "alex", "lipp"):
                wt = by_cell[(device, workload, index, "through")]
                wb = by_cell[(device, workload, index, "back")]
                # Write-back is a pure I/O-schedule optimization (results
                # are validated inside the experiment): it must never
                # charge more write positionings than write-through, and
                # on the write-heavy workload the coalesced flush runs
                # must cut them by at least 2x (the PR's acceptance bar).
                assert wb["write_positionings"] <= wt["write_positionings"]
                if workload == "write_heavy":
                    assert wb["write_positionings"] * 2 <= wt["write_positionings"]
                assert wb["ops_per_s"] > wt["ops_per_s"]
