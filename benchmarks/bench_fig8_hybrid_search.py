"""Figure 8: search throughput with memory-resident inner nodes."""

from conftest import run_and_emit


def test_fig8_hybrid_search(benchmark):
    result = run_and_emit(benchmark, "fig8")
    # O13: FITing-tree and PGM are competitive with the B+-tree; ALEX is
    # not (its leaves still cost 2+ blocks).
    for row in result.rows:
        if row["workload"] == "lookup_only" and row["device"] == "hdd":
            assert row["alex"] < max(row["btree"], row["fiting"], row["pgm"])
