"""Batched execution sweep: batch {1, 8, 64, 256} x {HDD, SSD}.

Beyond the paper: the batched engine sorts each lookup group, shares one
inner descent per leaf, and coalesces contiguous leaf fetches into
multi-block runs (DESIGN.md Section 10).  Rows are archived both as the
usual text table and as ``BENCH_batch.json`` for the CI perf-smoke job.
"""

import json

from conftest import RESULTS_DIR, run_and_emit


def test_batch_lookup(benchmark):
    result = run_and_emit(benchmark, "batch_lookup")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_batch.json").write_text(
        json.dumps({"experiment": result.experiment_id, "rows": result.rows},
                   indent=2))

    by_cell = {(r["device"], r["index"], r["batch"]): r for r in result.rows}
    for device in ("hdd", "ssd"):
        for index in ("btree", "fiting", "alex"):
            single = by_cell[(device, index, 1)]
            batched = by_cell[(device, index, 64)]
            # Batching is a pure I/O-schedule optimization (results are
            # validated inside the experiment): it must fetch measurably
            # fewer blocks and charge fewer positionings per lookup.
            assert batched["blocks_per_op"] < single["blocks_per_op"]
            assert batched["positionings_per_op"] < single["positionings_per_op"]
            assert batched["ops_per_s"] > single["ops_per_s"]
