"""Figure 9: write throughput with memory-resident inner nodes."""

from conftest import run_and_emit


def test_fig9_hybrid_write(benchmark):
    result = run_and_emit(benchmark, "fig9")
    # O15: the B+-tree outperforms the learned indexes across the write
    # workloads once inner nodes are memory-resident (balanced workload
    # is the cleanest case: PGM loses its write advantage to reads).
    for row in result.rows:
        if row["workload"] == "balanced":
            best = max(("btree", "fiting", "pgm", "alex"),
                       key=lambda name: row[name])
            assert best == "btree", row
