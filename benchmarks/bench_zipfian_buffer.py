"""Extension: zipfian access vs the LRU buffer (P5 co-design)."""

from conftest import run_and_emit


def test_zipfian_buffer(benchmark):
    result = run_and_emit(benchmark, "zipfian-buffer")
    for row in result.rows:
        # Skew must make the buffer dramatically more effective.
        assert row["zipfian_blocks"] < row["uniform_blocks"]
        assert row["skew_benefit_pct"] > 50
