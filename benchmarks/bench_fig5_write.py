"""Figure 5: write-workload throughput on HDD and SSD."""

from conftest import run_and_emit


def test_fig5_write(benchmark):
    result = run_and_emit(benchmark, "fig5")
    for row in result.rows:
        if row["workload"] == "write_only":
            # O6: PGM wins Write-Only.  On the HDD profile it wins
            # outright; on SSD the compressed random/sequential cost
            # ratio combined with our scaled-down B+-tree height (3
            # levels instead of the paper's 4) lets the B+-tree tie —
            # PGM must still beat every learned index and stay within
            # 15% of the B+-tree.
            best = max(("btree", "fiting", "pgm", "alex", "lipp"),
                       key=lambda name: row[name])
            if row["device"] == "hdd":
                assert best == "pgm", row
            else:
                assert best in ("pgm", "btree"), row
                assert row["pgm"] >= 0.85 * row["btree"], row
            for name in ("fiting", "alex", "lipp"):
                assert row["pgm"] > row[name], row
