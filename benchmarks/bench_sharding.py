"""Sharded-tier sweep: scale-out, replica fan-out, workload-aware tuning.

Beyond the paper: a range-partitioned tier of independent shards (each
its own device, pager, pool and WAL — DESIGN.md Section 14) sweeping
1 -> 16 shards x {HDD, SSD} x {uniform, zipfian} lookups, a replica
read-fan-out comparison, and the P1-P5 workload-aware tuner picking a
*divergent* per-shard index composition that beats every uniform
writable choice on total charged I/O.  Rows are archived as the usual
text table and as ``BENCH_sharding.json`` for the CI perf-smoke job.
"""

import json

from conftest import RESULTS_DIR, run_and_emit


def test_sharding(benchmark, request):
    fan = max(2, request.config.getoption("--replicas"))
    result = run_and_emit(benchmark, "sharding", replica_counts=(1, fan))
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_sharding.json").write_text(
        json.dumps({"experiment": result.experiment_id, "rows": result.rows},
                   indent=2))

    scaleout = {(r["device"], r["distribution"], r["shards"]): r
                for r in result.rows if r["section"] == "scaleout"}
    for device in ("hdd", "ssd"):
        # Uniform lookups: the aggregate per-shard pool grows with the
        # shard count, so charged read positionings per op must fall by
        # >= 2x at 4 shards (a zero at 4 shards means the tier became
        # fully cache-resident — an infinite reduction).
        base = scaleout[(device, "uniform", 1)]["read_pos_per_op"]
        at4 = scaleout[(device, "uniform", 4)]["read_pos_per_op"]
        assert base > 0, scaleout[(device, "uniform", 1)]
        assert at4 <= base / 2, (device, base, at4)
        # More shards never charge more positioning than fewer.
        for distribution in ("uniform", "zipfian"):
            series = [scaleout[(device, distribution, s)]["read_pos_per_op"]
                      for s in (1, 2, 4, 8, 16)]
            assert all(a >= b for a, b in zip(series, series[1:])), series

    # Replica read fan-out: spreading reads round-robin over identical
    # copies must not hurt the tail — p99 no worse than single-replica.
    replicas = {r["replicas"]: r for r in result.rows
                if r["section"] == "replicas"}
    assert replicas[fan]["p99_us"] <= replicas[1]["p99_us"], replicas
    assert replicas[fan]["reads_served"] == replicas[1]["reads_served"]

    # Workload-aware divergence: the tuner assigned at least two
    # distinct classes across the skewed shards, and the divergent tier
    # charges strictly less total positioning I/O than every uniform
    # writable composition.
    tuner = {r["config"]: r for r in result.rows if r["section"] == "tuner"}
    divergent = tuner["divergent"]
    assert len(set(divergent["composition"].split(","))) >= 2, divergent
    for uniform in ("uniform-btree", "uniform-alex"):
        assert divergent["total_positionings"] < \
            tuner[uniform]["total_positionings"], (divergent, tuner[uniform])
