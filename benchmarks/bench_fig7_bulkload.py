"""Figure 7: bulkload time and index size."""

from conftest import run_and_emit


def test_fig7_bulkload(benchmark):
    result = run_and_emit(benchmark, "fig7")
    for dataset in ("fb", "osm", "ycsb"):
        rows = {r["index"]: r for r in result.rows if r["dataset"] == dataset}
        sizes = {name: rows[name]["size_mib"] for name in rows}
        # O11: PGM smallest, LIPP largest; learned indexes build slower
        # than the B+-tree.
        assert sizes["pgm"] == min(sizes.values())
        assert sizes["lipp"] == max(sizes.values())
        assert rows["lipp"]["bulkload_sim_s"] > rows["btree"]["bulkload_sim_s"]
