"""Table 5: hybrid design (learned inner + B+-tree leaves) block counts."""

from conftest import run_and_emit


def test_table5_hybrid(benchmark):
    result = run_and_emit(benchmark, "table5")
    rows = {(r["dataset"], r["index"]): r for r in result.rows}
    for dataset in ("fb", "ycsb"):
        # Scan costs stay within ~2 blocks of lookup costs: the dense
        # B+-tree-styled leaves fix ALEX's and LIPP's scan problem.
        for name in ("hybrid-alex", "hybrid-lipp"):
            row = rows[(dataset, name)]
            assert row["scan_blocks"] - row["lookup_blocks"] < 3.0
