"""Figure 13: fetched blocks per lookup under LRU buffer sizes."""

from conftest import run_and_emit


def test_fig13_buffer(benchmark):
    result = run_and_emit(benchmark, "fig13")
    rows = {(r["dataset"], r["index"]): r for r in result.rows}
    # Section 6.6: LIPP fetches fewest blocks with no buffer (its low
    # average tree height only beats the B+-tree where its predictions
    # are accurate, i.e. on the easy dataset at this scale)...
    zero = {name: rows[("ycsb", name)]["buf0"]
            for name in ("btree", "fiting", "pgm", "alex", "lipp")}
    assert zero["lipp"] == min(zero.values())
    for dataset in ("fb", "osm", "ycsb"):
        # ... but large buffers favor the small-upper-level indexes.
        big = {name: rows[(dataset, name)]["buf512"]
               for name in ("btree", "fiting", "pgm", "alex", "lipp")}
        assert big["lipp"] > min(big.values())
        # Buffers can only reduce fetched blocks.
        for name in ("btree", "fiting", "pgm", "alex", "lipp"):
            assert rows[(dataset, name)]["buf512"] <= rows[(dataset, name)]["buf0"] + 0.01
