"""Wall-clock throughput smoke: scalar vs vectorized ``lookup_many``.

Beyond the paper: everything else in the harness measures the *simulated*
charged-I/O cost model; this benchmark is the one place that times real
Python execution (DESIGN.md Section 15).  Each row replays identical
read-heavy batch-64 lookup sequences through the scalar and vectorized
paths and reports ``time.perf_counter`` ops/sec for both.  Rows are
archived as ``BENCH_wallclock.json`` for the CI perf-smoke job.

Two kinds of assertion, deliberately split:

* **Charge identity** (always on): the vectorized path must be a pure
  CPU optimization — the experiment itself asserts the charged
  ``StorageStats`` are bit-identical between modes, and every row must
  carry ``charges_identical: True``.  This is deterministic and holds on
  any machine.
* **Speedup floors + ratchet** (opt-in via ``--wallclock``): real-time
  ratios are machine-dependent, so they only gate runs that asked for
  them (the CI perf-smoke job does).  The floors below sit well under
  the locally measured ratios to absorb CI-runner noise; the ratchet
  additionally compares against the archived baseline so a gross
  wall-clock regression fails even where a static floor would not.

Why the floors differ per index: btree and hybrid-pgm clear the 3x
headline comfortably (~5x measured) because their scalar paths
materialize full tuple lists per node visit — exactly the pathology the
vectorized codecs remove.  alex's scalar baseline already batches span
fetches and probes leaf bytes in place, so far less Python is there to
eliminate; its honest ceiling on this cost structure is ~2.3x
(DESIGN.md Section 15 has the per-op breakdown).  Do not "fix" a floor
miss by slowing the scalar path down.
"""

import json

from conftest import RESULTS_DIR, run_and_emit

#: Minimum acceptable vectorized/scalar throughput ratio per
#: (index, leaf codec) cell.  The compressed cells assert that the codec
#: decode paths (cached_decode + searchsorted, DESIGN.md Section 16)
#: keep a real vectorized win over their scalar decode loops; their
#: floors are lower because both modes share the same page-decode work.
SPEEDUP_FLOORS = {
    ("btree", "raw"): 3.0,
    ("hybrid-pgm", "raw"): 3.0,
    ("alex", "raw"): 1.6,
    ("pgm", "raw"): 1.6,
    ("fiting", "raw"): 1.2,
    ("pgm", "for"): 1.1,
    ("hybrid-pgm", "for"): 1.1,
}

#: A fresh speedup may not fall below this fraction of the archived one.
RATCHET_FRACTION = 0.5


def test_wallclock(benchmark, wallclock):
    out_path = RESULTS_DIR / "BENCH_wallclock.json"
    baseline_rows = {}
    if out_path.exists():
        archived = json.loads(out_path.read_text())
        baseline_rows = {(r["index"], r.get("codec", "raw"), r["batch"]): r
                         for r in archived.get("rows", [])}

    result = run_and_emit(benchmark, "wallclock")
    RESULTS_DIR.mkdir(exist_ok=True)
    out_path.write_text(
        json.dumps({"experiment": result.experiment_id, "rows": result.rows},
                   indent=2))

    # Deterministic on any machine: vectorization never changes charges.
    for row in result.rows:
        assert row["charges_identical"] is True, row

    if not wallclock:
        return

    for row in result.rows:
        index, codec, batch = row["index"], row.get("codec", "raw"), row["batch"]
        floor = SPEEDUP_FLOORS[(index, codec)]
        assert row["speedup"] >= floor, (
            f"{index} codec={codec} batch={batch}: wall-clock speedup "
            f"{row['speedup']} fell below its floor {floor}")
        archived = baseline_rows.get((index, codec, batch))
        if archived:
            ratchet = RATCHET_FRACTION * archived["speedup"]
            assert row["speedup"] >= ratchet, (
                f"{index} codec={codec} batch={batch}: speedup "
                f"{row['speedup']} regressed below {RATCHET_FRACTION:.0%} of "
                f"the archived baseline {archived['speedup']}")
