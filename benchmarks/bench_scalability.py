"""Scalability: the paper's 800M-key OSM experiment, scaled."""

from conftest import run_and_emit


def test_scalability(benchmark):
    result = run_and_emit(benchmark, "scalability")
    for row in result.rows:
        # Quadrupling N adds at most ~2 blocks per lookup (logarithmic).
        assert row["4x_blocks"] <= row["1x_blocks"] + 2.5, row
