"""Table 3: dataset profiling (PLA segments, B+-tree leaves, conflict degree)."""

from conftest import run_and_emit


def test_table3_profiling(benchmark):
    result = run_and_emit(benchmark, "table3")
    seg = {row["dataset"]: row["seg@64"] for row in result.rows}
    cd = {row["dataset"]: row["conflict_degree"] for row in result.rows}
    # The paper's hardness ordering (the property every experiment rests on).
    assert seg["fb"] == max(v for k, v in seg.items() if k != "osm_800m")
    assert cd["osm"] >= max(v for k, v in cd.items() if k != "osm_800m")
    assert seg["ycsb"] < seg["fb"] / 10
