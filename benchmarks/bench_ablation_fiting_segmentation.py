"""Ablation: FITing-tree greedy vs streaming segmentation (Section 4.2)."""

from conftest import run_and_emit


def test_ablation_fiting_segmentation(benchmark):
    result = run_and_emit(benchmark, "ablation-fiting-segmentation")
    for row in result.rows:
        # The optimal streaming PLA never needs more segments.
        assert row["streaming_segments"] <= row["greedy_segments"]
        assert row["streaming_size_mib"] <= row["greedy_size_mib"] + 0.05
