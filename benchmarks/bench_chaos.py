"""Chaos benchmark: fault-tolerant serving under injected member faults.

Beyond the paper: one replica member per shard runs on degrading media
(seeded per-member fault forks — transient errors, bit rot, stalls)
while hedged reads, replica health tracking, live primary failover,
per-op deadlines and the write admission gate keep the tier serving
(DESIGN.md Section 17).  Rows are archived as the usual text table and
as ``BENCH_chaos.json`` for the CI chaos-smoke job.

The gates pin the PR's acceptance bar:

* zero lost acknowledged writes at every fault rate (the experiment
  audits every durable insert record against the serving primary);
* zero-rate rows are counter-clean — no hedges, failovers, sheds or
  quarantines fire without faults, and the experiment itself asserts
  the charged counters bit-identical to a tier built without any of
  the fault machinery;
* with hedging on, serving p99 against a degraded/quarantined replica
  stays within 3x of the same cell's fault-free p99;
* the crash sections actually exercised their paths: a crashed replica
  hedged at least one read and rejoined via catch-up resync, and a
  crashed primary triggered at least one live failover.
"""

import json

from conftest import RESULTS_DIR, run_and_emit

#: Serving p99 with a faulted replica must stay within this factor of
#: the same cell's fault-free p99 (hedging + quarantine bound the tail).
P99_FACTOR = 3.0


def test_chaos(benchmark, request):
    replicas = max(2, request.config.getoption("--replicas"))
    result = run_and_emit(benchmark, "chaos",
                          replica_counts=tuple(sorted({2, replicas})))
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_chaos.json").write_text(
        json.dumps({"experiment": result.experiment_id, "rows": result.rows},
                   indent=2))

    # -- zero lost acknowledged writes, everywhere ---------------------
    for row in result.rows:
        assert row.get("lost_acked", 0) == 0, row

    sweep = [r for r in result.rows if r["section"] == "sweep"]
    assert sweep

    # -- zero-rate rows are counter-clean ------------------------------
    # The experiment already asserted charged-counter bit-identity
    # against a control tier without the fault machinery; the archived
    # rows re-assert the visible half so the JSON is self-certifying.
    for row in sweep:
        if row["fault_rate"] == 0.0:
            for counter in ("io_retries", "hedged_reads", "failovers",
                            "shed_ops", "op_retries", "quarantined",
                            "resyncs", "reseeds", "resync_blocks"):
                assert row[counter] == 0, (counter, row)
            assert row["p99_vs_clean"] == 1.0, row

    # -- hedging bounds the degraded tail ------------------------------
    for row in sweep:
        if row["fault_rate"] > 0.0:
            assert row["p99_vs_clean"] is not None, row
            assert row["p99_vs_clean"] <= P99_FACTOR, row

    # -- the failure-mode sections fired -------------------------------
    resync_rows = [r for r in result.rows if r["section"] == "resync"]
    assert resync_rows
    for row in resync_rows:
        assert row["hedged_reads"] >= 1, row
        assert row["resyncs"] >= 1, row
        assert row["resync_blocks"] > 0, row
    failover_rows = [r for r in result.rows if r["section"] == "failover"]
    assert failover_rows
    for row in failover_rows:
        assert row["failovers"] >= 1, row
        assert row["acked_writes"] > 0, row
