"""Figure 10: on-disk storage usage after the Write-Only workload."""

from conftest import run_and_emit


def test_fig10_storage(benchmark):
    result = run_and_emit(benchmark, "fig10")
    for dataset in ("fb", "osm", "ycsb"):
        rows = {r["index"]: r for r in result.rows if r["dataset"] == dataset}
        alloc = {name: rows[name]["allocated_mib"] for name in rows}
        # O16: PGM and the B+-tree are the two smallest; LIPP the largest.
        smallest_two = sorted(alloc, key=alloc.get)[:2]
        assert set(smallest_two) == {"pgm", "btree"}
        assert max(alloc, key=alloc.get) == "lipp"
