"""Concurrent-serving sweep: 1 -> 256 client sessions x {HDD, SSD}.

Beyond the paper: N client sessions interleave over one shared index and
WAL under the simulated clock (DESIGN.md Section 13).  Cross-client
group commit fills each log flush from every session's pending writes,
and snapshot reads resolve against the durable prefix without ever
touching the latch table.  Rows are archived both as the usual text
table and as ``BENCH_concurrency.json`` for the CI perf-smoke job.

``--shards N`` (a suite-wide pytest option) serves every cell from a
range-partitioned tier instead of the flat index; at the default 1 the
flat path runs unchanged and this file additionally proves that routing
through a 1-shard tier charges *zero* extra positionings — the sharded
tier's fan-out facades are free when there is nothing to fan out over.
"""

import json

from conftest import RESULTS_DIR, bench_scale, run_and_emit

CLIENT_COUNTS = (1, 4, 16, 64, 256)


def _assert_one_shard_routing_is_free():
    """A 1-shard tier must charge exactly the flat index's I/O.

    Same dataset, same op stream, same WAL batching: the router's
    dispatch and the fan-out device/pager/WAL facades are pure
    accounting, so read/write positionings, block counts and simulated
    time must be *identical*, not merely close.
    """
    from repro.bench import fresh_index, fresh_sharded_index
    from repro.workloads import run_workload

    scale = bench_scale()
    flat = fresh_index("btree", "ycsb", "balanced", scale, with_wal=True)
    tier = fresh_sharded_index("btree", 1, "ycsb", "balanced", scale,
                               durability=True)
    assert flat.ops == tier.ops
    res_flat = run_workload(flat.index, flat.ops, workload="parity")
    res_tier = run_workload(tier.index, tier.ops, workload="parity",
                            shards=1)
    for field in ("read_positionings", "write_positionings",
                  "blocks_read_per_op", "blocks_written_per_op",
                  "log_records", "log_flushes", "sim_elapsed_us"):
        assert getattr(res_flat, field) == getattr(res_tier, field), (
            field, getattr(res_flat, field), getattr(res_tier, field))


def test_concurrency(benchmark, request):
    shards = request.config.getoption("--shards")
    result = run_and_emit(benchmark, "concurrency", shards=shards)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_concurrency.json").write_text(
        json.dumps({"experiment": result.experiment_id, "rows": result.rows},
                   indent=2))

    by_cell = {(r["device"], r["index"], r["clients"]): r for r in result.rows}
    for device in ("hdd", "ssd"):
        # The group-commit ratio assertions describe one shared WAL; a
        # sharded run splits the log across shards, so they apply to the
        # default flat topology only (the snapshot-read invariants below
        # hold at every shard count).
        for index in ("btree", "alex") if shards == 1 else ():
            # Cross-client group commit: a single client commits
            # synchronously (one flush per write); as clients grow each
            # flush drains every session's pending writes, so flushes
            # per committed write must fall strictly, and by >= 4x at
            # 64 clients.
            ratios = [by_cell[(device, index, c)]["flushes_per_write"]
                      for c in (1, 4, 16, 64)]
            assert ratios[0] == 1.0, ratios
            assert all(a > b for a, b in zip(ratios, ratios[1:])), ratios
            assert ratios[-1] <= ratios[0] / 4, ratios
            for clients in CLIENT_COUNTS:
                row = by_cell[(device, index, clients)]
                # Client-perceived tail stays bounded relative to the
                # median even under zipfian hot-key contention: the p99
                # absorbs latch stalls and the commit-group fill time
                # (which grows with the client count), but fair
                # min-virtual-time dispatch keeps it *linear* in the
                # client count — observed <= 2.0 + clients/5 across
                # scales; 10 + clients/2 allows margin.
                assert row["p99_us"] <= (10 + clients / 2) * row["p50_us"], row
                # Commit groups fill from all sessions: the mean group
                # holds at least half the client count's writes.
                assert row["mean_commit_group"] >= clients / 2, row
        for index in ("btree", "alex", "hybrid-alex"):
            for clients in CLIENT_COUNTS:
                row = by_cell[(device, index, clients)]
                # Snapshot reads are pinned to the WAL's durable prefix
                # and never take latches: zero read-side latch wait at
                # every cell, and every cell actually served reads.
                assert row["read_latch_us"] == 0.0, row
                assert row["snapshot_reads"] > 0, row

    if shards == 1:
        _assert_one_shard_routing_is_free()
