"""Concurrent-serving sweep: 1 -> 256 client sessions x {HDD, SSD}.

Beyond the paper: N client sessions interleave over one shared index and
WAL under the simulated clock (DESIGN.md Section 13).  Cross-client
group commit fills each log flush from every session's pending writes,
and snapshot reads resolve against the durable prefix without ever
touching the latch table.  Rows are archived both as the usual text
table and as ``BENCH_concurrency.json`` for the CI perf-smoke job.
"""

import json

from conftest import RESULTS_DIR, run_and_emit

CLIENT_COUNTS = (1, 4, 16, 64, 256)


def test_concurrency(benchmark):
    result = run_and_emit(benchmark, "concurrency")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_concurrency.json").write_text(
        json.dumps({"experiment": result.experiment_id, "rows": result.rows},
                   indent=2))

    by_cell = {(r["device"], r["index"], r["clients"]): r for r in result.rows}
    for device in ("hdd", "ssd"):
        for index in ("btree", "alex"):
            # Cross-client group commit: a single client commits
            # synchronously (one flush per write); as clients grow each
            # flush drains every session's pending writes, so flushes
            # per committed write must fall strictly, and by >= 4x at
            # 64 clients.
            ratios = [by_cell[(device, index, c)]["flushes_per_write"]
                      for c in (1, 4, 16, 64)]
            assert ratios[0] == 1.0, ratios
            assert all(a > b for a, b in zip(ratios, ratios[1:])), ratios
            assert ratios[-1] <= ratios[0] / 4, ratios
            for clients in CLIENT_COUNTS:
                row = by_cell[(device, index, clients)]
                # Client-perceived tail stays bounded relative to the
                # median even under zipfian hot-key contention: the p99
                # absorbs latch stalls and the commit-group fill time
                # (which grows with the client count), but fair
                # min-virtual-time dispatch keeps it *linear* in the
                # client count — observed <= 2.0 + clients/5 across
                # scales; 10 + clients/2 allows margin.
                assert row["p99_us"] <= (10 + clients / 2) * row["p50_us"], row
                # Commit groups fill from all sessions: the mean group
                # holds at least half the client count's writes.
                assert row["mean_commit_group"] >= clients / 2, row
        for index in ("btree", "alex", "hybrid-alex"):
            for clients in CLIENT_COUNTS:
                row = by_cell[(device, index, clients)]
                # Snapshot reads are pinned to the WAL's durable prefix
                # and never take latches: zero read-side latch wait at
                # every cell, and every cell actually served reads.
                assert row["read_latch_us"] == 0.0, row
                assert row["snapshot_reads"] > 0, row
