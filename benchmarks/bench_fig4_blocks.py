"""Table 4 / Figure 4: fetched block breakdown (inner vs leaf) per query."""

from conftest import run_and_emit


def test_table4_blocks(benchmark):
    result = run_and_emit(benchmark, "table4")
    rows = {(r["workload"], r["dataset"], r["index"]): r for r in result.rows}
    # The B+-tree reads exactly one leaf block per lookup.
    for dataset in ("fb", "osm", "ycsb"):
        assert rows[("lookup_only", dataset, "btree")]["leaf_blocks"] == 1.0
    # O5: ALEX and LIPP fetch the most blocks for scans.
    for dataset in ("fb", "osm", "ycsb"):
        scan = {name: rows[("scan_only", dataset, name)]["total_blocks"]
                for name in ("btree", "fiting", "pgm", "alex", "lipp")}
        assert sorted(scan, key=scan.get)[-1] == "lipp"
