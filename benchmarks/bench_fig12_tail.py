"""Figure 12: p99 latency and standard deviation (lookup & write)."""

from conftest import run_and_emit


def test_fig12_tail(benchmark):
    result = run_and_emit(benchmark, "fig12")
    # O18: the B+-tree has the smallest p99 on the hard dataset and the
    # most *stable* latency everywhere (tiny std dev); ALEX's and LIPP's
    # unbalanced structures show order-of-magnitude larger deviations.
    fb = {r["index"]: r for r in result.rows
          if r["workload"] == "lookup_only" and r["dataset"] == "fb"}
    assert fb["btree"]["p99_us"] == min(r["p99_us"] for r in fb.values())
    for dataset in ("fb", "osm", "ycsb"):
        rows = {r["index"]: r for r in result.rows
                if r["workload"] == "lookup_only" and r["dataset"] == dataset}
        std = {name: rows[name]["std_us"] for name in rows}
        assert std["btree"] <= min(std.values()) * 1.1
        if dataset in ("fb", "osm"):
            assert std["alex"] > 5 * std["btree"]
            assert std["lipp"] > 5 * std["btree"]
