"""Table 2: worst-case I/O cost formulas vs measured block counts."""

from conftest import run_and_emit


def test_table2_cost_model(benchmark):
    result = run_and_emit(benchmark, "table2")
    # The measured counts must stay within the same magnitude as the
    # analytic bounds (they are worst cases, so measured <= ~2x formula).
    for row in result.rows:
        assert row["measured_blocks"] < 12
