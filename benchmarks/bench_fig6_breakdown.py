"""Figure 6: per-insert step latency breakdown (search/insert/SMO/maintenance)."""

from conftest import run_and_emit


def test_fig6_breakdown(benchmark):
    result = run_and_emit(benchmark, "fig6")
    rows = {(r["dataset"], r["index"]): r for r in result.rows}
    for dataset in ("fb", "ycsb"):
        # LIPP updates every node on the path: its maintenance step
        # dominates the other indexes' (paper Section 6.1.3).
        lipp = rows[(dataset, "lipp")]["maintenance_us"]
        for name in ("btree", "fiting", "pgm"):
            assert lipp > rows[(dataset, name)]["maintenance_us"]
        # PGM's amortized writes keep its insert step cheap.
        assert rows[(dataset, "pgm")]["search_us"] <= rows[(dataset, "btree")]["search_us"]
