"""Figure 11: fetched blocks per lookup under 4/8/16 KiB blocks."""

from conftest import run_and_emit


def test_fig11_blocksize(benchmark):
    result = run_and_emit(benchmark, "fig11")
    for row in result.rows:
        if row["index"] == "lipp":
            # O17: LIPP gains nothing from larger blocks.
            assert abs(row["4k"] - row["16k"]) <= 1.0
        else:
            assert row["16k"] <= row["4k"] + 0.05
