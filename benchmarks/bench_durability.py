"""Durability: group-commit batch sweep {1, 8, 64} x {HDD, SSD}.

Beyond the paper: write throughput with a WAL attached, log blocks per
operation, and full-log recovery time from a post-bulkload checkpoint.
"""

from conftest import run_and_emit


def test_durability(benchmark):
    result = run_and_emit(benchmark, "durability")
    by_cell = {(r["device"], r["index"], r["batch"]): r for r in result.rows}
    for device in ("hdd", "ssd"):
        for index in ("btree", "alex"):
            cells = [by_cell[(device, index, b)] for b in (1, 8, 64)]
            # Group commit amortizes log writes: strictly fewer blocks
            # per op as the batch grows, hence throughput never drops.
            assert (cells[0]["log_blocks_per_op"] > cells[1]["log_blocks_per_op"]
                    > cells[2]["log_blocks_per_op"])
            assert cells[0]["ops_per_s"] <= cells[2]["ops_per_s"]
            # Recovery replayed the whole log and paid simulated I/O.
            assert all(c["recovery_ms"] > 0 and c["replayed"] > 0 for c in cells)
    # Same block counts at lower latency: SSD recovers faster than HDD.
    assert (by_cell[("ssd", "btree", 8)]["recovery_ms"]
            < by_cell[("hdd", "btree", 8)]["recovery_ms"])
