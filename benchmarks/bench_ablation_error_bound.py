"""Ablation: PLA error bound sweep for FITing-tree and PGM (Section 5.3)."""

from conftest import run_and_emit


def test_ablation_error_bound(benchmark):
    result = run_and_emit(benchmark, "ablation-error-bound")
    for row in result.rows:
        # eps=1024 forces multi-block last-mile searches: never cheaper
        # than the paper's default eps=64.
        assert row["eps1024"] >= row["eps64"] - 0.05
