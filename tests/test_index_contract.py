"""Behavioural contract shared by every index in the study.

Each test is parameterized over the five studied indexes (and, for the
read-only subset, the hybrid variants): whatever the internal structure,
the observable ordered-map behaviour must be identical.
"""

import bisect
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import index_names, make_index
from repro.storage import NULL_DEVICE, BlockDevice, Pager

from tests.util import ReferenceModel, check_full_agreement

ALL_INDEXES = index_names(include_plid=True)
READONLY_INDEXES = index_names(include_hybrids=True, include_plid=True)


def fresh(name: str):
    return make_index(name, Pager(BlockDevice(4096, NULL_DEVICE)))


def loaded(name: str, keys):
    index = fresh(name)
    index.bulk_load([(k, k + 1) for k in keys])
    return index


KEYS = sorted(random.Random(7).sample(range(10**12), 4000))


@pytest.mark.parametrize("name", READONLY_INDEXES)
def test_lookup_every_bulk_key(name):
    index = loaded(name, KEYS)
    for key in random.Random(1).sample(KEYS, 400):
        assert index.lookup(key) == key + 1


@pytest.mark.parametrize("name", READONLY_INDEXES)
def test_lookup_missing_keys_return_none(name):
    index = loaded(name, KEYS)
    present = set(KEYS)
    rng = random.Random(2)
    for _ in range(200):
        key = rng.randrange(10**12)
        if key not in present:
            assert index.lookup(key) is None
    # Outside the key range on both sides.
    assert index.lookup(KEYS[0] - 1 if KEYS[0] else 10**13) is None
    assert index.lookup(KEYS[-1] + 1) is None


@pytest.mark.parametrize("name", READONLY_INDEXES)
def test_scan_returns_sorted_run(name):
    index = loaded(name, KEYS)
    for start_index in (0, 1, 1234, len(KEYS) // 2, len(KEYS) - 50):
        start = KEYS[start_index]
        result = index.scan(start, 100)
        assert result == [(k, k + 1) for k in KEYS[start_index : start_index + 100]]


@pytest.mark.parametrize("name", READONLY_INDEXES)
def test_scan_from_nonexistent_start(name):
    index = loaded(name, KEYS)
    start = KEYS[100] + 1
    assert start not in set(KEYS)
    i = bisect.bisect_left(KEYS, start)
    assert index.scan(start, 10) == [(k, k + 1) for k in KEYS[i : i + 10]]


@pytest.mark.parametrize("name", READONLY_INDEXES)
def test_scan_past_the_end(name):
    index = loaded(name, KEYS)
    assert index.scan(KEYS[-1], 10) == [(KEYS[-1], KEYS[-1] + 1)]
    assert index.scan(KEYS[-1] + 1, 10) == []


@pytest.mark.parametrize("name", READONLY_INDEXES)
def test_scan_zero_count(name):
    index = loaded(name, KEYS)
    assert index.scan(KEYS[0], 0) == []


@pytest.mark.parametrize("name", ALL_INDEXES)
def test_insert_then_lookup(name):
    index = loaded(name, KEYS)
    present = set(KEYS)
    rng = random.Random(3)
    inserted = []
    while len(inserted) < 1500:
        key = rng.randrange(10**12)
        if key in present:
            continue
        present.add(key)
        index.insert(key, key + 1)
        inserted.append(key)
    for key in inserted:
        assert index.lookup(key) == key + 1
    # Old keys are still reachable after all structure modifications.
    for key in rng.sample(KEYS, 300):
        assert index.lookup(key) == key + 1


#: Indexes whose insert path passes over existing keys and can detect
#: duplicates.  PGM (LSM) and the FITing-tree (delta buffers) cannot see
#: keys stored below their write path; duplicates shadow instead.
STRICT_DUPLICATE_INDEXES = [n for n in ALL_INDEXES if n not in ("pgm", "fiting")]


@pytest.mark.parametrize("name", STRICT_DUPLICATE_INDEXES)
def test_insert_duplicate_raises(name):
    index = loaded(name, KEYS)
    with pytest.raises(KeyError):
        index.insert(KEYS[10], 0)


def test_fiting_duplicate_within_buffer_raises():
    index = loaded("fiting", KEYS)
    new_key = KEYS[10] + 1
    assert new_key not in set(KEYS)
    index.insert(new_key, 1)
    with pytest.raises(KeyError):
        index.insert(new_key, 2)


def test_pgm_duplicate_insert_shadows():
    """PGM is an LSM: a re-inserted key shadows the older component's
    value (the buffer is the newest run), it does not raise."""
    index = loaded("pgm", KEYS)
    index.insert(KEYS[10], 999)
    assert index.lookup(KEYS[10]) == 999
    with pytest.raises(KeyError):
        index.insert(KEYS[10], 1000)  # duplicates *within* the buffer do raise


@pytest.mark.parametrize("name", ALL_INDEXES)
def test_scan_sees_inserted_keys(name):
    index = loaded(name, KEYS)
    present = sorted(KEYS)
    rng = random.Random(4)
    for _ in range(800):
        key = rng.randrange(10**12)
        i = bisect.bisect_left(present, key)
        if i < len(present) and present[i] == key:
            continue
        present.insert(i, key)
        index.insert(key, key + 1)
    for start_index in (0, len(present) // 3, len(present) - 120):
        start = present[start_index]
        assert index.scan(start, 100) == [
            (k, k + 1) for k in present[start_index : start_index + 100]]


@pytest.mark.parametrize("name", ALL_INDEXES)
def test_insert_below_global_minimum(name):
    index = loaded(name, KEYS)
    assert KEYS[0] > 100
    small = [KEYS[0] - delta for delta in (1, 7, 50, 99)]
    for key in small:
        index.insert(key, key + 1)
    for key in small:
        assert index.lookup(key) == key + 1
    assert index.scan(small[-1], 3)[0] == (small[-1], small[-1] + 1)


@pytest.mark.parametrize("name", ALL_INDEXES)
def test_insert_above_global_maximum(name):
    index = loaded(name, KEYS)
    big = [KEYS[-1] + delta for delta in (1, 9, 1000)]
    for key in big:
        index.insert(key, key + 1)
    for key in big:
        assert index.lookup(key) == key + 1


@pytest.mark.parametrize("name", ALL_INDEXES)
def test_bulk_load_rejects_unsorted(name):
    index = fresh(name)
    with pytest.raises(ValueError):
        index.check_bulk_items([(2, 3), (1, 2)])


@pytest.mark.parametrize("name", READONLY_INDEXES)
def test_double_bulk_load_rejected(name):
    index = loaded(name, KEYS[:100])
    with pytest.raises(RuntimeError):
        index.bulk_load([(1, 2)])


@pytest.mark.parametrize("name", ALL_INDEXES)
def test_height_positive(name):
    index = loaded(name, KEYS)
    assert index.height() >= 1


@pytest.mark.parametrize("name", ALL_INDEXES)
def test_file_roles_cover_all_files(name):
    index = loaded(name, KEYS)
    roles = index.file_roles()
    assert set(roles.values()) <= {"inner", "leaf"}
    assert set(roles) <= set(index.pager.device.files)


@settings(max_examples=15, deadline=None)
@given(st.data())
@pytest.mark.parametrize("name", ALL_INDEXES)
def test_random_operation_sequences_match_reference(name, data):
    """Property test: any interleaving of inserts/updates/deletes/lookups/
    scans matches the shared sorted-dict oracle (tests.util.ReferenceModel,
    the same model the seeded differential harness drives)."""
    base = data.draw(st.lists(st.integers(0, 10**9), min_size=10, max_size=120,
                              unique=True).map(sorted), label="bulk keys")
    index = loaded(name, base)
    model = ReferenceModel((k, k + 1) for k in base)
    ops = data.draw(st.lists(
        st.tuples(st.sampled_from(["insert", "update", "delete", "lookup",
                                   "scan"]),
                  st.integers(0, 10**9)),
        max_size=60), label="ops")
    for kind, key in ops:
        if kind == "insert":
            if key in model:
                # PGM (LSM) and FITing (delta buffers) shadow duplicates
                # unless they collide in their own write buffer; the
                # other indexes always raise.  Shadow with the current
                # payload so a successful shadow is observably a no-op.
                if name not in ("pgm", "fiting"):
                    with pytest.raises(KeyError):
                        index.insert(key, model.lookup(key))
                else:
                    try:
                        index.insert(key, model.lookup(key))
                    except KeyError:
                        pass
            else:
                model.insert(key, key + 1)
                index.insert(key, key + 1)
        elif kind == "update":
            assert index.update(key, key + 2) == model.update(key, key + 2)
        elif kind == "delete":
            assert index.delete(key) == model.delete(key)
        elif kind == "lookup":
            assert index.lookup(key) == model.lookup(key)
        else:
            assert index.scan(key, 5) == model.scan(key, 5)
    check_full_agreement(index, model, probe_misses=5)


@pytest.mark.parametrize("name", READONLY_INDEXES)
def test_scan_range(name):
    index = loaded(name, KEYS)
    low, high = KEYS[100], KEYS[450]
    result = index.scan_range(low, high)
    assert result == [(k, k + 1) for k in KEYS[100:451]]
    assert index.scan_range(high, low) == []
    assert index.scan_range(KEYS[5], KEYS[5]) == [(KEYS[5], KEYS[5] + 1)]


@pytest.mark.parametrize("name", ALL_INDEXES)
def test_grow_from_empty(name):
    """An index bulk-loaded with nothing must accept inserts and grow
    through its SMOs from scratch."""
    index = fresh(name)
    index.bulk_load([])
    assert index.lookup(42) is None
    assert index.scan(0, 5) == []
    rng = random.Random(9)
    present = []
    seen = set()
    while len(present) < 1500:
        key = rng.randrange(10**10)
        if key in seen:
            continue
        seen.add(key)
        present.append(key)
        index.insert(key, key + 1)
    for key in rng.sample(present, 300):
        assert index.lookup(key) == key + 1
    ordered = sorted(seen)
    assert index.scan(ordered[0], 50) == [(k, k + 1) for k in ordered[:50]]
