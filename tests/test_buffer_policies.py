"""Tests for the CLOCK and FIFO buffer-pool policies."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import ClockBufferPool, FifoBufferPool, make_buffer_pool


def test_factory_dispatch():
    assert make_buffer_pool(4, "lru").policy == "lru"
    assert make_buffer_pool(4, "fifo").policy == "fifo"
    assert make_buffer_pool(4, "clock").policy == "clock"
    with pytest.raises(ValueError):
        make_buffer_pool(4, "random")


def test_fifo_ignores_recency():
    pool = FifoBufferPool(2)
    pool.put("f", 1, b"1")
    pool.put("f", 2, b"2")
    pool.get("f", 1)           # touching 1 must NOT save it
    pool.put("f", 3, b"3")     # evicts 1 (oldest insertion)
    assert pool.get("f", 1) is None
    assert pool.get("f", 2) == b"2"


def test_fifo_refresh_keeps_queue_position():
    pool = FifoBufferPool(2)
    pool.put("f", 1, b"old")
    pool.put("f", 2, b"2")
    pool.put("f", 1, b"new")   # refresh, still the oldest
    pool.put("f", 3, b"3")     # evicts 1
    assert pool.get("f", 1) is None
    assert pool.get("f", 2) == b"2"


def test_clock_second_chance():
    pool = ClockBufferPool(2)
    pool.put("f", 1, b"1")
    pool.put("f", 2, b"2")
    pool.get("f", 1)           # reference bit on 1
    pool.put("f", 3, b"3")     # hand skips referenced 1, evicts 2
    assert pool.get("f", 1) == b"1"
    assert pool.get("f", 2) is None
    assert pool.get("f", 3) == b"3"


def test_clock_keeps_hot_set_under_cold_churn():
    """A hot set re-referenced between cold misses must stay cached — the
    mis-advanced-hand bug evicted every newcomer immediately and let cold
    blocks push the hot set out."""
    pool = ClockBufferPool(4)
    for block in (0, 1, 2):
        pool.put("f", block, bytes([block]))
    for cold in range(100, 140):
        for block in (0, 1, 2):       # keep the hot set referenced
            assert pool.get("f", block) is not None, (cold, block)
        pool.put("f", cold, b"c")     # cold block churns through slot 4
    assert pool.hit_rate > 0.9


def test_clock_invalidate_keeps_ring_consistent():
    pool = ClockBufferPool(3)
    for block in range(3):
        pool.put("f", block, bytes([block]))
    pool.invalidate("f", 1)
    assert pool.get("f", 1) is None
    pool.put("f", 7, b"7")
    pool.put("f", 8, b"8")  # forces an eviction pass over the mutated ring
    assert len(pool) <= 3


def test_clock_invalidate_file():
    pool = ClockBufferPool(4)
    pool.put("a", 1, b"x")
    pool.put("b", 1, b"y")
    pool.invalidate_file("a")
    assert pool.get("a", 1) is None
    assert pool.get("b", 1) == b"y"


def test_clear_resets_clock_state():
    pool = ClockBufferPool(2)
    pool.put("f", 1, b"1")
    pool.clear()
    assert len(pool) == 0
    pool.put("f", 2, b"2")
    assert pool.get("f", 2) == b"2"


@settings(max_examples=150, deadline=None)
@given(st.lists(st.tuples(st.sampled_from(["get", "put", "inv"]),
                          st.integers(0, 7)), max_size=80),
       st.integers(1, 4), st.sampled_from(["lru", "fifo", "clock"]))
def test_policies_never_exceed_capacity(ops, capacity, policy):
    pool = make_buffer_pool(capacity, policy)
    shadow = {}
    for op, block in ops:
        if op == "put":
            pool.put("f", block, bytes([block]))
            shadow[("f", block)] = bytes([block])
        elif op == "get":
            got = pool.get("f", block)
            if got is not None:
                # Whatever is cached must be the last value written.
                assert got == shadow[("f", block)]
        else:
            pool.invalidate("f", block)
        assert len(pool) <= capacity


# -- invalidation / clear / hit_rate across all three policies --------------

POLICIES = ("lru", "fifo", "clock")


@pytest.mark.parametrize("policy", POLICIES)
def test_invalidate_single_block(policy):
    pool = make_buffer_pool(4, policy)
    pool.put("f", 1, b"a")
    pool.put("f", 2, b"b")
    pool.invalidate("f", 1)
    assert pool.get("f", 1) is None
    assert pool.get("f", 2) == b"b"
    assert len(pool) == 1
    pool.invalidate("f", 99)  # absent: a no-op, not an error
    assert len(pool) == 1


@pytest.mark.parametrize("policy", POLICIES)
def test_invalidate_file_drops_only_that_file(policy):
    pool = make_buffer_pool(8, policy)
    for block in range(3):
        pool.put("a", block, b"x")
        pool.put("b", block, b"y")
    pool.invalidate_file("a")
    assert len(pool) == 3
    for block in range(3):
        assert pool.get("a", block) is None
        assert pool.get("b", block) == b"y"
    pool.invalidate_file("missing")  # unknown file: no-op
    assert len(pool) == 3


@pytest.mark.parametrize("policy", POLICIES)
def test_clear_empties_and_pool_stays_usable(policy):
    pool = make_buffer_pool(3, policy)
    for block in range(3):
        pool.put("f", block, bytes([block]))
    pool.clear()
    assert len(pool) == 0
    for block in range(5):  # refill past capacity: eviction still works
        pool.put("f", block, bytes([block]))
    assert len(pool) == 3


@pytest.mark.parametrize("policy", POLICIES)
def test_hit_rate_counts_probes(policy):
    pool = make_buffer_pool(4, policy)
    assert pool.hit_rate == 0.0  # no probes yet
    pool.put("f", 1, b"a")
    assert pool.get("f", 1) == b"a"
    assert pool.get("f", 2) is None
    assert pool.get("f", 1) == b"a"
    assert pool.hits == 2 and pool.misses == 1
    assert pool.hit_rate == pytest.approx(2 / 3)
    pool.invalidate("f", 1)
    assert pool.get("f", 1) is None  # post-invalidation probes are misses
    assert pool.hit_rate == pytest.approx(2 / 4)


@pytest.mark.parametrize("policy", POLICIES)
def test_capacity_zero_pool_never_caches(policy):
    pool = make_buffer_pool(0, policy)
    pool.put("f", 1, b"a")
    assert pool.get("f", 1) is None
    assert len(pool) == 0
    pool.invalidate("f", 1)
    pool.invalidate_file("f")
    pool.clear()
    assert pool.hit_rate == 0.0


# -- clock hand position after invalidation --------------------------------

def _clock_with_ring(*blocks):
    pool = ClockBufferPool(len(blocks))
    for block in blocks:
        pool.put("f", block, bytes([block]))
    assert pool._ring == [("f", b) for b in blocks]
    assert pool._hand == 0
    return pool


def test_clock_invalidate_before_hand_shifts_hand_back():
    pool = _clock_with_ring(0, 1, 2)
    pool.put("f", 3, b"\x03")  # evicts 0 (unreferenced), hand moves to 1
    assert pool._hand == 1
    pool.invalidate("f", 3)    # ring index 0, before the hand
    assert pool._ring == [("f", 1), ("f", 2)]
    assert pool._hand == 0     # still pointing at ("f", 1)
    assert pool._ring[pool._hand] == ("f", 1)


def test_clock_invalidate_at_hand_keeps_index_valid():
    pool = _clock_with_ring(0, 1, 2)
    pool.put("f", 3, b"\x03")
    assert pool._hand == 1 and pool._ring[1] == ("f", 1)
    pool.invalidate("f", 1)    # the block the hand points at
    assert pool._ring == [("f", 3), ("f", 2)]
    assert pool._hand == 1     # now points at the successor ("f", 2)
    assert pool._ring[pool._hand] == ("f", 2)


def test_clock_invalidate_last_slot_wraps_hand():
    pool = _clock_with_ring(0, 1, 2)
    pool.put("f", 3, b"\x03")
    pool.put("f", 4, b"\x04")  # hand at 2
    assert pool._hand == 2
    pool.invalidate("f", 2)    # ring index 2 == hand, now past the end
    assert pool._hand == 0     # wrapped, not out of range
    assert len(pool._ring) == 2


def test_clock_invalidate_down_to_empty_resets_hand():
    pool = _clock_with_ring(0, 1)
    pool.invalidate("f", 0)
    pool.invalidate("f", 1)
    assert pool._ring == [] and pool._hand == 0
    pool.put("f", 5, b"\x05")  # pool must come back to life cleanly
    assert pool.get("f", 5) == b"\x05"


def test_clock_eviction_correct_after_interleaved_invalidation():
    """After invalidations rearrange the ring, the clock still evicts an
    unreferenced victim and keeps referenced blocks alive."""
    pool = _clock_with_ring(0, 1, 2)
    pool.invalidate("f", 1)
    assert pool.get("f", 0) is not None  # reference 0
    pool.put("f", 7, b"\x07")            # fills the freed slot (append)
    pool.put("f", 8, b"\x08")            # full: must evict 2 or 7, never 0
    assert pool.get("f", 0) is not None
    assert len(pool) == 3
