"""Tests for the CLOCK and FIFO buffer-pool policies."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import ClockBufferPool, FifoBufferPool, make_buffer_pool


def test_factory_dispatch():
    assert make_buffer_pool(4, "lru").policy == "lru"
    assert make_buffer_pool(4, "fifo").policy == "fifo"
    assert make_buffer_pool(4, "clock").policy == "clock"
    with pytest.raises(ValueError):
        make_buffer_pool(4, "random")


def test_fifo_ignores_recency():
    pool = FifoBufferPool(2)
    pool.put("f", 1, b"1")
    pool.put("f", 2, b"2")
    pool.get("f", 1)           # touching 1 must NOT save it
    pool.put("f", 3, b"3")     # evicts 1 (oldest insertion)
    assert pool.get("f", 1) is None
    assert pool.get("f", 2) == b"2"


def test_fifo_refresh_keeps_queue_position():
    pool = FifoBufferPool(2)
    pool.put("f", 1, b"old")
    pool.put("f", 2, b"2")
    pool.put("f", 1, b"new")   # refresh, still the oldest
    pool.put("f", 3, b"3")     # evicts 1
    assert pool.get("f", 1) is None
    assert pool.get("f", 2) == b"2"


def test_clock_second_chance():
    pool = ClockBufferPool(2)
    pool.put("f", 1, b"1")
    pool.put("f", 2, b"2")
    pool.get("f", 1)           # reference bit on 1
    pool.put("f", 3, b"3")     # hand skips referenced 1, evicts 2
    assert pool.get("f", 1) == b"1"
    assert pool.get("f", 2) is None
    assert pool.get("f", 3) == b"3"


def test_clock_keeps_hot_set_under_cold_churn():
    """A hot set re-referenced between cold misses must stay cached — the
    mis-advanced-hand bug evicted every newcomer immediately and let cold
    blocks push the hot set out."""
    pool = ClockBufferPool(4)
    for block in (0, 1, 2):
        pool.put("f", block, bytes([block]))
    for cold in range(100, 140):
        for block in (0, 1, 2):       # keep the hot set referenced
            assert pool.get("f", block) is not None, (cold, block)
        pool.put("f", cold, b"c")     # cold block churns through slot 4
    assert pool.hit_rate > 0.9


def test_clock_invalidate_keeps_ring_consistent():
    pool = ClockBufferPool(3)
    for block in range(3):
        pool.put("f", block, bytes([block]))
    pool.invalidate("f", 1)
    assert pool.get("f", 1) is None
    pool.put("f", 7, b"7")
    pool.put("f", 8, b"8")  # forces an eviction pass over the mutated ring
    assert len(pool) <= 3


def test_clock_invalidate_file():
    pool = ClockBufferPool(4)
    pool.put("a", 1, b"x")
    pool.put("b", 1, b"y")
    pool.invalidate_file("a")
    assert pool.get("a", 1) is None
    assert pool.get("b", 1) == b"y"


def test_clear_resets_clock_state():
    pool = ClockBufferPool(2)
    pool.put("f", 1, b"1")
    pool.clear()
    assert len(pool) == 0
    pool.put("f", 2, b"2")
    assert pool.get("f", 2) == b"2"


@settings(max_examples=150, deadline=None)
@given(st.lists(st.tuples(st.sampled_from(["get", "put", "inv"]),
                          st.integers(0, 7)), max_size=80),
       st.integers(1, 4), st.sampled_from(["lru", "fifo", "clock"]))
def test_policies_never_exceed_capacity(ops, capacity, policy):
    pool = make_buffer_pool(capacity, policy)
    shadow = {}
    for op, block in ops:
        if op == "put":
            pool.put("f", block, bytes([block]))
            shadow[("f", block)] = bytes([block])
        elif op == "get":
            got = pool.get("f", block)
            if got is not None:
                # Whatever is cached must be the last value written.
                assert got == shadow[("f", block)]
        else:
            pool.invalidate("f", block)
        assert len(pool) <= capacity
