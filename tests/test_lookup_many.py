"""Batched lookups: differential parity against the reference model for
every registered index, the fewer-or-equal positionings guarantee, and
the scan_range descent-sharing regression test."""

import random

import pytest

from repro.core import index_names, make_index

from .util import (ReferenceModel, check_full_agreement, items_of, make_pager,
                   random_sorted_keys)

ALL_INDEXES = index_names(include_hybrids=True, include_plid=True)
MUTABLE_INDEXES = index_names(include_plid=True)
#: indexes with a span-fetching lookup_many override; the acceptance bar
#: (strictly fewer blocks at batch 64) applies to these.
VECTORIZED = ("btree", "fiting", "alex")


def _mixed_batch(keys, size, seed, key_space=10**12):
    """Unsorted batch with hits, misses and duplicates."""
    rng = random.Random(seed)
    batch = [rng.choice(keys) if rng.random() < 0.7 else rng.randrange(key_space)
             for _ in range(size)]
    return batch + batch[: size // 8]


@pytest.mark.parametrize("name", ALL_INDEXES)
def test_lookup_many_matches_the_model(name):
    keys = random_sorted_keys(1500, seed=7)
    model = ReferenceModel(items_of(keys))
    index = make_index(name, make_pager())
    index.bulk_load(items_of(keys))
    batch = _mixed_batch(keys, 120, seed=42)
    assert index.lookup_many(batch) == [model.lookup(k) for k in batch]
    assert index.lookup_many([]) == []
    assert index.lookup_many(batch[:1]) == [model.lookup(batch[0])]


@pytest.mark.parametrize("name", MUTABLE_INDEXES)
def test_lookup_many_after_mutations(name):
    keys = random_sorted_keys(900, seed=3)
    model = ReferenceModel(items_of(keys))
    index = make_index(name, make_pager())
    index.bulk_load(items_of(keys))
    rng = random.Random(11)
    for _ in range(120):
        key = rng.randrange(10**12)
        if key not in model:
            model.insert(key, key % 997)
            index.insert(key, key % 997)
    for key in rng.sample(keys, 60):
        model.delete(key)
        index.delete(key)
    batch = _mixed_batch(model.keys(), 150, seed=5)
    assert index.lookup_many(batch) == [model.lookup(k) for k in batch]
    check_full_agreement(index, model)


@pytest.mark.parametrize("name", ALL_INDEXES)
def test_lookup_many_never_charges_more_positionings(name):
    """Two identical indexes: the batched path must answer identically to
    the per-key loop while charging fewer-or-equal positionings."""
    keys = random_sorted_keys(1500, seed=9)
    serial_index = make_index(name, make_pager())
    batched_index = make_index(name, make_pager())
    serial_index.bulk_load(items_of(keys))
    batched_index.bulk_load(items_of(keys))
    batch = _mixed_batch(keys, 64, seed=21)

    before = serial_index.pager.stats.snapshot()
    expected = [serial_index.lookup(k) for k in batch]
    serial = serial_index.pager.stats.diff(before)

    before = batched_index.pager.stats.snapshot()
    got = batched_index.lookup_many(batch)
    coalesced = batched_index.pager.stats.diff(before)

    assert got == expected
    assert coalesced.read_positionings <= serial.read_positionings


@pytest.mark.parametrize("name", VECTORIZED)
def test_vectorized_paths_fetch_strictly_fewer_blocks(name):
    keys = random_sorted_keys(5000, seed=13)
    serial_index = make_index(name, make_pager())
    batched_index = make_index(name, make_pager())
    serial_index.bulk_load(items_of(keys))
    batched_index.bulk_load(items_of(keys))
    rng = random.Random(17)
    batch = [rng.choice(keys) for _ in range(64)]

    before = serial_index.pager.stats.snapshot()
    expected = [serial_index.lookup(k) for k in batch]
    serial = serial_index.pager.stats.diff(before)

    before = batched_index.pager.stats.snapshot()
    got = batched_index.lookup_many(batch)
    coalesced = batched_index.pager.stats.diff(before)

    assert got == expected
    assert coalesced.reads < serial.reads
    assert coalesced.read_positionings < serial.read_positionings


def test_btree_scan_range_descends_once():
    """scan_range used to re-descend from the root for every chunk; it
    must now walk the leaf chain after a single inner descent."""
    keys = random_sorted_keys(5000, seed=23)
    index = make_index("btree", make_pager())
    index.bulk_load(items_of(keys))
    inner_file = index.pager.device.get_file(
        next(n for n, role in index.file_roles().items() if role == "inner"))
    low, high = keys[100], keys[4000]  # spans many leaves
    before = inner_file.reads
    result = index.scan_range(low, high)
    inner_fetches = inner_file.reads - before
    assert result == [(k, k + 1) for k in keys if low <= k <= high]
    assert inner_fetches <= index.height() - 1


def test_btree_floor_records_matches_floor_record():
    keys = random_sorted_keys(2000, seed=29)
    index = make_index("btree", make_pager())
    index.bulk_load(items_of(keys))
    tree = index.tree
    rng = random.Random(31)
    probes = sorted({rng.randrange(keys[-1] + 10) for _ in range(80)}
                    | {keys[0] - 1, keys[0], keys[-1]})
    many = tree.floor_records(probes)
    for key in probes:
        assert many[key] == tree.floor_record(key), key
