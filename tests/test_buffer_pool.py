"""Unit and property tests for the LRU buffer pool."""

from collections import OrderedDict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import BufferPool


def test_capacity_must_be_nonnegative():
    with pytest.raises(ValueError):
        BufferPool(-1)


def test_zero_capacity_caches_nothing():
    pool = BufferPool(0)
    pool.put("f", 0, b"x")
    assert pool.get("f", 0) is None
    assert len(pool) == 0


def test_put_get_roundtrip():
    pool = BufferPool(4)
    pool.put("f", 1, b"abc")
    assert pool.get("f", 1) == b"abc"
    assert pool.hits == 1


def test_miss_counts():
    pool = BufferPool(4)
    assert pool.get("f", 9) is None
    assert pool.misses == 1
    assert pool.hit_rate == 0.0


def test_lru_eviction_order():
    pool = BufferPool(2)
    pool.put("f", 1, b"1")
    pool.put("f", 2, b"2")
    pool.get("f", 1)           # touch 1: now 2 is the LRU
    pool.put("f", 3, b"3")     # evicts 2
    assert pool.get("f", 2) is None
    assert pool.get("f", 1) == b"1"
    assert pool.get("f", 3) == b"3"


def test_put_refreshes_existing_entry():
    pool = BufferPool(2)
    pool.put("f", 1, b"old")
    pool.put("f", 1, b"new")
    assert len(pool) == 1
    assert pool.get("f", 1) == b"new"


def test_invalidate_single_block():
    pool = BufferPool(4)
    pool.put("f", 1, b"x")
    pool.invalidate("f", 1)
    assert pool.get("f", 1) is None
    pool.invalidate("f", 99)  # idempotent on absent keys


def test_invalidate_file_drops_only_that_file():
    pool = BufferPool(8)
    pool.put("a", 1, b"a1")
    pool.put("a", 2, b"a2")
    pool.put("b", 1, b"b1")
    pool.invalidate_file("a")
    assert pool.get("a", 1) is None
    assert pool.get("a", 2) is None
    assert pool.get("b", 1) == b"b1"


def test_clear():
    pool = BufferPool(4)
    pool.put("f", 1, b"x")
    pool.clear()
    assert len(pool) == 0


@settings(max_examples=200, deadline=None)
@given(st.lists(
    st.tuples(st.sampled_from(["get", "put"]), st.integers(0, 9)), max_size=60),
    st.integers(1, 5))
def test_lru_matches_reference_model(ops, capacity):
    """The pool must behave exactly like an OrderedDict-based LRU model."""
    pool = BufferPool(capacity)
    model: "OrderedDict[tuple, bytes]" = OrderedDict()
    for op, block in ops:
        if op == "put":
            data = bytes([block])
            pool.put("f", block, data)
            model[("f", block)] = data
            model.move_to_end(("f", block))
            while len(model) > capacity:
                model.popitem(last=False)
        else:
            expected = model.get(("f", block))
            if expected is not None:
                model.move_to_end(("f", block))
            assert pool.get("f", block) == expected
    assert set(model) == {("f", b) for (f, b) in
                          [(k[0], k[1]) for k in model]}
    assert len(pool) == len(model)
