"""Cross-shard differential oracle: every sharded topology converges
onto the sorted-dict :class:`ReferenceModel`.

The same seeded random streams that validate each single index validate
the whole tier — shard-count x index-class combos, divergent per-shard
classes, replica groups under every read policy, and durable tiers —
because :class:`repro.sharding.ShardedIndex` is a
:class:`~repro.core.DiskIndex` like any other.  The streams include
``lookup_many`` batches (with duplicates) and ``scan_range`` spans drawn
over the full key space, so boundary-straddling splits and merges are
exercised on every run; dedicated tests then pin the boundary cases
exactly (batches and ranges built *from* the partition's split keys).
"""

import pytest

from repro.sharding import ShardTuner

from tests.util import (
    MUTATION_KINDS,
    READONLY_KINDS,
    ReferenceModel,
    check_full_agreement,
    items_of,
    make_sharded,
    random_sorted_keys,
    run_differential,
)

KEY_SPACE = 10**9


def loaded_tier(names, shards, keys, **kwargs):
    index = make_sharded(names, shards, sample_keys=keys, **kwargs)
    index.bulk_load(items_of(keys))
    return index


@pytest.mark.parametrize("name,shards", [
    ("btree", 2), ("btree", 5), ("alex", 3), ("lipp", 2), ("plid", 4),
])
def test_uniform_tier_matches_oracle(name, shards):
    keys = random_sorted_keys(600, seed=shards, key_space=KEY_SPACE)
    index = loaded_tier(name, shards, keys)
    model = ReferenceModel(items_of(keys))
    counts = run_differential(index, model, num_ops=400, seed=shards)
    assert counts["lookup_many"] > 0 and counts["scan_range"] > 0
    assert index.verify() == len(model)


@pytest.mark.parametrize("names", [
    ["btree", "alex"],
    ["alex", "btree", "plid"],
    ["plid", "lipp", "btree", "alex"],
])
def test_divergent_tier_matches_oracle(names):
    """Different index class on every shard, one oracle."""
    keys = random_sorted_keys(700, seed=len(names), key_space=KEY_SPACE)
    index = loaded_tier(names, None, keys)
    assert index.composition() == names
    model = ReferenceModel(items_of(keys))
    run_differential(index, model, num_ops=400, seed=17)
    assert index.verify() == len(model)


@pytest.mark.parametrize("policy", ["primary", "round_robin", "least_loaded"])
def test_replicated_tier_matches_oracle(policy):
    """Read fan-out across replicas never changes an answer, and every
    non-primary policy actually spreads the reads."""
    keys = random_sorted_keys(500, seed=11, key_space=KEY_SPACE)
    index = loaded_tier("btree", 3, keys, replicas=3, replica_policy=policy)
    model = ReferenceModel(items_of(keys))
    run_differential(index, model, num_ops=350, seed=11)
    served = [[m.reads_served for m in shard.members()]
              for shard in index.shards]
    if policy == "primary":
        assert all(counts[1] == counts[2] == 0 for counts in served)
    else:
        busy = [counts for counts in served if sum(counts) >= 6]
        assert busy and all(min(counts) > 0 for counts in busy), served
    assert index.verify() == len(model)


def test_durable_tier_matches_oracle():
    keys = random_sorted_keys(500, seed=23, key_space=KEY_SPACE)
    index = loaded_tier("btree", 3, keys, durability=True, replicas=2)
    model = ReferenceModel(items_of(keys))
    # Route mutations through the tier's durable (fan-out WAL) path.
    run_differential(
        index, model, num_ops=300, seed=23,
        kinds=MUTATION_KINDS)
    assert index.wal.records_appended == 0  # plain path stays unlogged
    index.durable_insert(KEY_SPACE + 5, 1)
    model.insert(KEY_SPACE + 5, 1)
    index.wal.flush()
    assert index.wal.records_appended == 1
    check_full_agreement(index, model)


def test_readonly_hybrid_tier_matches_oracle():
    """A tier of read-only hybrids serves reads and refuses mutations."""
    keys = random_sorted_keys(600, seed=5, key_space=KEY_SPACE)
    index = loaded_tier("hybrid-alex", 3, keys)
    model = ReferenceModel(items_of(keys))
    run_differential(index, model, num_ops=250, seed=5,
                     kinds=READONLY_KINDS)
    with pytest.raises(NotImplementedError):
        index.insert(1, 2)


def test_tuner_divergence_keeps_oracle_agreement():
    """Retuning mid-stream (shards converting class under the tuner's
    P1-P5 scoring) must be invisible to correctness."""
    keys = random_sorted_keys(600, seed=41, key_space=KEY_SPACE)
    index = loaded_tier("btree", 2, keys)
    model = ReferenceModel(items_of(keys))
    boundary = index.partition.boundaries[0]
    # Skewed traffic: reads below the boundary, writes above it.
    for key in model.keys()[:150]:
        if key < boundary:
            assert index.lookup(key) == model.lookup(key)
    fresh = iter(range(KEY_SPACE + 10, KEY_SPACE + 10_000, 7))
    for _ in range(60):
        key = next(f for f in fresh if f not in model)
        model.insert(key, key % 97)
        index.insert(key, key % 97)
    plan = ShardTuner().retune(index)
    assert plan[0] != plan[1], plan  # traffic split forced divergence
    check_full_agreement(index, model)
    # The converted tier still tracks the oracle under a fresh stream
    # (mutations only on the writable shard's range).
    run_differential(index, model, num_ops=150, seed=43,
                     kinds=READONLY_KINDS)


def test_boundary_straddling_batches_and_ranges():
    """Pin the exact boundary cases: batches and ranges built from the
    partition's own split keys."""
    keys = random_sorted_keys(400, seed=67, key_space=KEY_SPACE)
    index = loaded_tier("btree", 4, keys)
    model = ReferenceModel(items_of(keys))
    for b in index.partition.boundaries:
        batch = [b - 1, b, b + 1, b, b - 1, keys[0], keys[-1]]
        assert index.lookup_many(batch) == [model.lookup(k) for k in batch]
        assert index.scan_range(b - 10**6, b + 10**6) == \
            model.scan_range(b - 10**6, b + 10**6)
        assert index.scan(b - 10**6, 25) == model.scan(b - 10**6, 25)
    # A range spanning every shard equals the full content sweep.
    assert index.scan_range(0, 2**64 - 1) == model.items()


def test_empty_shards_answer_correctly():
    """Shards whose range holds no keys still split/merge correctly."""
    keys = [10, 20, 30, 900_000, 900_010]
    index = make_sharded("btree", boundaries=[100, 500_000, 950_000])
    index.bulk_load(items_of(keys))
    model = ReferenceModel(items_of(keys))
    assert index.lookup_many([10, 600, 499_999, 900_010, 10]) == \
        [11, None, None, 900_011, 11]
    assert index.scan_range(0, 2**64 - 1) == model.items()
    assert index.scan(15, 4) == model.scan(15, 4)
    run_differential(index, model, num_ops=120, seed=3, key_space=10**6)
