"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.storage import HDD, NULL_DEVICE, BlockDevice, Pager


@pytest.fixture
def device() -> BlockDevice:
    """A 4 KiB-block HDD-profiled device (the paper's default)."""
    return BlockDevice(block_size=4096, profile=HDD)


@pytest.fixture
def pager(device: BlockDevice) -> Pager:
    return Pager(device)


@pytest.fixture
def free_pager() -> Pager:
    """A pager over a zero-latency device, for pure-correctness tests."""
    return Pager(BlockDevice(block_size=4096, profile=NULL_DEVICE))
