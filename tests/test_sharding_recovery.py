"""Crash-under-sharding: one shard dies, the tier recovers exactly.

Shards fail independently — each has its own device, WAL and checkpoint
— so the recovery contract is per shard: after a crash, the shard's
content is its checkpoint image plus its own WAL's durable prefix
(**exactly** — no lost acknowledged write, no resurrected unacknowledged
one), and every other shard is bit-for-bit untouched.  The whole-cluster
power-loss path (the fault injector firing through ``run_workload``'s
fan-out facades) then recovers every shard the same way.
"""

import pytest

from repro.durability import FaultInjector
from repro.sharding import KEYSPACE_END

from tests.util import items_of, make_sharded, random_sorted_keys

KEY_SPACE = 10**9


def durable_tier(shards=3, group_commit=4, seed=9, n=300, replicas=1):
    keys = random_sorted_keys(n, seed=seed, key_space=KEY_SPACE)
    index = make_sharded("btree", shards, sample_keys=keys,
                         durability=True, group_commit=group_commit,
                         replicas=replicas)
    index.bulk_load(items_of(keys))
    return index, keys


def shard_contents(index):
    """Per-shard live pairs, read without charges."""
    out = []
    for shard in index.shards:
        with shard.primary.index._free_io():
            out.append(shard.primary.index.scan_range(0, KEYSPACE_END - 1))
    return out


def fresh_keys_for(index, shard_id, count, start=KEY_SPACE):
    """Unused keys owned by ``shard_id`` (its range, above the loaded set)."""
    lo, hi = index.partition.range_of(shard_id)
    base = max(lo, start)
    keys = [base + 2 * i + 1 for i in range(count)]
    assert all(lo <= k < hi for k in keys)
    return keys


def test_one_shard_crash_restores_committed_prefix_others_untouched():
    index, _ = durable_tier(shards=3, group_commit=4)
    checkpoints = [shard.checkpoint() for shard in index.shards]

    # Interleave durable writes across every shard. Shard ranges from
    # quantile boundaries all sit below KEY_SPACE, so per-shard fresh
    # keys target each shard deterministically.
    per_shard = {s: fresh_keys_for(index, s, 21, start=0) for s in range(3)}
    writes = {s: [] for s in range(3)}
    for i in range(21):
        for s in range(3):
            key = per_shard[s][i]
            index.durable_insert(key, key % 1000 + 1)
            writes[s].append((key, key % 1000 + 1))

    victim = index.shards[1]
    # 21 records at group_commit=4: 20 durable, 1 still in the buffer.
    assert victim.wal.durable_seqno == 20
    assert victim.wal.pending == 1
    before = shard_contents(index)

    report = FaultInjector().crash(victim.wal, op_index=7,
                                   pager=victim.primary.pager)
    assert report.dropped_records == 1
    acked = victim.wal.durable_seqno
    result = victim.recover(checkpoints[1])
    assert result.last_seqno == acked
    assert result.records_applied == acked

    after = shard_contents(index)
    # The victim holds exactly its committed prefix: checkpoint content
    # plus the first ``acked`` writes — the dropped record is gone.
    expected = sorted(
        [pair for pair in before[1] if pair not in dict(writes[1]).items()]
        + writes[1][:acked])
    assert after[1] == expected
    # Zero lost acknowledged writes, and the unacked one did not survive.
    for key, payload in writes[1][:acked]:
        assert index.lookup(key) == payload
    assert index.lookup(writes[1][-1][0]) is None
    # The other shards are bit-for-bit untouched.
    assert after[0] == before[0]
    assert after[2] == before[2]
    assert index.verify() == sum(len(c) for c in after)

    # The tier keeps serving and logging: seqnos continue the history.
    key = per_shard[1][20] + 2
    index.durable_insert(key, 5)
    assert victim.wal.next_seqno == acked + 2
    index.wal.flush()
    assert index.lookup(key) == 5


def test_torn_tail_cuts_the_victims_log_at_the_crc():
    index, _ = durable_tier(shards=2, group_commit=1, seed=13)
    checkpoints = [shard.checkpoint() for shard in index.shards]
    victim = index.shards[0]
    keys = fresh_keys_for(index, 0, 10, start=0)
    for key in keys:
        index.durable_insert(key, key % 50 + 1)
    assert victim.wal.durable_seqno == 10

    FaultInjector(torn_tail=True).crash(victim.wal, op_index=9,
                                        pager=victim.primary.pager)
    surviving = [r.seqno for r in victim.wal.durable_records()]
    assert surviving and surviving[-1] < 10  # the tear really cut the log
    result = victim.recover(checkpoints[0])
    assert result.last_seqno == surviving[-1]
    for i, key in enumerate(keys):
        expected = key % 50 + 1 if i + 1 <= surviving[-1] else None
        assert index.lookup(key) == expected, (i, key)


def test_whole_tier_power_loss_through_the_runner():
    from repro.workloads import run_workload

    index, _ = durable_tier(shards=3, group_commit=4, seed=21, replicas=2)
    checkpoints = [shard.checkpoint() for shard in index.shards]
    ops = []
    for i in range(60):
        shard_id = i % 3
        key = fresh_keys_for(index, shard_id, 60, start=0)[i // 3]
        ops.append(("insert", key))

    result = run_workload(index, ops, workload="crash",
                          fault_injector=FaultInjector(crash_at_op=45),
                          shards=3, replicas=2)
    assert result.crashed_at_op == 45
    assert result.shards == 3 and result.replicas == 2

    # Every shard recovers independently to its own durable prefix.
    survivors = {}
    for shard_id, shard in enumerate(index.shards):
        acked = shard.wal.durable_seqno
        res = shard.recover(checkpoints[shard_id])
        assert res.last_seqno == acked
        survivors[shard_id] = acked
    assert sum(survivors.values()) <= 45
    # Acknowledged writes all present; the tier (and its re-seeded
    # replicas) verifies clean.
    executed = ops[:45]
    for shard_id, shard in enumerate(index.shards):
        shard_ops = [key for _, key in executed
                     if index.partition.shard_of(key) == shard_id]
        for j, key in enumerate(shard_ops):
            # run_workload inserts key+1 payloads
            expected = key + 1 if j + 1 <= survivors[shard_id] else None
            assert index.lookup(key) == expected, (shard_id, j, key)
    assert index.replication_factor == 2
    index.verify()


def test_recover_keeps_write_back_pager_config_on_every_member():
    """Crash + recover under a write-back pager: the adopted primary and
    re-seeded replicas keep the shard's storage configuration (pool,
    write-back, flush watermark) instead of silently downgrading to
    pass-through defaults, and the recovery contract still holds with
    dirty frames dropped at the crash."""
    from repro.storage import NULL_DEVICE

    keys = random_sorted_keys(240, seed=17, key_space=KEY_SPACE)
    index = make_sharded("btree", 2, sample_keys=keys, durability=True,
                         group_commit=4, replicas=2, buffer_blocks=16,
                         write_back=True, flush_watermark=8)
    index.bulk_load(items_of(keys))
    checkpoints = [shard.checkpoint() for shard in index.shards]

    victim = index.shards[1]
    assert victim.primary.pager.write_back is True  # the config is live
    fresh = fresh_keys_for(index, 1, 9, start=0)
    for key in fresh:
        index.durable_insert(key, key % 100 + 1)
    assert victim.wal.durable_seqno == 8  # 9 records at group_commit=4

    # The crash drops the WAL tail *and* every dirty write-back frame.
    FaultInjector().crash(victim.wal, op_index=5,
                          pager=victim.primary.pager)
    acked = victim.wal.durable_seqno
    result = victim.recover(checkpoints[1])
    assert result.last_seqno == acked
    assert result.records_applied == acked

    # Every member — the adopted primary and both re-seeded replicas —
    # keeps the shard's pager configuration through recovery.
    for member in victim.members():
        assert member.pager.write_back is True, member
        assert member.pager.flush_watermark == 8, member
        assert member.pager.buffer_pool is not None, member
        assert member.pager.buffer_pool.capacity == 16, member
        assert member.device.profile is NULL_DEVICE
    # ...and each member owns its *own* pool: shared frames would let
    # one member's reads hit another member's cache.
    pools = {id(m.pager.buffer_pool) for m in victim.members()}
    assert len(pools) == victim.replication_factor

    # The recovery contract is unchanged: exactly the acked prefix.
    for j, key in enumerate(fresh):
        expected = key % 100 + 1 if j + 1 <= acked else None
        assert index.lookup(key) == expected, (j, key)
    # The tier serves and logs on; replicas agree with the primary.
    next_key = fresh_keys_for(index, 1, 20, start=0)[19]
    index.durable_insert(next_key, 7)
    assert victim.wal.next_seqno == acked + 2
    index.wal.flush()
    assert index.lookup(next_key) == 7
    index.verify()


def test_crash_requires_durability():
    index = make_sharded("btree", 2, boundaries=[500])
    index.bulk_load(items_of([1, 2, 1000]))
    with pytest.raises(RuntimeError):
        index.shards[0].recover(None)
