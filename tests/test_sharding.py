"""Unit tests for the sharded tier: partition geometry, router
accounting, fan-out facades, tuner scoring, rebalancer protocol, and the
runner/serving integration surface."""

import pytest

from repro.core import make_sharded_index
from repro.sharding import (
    COST_TABLE,
    KEYSPACE_END,
    RangePartition,
    Rebalancer,
    ShardTuner,
    combine_stats,
)
from repro.storage import NULL_DEVICE, StorageStats
from repro.workloads import run_workload

from tests.util import items_of, make_sharded, random_sorted_keys


# -- partition geometry ------------------------------------------------------

def test_partition_validates_boundaries():
    with pytest.raises(ValueError):
        RangePartition([5, 5])
    with pytest.raises(ValueError):
        RangePartition([9, 3])
    with pytest.raises(ValueError):
        RangePartition([0])
    with pytest.raises(ValueError):
        RangePartition([KEYSPACE_END])


def test_partition_ranges_tile_the_keyspace():
    partition = RangePartition([100, 5000, 70000])
    assert partition.num_shards == 4
    ranges = [partition.range_of(i) for i in range(4)]
    assert ranges[0] == (0, 100)
    assert ranges[-1] == (70000, KEYSPACE_END)
    for (_, hi), (lo, _) in zip(ranges, ranges[1:]):
        assert hi == lo
    assert partition.shard_of(99) == 0
    assert partition.shard_of(100) == 1
    assert partition.shard_of(KEYSPACE_END - 1) == 3


def test_partition_from_keys_quantiles():
    keys = list(range(0, 1000, 10))
    partition = RangePartition.from_keys(keys, 4)
    assert partition.num_shards == 4
    sizes = [len([k for k in keys
                  if partition.range_of(i)[0] <= k < partition.range_of(i)[1]])
             for i in range(4)]
    assert max(sizes) - min(sizes) <= 1
    with pytest.raises(ValueError):
        RangePartition.from_keys([1, 2], 4)


def test_set_boundary_validation():
    partition = RangePartition([100, 200])
    partition.set_boundary(0, 150)
    assert partition.boundaries == [150, 200]
    with pytest.raises(ValueError):
        partition.set_boundary(0, 200)   # must stay strictly inside
    with pytest.raises(IndexError):
        partition.set_boundary(5, 10)


# -- router accounting -------------------------------------------------------

def test_router_counts_fanout_and_boundary_scans():
    keys = list(range(0, 3000, 3))
    index = make_sharded("btree", boundaries=[1000, 2000])
    index.bulk_load(items_of(keys))
    router = index.router
    index.lookup_many([3, 1002, 2001, 3])       # fans to all three shards
    index.lookup_many([3, 6])                   # single shard
    assert router.batches_routed == 2
    assert router.keys_routed == 6
    assert router.max_fanout == 3
    index.scan_range(990, 1010)                 # crosses one boundary
    index.scan_range(0, 5)
    assert router.scans_routed == 2
    assert router.cross_shard_scans == 1
    # scan() crossing a boundary by count exhaustion
    got = index.scan(994, 5)
    assert got == [(k, k + 1) for k in (996, 999, 1002, 1005, 1008)]


# -- fan-out facades ---------------------------------------------------------

def test_combine_stats_sums_fields_and_merges_phases():
    a = StorageStats(reads=3, elapsed_us=10.0,
                     reads_by_phase={"search": 3})
    b = StorageStats(reads=2, writes=4, elapsed_us=5.0,
                     reads_by_phase={"search": 1, "log": 1},
                     writes_by_phase={"log": 4})
    total = combine_stats([a, b])
    assert total.reads == 5 and total.writes == 4
    assert total.elapsed_us == 15.0
    assert total.reads_by_phase == {"search": 4, "log": 1}
    assert total.writes_by_phase == {"log": 4}


def test_fanout_device_stats_and_prefixed_files():
    keys = random_sorted_keys(300, seed=1, key_space=10**6)
    index = make_sharded("btree", 2, sample_keys=keys, replicas=2)
    index.bulk_load(items_of(keys))
    per_member = sum(m.device.stats.reads for s in index.shards
                     for m in s.members())
    assert index.device.stats.reads == per_member
    names = set(index.device.files)
    assert any(n.startswith("s0:") for n in names)
    assert any(n.startswith("s1r1:") for n in names)
    roles = index.file_roles()
    assert roles and all(":" in name for name in roles)
    # snapshot/diff work through the combining property
    snap = index.device.stats.snapshot()
    index.lookup(keys[0])
    assert index.device.stats.diff(snap).reads >= 0


def test_fanout_hook_prefixes_shard_names():
    keys = random_sorted_keys(200, seed=2, key_space=10**6)
    index = make_sharded("btree", 2, sample_keys=keys)
    index.bulk_load(items_of(keys))
    seen = []
    index.pager.on_block_access = lambda mode, name, block_no: seen.append(name)
    index.lookup(keys[0])
    index.lookup(keys[-1])
    index.pager.on_block_access = None
    prefixes = {name.split(":", 1)[0] for name in seen}
    assert prefixes == {"s0", "s1"}
    assert all(s.primary.pager.on_block_access is None for s in index.shards)


def test_fanout_wal_global_prefix_and_group_commit():
    keys = random_sorted_keys(100, seed=3, key_space=10**6)
    index = make_sharded("btree", 2, sample_keys=keys, durability=True,
                         group_commit=100)
    index.bulk_load(items_of(keys))
    wal = index.wal
    wal.group_commit = 10**9          # engine-style: appends never autoflush
    s0 = [2 * k + 2 for k in range(3)]                  # shard 0 keys
    s1 = [keys[-1] + 2 * k + 2 for k in range(3)]       # shard 1 keys
    order = [s0[0], s1[0], s0[1], s1[1], s0[2], s1[2]]
    for key in order:
        index.durable_insert(key, 1)
    assert wal.durable_seqno == 0
    index.shards[0].wal.flush()       # shard 0 durable, shard 1 not
    # Global records alternate shards: only the first is fully durable.
    assert wal.durable_seqno == 1
    wal.flush()
    assert wal.durable_seqno == 6
    assert wal.records_appended == 6
    assert wal.pending == 0


def test_tier_flush_orders_log_before_data():
    keys = random_sorted_keys(200, seed=4, key_space=10**6)
    index = make_sharded("btree", 2, sample_keys=keys, durability=True,
                         buffer_blocks=32, write_back=True)
    index.bulk_load(items_of(keys))
    index.pager.flush()               # clear bulk-load dirt
    index.durable_insert(10**6 + 3, 1)
    assert index.pager.dirty_blocks > 0
    written = index.pager.flush()
    assert written > 0
    assert index.pager.dirty_blocks == 0
    assert index.wal.pending == 0     # log flushed ahead of the pages


def test_attach_wal_and_tracer_are_rejected():
    index = make_sharded("btree", 2, boundaries=[100])
    with pytest.raises(NotImplementedError):
        index.attach_wal(object())
    with pytest.raises(NotImplementedError):
        index.attach_tracer(object())


# -- replication -------------------------------------------------------------

def test_writes_ship_to_replicas_and_reads_fan_out():
    keys = random_sorted_keys(200, seed=5, key_space=10**6)
    index = make_sharded("btree", 2, sample_keys=keys, replicas=3)
    index.bulk_load(items_of(keys))
    shard = index.shards[0]
    new_key = 10**6 + 1
    assert index.partition.shard_of(new_key) == 1
    index.insert(2, 99)               # shard 0
    assert index.shards[0].shipped_records == 2   # two replicas
    for _ in range(9):
        index.lookup(2)
    assert [m.reads_served for m in shard.members()] == [3, 3, 3]
    # Replicas really hold the write (they answer reads).
    for member in shard.members():
        assert member.index.lookup(2) == 99


# -- tuner -------------------------------------------------------------------

def test_tuner_scoring_matches_cost_table():
    tuner = ShardTuner()
    mix = {"lookup": 90, "insert": 10}
    scores = tuner.score(mix)
    expected = (90 * COST_TABLE["btree"]["lookup"]
                + 10 * COST_TABLE["btree"]["insert"]) / 100
    assert scores["btree"] == pytest.approx(expected)
    assert scores["hybrid-alex"] == float("inf")   # read-only class
    assert tuner.choose({"lookup": 100}) == "hybrid-alex"
    assert tuner.choose({"insert": 100}) == "btree"
    with pytest.raises(ValueError):
        ShardTuner(candidates=["hybrid-alex"]).choose({"insert": 1})
    with pytest.raises(ValueError):
        ShardTuner(candidates=["nosuch"])


def test_tuner_convert_preserves_content_and_durability():
    keys = random_sorted_keys(300, seed=6, key_space=10**6)
    index = make_sharded("btree", 2, sample_keys=keys, durability=True,
                         group_commit=1)
    index.bulk_load(items_of(keys))
    index.durable_insert(10**6 + 7, 3)
    shard = index.shards[0]
    old_next = shard.wal.next_seqno
    with shard.primary.index._free_io():
        before = shard.primary.index.scan_range(0, KEYSPACE_END - 1)
    ShardTuner().convert(shard, "alex")
    assert shard.index_name == "alex"
    assert shard.primary.index.name == "alex"
    with shard.primary.index._free_io():
        assert shard.primary.index.scan_range(0, KEYSPACE_END - 1) == before
    assert shard.wal is not None and shard.wal.next_seqno == old_next
    index.durable_insert(2, 8)        # the tier still logs and serves
    assert index.lookup(2) == 8


# -- rebalancer --------------------------------------------------------------

def test_rebalancer_validates_and_reports():
    keys = random_sorted_keys(300, seed=7, key_space=10**6)
    index = make_sharded("btree", 3, sample_keys=keys, durability=True)
    index.bulk_load(items_of(keys))
    rb = Rebalancer(index)
    with pytest.raises(ValueError):
        rb.migrate(0, 2, 5)           # not adjacent
    with pytest.raises(ValueError):
        rb.migrate(0, 1, 0)
    with pytest.raises(ValueError):
        rb.migrate(0, 1, 10**9)       # must keep at least one key
    report = rb.migrate(0, 1, 10)
    assert report.keys_moved == 10
    assert report.logged_records == 20
    assert index.partition.boundaries[0] == report.new_boundary
    assert rb.migrations == [report]
    # Migrating *down* works too and the scan stays identical.
    before = index.scan_range(0, KEYSPACE_END - 1)
    rb.migrate(2, 1, 7)
    assert index.scan_range(0, KEYSPACE_END - 1) == before
    assert index.verify() == len(before)


def test_rebalancer_hottest_and_plan():
    keys = random_sorted_keys(200, seed=8, key_space=10**6)
    index = make_sharded("btree", 3, sample_keys=keys)
    index.bulk_load(items_of(keys))
    hot = index.partition.range_of(2)[0]
    for _ in range(30):
        index.lookup(hot + 1)
    rb = Rebalancer(index)
    assert rb.hottest_shard() == 2
    src, dst, count = rb.plan(0.4)
    assert (src, dst) == (2, 1) and count > 0
    single = make_sharded("btree", 1)
    single.bulk_load(items_of([1, 2, 3]))
    assert Rebalancer(single).plan() is None


def test_scrub_orphans_removes_out_of_range_keys():
    index = make_sharded("btree", 2, boundaries=[500], durability=True)
    index.bulk_load(items_of([10, 20, 600, 700]))
    # Simulate a migration interrupted after its copy phase: the copy
    # landed in shard 1, the boundary never flipped, the purge never ran.
    index.shards[1].apply("insert", 20, 21, log=True)
    assert index.scan_range(0, KEYSPACE_END - 1) == items_of([10, 20, 600, 700])
    removed = Rebalancer(index).scrub_orphans()
    assert removed == 1
    assert index.scan_range(0, KEYSPACE_END - 1) == items_of([10, 20, 600, 700])
    index.verify()


# -- construction and integration -------------------------------------------

def test_factory_validation():
    with pytest.raises(ValueError):
        make_sharded_index("btree")                    # no shard count
    with pytest.raises(ValueError):
        make_sharded_index(["btree", "alex"], 3)       # mismatched count
    with pytest.raises(ValueError):
        make_sharded_index("btree", 3, boundaries=[5])  # 2 ranges, not 3
    with pytest.raises(ValueError):
        make_sharded_index("btree", 2, replicas=0)
    with pytest.raises(ValueError):
        make_sharded_index("btree", 2, boundaries=[5],
                           replica_policy="nosuch")
    # Even keyspace split when no sample is given.
    index = make_sharded_index("btree", 4, profile=NULL_DEVICE)
    assert index.partition.num_shards == 4


def test_runner_topology_validation_and_per_shard_stats():
    keys = random_sorted_keys(200, seed=9, key_space=10**6)
    index = make_sharded("btree", 2, sample_keys=keys, replicas=2,
                         durability=True)
    index.bulk_load(items_of(keys))
    ops = [("lookup", keys[0]), ("lookup", keys[-1]),
           ("insert", 10**6 + 1), ("scan", keys[0])]
    with pytest.raises(ValueError):
        run_workload(index, ops, shards=3)
    with pytest.raises(ValueError):
        run_workload(index, ops, replicas=1)
    result = run_workload(index, ops, workload="t", shards=2, replicas=2)
    assert result.shards == 2 and result.replicas == 2
    assert sorted(result.per_shard) == [0, 1]
    total_ops = sum(sum(d["ops"].values()) for d in result.per_shard.values())
    assert total_ops == len(ops)
    assert result.per_shard[1]["log_records"] == 1
    assert result.per_shard[1]["shipped_records"] == 1
    assert result.log_records == 1
    # An unsharded index reports the 1/1 topology.
    from repro.storage import BlockDevice, Pager
    from repro.core import make_index
    flat = make_index("btree", Pager(BlockDevice(4096, NULL_DEVICE)))
    flat.bulk_load(items_of(keys))
    r = run_workload(flat, [("lookup", keys[0])], shards=1, replicas=1)
    assert r.shards == 1 and r.replicas == 1 and r.per_shard == {}


def test_serving_engine_over_the_tier():
    keys = random_sorted_keys(400, seed=10, key_space=10**6)
    index = make_sharded("btree", 3, sample_keys=keys, durability=True,
                         replicas=2)
    index.bulk_load(items_of(keys))
    ops = []
    for i in range(120):
        if i % 5 == 0:
            ops.append(("insert", 10**6 + 1 + 2 * i))
        else:
            ops.append(("lookup", keys[(7 * i) % len(keys)]))
    result = run_workload(index, ops, workload="serve", clients=4,
                          validate=True)
    assert result.num_ops == 120
    assert result.clients == 4
    assert result.committed_writes == 24
    assert result.snapshot_reads > 0
    assert result.shards == 3 and result.replicas == 2
    assert sum(sum(d["ops"].values()) for d in result.per_shard.values()) == 120
    index.verify()


# -- facade edge paths -------------------------------------------------------


def test_pager_facade_surfaces_and_latch_charge():
    # Default (HDD) profile and enough keys for multi-level shard trees:
    # reads must actually charge for the phase-accounting assertion below.
    keys = random_sorted_keys(4000, seed=71, key_space=10**7)
    index = make_sharded_index("btree", 2, sample_keys=keys,
                               durability=True, replicas=2,
                               buffer_blocks=4, write_back=True)
    index.bulk_load(items_of(keys))
    assert index.pager.device is index.device
    assert index.pager.block_size == index.device.block_size
    assert index.pager.stats.reads == index.device.stats.reads
    with pytest.raises(ValueError):
        index.pager.flush(file_name="leaf")
    # batch/phase scopes span every member pager.
    with index.pager.batch():
        assert index.lookup_many(keys[:8]) == [k + 1 for k in keys[:8]]
    # The facade's phase scope spans every member pager (an op's own
    # inner phase, e.g. lookup's "search", still wins while active).
    before = index.device.stats.reads
    with index.pager.phase("maintenance"):
        # Scatter wider than the 4-frame member pools to force misses.
        index.lookup_many(keys[::50])
    assert index.device.stats.reads > before
    # The latch charge lands on one canonical device but shows in the sum.
    index.device.charge_latch_wait(4.0)
    assert index.device.stats.latch_waits == 1
    assert index.device.stats.latch_wait_us == 4.0
    # Durable insert + tier flush exercises flushed_blocks on the facade.
    index.durable_insert(10**7 + 3, 1)
    assert index.flush() > 0
    assert index.pager.flushed_blocks > 0
    assert index.wal.log_blocks > 0


def test_tier_optional_hooks_and_free_io():
    keys = random_sorted_keys(200, seed=72, key_space=10**6)
    index = make_sharded(["btree", "alex"], sample_keys=keys,
                         buffer_blocks=8)
    index.bulk_load(items_of(keys))
    assert index.height() >= 1
    assert index.pager.buffer_pool is not None
    assert index.pager.buffer_pool.dirty_evictions == 0
    index.set_inner_memory_resident(True)
    before = index.device.stats.snapshot()
    with index._free_io():
        assert index.lookup_many(keys[:16]) == [k + 1 for k in keys[:16]]
    assert index.device.stats.diff(before).reads == 0
    index.set_inner_memory_resident(False)


def test_fanout_wal_crash_surface_and_mixed_durability():
    keys = random_sorted_keys(200, seed=73, key_space=10**6)
    index = make_sharded("btree", 2, sample_keys=keys, durability=True)
    index.bulk_load(items_of(keys))
    index.durable_insert(10**6 + 1, 1)
    index.durable_insert(1, 2)
    index.wal.flush()
    assert index.wal.tear_tail_block()
    # A shard stripped of durability refuses the tier-level append.
    index.shards[0].durability = False
    index.shards[0].wal = None
    with pytest.raises(RuntimeError):
        index.wal.append("insert", 1, 3)


def test_tier_and_router_validate_shard_count():
    from repro.sharding import Router, ShardedIndex
    keys = random_sorted_keys(100, seed=74, key_space=10**6)
    index = make_sharded("btree", 2, sample_keys=keys)
    with pytest.raises(ValueError):
        ShardedIndex(index.shards[:1], index.partition)
    with pytest.raises(ValueError):
        Router(index.partition, index.shards[:1])


def test_per_shard_delta_counts_reseeded_replicas_whole():
    keys = random_sorted_keys(200, seed=75, key_space=10**6)
    index = make_sharded("btree", 2, sample_keys=keys, replicas=2)
    index.bulk_load(items_of(keys))
    snap = index.per_shard_snapshot()
    # Pretend the snapshot predates the second member (a replica
    # re-seeded after recovery): its full stats are its own delta.
    # Snapshots key by member identity, so dropping the entry is
    # exactly what a swapped-in fresh member looks like.
    replaced = index.shards[0].replicas[0]
    del snap[0]["stats"][id(replaced)]
    del snap[0]["reads_served"][id(replaced)]
    index.lookup_many(keys[:10])
    delta = index.per_shard_delta(snap)
    assert len(delta[0]["reads_served"]) == 2
    assert delta[0]["reads"] >= 0


# -- partition and shard edge paths ------------------------------------------


def test_partition_edge_validation():
    keys = list(range(0, 1000, 10))
    with pytest.raises(ValueError):
        RangePartition.from_keys(keys, 0)
    assert RangePartition.from_keys(keys, 1).boundaries == []
    with pytest.raises(ValueError):
        RangePartition.from_keys([7] * 8, 4)  # clustered sample
    p = RangePartition([500])
    with pytest.raises(ValueError):
        p.shard_of(-1)
    with pytest.raises(ValueError):
        p.shard_of(KEYSPACE_END)
    with pytest.raises(IndexError):
        p.range_of(2)
    assert p.split_range(10, 5) == []
    assert "RangePartition" in repr(p)


def test_shard_member_iterators_and_dump():
    keys = random_sorted_keys(100, seed=76, key_space=10**6)
    index = make_sharded("btree", 2, sample_keys=keys, replicas=2,
                         durability=True)
    index.bulk_load(items_of(keys))
    shard = index.shards[0]
    assert len(list(shard.devices())) == shard.replication_factor
    assert len(list(shard.pagers())) == shard.replication_factor
    lo, hi = index.partition.range_of(0)
    assert shard.primary.dump() == [(k, k + 1) for k in keys if lo <= k < hi]
    with pytest.raises(ValueError):
        shard.apply("upsert", 1, 2)
    shard.append_log("insert", keys[0], 9)
    assert shard.flush() >= 0
    assert shard.wal.pending == 0


def test_shard_verify_rejects_divergence_and_strays():
    keys = random_sorted_keys(100, seed=77, key_space=10**6)
    index = make_sharded("btree", 2, sample_keys=keys, replicas=2)
    index.bulk_load(items_of(keys))
    boundary = index.partition.boundaries[0]
    # A key outside the shard's range fails the ownership check.
    index.shards[0].primary.index.insert(boundary + 5, 1)
    with pytest.raises(AssertionError):
        index.shards[0].verify(key_range=index.partition.range_of(0))
    # A primary-only write (no shipping) fails replica agreement.
    index.shards[1].primary.index.insert(boundary + 7, 1)
    with pytest.raises(AssertionError):
        index.shards[1].verify()


def test_tuner_scores_empty_mix_by_lookup_cost():
    scores = ShardTuner().score({})
    assert scores["hybrid-alex"] == float("inf")
    assert scores["btree"] == COST_TABLE["btree"]["lookup"]
    choice = ShardTuner().choose({})
    assert choice != "hybrid-alex"
