"""Property tests for the internal merge helpers of PGM and FITing-tree."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fiting import _merge_sorted
from repro.core.interface import TOMBSTONE
from repro.core.pgm import _merge_runs

sorted_run = st.lists(
    st.tuples(st.integers(0, 200), st.integers(0, 10**6)), max_size=40
).map(lambda items: sorted({k: v for k, v in items}.items()))

# Like sorted_run but some payloads are tombstones, to exercise the
# FITing merge's live-data-wins / tombstone-yields tie rule.
sorted_run_with_tombstones = st.lists(
    st.tuples(st.integers(0, 200),
              st.one_of(st.just(TOMBSTONE), st.integers(0, 10**6))),
    max_size=40,
).map(lambda items: sorted({k: v for k, v in items}.items()))


@settings(max_examples=200, deadline=None)
@given(st.lists(sorted_run, min_size=1, max_size=5))
def test_merge_runs_newest_wins(runs):
    merged = _merge_runs([list(run) for run in runs])
    keys = [k for k, _ in merged]
    assert keys == sorted(set(keys))
    expected = {}
    for run in reversed(runs):       # earlier runs shadow later ones
        expected.update(dict(run))
    assert dict(merged) == expected


@settings(max_examples=200, deadline=None)
@given(sorted_run_with_tombstones, sorted_run_with_tombstones)
def test_fiting_merge_live_data_wins_ties(data_run, buffer_run):
    """On equal keys the merge keeps the live data-region entry — the
    copy lookups serve — and only a tombstoned data entry yields to the
    delta buffer (a buffered re-insert after a delete)."""
    merged = _merge_sorted(list(data_run), list(buffer_run))
    keys = [k for k, _ in merged]
    assert keys == sorted(set(keys))
    expected = dict(buffer_run)
    expected.update({k: v for k, v in data_run if v != TOMBSTONE})
    for k, v in data_run:
        expected.setdefault(k, v)
    assert dict(merged) == expected
