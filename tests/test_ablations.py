"""Tests for the ablation experiments and extension features."""

import pytest

from repro.bench import Scale, run_experiment, experiment_ids
from repro.core import FitingTreeIndex
from repro.storage import NULL_DEVICE, BlockDevice, Pager

from tests.util import items_of, random_sorted_keys

TINY = Scale(n_read=6000, n_write_bulk=1500, n_write_ops=600,
             n_lookup_ops=80, n_scan_ops=15)


def test_ablations_registered():
    ids = set(experiment_ids())
    assert {"ablation-alex-layout", "ablation-fiting-segmentation",
            "ablation-error-bound", "scalability"} <= ids


def test_fiting_greedy_segmentation_option():
    keys = random_sorted_keys(15_000, seed=3)
    counts = {}
    for segmentation in ("streaming", "greedy"):
        index = FitingTreeIndex(Pager(BlockDevice(4096, NULL_DEVICE)),
                                segmentation=segmentation)
        index.bulk_load(items_of(keys))
        counts[segmentation] = index.num_segments
        assert index.lookup(keys[100]) == keys[100] + 1
    assert counts["streaming"] <= counts["greedy"]


def test_fiting_rejects_unknown_segmentation():
    with pytest.raises(ValueError):
        FitingTreeIndex(Pager(BlockDevice(4096, NULL_DEVICE)), segmentation="magic")


def test_alex_layout_ablation_rows():
    result = run_experiment("ablation-alex-layout", TINY)
    assert len(result.rows) == 3
    for row in result.rows:
        assert row["layout2_blocks"] <= row["layout1_blocks"] + 0.05


def test_fiting_segmentation_ablation_rows():
    result = run_experiment("ablation-fiting-segmentation", TINY)
    for row in result.rows:
        assert row["streaming_segments"] <= row["greedy_segments"]


def test_error_bound_ablation_rows():
    result = run_experiment("ablation-error-bound", TINY,)
    assert {row["index"] for row in result.rows} == {"fiting", "pgm"}
    for row in result.rows:
        assert row["eps1024"] >= row["eps64"] - 0.1


def test_scalability_rows():
    result = run_experiment("scalability", TINY)
    for row in result.rows:
        assert row["4x_blocks"] <= row["1x_blocks"] + 3.0
