"""PLID-specific tests: the paper's design principles P1-P5, instantiated."""

import random

import pytest

from repro.core import make_index
from repro.core.plid import PlidIndex
from repro.storage import HDD, NULL_DEVICE, BlockDevice, Pager

from tests.util import items_of, random_sorted_keys

KEYS = random_sorted_keys(30_000, seed=21)


def fresh(**kwargs):
    device = BlockDevice(4096, NULL_DEVICE)
    return PlidIndex(Pager(device), **kwargs), device


def loaded(**kwargs):
    index, device = fresh(**kwargs)
    index.bulk_load(items_of(KEYS))
    return index, device


def test_parameter_validation():
    with pytest.raises(ValueError):
        fresh(error_bound=0)
    with pytest.raises(ValueError):
        fresh(leaf_fill=0.01)
    with pytest.raises(ValueError):
        fresh(split_buffer_capacity=0)


def test_registered_in_registry():
    index = make_index("plid", Pager(BlockDevice(4096, NULL_DEVICE)))
    assert isinstance(index, PlidIndex)


def test_p1_lookup_cost_at_most_btree():
    """P1: with the root model in the meta block, a lookup is at most
    1 segment block + 1 directory block + 1 leaf block."""
    device = BlockDevice(4096, HDD)
    pager = Pager(device)
    index = PlidIndex(pager)
    index.bulk_load(items_of(KEYS))
    costs = []
    for key in random.Random(1).sample(KEYS, 100):
        pager.drop_last_block()
        before = device.stats.reads
        assert index.lookup(key) == key + 1
        costs.append(device.stats.reads - before)
    assert max(costs) <= 3
    assert sum(costs) / len(costs) <= 3.0


def test_p2_insert_writes_no_statistics():
    """P2: a non-splitting insert is exactly one leaf write after the
    search — no header updates, no statistics maintenance."""
    device = BlockDevice(4096, HDD)
    index = PlidIndex(Pager(device))
    index.bulk_load(items_of(KEYS))
    key = KEYS[500] + 1
    assert key not in set(KEYS)
    before = device.stats.snapshot()
    index.insert(key, key + 1)
    delta = device.stats.diff(before)
    assert delta.writes == 1
    assert delta.writes_by_phase.get("maintenance", 0) == 0


def test_p2_split_is_one_buffer_append():
    index, device = fresh(leaf_fill=1.0)  # full leaves: first insert splits
    index.bulk_load(items_of(KEYS))
    before_splits = index.num_splits
    key = KEYS[500] + 1
    index.insert(key, key + 1)
    assert index.num_splits == before_splits + 1
    assert index.split_buffer_count == 1
    # Everything still findable across the split boundary.
    for probe in KEYS[495:505]:
        assert index.lookup(probe) == probe + 1
    assert index.lookup(key) == key + 1


def test_directory_rebuild_trigger():
    index, _ = fresh(leaf_fill=1.0, split_buffer_capacity=4)
    index.bulk_load(items_of(KEYS))
    present = set(KEYS)
    rng = random.Random(2)
    while index.num_rebuilds == 0:
        key = rng.randrange(10**12)
        if key in present:
            continue
        present.add(key)
        index.insert(key, key + 1)
    assert index.split_buffer_count < 4
    assert index.verify() == len(present)
    for key in rng.sample(sorted(present), 300):
        assert index.lookup(key) == key + 1


def test_p3_physical_delete():
    index, _ = loaded()
    assert index.delete(KEYS[10])
    assert index.num_records == len(KEYS) - 1
    assert index.verify() == len(KEYS) - 1  # physically gone, not a tombstone


def test_p3_scan_cost_is_dense():
    """P3: scanning z items costs about z/B leaf blocks, like the B+-tree."""
    device = BlockDevice(4096, HDD)
    pager = Pager(device)
    index = PlidIndex(pager)
    index.bulk_load(items_of(KEYS))
    pager.drop_last_block()
    before = device.stats.reads
    result = index.scan(KEYS[1000], 400)
    assert len(result) == 400
    # 400 items / 204 per leaf = 2-3 leaf blocks + <=2 directory blocks.
    assert device.stats.reads - before <= 6


def test_p4_hardness_independence():
    """P4/P1: the directory hides dataset hardness — lookup cost on the
    hardest dataset equals the easiest within one block."""
    from repro.datasets import make_dataset
    costs = {}
    for dataset in ("ycsb", "fb", "osm"):
        device = BlockDevice(4096, HDD)
        pager = Pager(device)
        index = PlidIndex(pager)
        keys = [int(k) for k in make_dataset(dataset, 30_000)]
        index.bulk_load(items_of(keys))
        reads = 0
        for key in random.Random(3).sample(keys, 100):
            pager.drop_last_block()
            before = device.stats.reads
            index.lookup(key)
            reads += device.stats.reads - before
        costs[dataset] = reads / 100
    assert max(costs.values()) - min(costs.values()) <= 1.0


def test_p5_memory_resident_inner_single_block_lookup():
    device = BlockDevice(4096, HDD)
    pager = Pager(device)
    index = PlidIndex(pager)
    index.bulk_load(items_of(KEYS))
    index.set_inner_memory_resident(True)
    pager.drop_last_block()
    before = device.stats.reads
    index.lookup(KEYS[123])
    assert device.stats.reads - before == 1  # just the leaf


def test_insert_beyond_global_max_routes_to_last_leaf():
    index, _ = loaded()
    big = KEYS[-1] + 10**6
    index.insert(big, 1)
    assert index.lookup(big) == 1
    assert index.scan(KEYS[-1], 3) == [(KEYS[-1], KEYS[-1] + 1), (big, 1)]
    assert index.verify() == len(KEYS) + 1


def test_file_roles_and_height():
    index, _ = loaded()
    roles = index.file_roles()
    assert set(roles.values()) == {"inner", "leaf"}
    assert index.height() == 3
