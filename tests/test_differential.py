"""Differential correctness harness over every registered index.

Seeded random operation streams (insert/update/delete/lookup/scan/
range-scan) run against each index and the sorted-dict oracle of
:mod:`tests.util` in lockstep; every step must agree, and a final
full-content sweep must agree.  The mutation streams cover the six
mutable indexes; the hybrid designs are read-only by construction, so
they get lookup/scan streams (and a check that mutation raises).
"""

import pytest

from repro.core import index_names, make_index
from repro.storage import NULL_DEVICE, BlockDevice, Pager

from tests.util import (
    READONLY_KINDS,
    ReferenceModel,
    check_full_agreement,
    items_of,
    random_sorted_keys,
    run_differential,
)

MUTABLE_INDEXES = index_names(include_plid=True)
HYBRID_INDEXES = [n for n in index_names(include_hybrids=True) if "-" in n]
SEEDS = (101, 202)


def loaded(name, keys):
    index = make_index(name, Pager(BlockDevice(4096, NULL_DEVICE)))
    index.bulk_load(items_of(keys))
    return index


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("name", MUTABLE_INDEXES)
def test_mutation_stream_matches_oracle(name, seed):
    keys = random_sorted_keys(600, seed=seed, key_space=10**9)
    index = loaded(name, keys)
    model = ReferenceModel(items_of(keys))
    counts = run_differential(index, model, num_ops=500, seed=seed)
    # The stream really exercised every operation kind.
    assert all(counts[kind] > 0 for kind in
               ("insert", "update", "delete", "lookup", "scan", "scan_range"))


@pytest.mark.parametrize("name", MUTABLE_INDEXES)
def test_mutation_stream_from_empty(name):
    """The same harness starting from an empty bulk load, forcing every
    index to grow its structure mid-stream."""
    index = make_index(name, Pager(BlockDevice(4096, NULL_DEVICE)))
    index.bulk_load([])
    model = ReferenceModel()
    run_differential(index, model, num_ops=400, seed=7,
                     kinds=("insert", "insert", "insert", "update", "delete",
                            "lookup", "scan", "scan_range"))
    assert len(model) > 0


@pytest.mark.parametrize("name", MUTABLE_INDEXES)
def test_delete_heavy_stream(name):
    """Skew the mix toward deletes so scans constantly cross tombstones
    (or whatever removal mechanism the index uses)."""
    keys = random_sorted_keys(500, seed=31, key_space=10**9)
    index = loaded(name, keys)
    model = ReferenceModel(items_of(keys))
    run_differential(index, model, num_ops=400, seed=31,
                     kinds=("delete", "delete", "delete", "insert", "lookup",
                            "scan", "scan_range"))
    assert len(model) < 500  # net deletion actually happened


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("name", HYBRID_INDEXES)
def test_readonly_stream_matches_oracle(name, seed):
    keys = random_sorted_keys(600, seed=seed, key_space=10**9)
    index = loaded(name, keys)
    model = ReferenceModel(items_of(keys))
    run_differential(index, model, num_ops=300, seed=seed,
                     kinds=READONLY_KINDS)


@pytest.mark.parametrize("name", HYBRID_INDEXES)
def test_hybrids_reject_mutation(name):
    index = loaded(name, random_sorted_keys(50, seed=3))
    with pytest.raises(NotImplementedError):
        index.insert(1, 2)


def test_reference_model_is_a_sorted_dict():
    """Sanity-check the oracle itself against plain dict/sorted logic."""
    model = ReferenceModel([(5, 50), (1, 10), (9, 90)])
    assert model.keys() == [1, 5, 9]
    assert model.lookup(5) == 50 and model.lookup(2) is None
    with pytest.raises(KeyError):
        model.insert(5, 0)
    assert model.update(5, 55) and not model.update(2, 0)
    assert model.delete(5) and not model.delete(5)
    model.insert(5, 51)  # re-insert after delete
    assert model.scan(2, 2) == [(5, 51), (9, 90)]
    assert model.scan_range(1, 5) == [(1, 10), (5, 51)]
    assert model.scan_range(9, 1) == []
    assert len(model) == 3 and 9 in model
    check_full_agreement(model, model)  # the oracle agrees with itself
