"""Tests for the EXPERIMENTS.md generator and dataset overrides."""

import os

import pytest

from repro.bench.experiments import _reported_datasets
from repro.bench.experiments_doc import PAPER_EXPECTATIONS, render_experiments_md


def test_every_experiment_has_an_expectation_entry():
    from repro.bench import experiment_ids
    missing = set(experiment_ids()) - set(PAPER_EXPECTATIONS)
    assert not missing, f"experiments without EXPERIMENTS.md entries: {missing}"


def test_render_without_results(tmp_path):
    text = render_experiments_md(str(tmp_path))
    assert "# EXPERIMENTS" in text
    assert "Table 3" in text
    assert "(no archived result yet" in text


def test_render_embeds_archived_tables(tmp_path):
    (tmp_path / "table3.txt").write_text("Table 3: dataset profiling\nROWDATA")
    text = render_experiments_md(str(tmp_path))
    assert "ROWDATA" in text
    assert "<details>" in text


def test_dataset_override_env(monkeypatch):
    monkeypatch.delenv("REPRO_DATASETS", raising=False)
    assert _reported_datasets() == ("fb", "osm", "ycsb")
    monkeypatch.setenv("REPRO_DATASETS", "ycsb, stack")
    assert _reported_datasets() == ("ycsb", "stack")
    monkeypatch.setenv("REPRO_DATASETS", "all")
    assert len(_reported_datasets()) == 10
