"""Shared helpers for the test suite (fixtures live in conftest.py)."""

from __future__ import annotations

import random

from repro.storage import HDD, BlockDevice, BufferPool, Pager


def make_pager(block_size: int = 4096, buffer_blocks: int = 0) -> Pager:
    pool = BufferPool(buffer_blocks) if buffer_blocks else None
    return Pager(BlockDevice(block_size=block_size, profile=HDD), buffer_pool=pool)


def random_sorted_keys(n: int, seed: int = 0, key_space: int = 10**12) -> list:
    rng = random.Random(seed)
    return sorted(rng.sample(range(key_space), n))


def items_of(keys) -> list:
    return [(k, k + 1) for k in keys]
