"""Shared helpers for the test suite (fixtures live in conftest.py).

Besides the small factories, this module holds the *differential
correctness harness*: a sorted-dict :class:`ReferenceModel` that states
the ordered-map semantics every index must implement, and
:func:`run_differential`, which drives a seeded random operation stream
against an index and the model in lockstep, asserting agreement after
every step.
"""

from __future__ import annotations

import random
from bisect import bisect_left, bisect_right

from repro.storage import HDD, BlockDevice, BufferPool, Pager


def make_pager(block_size: int = 4096, buffer_blocks: int = 0) -> Pager:
    pool = BufferPool(buffer_blocks) if buffer_blocks else None
    return Pager(BlockDevice(block_size=block_size, profile=HDD), buffer_pool=pool)


def make_sharded(index_names, shards=None, **kwargs):
    """A :class:`repro.sharding.ShardedIndex` on free-I/O devices, so
    correctness tests pay no simulated latency.  Accepts everything
    :func:`repro.core.make_sharded_index` does."""
    from repro.core import make_sharded_index
    from repro.storage import NULL_DEVICE
    kwargs.setdefault("profile", NULL_DEVICE)
    return make_sharded_index(index_names, shards, **kwargs)


def random_sorted_keys(n: int, seed: int = 0, key_space: int = 10**12) -> list:
    rng = random.Random(seed)
    return sorted(rng.sample(range(key_space), n))


def items_of(keys) -> list:
    return [(k, k + 1) for k in keys]


class ReferenceModel:
    """The oracle: a sorted dict with the DiskIndex ordered-map contract.

    Keeps a sorted key list beside the dict so scans are O(log n + k) and
    the expected answers are unambiguous — whatever the index's internal
    structure (tombstones, LSM runs, delta buffers), its observable
    behaviour must match this.
    """

    def __init__(self, items=()):
        self._data = {}
        self._keys = []
        for key, payload in items:
            self._data[key] = payload
            self._keys.append(key)
        self._keys.sort()

    def __len__(self):
        return len(self._data)

    def __contains__(self, key):
        return key in self._data

    def lookup(self, key):
        return self._data.get(key)

    def insert(self, key, payload):
        if key in self._data:
            raise KeyError(key)
        self._data[key] = payload
        self._keys.insert(bisect_left(self._keys, key), key)

    def update(self, key, payload):
        if key not in self._data:
            return False
        self._data[key] = payload
        return True

    def delete(self, key):
        if key not in self._data:
            return False
        del self._data[key]
        self._keys.pop(bisect_left(self._keys, key))
        return True

    def scan(self, start_key, count):
        i = bisect_left(self._keys, start_key)
        return [(k, self._data[k]) for k in self._keys[i : i + count]]

    def scan_range(self, low, high):
        i, j = bisect_left(self._keys, low), bisect_right(self._keys, high)
        return [(k, self._data[k]) for k in self._keys[i:j]]

    def keys(self):
        return list(self._keys)

    def items(self):
        return [(k, self._data[k]) for k in self._keys]


#: Default mix for mutation streams: read-heavy enough to observe the
#: effects of every structural modification soon after it happens.
MUTATION_KINDS = ("insert", "insert", "update", "delete", "lookup", "lookup",
                  "scan", "scan_range", "lookup_many")
READONLY_KINDS = ("lookup", "lookup", "scan", "scan_range", "lookup_many")


def _pick_key(rng, model, key_space, prefer_existing):
    """An existing key with probability ``prefer_existing``, else random."""
    if model.keys() and rng.random() < prefer_existing:
        return rng.choice(model.keys())
    return rng.randrange(key_space)


def run_differential(index, model, num_ops, seed, kinds=MUTATION_KINDS,
                     key_space=10**9, scan_count=7, payload_of=None):
    """Drive ``num_ops`` random operations against index and oracle.

    Each step applies the same operation to both and asserts identical
    results; a final full-content sweep catches anything the interleaved
    probes missed.  Inserts always pick keys absent from the model (the
    duplicate-insert contract differs per index — PGM and FITing shadow —
    and is covered by dedicated tests), and deleted keys become fresh
    again, so re-insert-after-delete is exercised naturally.
    """
    rng = random.Random(seed)
    payload_of = payload_of or (lambda key, i: key % 1000 + i)
    counts = {kind: 0 for kind in set(kinds)}
    for i in range(num_ops):
        kind = kinds[rng.randrange(len(kinds))]
        counts[kind] += 1
        if kind == "insert":
            key = rng.randrange(key_space)
            while key in model:
                key = rng.randrange(key_space)
            payload = payload_of(key, i)
            model.insert(key, payload)
            index.insert(key, payload)
        elif kind == "update":
            key = _pick_key(rng, model, key_space, prefer_existing=0.7)
            payload = payload_of(key, i)
            expected = model.update(key, payload)
            assert index.update(key, payload) == expected, (i, kind, key)
        elif kind == "delete":
            key = _pick_key(rng, model, key_space, prefer_existing=0.7)
            expected = model.delete(key)
            assert index.delete(key) == expected, (i, kind, key)
        elif kind == "lookup":
            key = _pick_key(rng, model, key_space, prefer_existing=0.5)
            assert index.lookup(key) == model.lookup(key), (i, kind, key)
        elif kind == "scan":
            key = _pick_key(rng, model, key_space, prefer_existing=0.5)
            assert index.scan(key, scan_count) == model.scan(key, scan_count), \
                (i, kind, key)
        elif kind == "scan_range":
            a = rng.randrange(key_space)
            b = rng.randrange(key_space)
            low, high = min(a, b), max(a, b)
            assert index.scan_range(low, high) == model.scan_range(low, high), \
                (i, kind, low, high)
        elif kind == "lookup_many":
            # A batch with hits, misses, and duplicate keys: the batched
            # path must answer position-for-position like per-key lookups
            # (and, on a sharded tier, survive boundary-straddling splits).
            batch = [_pick_key(rng, model, key_space, prefer_existing=0.5)
                     for _ in range(rng.randrange(1, 9))]
            if len(batch) > 2:
                batch[rng.randrange(len(batch))] = batch[0]
            expected = [model.lookup(k) for k in batch]
            assert index.lookup_many(batch) == expected, (i, kind, batch)
        else:  # pragma: no cover - guards against stream-mix typos
            raise ValueError(f"unknown op kind {kind!r}")
    check_full_agreement(index, model)
    return counts


def check_full_agreement(index, model, probe_misses=25, seed=1234,
                         key_space=10**9):
    """The index and the oracle agree on every live key and on absences."""
    for key, payload in model.items():
        assert index.lookup(key) == payload, key
    rng = random.Random(seed)
    for _ in range(probe_misses):
        key = rng.randrange(key_space)
        if key not in model:
            assert index.lookup(key) is None, key
    if model.keys():
        first = model.keys()[0]
        assert index.scan(first, len(model)) == model.items()
