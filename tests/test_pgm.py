"""PGM-specific tests: static components, LSM merging, file deletion."""

import random

import pytest

from repro.core.pgm import PgmIndex, StaticPgm
from repro.storage import NULL_DEVICE, BlockDevice, Pager

from tests.util import items_of, random_sorted_keys


def fresh(**kwargs):
    device = BlockDevice(4096, NULL_DEVICE)
    return PgmIndex(Pager(device), **kwargs), device


# -- static component -------------------------------------------------------

def test_static_component_lookup():
    device = BlockDevice(4096, NULL_DEVICE)
    keys = random_sorted_keys(20_000, seed=1)
    component = StaticPgm(Pager(device), "c", items_of(keys))
    for key in random.Random(2).sample(keys, 300):
        assert component.lookup(key) == key + 1
    assert component.lookup(keys[0] + 1) is None


def test_static_component_rejects_empty():
    device = BlockDevice(4096, NULL_DEVICE)
    with pytest.raises(ValueError):
        StaticPgm(Pager(device), "c", [])


def test_static_component_range_shortcut():
    device = BlockDevice(4096)
    pager = Pager(device)
    keys = random_sorted_keys(10_000, seed=3)
    component = StaticPgm(pager, "c", items_of(keys))
    before = device.stats.reads
    assert component.lookup(keys[0] - 1) is None
    assert component.lookup(keys[-1] + 1) is None
    assert device.stats.reads == before  # min/max meta avoids any I/O


def test_static_ceiling_position():
    device = BlockDevice(4096, NULL_DEVICE)
    keys = list(range(0, 1000, 10))
    component = StaticPgm(Pager(device), "c", items_of(keys))
    assert component.ceiling_position(0) == 0
    assert component.ceiling_position(5) == 1
    assert component.ceiling_position(990) == 99
    assert component.ceiling_position(991) == 100  # past the end


def test_static_iterate_from():
    device = BlockDevice(4096, NULL_DEVICE)
    keys = random_sorted_keys(5000, seed=4)
    component = StaticPgm(Pager(device), "c", items_of(keys))
    run = list(component.iterate_from(1000))[:200]
    assert run == items_of(keys)[1000:1200]


def test_static_destroy_deletes_files():
    device = BlockDevice(4096, NULL_DEVICE)
    pager = Pager(device)
    component = StaticPgm(pager, "c", items_of(random_sorted_keys(5000, seed=5)))
    assert "c.data" in device.files
    component.destroy()
    assert "c.data" not in device.files
    assert "c.levels" not in device.files


def test_static_multi_level_structure():
    device = BlockDevice(4096, NULL_DEVICE)
    rng = random.Random(6)
    keys = sorted(rng.sample(range(10**14), 80_000))
    component = StaticPgm(Pager(device), "c", items_of(keys), epsilon=8)
    assert component.num_levels >= 3  # data + at least one descriptor level + root


# -- dynamic LSM index ---------------------------------------------------------

def test_parameter_validation():
    with pytest.raises(ValueError):
        fresh(buffer_capacity=0)
    with pytest.raises(ValueError):
        fresh(level_ratio=1)


def test_inserts_fill_buffer_then_merge():
    index, _ = fresh(buffer_capacity=32)
    index.bulk_load(items_of(list(range(0, 10_000, 10))))
    for key in range(1, 321, 10):
        index.insert(key, key + 1)
    assert index.num_merges >= 1
    assert index.buffer_count < 32
    for key in range(1, 321, 10):
        assert index.lookup(key) == key + 1


def test_merge_deletes_component_files():
    index, device = fresh(buffer_capacity=16)
    index.bulk_load(items_of(list(range(0, 1000, 10))))
    files_before = set(device.files)
    for key in range(1, 1000, 6):
        index.insert(key, key + 1)
    # Merged component files are gone; storage was reclaimed.
    assert device.stats.freed_blocks > 0
    assert index.num_merges >= 2


def test_component_sizes_respect_level_capacities():
    index, _ = fresh(buffer_capacity=16, level_ratio=2)
    index.bulk_load(items_of(list(range(0, 5000, 10))))
    rng = random.Random(7)
    present = set(range(0, 5000, 10))
    for _ in range(700):
        key = rng.randrange(100_000)
        if key in present:
            continue
        present.add(key)
        index.insert(key, key + 1)
    for level, component in enumerate(index.components):
        if component is not None:
            assert component.count <= index._level_capacity(level)


def test_lookup_searches_newest_component_first():
    index, _ = fresh(buffer_capacity=4)
    index.bulk_load(items_of([10, 20, 30, 40, 50]))
    # Shadow key 30 through the buffer; after this the newest value must win
    # even once merges move it into components.
    index.insert(31, 0)
    index.insert(29, 0)
    index.insert(30, 999)
    for _ in range(20):
        key = 1000 + _
        index.insert(key, key + 1)
    assert index.lookup(30) == 999


def test_scan_merges_buffer_and_components():
    index, _ = fresh(buffer_capacity=64)
    base = list(range(0, 1000, 10))
    index.bulk_load(items_of(base))
    extra = list(range(5, 300, 10))
    for key in extra:
        index.insert(key, key + 1)
    merged = sorted(base + extra)
    assert index.scan(0, 40) == [(k, k + 1) for k in merged[:40]]


def test_bulk_load_places_component_at_right_level():
    index, _ = fresh(buffer_capacity=16, level_ratio=2)
    index.bulk_load(items_of(list(range(1000))))
    level = next(i for i, c in enumerate(index.components) if c is not None)
    assert index._level_capacity(level) >= 1000
    assert level == 0 or index._level_capacity(level - 1) < 1000


def test_empty_bulk_load_allows_inserts():
    index, _ = fresh(buffer_capacity=8)
    index.bulk_load([])
    for key in range(30):
        index.insert(key * 7, key * 7 + 1)
    for key in range(30):
        assert index.lookup(key * 7) == key * 7 + 1


def test_levels_memory_residency_applies_to_future_components():
    index, device = fresh(buffer_capacity=8)
    index.bulk_load(items_of(list(range(0, 500, 5))))
    index.set_inner_memory_resident(True)
    for key in range(1, 200, 5):
        index.insert(key, key + 1)
    for component in index.components:
        if component is not None:
            assert component.levels_file.memory_resident
