"""Tests for the table/chart renderers."""

from repro.bench import ExperimentResult, format_chart, format_result, format_table


def test_format_table_missing_cells():
    text = format_table([{"a": 1}, {"b": 2}], ["a", "b"])
    lines = text.splitlines()
    assert len(lines) == 4
    assert "a" in lines[0] and "b" in lines[0]


def test_format_chart_bars_scale_to_peak():
    rows = [{"name": "x", "v": 10}, {"name": "y", "v": 5}, {"name": "z", "v": 0}]
    text = format_chart(rows, ["name"], "v", width=10)
    lines = text.splitlines()
    assert "peak 10" in lines[0]
    assert lines[1].count("#") == 10
    assert lines[2].count("#") == 5
    assert lines[3].count("#") == 0


def test_format_chart_empty():
    assert format_chart([], ["name"], "v") == "(no rows)"


def test_format_result_includes_notes():
    result = ExperimentResult("x", "Title X", rows=[{"a": 1}], notes="careful")
    text = format_result(result)
    assert "Title X" in text
    assert "careful" in text
