"""Write-back buffer pool: device ``write_blocks``, per-frame dirty bits,
the pager's buffered write path and its three flush points (dirty
eviction, explicit flush, checkpoint), WAL log-before-data ordering, and
crash recovery with dropped dirty pages."""

import io
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.__main__ import main as bench_main
from repro.bench.config import default_scale, fresh_index, set_write_back
from repro.core import load_index, make_index, save_index
from repro.durability import (
    FaultInjector,
    WriteAheadLog,
    recover,
    take_checkpoint,
)
from repro.storage import HDD, NULL_DEVICE, BlockDevice, Pager
from repro.storage.buffer_pool import make_buffer_pool
from repro.workloads import run_workload

BS = 4096
POLICIES = ("lru", "fifo", "clock")


def _payload(i):
    return bytes([i % 256]) * BS


def _loaded(num_blocks=16, profile=HDD):
    device = BlockDevice(block_size=BS, profile=profile)
    f = device.create_file("f")
    f.allocate(num_blocks)
    return device, f


def _wb_pager(device, capacity=8, policy="lru", flush_watermark=None):
    pool = make_buffer_pool(capacity, policy)
    return Pager(device, buffer_pool=pool, write_back=True,
                 flush_watermark=flush_watermark)


# ---------------------------------------------------------------------------
# device.write_blocks
# ---------------------------------------------------------------------------

def test_write_blocks_stores_payloads_and_coalesces_one_run():
    device, f = _loaded(8)
    before = device.stats.write_positionings
    device.write_blocks(f, [(2, _payload(2)), (3, _payload(3)),
                            (4, _payload(4))])
    assert device.stats.write_positionings - before == 1
    assert device.stats.coalesced_runs == 1
    assert device.stats.coalesced_blocks == 3
    for i in (2, 3, 4):
        assert bytes(f.blocks[i]) == _payload(i)


def test_write_blocks_charges_one_positioning_per_run():
    device, f = _loaded(16)
    before = device.stats.write_positionings
    # Runs: [0,1], [5], [8,9,10] -> 3 positionings for 6 writes.
    device.write_blocks(f, [(0, _payload(0)), (1, _payload(1)),
                            (5, _payload(5)), (8, _payload(8)),
                            (9, _payload(9)), (10, _payload(10))])
    assert device.stats.write_positionings - before == 3
    assert device.stats.writes == 6
    assert device.stats.coalesced_runs == 2


def test_write_blocks_empty_is_noop():
    device, f = _loaded(4)
    device.write_blocks(f, [])
    assert device.stats.writes == 0


def test_write_blocks_rejects_unsorted_duplicates_and_bad_sizes():
    device, f = _loaded(8)
    with pytest.raises(ValueError):
        device.write_blocks(f, [(3, _payload(3)), (1, _payload(1))])
    with pytest.raises(ValueError):
        device.write_blocks(f, [(2, _payload(2)), (2, _payload(2))])
    with pytest.raises(ValueError):
        device.write_blocks(f, [(0, b"short")])
    with pytest.raises(IndexError):
        device.write_blocks(f, [(99, _payload(0))])
    assert device.stats.writes == 0  # validation precedes any charging


def test_write_blocks_memory_resident_is_free():
    device, f = _loaded(4)
    f.memory_resident = True
    device.write_blocks(f, [(0, _payload(0)), (1, _payload(1))])
    assert device.stats.writes == 0
    assert device.stats.elapsed_us == 0
    assert bytes(f.blocks[1]) == _payload(1)


def test_write_blocks_head_extends_previous_access():
    device, f = _loaded(8)
    device.write_block(f, 3, _payload(3))
    before = device.stats.write_positionings
    device.write_blocks(f, [(4, _payload(4)), (5, _payload(5))])
    # Block 4 rides sequentially after the write of block 3.
    assert device.stats.write_positionings - before == 0


def test_write_blocks_fires_on_run_hook():
    device, f = _loaded(16)
    runs = []
    device.on_run = lambda name, length: runs.append((name, length))
    device.write_blocks(f, [(0, _payload(0)), (1, _payload(1)),
                            (4, _payload(4)),
                            (7, _payload(7)), (8, _payload(8)),
                            (9, _payload(9))])
    assert runs == [("f", 2), ("f", 3)]


def test_write_blocks_cost_matches_serial_sorted_loop():
    """Coalesced writes charge exactly what a serial sorted write_block
    loop would — the device's sequential detection already coalesces."""
    blocks = [0, 1, 2, 7, 9, 10, 15]
    device_a, fa = _loaded(16)
    device_a.write_blocks(fa, [(b, _payload(b)) for b in blocks])
    device_b, fb = _loaded(16)
    for b in blocks:
        device_b.write_block(fb, b, _payload(b))
    assert (device_a.stats.write_positionings
            == device_b.stats.write_positionings)
    assert device_a.stats.elapsed_us == device_b.stats.elapsed_us


# ---------------------------------------------------------------------------
# buffer-pool dirty bits (all three policies)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("policy", POLICIES)
def test_dirty_bit_lifecycle(policy):
    pool = make_buffer_pool(4, policy)
    pool.put("f", 0, b"a")
    pool.put("f", 1, b"b")
    pool.mark_dirty("f", 0)
    assert pool.is_dirty("f", 0)
    assert not pool.is_dirty("f", 1)
    assert pool.dirty_count == 1
    assert pool.dirty_items() == {("f", 0): b"a"}
    assert pool.dirty_items("other") == {}
    pool.mark_clean([("f", 0)])
    assert pool.dirty_count == 0
    assert pool.get("f", 0) == b"a"  # frame stays cached after cleaning


@pytest.mark.parametrize("policy", POLICIES)
def test_mark_dirty_absent_frame_raises(policy):
    pool = make_buffer_pool(4, policy)
    with pytest.raises(KeyError):
        pool.mark_dirty("f", 0)


@pytest.mark.parametrize("policy", POLICIES)
def test_dirty_eviction_hands_exactly_that_frame(policy):
    pool = make_buffer_pool(2, policy)
    evicted = []
    pool.on_evict = lambda name, no, data: evicted.append((name, no, data))
    pool.put("f", 0, b"zero")
    pool.mark_dirty("f", 0)
    pool.put("f", 1, b"one")
    pool.put("f", 2, b"two")  # evicts frame 0 (dirty) in every policy
    assert evicted == [("f", 0, b"zero")]
    assert pool.dirty_evictions == 1
    assert pool.clean_evictions == 0
    assert pool.dirty_count == 0


@pytest.mark.parametrize("policy", POLICIES)
def test_clean_eviction_never_calls_back(policy):
    pool = make_buffer_pool(2, policy)
    evicted = []
    pool.on_evict = lambda name, no, data: evicted.append((name, no))
    for i in range(5):
        pool.put("f", i, bytes([i]))
    assert evicted == []
    assert pool.dirty_evictions == 0
    assert pool.clean_evictions == 3


@pytest.mark.parametrize("policy", POLICIES)
def test_invalidate_discards_dirty_without_flushing(policy):
    pool = make_buffer_pool(4, policy)
    evicted = []
    pool.on_evict = lambda *args: evicted.append(args)
    pool.put("f", 0, b"a")
    pool.mark_dirty("f", 0)
    pool.invalidate("f", 0)
    assert pool.dirty_count == 0
    assert evicted == []
    pool.put("g", 1, b"b")
    pool.mark_dirty("g", 1)
    pool.invalidate_file("g")
    assert pool.dirty_count == 0
    assert evicted == []


# ---------------------------------------------------------------------------
# pager write-back mode
# ---------------------------------------------------------------------------

def test_write_back_requires_a_real_pool():
    device = BlockDevice(BS, HDD)
    with pytest.raises(ValueError):
        Pager(device, write_back=True)
    with pytest.raises(ValueError):
        Pager(device, buffer_pool=make_buffer_pool(0), write_back=True)
    with pytest.raises(ValueError):
        _wb_pager(device, capacity=4, flush_watermark=0)


def test_buffered_write_defers_device_io_and_serves_reads():
    device, f = _loaded(8)
    pager = _wb_pager(device, capacity=8)
    pager.write_block(f, 3, _payload(3))
    assert device.stats.writes == 0
    assert pager.dirty_blocks == 1
    # The read must see the buffered copy, not the device's zeros...
    assert pager.read_block(f, 3) == _payload(3)
    # ...and the device image is still unwritten until the flush.
    assert bytes(f.blocks[3]) == bytes(BS)
    assert pager.flush() == 1
    assert bytes(f.blocks[3]) == _payload(3)
    assert pager.dirty_blocks == 0


def test_buffered_write_validates_eagerly():
    device, f = _loaded(4)
    pager = _wb_pager(device)
    with pytest.raises(ValueError):
        pager.write_block(f, 99, _payload(0))
    with pytest.raises(ValueError):
        pager.write_block(f, 0, b"short")


def test_flush_coalesces_adjacent_dirty_pages():
    device, f = _loaded(16)
    pager = _wb_pager(device, capacity=16)
    # Written in scattered order; the flush sorts them into runs.
    for b in (9, 2, 3, 8, 4, 10):
        pager.write_block(f, b, _payload(b))
    before = device.stats.write_positionings
    assert pager.flush() == 6
    # Runs [2,3,4] and [8,9,10]: two positionings for six writes.
    assert device.stats.write_positionings - before == 2
    assert device.stats.writes_by_phase.get("flush") == 6
    assert pager.flushes == 1
    assert pager.flushed_blocks == 6
    # Second flush is a no-op.
    assert pager.flush() == 0
    assert pager.flushes == 1


def test_flush_single_file_filter():
    device, f = _loaded(4)
    g = device.create_file("g")
    g.allocate(4)
    pager = _wb_pager(device, capacity=8)
    pager.write_block(f, 0, _payload(1))
    pager.write_block(g, 0, _payload(2))
    assert pager.flush("f") == 1
    assert pager.dirty_blocks == 1
    assert bytes(g.blocks[0]) == bytes(BS)
    assert pager.flush() == 1
    assert bytes(g.blocks[0]) == _payload(2)


def test_rewriting_a_dirty_page_flushes_once():
    device, f = _loaded(4)
    pager = _wb_pager(device, capacity=4)
    for i in range(5):
        pager.write_block(f, 2, _payload(i))
    assert pager.dirty_blocks == 1
    assert pager.flush() == 1
    assert device.stats.writes == 1
    assert bytes(f.blocks[2]) == _payload(4)


@pytest.mark.parametrize("policy", POLICIES)
def test_dirty_eviction_writes_exactly_that_frame(policy):
    device, f = _loaded(8)
    pager = _wb_pager(device, capacity=2, policy=policy)
    pager.write_block(f, 0, _payload(0))
    pager.write_block(f, 4, _payload(4))
    assert device.stats.writes == 0
    pager.write_block(f, 6, _payload(6))  # evicts frame 0 in every policy
    assert device.stats.writes == 1
    assert device.stats.writes_by_phase.get("flush") == 1
    assert bytes(f.blocks[0]) == _payload(0)
    assert pager.buffer_pool.dirty_evictions == 1
    # The evicted frame is clean on disk; the two survivors still flush.
    assert pager.flush() == 2


def test_clean_eviction_charges_zero_writes():
    device, f = _loaded(8)
    for i in range(8):
        device.write_block(f, i, _payload(i))
    writes_before = device.stats.writes
    pager = _wb_pager(device, capacity=2)
    for i in range(8):
        assert pager.read_block(f, i) == _payload(i)
    assert device.stats.writes == writes_before
    assert pager.buffer_pool.clean_evictions == 6
    assert pager.buffer_pool.dirty_evictions == 0


def test_flush_watermark_triggers_automatically():
    device, f = _loaded(8)
    pager = _wb_pager(device, capacity=8, flush_watermark=3)
    pager.write_block(f, 0, _payload(0))
    pager.write_block(f, 2, _payload(2))
    assert device.stats.writes == 0
    pager.write_block(f, 4, _payload(4))  # hits the watermark
    assert device.stats.writes == 3
    assert pager.dirty_blocks == 0
    assert pager.flushes == 1


def test_write_bytes_read_modify_write_under_write_back():
    device, f = _loaded(4)
    pager = _wb_pager(device, capacity=4)
    pager.write_bytes(f, 100, b"hello")
    assert pager.read_bytes(f, 100, 5) == b"hello"
    assert device.stats.writes == 0
    pager.flush()
    assert bytes(f.blocks[0][100:105]) == b"hello"


def test_pager_write_blocks_buffers_in_write_back_mode():
    device, f = _loaded(8)
    pager = _wb_pager(device, capacity=8)
    pager.write_blocks(f, [(1, _payload(1)), (2, _payload(2))])
    assert device.stats.writes == 0
    assert pager.dirty_blocks == 2
    pager.write_blocks(f, [(5, _payload(5))], through=True)
    assert device.stats.writes == 1
    assert not pager.buffer_pool.is_dirty("f", 5)


def test_pager_write_blocks_through_supersedes_dirty_copy():
    device, f = _loaded(4)
    pager = _wb_pager(device, capacity=4)
    pager.write_block(f, 1, _payload(7))
    pager.write_blocks(f, [(1, _payload(9))], through=True)
    assert pager.dirty_blocks == 0
    assert bytes(f.blocks[1]) == _payload(9)
    assert pager.read_block(f, 1) == _payload(9)
    assert pager.flush() == 0


def test_drop_dirty_discards_buffered_pages():
    device, f = _loaded(8)
    device.write_block(f, 1, _payload(1))
    pager = _wb_pager(device, capacity=8)
    pager.write_block(f, 1, _payload(200))
    pager.write_block(f, 2, _payload(201))
    assert pager.drop_dirty() == 2
    assert pager.dirty_blocks == 0
    # The only trustworthy copy is the device's pre-crash image.
    assert pager.read_block(f, 1) == _payload(1)
    assert pager.read_block(f, 2) == bytes(BS)
    assert pager.flush() == 0


def test_drop_dirty_without_pool_is_noop(pager):
    assert pager.drop_dirty() == 0
    assert pager.flush() == 0


# ---------------------------------------------------------------------------
# flush cost parity + write-through equivalence (hypothesis)
# ---------------------------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.integers(min_value=0, max_value=23),
                          st.integers(min_value=0, max_value=255)),
                min_size=1, max_size=40))
def test_flush_parity_and_write_through_equivalence(ops):
    """For arbitrary write sequences: (a) the coalesced dirty flush never
    charges more write positionings than a serial sorted write_block loop
    over the same dirty set, and (b) the final device bytes equal
    write-through's."""
    num_blocks = 24

    device_wt, f_wt = _loaded(num_blocks)
    pager_wt = Pager(device_wt)
    for block_no, fill in ops:
        pager_wt.write_block(f_wt, block_no, bytes([fill]) * BS)

    device_wb, f_wb = _loaded(num_blocks)
    pager_wb = _wb_pager(device_wb, capacity=num_blocks)
    for block_no, fill in ops:
        pager_wb.write_block(f_wb, block_no, bytes([fill]) * BS)
    dirty = {no: data for (_n, no), data
             in pager_wb.buffer_pool.dirty_items().items()}
    before = device_wb.stats.write_positionings
    pager_wb.flush()
    flush_positionings = device_wb.stats.write_positionings - before

    # (b) byte-identical images.
    assert [bytes(b) for b in f_wb.blocks] == [bytes(b) for b in f_wt.blocks]

    # (a) cost parity vs the serial sorted loop over the same dirty set.
    device_loop, f_loop = _loaded(num_blocks)
    for no in sorted(dirty):
        device_loop.write_block(f_loop, no, dirty[no])
    assert flush_positionings <= device_loop.stats.write_positionings
    assert device_wb.stats.writes == device_loop.stats.writes


# ---------------------------------------------------------------------------
# WAL ordering + checkpoint flush point
# ---------------------------------------------------------------------------

def _wb_index(name="btree", bulk=None, capacity=64, profile=NULL_DEVICE):
    device = BlockDevice(BS, profile)
    pager = _wb_pager(device, capacity=capacity)
    index = make_index(name, pager)
    if bulk:
        index.bulk_load(bulk)
    return index


def test_flush_forces_wal_durable_first():
    """Log before data: the explicit flush must push the WAL's pending
    records out ahead of any dirty page — observed on the device's access
    stream as every 'log' write preceding every 'flush' write."""
    index = _wb_index(bulk=[(k, k + 1) for k in range(0, 200, 2)])
    wal = WriteAheadLog(index.pager, group_commit=1000)  # nothing auto-flushes
    index.attach_wal(wal)
    for k in range(1, 50, 2):
        index.durable_insert(k, k + 1)
    assert wal.pending > 0
    assert index.pager.dirty_blocks > 0
    phases = []
    index.pager.device.on_access = (
        lambda kind, name, no, phase, cost: phases.append(phase))
    index.pager.flush()
    assert wal.pending == 0
    assert "log" in phases and "flush" in phases
    assert max(i for i, p in enumerate(phases) if p == "log") < \
        min(i for i, p in enumerate(phases) if p == "flush")


def test_dirty_eviction_forces_wal_durable_first():
    index = _wb_index(capacity=2, bulk=[(k, k + 1) for k in range(0, 400, 2)])
    index.pager.flush()  # bulk-load phase boundary: start from clean frames
    wal = WriteAheadLog(index.pager, group_commit=1000)
    index.attach_wal(wal)
    evictions_before = index.pager.buffer_pool.dirty_evictions
    phases = []
    index.pager.device.on_access = (
        lambda kind, name, no, phase, cost: phases.append(phase))
    k = 1
    while index.pager.buffer_pool.dirty_evictions == evictions_before:
        index.durable_insert(k, k + 1)
        k += 2
    flush_writes = [i for i, p in enumerate(phases) if p == "flush"]
    log_writes = [i for i, p in enumerate(phases) if p == "log"]
    assert flush_writes and log_writes
    assert log_writes[0] < flush_writes[0]
    # Nothing the eviction flushed can be ahead of the log's high water:
    assert wal.durable_seqno == wal.current_lsn


def test_index_flush_convenience_covers_wal_and_pages():
    index = _wb_index(bulk=[(k, k + 1) for k in range(0, 100, 2)])
    wal = WriteAheadLog(index.pager, group_commit=1000)
    index.attach_wal(wal)
    index.durable_insert(1, 2)
    assert index.flush() > 0
    assert wal.pending == 0
    assert index.pager.dirty_blocks == 0


def test_checkpoint_and_save_index_flush_dirty_pages():
    """save_index (and take_checkpoint through it) must image the device
    *after* the dirty pages land, so a reload sees every write."""
    index = _wb_index(bulk=[(k, k + 1) for k in range(0, 300, 3)])
    index.insert(1, 2)
    index.insert(4, 5)
    assert index.pager.dirty_blocks > 0
    buffer = io.BytesIO()
    save_index(index, buffer)
    assert index.pager.dirty_blocks == 0
    reopened = load_index(io.BytesIO(buffer.getvalue()))
    assert reopened.lookup(1) == 2
    assert reopened.lookup(4) == 5
    assert reopened.scan(0, 1000) == index.scan(0, 1000)


# ---------------------------------------------------------------------------
# crash recovery with dropped dirty pages
# ---------------------------------------------------------------------------

def test_crash_report_counts_dropped_dirty_pages():
    index = _wb_index(bulk=[(k, k + 1) for k in range(0, 100, 2)])
    wal = WriteAheadLog(index.pager, group_commit=8)
    index.attach_wal(wal)
    index.durable_insert(1, 2)
    assert index.pager.dirty_blocks > 0
    injector = FaultInjector(crash_at_op=0)
    report = injector.crash(wal, 5, pager=index.pager)
    assert report.dropped_dirty_pages > 0
    assert index.pager.dirty_blocks == 0


@pytest.mark.parametrize("index_name", ["btree", "alex"])
def test_recovery_with_dirty_pages_matches_oracle(index_name):
    """The PR 1 crash-recovery property, under a write-back pager with a
    pool small enough to force dirty evictions mid-run: dirty unflushed
    pages are dropped at the crash and recovery still equals the oracle
    that executed exactly the recovered prefix."""
    rng = random.Random(0xBACC)
    keys = sorted(rng.sample(range(1, 10**9), 600))
    bulk = [(k, k + 1) for k in keys[:300]]
    ops = [("insert", k) for k in keys[300:]]

    for _trial in range(6):
        crash_at = rng.randrange(0, len(ops) + 1)
        batch = rng.choice([1, 4, 16, 64])
        torn = rng.random() < 0.5
        capacity = rng.choice([4, 16, 64])

        index = _wb_index(index_name, bulk, capacity=capacity)
        wal = WriteAheadLog(index.pager, group_commit=batch)
        index.attach_wal(wal)
        checkpoint = take_checkpoint(index, wal)

        injector = FaultInjector(crash_at_op=crash_at, torn_tail=torn)
        result = run_workload(index, ops, fault_injector=injector)
        assert result.crashed_at_op == crash_at

        recovered = recover(checkpoint, wal)
        assert recovered.last_seqno <= crash_at

        oracle = _wb_index(index_name, bulk)
        for _kind, key in ops[:recovered.last_seqno]:
            oracle.insert(key, key + 1)
        oracle.pager.flush()
        assert (recovered.index.scan(0, 100_000)
                == oracle.scan(0, 100_000))
        recovered.index.verify()


# ---------------------------------------------------------------------------
# differential + runner accounting
# ---------------------------------------------------------------------------

def test_differential_write_back_vs_reference_model():
    from tests.util import (ReferenceModel, check_full_agreement, items_of,
                            random_sorted_keys, run_differential)

    keys = random_sorted_keys(400, seed=99, key_space=10**9)
    index = _wb_index("btree", items_of(keys), capacity=8)
    model = ReferenceModel(items_of(keys))
    run_differential(index, model, num_ops=300, seed=99)
    index.pager.flush()
    check_full_agreement(index, model)


def test_runner_flushes_at_phase_end_and_counts():
    scale = default_scale().scaled(0.02)
    setup = fresh_index("btree", "ycsb", "write_heavy", scale,
                        buffer_blocks=64, write_back=True)
    res = run_workload(setup.index, setup.ops, workload="write_heavy",
                       validate=True)
    assert res.flushes >= 1
    assert setup.pager.dirty_blocks == 0
    assert res.dirty_evictions == setup.pager.buffer_pool.dirty_evictions
    # The flush's coalesced writes appear under the "flush" phase.
    assert res.writes_by_phase.get("flush", 0) > 0


def test_runner_write_back_results_match_write_through():
    scale = default_scale().scaled(0.02)
    wt = fresh_index("btree", "ycsb", "write_heavy", scale, buffer_blocks=64)
    wb = fresh_index("btree", "ycsb", "write_heavy", scale,
                     buffer_blocks=64, write_back=True)
    res_wt = run_workload(wt.index, wt.ops, validate=True)
    res_wb = run_workload(wb.index, wb.ops, validate=True)
    assert wb.index.scan(0, 10**9) == wt.index.scan(0, 10**9)
    assert res_wb.write_positionings <= res_wt.write_positionings


# ---------------------------------------------------------------------------
# bench wiring
# ---------------------------------------------------------------------------

def test_fresh_index_write_back_flag():
    scale = default_scale().scaled(0.01)
    setup = fresh_index("btree", "ycsb", "write_only", scale,
                        buffer_blocks=32, write_back=True,
                        buffer_policy="clock", flush_watermark=16)
    assert setup.pager.write_back
    assert setup.pager.flush_watermark == 16
    assert setup.pager.buffer_pool.policy == "clock"
    with pytest.raises(ValueError):
        fresh_index("btree", "ycsb", "write_only", scale, write_back=True)


def test_set_write_back_override():
    scale = default_scale().scaled(0.01)
    set_write_back(16)
    try:
        setup = fresh_index("btree", "ycsb", "write_only", scale)
        assert setup.pager.write_back
        assert setup.pager.buffer_pool.capacity == 16
    finally:
        set_write_back(0)
    with pytest.raises(ValueError):
        set_write_back(-1)


def test_cli_write_back_experiment(capsys):
    assert bench_main(["run", "write_back", "--scale", "0.005"]) == 0
    out = capsys.readouterr().out
    assert "write_positionings" in out


def test_cli_write_back_flag(capsys):
    try:
        assert bench_main(["run", "batch_lookup", "--scale", "0.004",
                           "--write-back", "32"]) == 0
        from repro.bench import config as bench_config
        assert bench_config._WRITE_BACK_BLOCKS == 32
    finally:
        set_write_back(0)
    assert "ops_per_s" in capsys.readouterr().out
