"""Hybrid-design-specific tests (Table 5 of the paper)."""

import random

import pytest

from repro.core import HybridIndex, make_index
from repro.storage import NULL_DEVICE, BlockDevice, Pager

from tests.util import items_of, random_sorted_keys

KEYS = random_sorted_keys(30_000, seed=11)
KINDS = ("fiting", "pgm", "alex", "lipp", "btree")


def fresh(kind, **kwargs):
    device = BlockDevice(4096, NULL_DEVICE)
    return HybridIndex(Pager(device), inner_kind=kind, **kwargs), device


def test_unknown_inner_kind_rejected():
    device = BlockDevice(4096, NULL_DEVICE)
    with pytest.raises(ValueError):
        HybridIndex(Pager(device), inner_kind="nope")


def test_leaf_fill_bounds():
    with pytest.raises(ValueError):
        fresh("pgm", leaf_fill=0.01)


@pytest.mark.parametrize("kind", KINDS)
def test_inner_index_holds_leaf_directory(kind):
    index, _ = fresh(kind)
    index.bulk_load(items_of(KEYS))
    per_leaf = int(index.leaf_capacity * index.leaf_fill)
    expected_leaves = (len(KEYS) + per_leaf - 1) // per_leaf
    assert index.num_leaves == expected_leaves


@pytest.mark.parametrize("kind", KINDS)
def test_insert_unsupported(kind):
    index, _ = fresh(kind)
    index.bulk_load(items_of(KEYS))
    with pytest.raises(NotImplementedError):
        index.insert(1, 2)


@pytest.mark.parametrize("kind", KINDS)
def test_name_reflects_inner_kind(kind):
    index, _ = fresh(kind)
    assert index.name == f"hybrid-{kind}"


@pytest.mark.parametrize("kind", KINDS)
def test_route_and_leaf_binary_search(kind):
    index, _ = fresh(kind)
    index.bulk_load(items_of(KEYS))
    rng = random.Random(1)
    for key in rng.sample(KEYS, 200):
        assert index.lookup(key) == key + 1
    assert index.lookup(KEYS[-1] + 1) is None  # routed past the directory


@pytest.mark.parametrize("kind", KINDS)
def test_scan_follows_leaf_links(kind):
    index, _ = fresh(kind)
    index.bulk_load(items_of(KEYS))
    start = len(KEYS) // 2
    assert index.scan(KEYS[start], 600) == items_of(KEYS)[start : start + 600]


@pytest.mark.parametrize("kind", [k for k in KINDS if k != "lipp"])
def test_memory_resident_inner_cuts_lookup_cost(kind):
    device = BlockDevice(4096)
    pager = Pager(device)
    index = HybridIndex(pager, inner_kind=kind)
    index.bulk_load(items_of(KEYS))
    index.set_inner_memory_resident(True)
    pager.drop_last_block()
    before = device.stats.reads
    index.lookup(KEYS[777])
    # The leaf is one block: a resident inner part means exactly one read.
    assert device.stats.reads - before == 1


def test_file_roles_separate_inner_and_leaf():
    index, device = fresh("pgm")
    index.bulk_load(items_of(KEYS))
    roles = index.file_roles()
    assert roles[index._leaf_file.name] == "leaf"
    assert any(role == "inner" for name, role in roles.items()
               if name != index._leaf_file.name)


def test_registry_exposes_hybrids():
    device = BlockDevice(4096, NULL_DEVICE)
    index = make_index("hybrid-lipp", Pager(device))
    assert isinstance(index, HybridIndex)
    assert index.inner_kind == "lipp"
