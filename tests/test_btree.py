"""B+-tree-specific tests: node geometry, splits, deletes, generic records."""

import random
import struct

import pytest

from repro.core.btree import BPlusTree, BTreeIndex
from repro.storage import NULL_DEVICE, BlockDevice, Pager

from tests.util import items_of, random_sorted_keys


def make_tree(data_size=8, block_size=4096, **kwargs):
    device = BlockDevice(block_size, NULL_DEVICE)
    pager = Pager(device)
    return BPlusTree(pager, device.create_file("i"), device.create_file("l"),
                     data_size=data_size, **kwargs)


def rec(key):
    return struct.pack("<Q", key + 1)


def test_leaf_capacity_matches_paper_arithmetic():
    tree = make_tree()
    # 4096-byte block, 16-byte header, 16-byte records -> 255 per leaf; at
    # the 0.8 fill factor that is 204, the paper's 980,393 leaves for 200M.
    assert tree.leaf_capacity == 255
    assert int(tree.leaf_capacity * 0.8) == 204


def test_bulk_load_empty_tree():
    tree = make_tree()
    tree.bulk_load([])
    assert tree.lookup(5) is None
    tree.insert(5, rec(5))
    assert tree.lookup(5) == rec(5)


def test_bulk_load_rejects_double_load():
    tree = make_tree()
    tree.bulk_load([(1, rec(1))])
    with pytest.raises(RuntimeError):
        tree.bulk_load([(2, rec(2))])


def test_height_grows_with_size():
    small = make_tree()
    small.bulk_load([(k, rec(k)) for k in range(100)])
    large = make_tree()
    large.bulk_load([(k, rec(k)) for k in range(60_000)])
    assert small.num_levels == 1
    assert large.num_levels >= 2


def test_insert_splits_to_greater_heights():
    tree = make_tree()
    tree.bulk_load([(k, rec(k)) for k in range(0, 4000, 4)])
    height_before = tree.num_levels
    for k in range(1, 4000, 4):
        tree.insert(k, rec(k))
    for k in range(2, 4000, 4):
        tree.insert(k, rec(k))
    assert tree.num_levels >= height_before
    for k in list(range(0, 4000, 4)) + list(range(1, 4000, 4)):
        assert tree.lookup(k) == rec(k)


def test_insert_duplicate_raises():
    tree = make_tree()
    tree.bulk_load([(5, rec(5))])
    with pytest.raises(KeyError):
        tree.insert(5, rec(5))


def test_insert_wrong_record_size_raises():
    tree = make_tree()
    tree.bulk_load([(5, rec(5))])
    with pytest.raises(ValueError):
        tree.insert(6, b"short")


def test_floor_record_semantics():
    tree = make_tree()
    tree.bulk_load([(k, rec(k)) for k in (10, 20, 30)])
    assert tree.floor_record(5) is None
    assert tree.floor_record(10) == (10, rec(10))
    assert tree.floor_record(25) == (20, rec(20))
    assert tree.floor_record(99) == (30, rec(30))


def test_floor_record_crosses_leaf_boundary():
    keys = list(range(0, 3000, 2))
    tree = make_tree()
    tree.bulk_load([(k, rec(k)) for k in keys])
    # A key just below some leaf's first key must land on the previous leaf.
    for probe in range(1, 2999, 101):
        expect = probe - 1 if probe % 2 else probe
        assert tree.floor_record(probe)[0] == expect


def test_update_in_place():
    tree = make_tree()
    tree.bulk_load([(k, rec(k)) for k in range(100)])
    assert tree.update(50, rec(999))
    assert tree.lookup(50) == rec(999)
    assert not tree.update(1_000_000, rec(0))


def test_delete_is_lazy():
    tree = make_tree()
    tree.bulk_load([(k, rec(k)) for k in range(500)])
    assert tree.delete(250)
    assert tree.lookup(250) is None
    assert not tree.delete(250)
    assert tree.lookup(249) == rec(249)
    assert tree.lookup(251) == rec(251)


def test_iterate_from_follows_leaf_links():
    keys = random_sorted_keys(5000, seed=9)
    tree = make_tree()
    tree.bulk_load([(k, rec(k)) for k in keys])
    run = [k for k, _ in tree.iterate_from(keys[1000])][:300]
    assert run == keys[1000:1300]


def test_generic_record_size():
    tree = make_tree(data_size=32)
    payload = bytes(range(32))
    tree.bulk_load([(7, payload)])
    assert tree.lookup(7) == payload
    assert tree.record_size == 40


def test_fill_factor_bounds():
    with pytest.raises(ValueError):
        make_tree(leaf_fill=0.01)
    with pytest.raises(ValueError):
        make_tree(inner_fill=1.5)


def test_tiny_blocks_rejected():
    with pytest.raises(ValueError):
        make_tree(block_size=32)


def test_index_wrapper_counts_leaf_blocks(free_pager):
    index = BTreeIndex(free_pager)
    keys = random_sorted_keys(10_000, seed=2)
    index.bulk_load(items_of(keys))
    expected_leaves = (len(keys) + 203) // 204
    assert index.num_leaf_blocks == expected_leaves


def test_index_delete(free_pager):
    index = BTreeIndex(free_pager)
    keys = random_sorted_keys(1000, seed=3)
    index.bulk_load(items_of(keys))
    assert index.delete(keys[10])
    assert index.lookup(keys[10]) is None


def test_lookup_counts_height_blocks():
    device = BlockDevice(4096, NULL_DEVICE)
    pager = Pager(device)
    index = BTreeIndex(pager)
    index.bulk_load(items_of(random_sorted_keys(60_000, seed=4)))
    pager.drop_last_block()
    before = device.stats.reads
    index.lookup(random_sorted_keys(60_000, seed=4)[30_000])
    # One block per level: the defining property of the on-disk B+-tree.
    assert device.stats.reads - before == index.height()
