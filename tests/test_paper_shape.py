"""Integration tests asserting the paper's key observations (O1-O18).

These run the real experiment pipeline at a reduced scale and check the
*shape* of each result: who wins, who loses, which direction a knob
moves a metric.  They are the executable form of EXPERIMENTS.md.
"""

import pytest

from repro.bench import Scale, fresh_index
from repro.storage import HDD
from repro.workloads import run_workload

SCALE = Scale(n_read=60_000, n_write_bulk=8_000, n_write_ops=6_000,
              n_lookup_ops=500, n_scan_ops=60)

INDEXES = ("btree", "fiting", "pgm", "alex", "lipp")


def throughput(index_name, dataset, workload, **kwargs):
    setup = fresh_index(index_name, dataset, workload, SCALE, **kwargs)
    result = run_workload(setup.index, setup.ops, workload=workload)
    return result


@pytest.fixture(scope="module")
def lookup_results():
    return {
        (name, ds): throughput(name, ds, "lookup_only")
        for name in INDEXES for ds in ("ycsb", "fb")
    }


@pytest.fixture(scope="module")
def write_results():
    return {
        (name, ds): throughput(name, ds, "write_only")
        for name in INDEXES for ds in ("ycsb", "fb")
    }


def test_o2_lipp_wins_lookups_on_easy_data(lookup_results):
    """O2: LIPP outperforms the others on Lookup-Only (easy datasets)."""
    ycsb = {name: lookup_results[(name, "ycsb")] for name in INDEXES}
    assert ycsb["lipp"].blocks_read_per_op == min(
        r.blocks_read_per_op for r in ycsb.values())


def test_o3_btree_lookup_cost_is_dataset_independent(lookup_results):
    """O3: the B+-tree fetches the same blocks whatever the data."""
    assert lookup_results[("btree", "ycsb")].blocks_read_per_op == (
        pytest.approx(lookup_results[("btree", "fb")].blocks_read_per_op, abs=0.1))


def test_o3_learned_indexes_fluctuate_with_hardness(lookup_results):
    """O3: learned index lookup cost degrades on harder datasets."""
    for name in ("alex", "lipp"):
        assert (lookup_results[(name, "fb")].blocks_read_per_op
                > lookup_results[(name, "ycsb")].blocks_read_per_op)


def test_o4_o5_btree_wins_scans():
    """O4/O5: the B+-tree wins Scan-Only; ALEX and LIPP are the worst.

    One scale artifact: at 200M keys PGM pays several descriptor levels
    per scan, at our scaled N its level stack fits one block, so the
    PGM-vs-B+-tree gap closes on the easiest dataset.  The robust shape
    is: B+-tree beats every learned index on the hard dataset, beats
    FITing/ALEX/LIPP everywhere, and ALEX+LIPP are the two worst.
    """
    for dataset in ("ycsb", "fb"):
        results = {name: throughput(name, dataset, "scan_only") for name in INDEXES}
        blocks = {name: r.blocks_read_per_op for name, r in results.items()}
        for name in ("fiting", "alex", "lipp"):
            assert blocks["btree"] < blocks[name], (dataset, name)
        worst_two = sorted(blocks, key=blocks.get)[-2:]
        assert set(worst_two) == {"alex", "lipp"}, dataset
        if dataset == "fb":
            assert blocks["btree"] == min(blocks.values())


def test_o6_pgm_wins_write_only(write_results):
    """O6: PGM significantly outperforms everything on Write-Only."""
    for ds in ("ycsb", "fb"):
        best = max(INDEXES, key=lambda n: write_results[(n, ds)].throughput_ops_per_s)
        assert best == "pgm"


def test_o7_btree_beats_remaining_learned_indexes_on_writes(write_results):
    """O7: other than PGM, the B+-tree wins the Write-Only workload."""
    for ds in ("ycsb", "fb"):
        btree = write_results[("btree", ds)].throughput_ops_per_s
        for name in ("fiting", "alex", "lipp"):
            assert btree > write_results[(name, ds)].throughput_ops_per_s


def test_o9_btree_first_or_second_in_mixed_workloads():
    """O9: the B+-tree ranks first or second on every mixed workload."""
    for workload in ("read_heavy", "balanced"):
        results = {name: throughput(name, "fb", workload) for name in INDEXES}
        ranked = sorted(results, key=lambda n: -results[n].throughput_ops_per_s)
        assert "btree" in ranked[:2], (workload, ranked)


def test_o10_pgm_degrades_as_read_ratio_grows():
    """O10: PGM's rank drops from write-heavy to read-heavy workloads."""
    write_heavy = {name: throughput(name, "ycsb", "write_heavy") for name in INDEXES}
    read_heavy = {name: throughput(name, "ycsb", "read_heavy") for name in INDEXES}
    rank_wh = sorted(write_heavy, key=lambda n: -write_heavy[n].throughput_ops_per_s)
    rank_rh = sorted(read_heavy, key=lambda n: -read_heavy[n].throughput_ops_per_s)
    assert rank_wh.index("pgm") < rank_rh.index("pgm")


def test_o11_pgm_smallest_lipp_largest_storage():
    """O11: PGM has the smallest and LIPP the largest index size."""
    sizes = {}
    for name in INDEXES:
        setup = fresh_index(name, "fb", "lookup_only", SCALE)
        sizes[name] = setup.device.allocated_bytes
    assert sizes["pgm"] == min(sizes.values())
    assert sizes["lipp"] == max(sizes.values())


def test_o14_memory_resident_inner_barely_helps_pgm():
    """O14: pinning inner nodes speeds up the B+-tree's writes far more
    than PGM's (PGM's write path never touches its inner levels)."""
    def speedup(name):
        disk = throughput(name, "ycsb", "write_only").throughput_ops_per_s
        resident = throughput(name, "ycsb", "write_only",
                              inner_memory_resident=True).throughput_ops_per_s
        return resident / disk

    assert speedup("btree") > speedup("pgm") + 0.05


def test_o15_btree_wins_everything_with_resident_inner():
    """O15: with inner nodes in memory the B+-tree beats the learned
    indexes on write workloads (LIPP excluded per the paper)."""
    names = [n for n in INDEXES if n != "lipp"]
    for workload in ("write_only", "balanced"):
        results = {
            name: throughput(name, "ycsb", workload, inner_memory_resident=True)
            for name in names
        }
        best = max(names, key=lambda n: results[n].throughput_ops_per_s)
        assert best in ("btree", "pgm")
        if workload == "balanced":
            assert best == "btree"


def test_o17_block_size_helps_everyone_but_lipp():
    """O17: larger blocks cut fetched blocks for B+-tree/FITing/PGM/ALEX
    but LIPP's exact predictions leave nothing to batch."""
    def blocks(name, block_size):
        setup = fresh_index(name, "fb", "lookup_only", SCALE, block_size=block_size)
        return run_workload(setup.index, setup.ops).blocks_read_per_op

    for name in ("btree", "pgm"):
        assert blocks(name, 16384) < blocks(name, 4096)
    lipp_delta = blocks("lipp", 4096) - blocks("lipp", 16384)
    assert lipp_delta <= 0.75  # essentially flat


def test_o18_btree_has_smallest_lookup_p99():
    """O18: the B+-tree's p99 lookup latency beats the learned indexes."""
    results = {name: throughput(name, "fb", "lookup_only") for name in INDEXES}
    p99 = {name: r.p99_latency_us for name, r in results.items()}
    assert p99["btree"] == min(p99.values())


def test_buffer_study_lipp_best_at_zero_then_overtaken():
    """Section 6.6: LIPP fetches fewest blocks with no buffer, but a
    large LRU buffer favors the small-upper-level indexes."""
    def blocks(name, buffer_blocks):
        setup = fresh_index(name, "ycsb", "lookup_only", SCALE,
                            buffer_blocks=buffer_blocks)
        return run_workload(setup.index, setup.ops).blocks_read_per_op

    no_buffer = {name: blocks(name, 0) for name in INDEXES}
    assert no_buffer["lipp"] == min(no_buffer.values())
    big_buffer = {name: blocks(name, 512) for name in INDEXES}
    assert big_buffer["lipp"] > min(big_buffer.values())
