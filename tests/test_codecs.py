"""Property tests for the leaf-page codecs (DESIGN.md Section 16).

Every codec must round-trip arbitrary sorted-unique uint64 key sets with
arbitrary uint64 payloads — including the adversarial shapes the
encoders special-case: key 0, key 2^64-1, dense consecutive runs, huge
gaps (which widen FoR columns), single-entry pages and pages packed to
the count ceiling.  The scalar ``decode`` and vectorized
``decode_arrays`` paths must agree with each other and with the
:class:`RawCodec` reading its own encoding of the same items, and
``pack_greedy`` must respect its byte budget exactly.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import numpy as np

from repro.core.codecs import (
    CODEC_NAMES,
    KIND_ENTRIES,
    KIND_KEYS,
    PAGE_HEADER_SIZE,
    DeltaVarintCodec,
    FoRCodec,
    RawCodec,
    codec_id_of,
    get_codec,
)

U64_MAX = 2**64 - 1
COMPRESSED = ("delta", "for")


def _items_from(keys, payloads):
    keys = sorted(set(keys))
    return [(key, payloads[i % len(payloads)]) for i, key in enumerate(keys)]


#: Sorted-unique key sets biased toward the adversarial shapes: the
#: extremes of the domain, dense consecutive runs, and huge gaps.
sorted_keys = st.one_of(
    st.lists(st.integers(0, U64_MAX), min_size=1, max_size=120,
             unique=True).map(sorted),
    st.builds(lambda start, n: list(range(start, start + n)),
              st.integers(0, U64_MAX - 400), st.integers(1, 300)),
    st.just([0]), st.just([U64_MAX]), st.just([0, U64_MAX]),
    st.just([0, 1, 2, U64_MAX - 2, U64_MAX - 1, U64_MAX]),
)

payload_lists = st.lists(st.integers(0, U64_MAX), min_size=1, max_size=8)


@settings(max_examples=60, deadline=None)
@given(sorted_keys, payload_lists, st.sampled_from(COMPRESSED))
def test_entries_roundtrip(keys, payloads, name):
    codec = get_codec(name)
    items = _items_from(keys, payloads)
    page = codec.encode(items)
    assert len(page) == codec.encoded_size(items)
    assert codec_id_of(page) == codec.codec_id
    assert codec.page_count(page) == len(items)
    assert codec.decode(page) == items

    got_keys, got_payloads = codec.decode_arrays(page)
    raw_page = RawCodec().encode(items)
    raw_keys, raw_payloads = RawCodec().decode_arrays(raw_page, count=len(items))
    assert np.array_equal(got_keys, raw_keys)
    assert np.array_equal(got_payloads, raw_payloads)


@settings(max_examples=60, deadline=None)
@given(sorted_keys, st.sampled_from(COMPRESSED))
def test_keys_roundtrip(keys, name):
    codec = get_codec(name)
    keys = sorted(set(keys))
    page = codec.encode_keys(keys)
    assert codec.decode_keys(page).tolist() == keys
    # Offset decoding: the same page embedded mid-buffer.
    shifted = b"\xEE" * 13 + page
    assert codec.decode_keys(shifted, offset=13).tolist() == keys


@settings(max_examples=60, deadline=None)
@given(sorted_keys, payload_lists, st.sampled_from(COMPRESSED),
       st.integers(64, 4096))
def test_pack_greedy_respects_budget(keys, payloads, name, budget):
    codec = get_codec(name)
    items = _items_from(keys, payloads)
    taken = codec.pack_greedy(items, 0, budget)
    assert 1 <= taken <= len(items)
    if taken > 1:
        assert codec.encoded_size(items[:taken]) <= budget
    if taken < len(items):
        assert codec.encoded_size(items[:taken + 1]) > budget
    assert taken <= codec.max_entries(budget)


@settings(max_examples=40, deadline=None)
@given(sorted_keys, st.sampled_from(COMPRESSED), st.integers(32, 4096))
def test_pack_keys_greedy_respects_budget(keys, name, budget):
    codec = get_codec(name)
    keys = sorted(set(keys))
    taken = codec.pack_keys_greedy(keys, 0, budget)
    assert 1 <= taken <= len(keys)
    if taken < len(keys):
        page = codec.encode_keys(keys[:taken + 1])
        assert len(page) > budget


@pytest.mark.parametrize("name", COMPRESSED)
def test_empty_pages(name):
    codec = get_codec(name)
    page = codec.encode([])
    assert len(page) == PAGE_HEADER_SIZE
    assert codec.decode(page) == []
    got_keys, got_payloads = codec.decode_arrays(page)
    assert len(got_keys) == 0 and len(got_payloads) == 0
    assert codec.decode_keys(codec.encode_keys([])).tolist() == []


@pytest.mark.parametrize("name", COMPRESSED)
def test_page_count_ceiling_is_enforced(name):
    codec = get_codec(name)
    too_many = [(k, k) for k in range(0x10000)]
    with pytest.raises(ValueError):
        codec.encode(too_many)
    with pytest.raises(ValueError):
        codec.encode_keys(list(range(0x10000)))
    exactly = [(k, k + 1) for k in range(0xFFFF)]
    assert codec.decode(codec.encode(exactly)) == exactly


def test_payload_residual_wraparound():
    """Zigzag residuals must survive payloads far below/above their key,
    including the mod-2^64 wraparound cases."""
    items = [(0, U64_MAX), (1, 0), (2**63, 0), (U64_MAX - 1, 1), (U64_MAX, U64_MAX)]
    for name in COMPRESSED:
        codec = get_codec(name)
        assert codec.decode(codec.encode(items)) == items
        _keys, got = codec.decode_arrays(codec.encode(items))
        assert got.tolist() == [payload for _, payload in items]


def test_header_codec_id_mismatch_detected():
    delta, for_ = DeltaVarintCodec(), FoRCodec()
    page = delta.encode([(1, 2), (5, 6)])
    with pytest.raises(ValueError, match="codec id"):
        for_.decode(page)
    with pytest.raises(ValueError, match="codec id"):
        for_.page_count(page)
    assert codec_id_of(page) == delta.codec_id


@pytest.mark.parametrize("name", COMPRESSED)
def test_header_kind_mismatch_detected(name):
    codec = get_codec(name)
    entries_page = codec.encode([(1, 2)])
    keys_page = codec.encode_keys([1, 2, 3])
    with pytest.raises(ValueError, match="kind"):
        codec.decode_keys(entries_page)
    with pytest.raises(ValueError, match="kind"):
        codec.decode(keys_page)
    assert entries_page[1] == KIND_ENTRIES
    assert keys_page[1] == KIND_KEYS


def test_raw_codec_is_headerless_and_byte_stable():
    """Raw pages are the legacy 16-byte-slot layout: no framing header,
    so decoding demands an explicit count."""
    raw = RawCodec()
    items = [(3, 4), (7, 8)]
    page = raw.encode(items)
    assert len(page) == 32  # exactly two 16-byte slots, no header
    assert raw.decode(page, count=2) == items
    for call in (lambda: raw.decode(page), lambda: raw.decode_arrays(page),
                 lambda: raw.decode_keys(raw.encode_keys([1, 2]))):
        with pytest.raises(ValueError, match="count"):
            call()
    assert raw.pack_greedy(items, 0, 4096) == 2
    assert raw.pack_keys_greedy([1, 2, 3], 0, 8) == 1
    assert raw.max_entries(4096) == 256


def test_registry():
    assert CODEC_NAMES == ("raw", "delta", "for")
    for name in CODEC_NAMES:
        codec = get_codec(name)
        assert codec.name == name
        assert get_codec(codec) is codec  # instances pass through
    assert get_codec("raw").is_raw and not get_codec("for").is_raw
    with pytest.raises(ValueError, match="unknown codec"):
        get_codec("zstd")


def test_compression_wins_on_paper_shaped_data():
    """The headline density claim at page granularity: uniform 62-bit
    keys with ``payload = key + 1``.  FoR clears 2x outright; delta
    hovers at the bar (a ~7-byte LEB128 delta + 1-byte residual vs 16),
    so it gets a slightly softer floor here — bench_compression gates
    the full end-to-end ratio on FoR only for the same reason."""
    import random
    rng = random.Random(5)
    keys = sorted(rng.randrange(2**62) for _ in range(20000))
    items = [(key, key + 1) for key in keys]
    raw_size = RawCodec().encoded_size(items)
    assert get_codec("for").encoded_size(items) * 2 <= raw_size
    assert get_codec("delta").encoded_size(items) * 1.9 <= raw_size
