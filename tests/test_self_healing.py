"""Self-healing storage: fault model, retries, quarantine, scrub, repair.

The fault-safety invariant under test: with checksums on and a
checkpoint + WAL available, any injected single-block corruption or torn
data write is (a) never served to the application and (b) repaired with
zero lost acknowledged writes; transient errors are absorbed by
retry/backoff with their latency and counts visible in ``StorageStats``
and tracer spans.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import run_workload
from repro.core import make_index
from repro.durability import (SelfHealer, WriteAheadLog, repair_blocks,
                              restore_index, take_checkpoint)
from repro.obs import Tracer
from repro.storage import (HDD, NULL_DEVICE, BlockDevice, ChecksumError,
                           DeviceFaultModel, Pager, PersistentIOError,
                           TransientIOError, block_crc, make_buffer_pool)

from tests.util import (ReferenceModel, check_full_agreement, items_of,
                        random_sorted_keys, run_differential)

KEYS = random_sorted_keys(4000, seed=7)


def build(name="btree", profile=NULL_DEVICE, buffer_blocks=0, group_commit=4,
          with_wal=True, keys=KEYS):
    device = BlockDevice(4096, profile)
    pool = make_buffer_pool(buffer_blocks, "lru") if buffer_blocks else None
    pager = Pager(device, buffer_pool=pool)
    index = make_index(name, pager)
    index.bulk_load(items_of(keys))
    wal = None
    if with_wal:
        wal = WriteAheadLog(pager, group_commit=group_commit)
        index.attach_wal(wal)
    return index, device, pager, wal


def corrupt_in_place(device, file_name, block_no, offset=200):
    """Media corruption: stored bytes change, envelope does not."""
    handle = device.get_file(file_name)
    block = bytearray(handle.blocks[block_no])
    block[offset] ^= 0x5A
    handle.blocks[block_no] = block


# -- fault model -----------------------------------------------------------

def test_fault_model_rejects_bad_rates():
    with pytest.raises(ValueError):
        DeviceFaultModel(transient_error_rate=1.5)
    with pytest.raises(ValueError):
        DeviceFaultModel(bit_rot_rate=-0.1)


def test_fault_model_is_deterministic_per_seed():
    def run(seed):
        device = BlockDevice(4096, NULL_DEVICE)
        device.fault_model = DeviceFaultModel(seed=seed,
                                              transient_error_rate=0.2)
        f = device.create_file("f")
        f.allocate(8)
        outcomes = []
        for i in range(200):
            try:
                device.read_block(f, i % 8)
                outcomes.append("ok")
            except TransientIOError:
                outcomes.append("transient")
        return outcomes

    assert run(3) == run(3)
    assert run(3) != run(4)  # astronomically unlikely to collide


def test_fault_model_excludes_wal_file():
    device = BlockDevice(4096, NULL_DEVICE)
    device.fault_model = DeviceFaultModel(seed=0, transient_error_rate=1.0)
    wal_file = device.create_file("wal")
    wal_file.allocate(1)
    device.write_block(wal_file, 0, bytes(4096))
    device.read_block(wal_file, 0)  # never faults
    data = device.create_file("data")
    data.allocate(1)
    with pytest.raises(TransientIOError):
        device.read_block(data, 0)


def test_persistent_error_sticks_until_rewritten():
    device = BlockDevice(4096, NULL_DEVICE)
    device.fault_model = DeviceFaultModel(seed=0, persistent_error_rate=1.0)
    f = device.create_file("f")
    f.allocate(1)
    for _ in range(3):
        with pytest.raises(PersistentIOError):
            device.read_block(f, 0)
    assert ("f", 0) in device.fault_model.bad_blocks
    # A write remaps the grown defect, as real drives do.
    device.fault_model.persistent_error_rate = 0.0
    device.write_block(f, 0, b"\x01" * 4096)
    assert device.read_block(f, 0) == b"\x01" * 4096


def test_bit_rot_flips_exactly_one_bit_and_is_detected():
    device = BlockDevice(4096, NULL_DEVICE)
    f = device.create_file("f")
    f.allocate(1)
    device.write_block(f, 0, b"\x00" * 4096)
    good = bytes(f.blocks[0])
    device.fault_model = DeviceFaultModel(seed=1, bit_rot_rate=1.0)
    with pytest.raises(ChecksumError):
        device.read_block(f, 0)
    rotted = bytes(f.blocks[0])
    diff_bits = sum(bin(a ^ b).count("1") for a, b in zip(good, rotted))
    assert diff_bits == 1
    assert device.fault_model.injected_bit_rots == 1
    assert device.stats.checksum_failures == 1


def test_torn_write_persists_prefix_and_taints_last_block(pager):
    device = pager.device
    f = device.create_file("data")
    f.allocate(3)
    device.fault_model = DeviceFaultModel(seed=0, torn_write_rate=1.0)
    pager.write_blocks(f, [(0, b"\xaa" * 4096), (1, b"\xbb" * 4096),
                           (2, b"\xcc" * 4096)])
    pager.drop_last_block()
    assert device.fault_model.torn_blocks == [("data", 2)]
    assert pager.read_block(f, 0) == b"\xaa" * 4096  # prefix fully persisted
    assert pager.read_block(f, 1) == b"\xbb" * 4096
    with pytest.raises(ChecksumError):
        pager.read_block(f, 2)
    # The torn block holds the new prefix and the old tail.
    assert bytes(f.blocks[2][:2048]) == b"\xcc" * 2048
    assert bytes(f.blocks[2][2048:]) == b"\x00" * 2048


def test_single_block_writes_never_tear(pager):
    device = pager.device
    f = device.create_file("data")
    f.allocate(1)
    device.fault_model = DeviceFaultModel(seed=0, torn_write_rate=1.0)
    pager.write_block(f, 0, b"\xdd" * 4096)
    pager.drop_last_block()
    assert pager.read_block(f, 0) == b"\xdd" * 4096


# -- retry / backoff -------------------------------------------------------

def test_transient_errors_absorbed_with_charged_backoff():
    device = BlockDevice(4096, HDD)
    pager = Pager(device, max_read_retries=4)
    f = device.create_file("f")
    f.allocate(1)
    device.write_block(f, 0, b"\x07" * 4096)
    clean_us = device.stats.elapsed_us
    device.fault_model = DeviceFaultModel(seed=2, transient_error_rate=0.5)
    pager.drop_last_block()
    assert pager.read_block(f, 0) == b"\x07" * 4096
    retries = device.stats.io_retries
    if retries:  # seed 2 at rate 0.5 does fault, but stay self-checking
        # Backoff is exponential in the HDD positioning cost and charged
        # as simulated latency on top of the successful read.
        expected_backoff = sum(
            device.profile.read_positioning_us * 2 ** i for i in range(retries))
        read_cost = device.profile.read_cost_us(4096, sequential=False)
        charged = device.stats.elapsed_us - clean_us
        assert charged == pytest.approx(
            expected_backoff + read_cost * (retries + 1))
    assert device.stats.reads >= 1


def test_retries_exhaust_to_persistent_error():
    device = BlockDevice(4096, NULL_DEVICE)
    pager = Pager(device, max_read_retries=3)
    f = device.create_file("f")
    f.allocate(1)
    device.fault_model = DeviceFaultModel(seed=0, transient_error_rate=1.0)
    with pytest.raises(PersistentIOError):
        pager.read_block(f, 0)
    assert device.stats.io_retries == 3


def test_checksum_errors_are_never_retried():
    device = BlockDevice(4096, NULL_DEVICE)
    pager = Pager(device, max_read_retries=8)
    f = device.create_file("f")
    f.allocate(1)
    device.write_block(f, 0, bytes(4096))
    corrupt_in_place(device, "f", 0)
    with pytest.raises(ChecksumError):
        pager.read_block(f, 0)
    assert device.stats.io_retries == 0


def test_tracer_span_sees_retries_and_charged_backoff():
    device = BlockDevice(4096, HDD)
    pager = Pager(device, max_read_retries=6)
    f = device.create_file("f")
    f.allocate(4)
    for no in range(4):
        device.write_block(f, no, bytes([no]) * 4096)
    tracer = Tracer()
    before = device.stats.snapshot()
    tracer.bind(pager)
    device.fault_model = DeviceFaultModel(seed=5, transient_error_rate=0.4)
    spans = []
    for i in range(12):
        pager.drop_last_block()
        with tracer.op("lookup", i, i):
            pager.read_block(f, i % 4)
        spans.append(tracer.events[-1])
    total_retries = sum(s["io_retries"] for s in spans)
    assert total_retries == device.stats.io_retries > 0
    # Bitwise µs reconciliation (since bind) survives latency-only charges.
    assert (sum(tracer.totals()["us"].values())
            == device.stats.diff(before).elapsed_us)
    tracer.unbind()


# -- quarantine & scrub ----------------------------------------------------

def test_quarantined_frames_survive_eviction_pressure():
    device = BlockDevice(4096, NULL_DEVICE)
    pool = make_buffer_pool(4, "lru")
    pager = Pager(device, buffer_pool=pool)
    f = device.create_file("f")
    f.allocate(16)
    payload = b"\x42" * 4096
    device.write_block(f, 0, payload)
    assert pager.quarantine("f", 0, payload)
    for no in range(1, 16):  # far more traffic than the pool holds
        pager.read_block(f, no)
    assert pool.is_pinned("f", 0)
    assert pool.get("f", 0) == payload
    pager.release_quarantine("f", 0)
    assert not pool.is_pinned("f", 0)


def test_quarantine_without_pool_reports_failure(pager):
    f = pager.device.create_file("f")
    f.allocate(1)
    assert pager.quarantine("f", 0, bytes(4096)) is False


def test_scrub_finds_exactly_the_corrupted_blocks():
    index, device, pager, _ = build("btree", with_wal=False)
    leaf = index._leaf_file.name
    corrupt_in_place(device, leaf, 1)
    corrupt_in_place(device, leaf, 4)
    report = pager.scrub()
    assert report.bad_blocks == [(leaf, 1), (leaf, 4)]
    assert not report.clean
    assert report.blocks_scanned == sum(
        f.num_blocks for f in device.files.values() if not f.memory_resident)


def test_scrub_charges_io_under_scrub_phase():
    index, device, pager, _ = build("btree", profile=HDD, with_wal=False)
    before = device.stats.snapshot()
    report = pager.scrub()
    delta = device.stats.diff(before)
    assert report.clean
    assert delta.reads_by_phase["scrub"] == report.blocks_scanned
    assert delta.time_by_phase["scrub"] > 0
    assert report.elapsed_us == pytest.approx(delta.time_by_phase["scrub"])


def test_scrub_releases_quarantines_that_verify_clean():
    device = BlockDevice(4096, NULL_DEVICE)
    pager = Pager(device, buffer_pool=make_buffer_pool(8, "lru"))
    f = device.create_file("f")
    f.allocate(2)
    good = b"\x11" * 4096
    device.write_block(f, 0, good)
    device.write_block(f, 1, good)
    pager.quarantine("f", 0, good)
    report = pager.scrub()
    assert report.clean
    assert ("f", 0) in report.released
    assert not pager.buffer_pool.is_pinned("f", 0)


# -- WAL-assisted repair ---------------------------------------------------

def test_repair_restores_byte_identical_contents():
    index, device, pager, wal = build("btree")
    ckpt = take_checkpoint(index, wal)
    for k in range(1, 99, 2):
        index.durable_insert(k, k + 1)
    wal.flush()
    leaf = index._leaf_file.name
    pristine = [bytes(b) for b in device.get_file(leaf).blocks]
    corrupt_in_place(device, leaf, 0)
    corrupt_in_place(device, leaf, 2)
    report = pager.scrub()
    result = repair_blocks(index, ckpt, report.bad_blocks, wal)
    assert result.repaired == [(leaf, 0), (leaf, 2)]
    assert not result.skipped
    assert device.stats.repaired_blocks == 2
    healed = [bytes(b) for b in device.get_file(leaf).blocks]
    assert healed == pristine
    assert pager.scrub().clean
    assert index.verify() == len(KEYS) + 49


def test_repair_preserves_unflushed_acknowledged_writes():
    """Records still in the group-commit buffer were acknowledged to the
    caller of durable_insert; repair must flush them before rebuilding,
    so zero acknowledged writes are lost."""
    index, device, pager, wal = build("btree", group_commit=64)
    ckpt = take_checkpoint(index, wal)
    inserted = list(range(1, 41, 2))
    for k in inserted:
        index.durable_insert(k, k + 1)
    assert wal.pending > 0  # the tail batch has NOT reached the device
    leaf = index._leaf_file.name
    corrupt_in_place(device, leaf, 0)
    repair_blocks(index, ckpt, [(leaf, 0)], wal)
    assert wal.pending == 0
    for k in inserted:
        assert index.lookup(k) == k + 1
    assert pager.scrub().clean


def test_repair_skips_wal_blocks_and_out_of_range():
    index, device, pager, wal = build("btree")
    ckpt = take_checkpoint(index, wal)
    index.durable_insert(1, 2)
    wal.flush()
    leaf = index._leaf_file.name
    out_of_range = device.get_file(leaf).num_blocks + 100
    result = repair_blocks(index, ckpt,
                           [(wal.file.name, 0), (leaf, out_of_range)], wal)
    assert not result.repaired
    assert sorted(result.skipped) == sorted(
        [(wal.file.name, 0), (leaf, out_of_range)])


def test_repair_charges_real_io():
    index, device, pager, wal = build("btree", profile=HDD)
    ckpt = take_checkpoint(index, wal)
    index.durable_insert(1, 2)
    wal.flush()
    leaf = index._leaf_file.name
    corrupt_in_place(device, leaf, 0)
    before = device.stats.snapshot()
    result = repair_blocks(index, ckpt, [(leaf, 0)], wal)
    delta = device.stats.diff(before)
    assert result.repair_us > 0
    assert delta.writes_by_phase.get("repair") == 1
    assert delta.reads_by_phase.get("log", 0) >= 1  # the WAL scan is paid


def test_restore_index_after_fault_escaping_a_mutation():
    index, device, pager, wal = build("btree", buffer_blocks=16)
    ckpt = take_checkpoint(index, wal)
    for k in range(1, 201, 2):
        index.durable_insert(k, k + 1)
    leaf = index._leaf_file.name
    corrupt_in_place(device, leaf, 3)
    result = restore_index(index, ckpt, wal)
    assert result.full_restore
    assert (leaf, 3) in result.repaired
    assert result.records_replayed == 100
    assert pager.scrub().clean
    assert index.verify() == len(KEYS) + 100
    for k in range(1, 201, 2):
        assert index.lookup(k) == k + 1


def test_self_healer_retry_vs_applied_vs_unhandled():
    index, device, pager, wal = build("btree")
    ckpt = take_checkpoint(index, wal)
    healer = SelfHealer(index, ckpt, wal)
    leaf = index._leaf_file.name
    # Non-mutating fault: repair in place, ask the runner to retry.
    assert healer.handle(ChecksumError(leaf, 0), mutating=False) == "retry"
    # Mutating fault: full restore, the op's record was replayed.
    assert healer.handle(ChecksumError(leaf, 0), mutating=True) == "applied"
    assert healer.repairs[1].full_restore
    # The WAL's own blocks cannot be rebuilt from themselves.
    assert healer.handle(ChecksumError(wal.file.name, 0)) is None
    # Non-storage exceptions are not the healer's business.
    assert healer.handle(ValueError("boom")) is None
    assert healer.unhandled == 1


def test_self_healer_respects_repair_budget():
    index, device, pager, wal = build("btree")
    ckpt = take_checkpoint(index, wal)
    healer = SelfHealer(index, ckpt, wal, max_repairs=1)
    leaf = index._leaf_file.name
    assert healer.handle(ChecksumError(leaf, 0)) == "retry"
    assert healer.handle(ChecksumError(leaf, 1)) is None
    assert healer.unhandled == 1


def test_healer_quarantines_persistent_bad_blocks():
    index, device, pager, wal = build("btree", buffer_blocks=32)
    ckpt = take_checkpoint(index, wal)
    healer = SelfHealer(index, ckpt, wal)
    leaf = index._leaf_file.name
    assert healer.handle(PersistentIOError(leaf, 0)) == "retry"
    assert pager.buffer_pool.is_pinned(leaf, 0)
    assert (leaf, 0) in pager.quarantined_blocks


def test_tracer_counts_checksum_failures_and_repairs():
    index, device, pager, wal = build("btree")
    ckpt = take_checkpoint(index, wal)
    tracer = Tracer()
    index.attach_tracer(tracer)
    key = KEYS[0]
    touched = []
    device.on_access_prev = device.on_access

    def spy(kind, fn, no, phase, cost, _inner=device.on_access):
        if kind == "r":
            touched.append((fn, no))
        if _inner is not None:
            _inner(kind, fn, no, phase, cost)

    device.on_access = spy
    index.lookup(key)
    device.on_access = device.on_access_prev
    file_name, block_no = touched[-1]
    corrupt_in_place(device, file_name, block_no)
    pager.drop_last_block()
    with tracer.op("lookup", key, 0):
        with pytest.raises(ChecksumError):
            index.lookup(key)
    assert tracer.events[-1]["checksum_failures"] == 1
    with tracer.op("repair", 0, 1):
        repair_blocks(index, ckpt, [(file_name, block_no)], wal)
    assert tracer.events[-1]["repaired_blocks"] == 1
    tracer.unbind()


# -- workload-level properties --------------------------------------------

def _oracle_results(ops, keys):
    index, _, _, _ = build("btree", with_wal=False, keys=keys)
    return [index.lookup(k) if kind == "lookup" else tuple(index.scan(k, 10))
            for kind, k in ops]


@settings(max_examples=12, deadline=None)
@given(st.integers(0, 2**31 - 1), st.floats(0.001, 0.2))
def test_transient_faults_never_change_answers(seed, rate):
    """A read-only stream under seeded transient faults (absorbed by the
    pager's retries) returns results identical to a fault-free run."""
    rng = random.Random(seed)
    keys = random_sorted_keys(600, seed=11)
    ops = [("lookup" if rng.random() < 0.7 else "scan",
            rng.choice(keys) if rng.random() < 0.8 else rng.randrange(10**12))
           for _ in range(120)]
    expected = _oracle_results(ops, keys)
    index, device, pager, _ = build("btree", with_wal=False, keys=keys)
    # At the top of the drawn rate range a streak longer than the default
    # retry budget (4) is statistically reachable (rate^5 per read over
    # ~10^3 reads) and would legitimately escalate to PersistentIOError.
    # The property under test is about *transient* faults, so give the
    # pager a budget no streak can exhaust: 0.2^41 ~ 2e-29 per read.
    pager.max_read_retries = 40
    device.fault_model = DeviceFaultModel(seed=seed, transient_error_rate=rate)
    got = [index.lookup(k) if kind == "lookup" else tuple(index.scan(k, 10))
           for kind, k in ops]
    assert got == expected
    assert device.stats.checksum_failures == 0


def test_fault_free_stats_are_bit_identical_with_checksums():
    """The checksum envelope costs zero extra block accesses and zero
    extra simulated time on the clean path."""
    def run(checksums):
        device = BlockDevice(4096, HDD, checksums=checksums)
        pager = Pager(device, buffer_pool=make_buffer_pool(16, "lru"))
        index = make_index("btree", pager)
        index.bulk_load(items_of(KEYS))
        for k in KEYS[:300]:
            index.lookup(k)
        index.scan(KEYS[0], 200)
        s = device.stats
        return (s.reads, s.writes, s.elapsed_us, dict(s.reads_by_phase),
                dict(s.writes_by_phase), s.io_retries, s.checksum_failures)

    assert run(True) == run(False)
    assert run(True) == run(True)


def test_differential_harness_under_transient_faults():
    """Full mutation stream (inserts/updates/deletes/scans) on a faulty
    device still matches the oracle exactly — retries are invisible."""
    index, device, pager, _ = build("btree", with_wal=False,
                                    keys=random_sorted_keys(500, seed=3))
    model = ReferenceModel(items_of(random_sorted_keys(500, seed=3)))
    device.fault_model = DeviceFaultModel(seed=9, transient_error_rate=0.01)
    run_differential(index, model, num_ops=300, seed=9)
    assert device.stats.io_retries >= 0  # absorbed, never surfaced
    assert device.stats.checksum_failures == 0


def test_run_workload_heals_corruption_mid_stream():
    """End to end: bit rot during a read-heavy stream is detected,
    repaired from checkpoint + WAL redo, and the answers stay correct."""
    keys = random_sorted_keys(2000, seed=13)
    index, device, pager, wal = build("btree", keys=keys, group_commit=8)
    ckpt = take_checkpoint(index, wal)
    healer = SelfHealer(index, ckpt, wal)
    rng = random.Random(13)
    taken = set(keys)
    insert_keys = iter([k for k in range(1, 10**4, 2) if k not in taken][:100])
    ops = []
    for i in range(400):
        if i % 8 == 7:
            ops.append(("insert", next(insert_keys)))
        else:
            ops.append(("lookup", rng.choice(keys)))
    device.fault_model = DeviceFaultModel(seed=21, bit_rot_rate=5e-3)
    result = run_workload(index, ops, workload="read_heavy", healer=healer,
                          validate=True)
    assert result.num_ops == 400
    assert result.checksum_failures > 0, "the sweep should have rotted a block"
    assert result.repaired_blocks >= 1
    assert result.healed_faults == len(healer.repairs)
    device.fault_model = None
    assert pager.scrub().clean
    check_full_agreement(index, ReferenceModel(
        items_of(keys) + [(k, k + 1) for kind, k in ops if kind == "insert"]))


def test_run_workload_healer_requires_batch_one():
    index, device, pager, wal = build("btree")
    ckpt = take_checkpoint(index, wal)
    healer = SelfHealer(index, ckpt, wal)
    with pytest.raises(ValueError):
        run_workload(index, [("lookup", KEYS[0])], batch=4, healer=healer)


def test_unhealable_fault_propagates():
    index, device, pager, _ = build("btree", with_wal=False)
    leaf = index._leaf_file.name
    key = KEYS[len(KEYS) // 2]
    touched = []
    device.on_access = lambda kind, fn, no, phase, cost: (
        touched.append((fn, no)) if kind == "r" else None)
    index.lookup(key)
    device.on_access = None
    file_name, block_no = touched[-1]
    corrupt_in_place(device, file_name, block_no)
    pager.drop_last_block()
    with pytest.raises(ChecksumError):  # no healer attached
        run_workload(index, [("lookup", key)])
