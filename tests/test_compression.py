"""Integration tests for compressed leaf pages (DESIGN.md Section 16).

Four properties, each checked per codec:

* **Correctness** — differential oracle streams against every index that
  accepts a ``codec`` parameter, plus scalar/vectorized charge identity
  on compressed layouts (the codec decode paths must stay pure CPU).
* **Raw identity** — building with an explicit ``codec="raw"`` charges
  the exact same ``StorageStats`` and writes the exact same file bytes
  as the default parameters: the codec layer costs raw layouts nothing.
* **Durability** — compressed pages round-trip ``save_index`` /
  ``load_index``, and corrupted compressed blocks (leaf and fence alike)
  are scrub-detected and repaired byte-identical from checkpoint + WAL.
* **Plumbing** — the fence zonemap's routing contract, and the bench
  layer's codec threading (``set_codec``, ``--codec``, the
  ``compression`` experiment).
"""

import dataclasses
import io

import pytest

from repro.bench import Scale, fresh_index, run_experiment
from repro.bench.config import set_codec
from repro.core import index_names, load_index, make_index, save_index
from repro.core.codecs import get_codec
from repro.core.vectorize import scalar_lookups
from repro.durability import WriteAheadLog, repair_blocks, take_checkpoint
from repro.models.zonemap import FenceZonemap
from repro.storage import HDD, NULL_DEVICE, BlockDevice, Pager

from tests.util import (MUTATION_KINDS, READONLY_KINDS, ReferenceModel,
                        items_of, random_sorted_keys, run_differential)

COMPRESSED = ("delta", "for")
#: Indexes with a compressed leaf layout (the others validate the codec
#: name and keep raw pages — fixed-stride model/slot addressing).
COMPRESSIBLE = ("btree", "pgm", "hybrid-pgm")
RAW_ONLY = ("fiting", "alex", "lipp", "plid")


def build(name, codec, keys, profile=NULL_DEVICE, **params):
    device = BlockDevice(4096, profile)
    index = make_index(name, Pager(device), codec=codec, **params)
    index.bulk_load(items_of(keys))
    return index, device


# -- differential correctness ----------------------------------------------

@pytest.mark.parametrize("codec", COMPRESSED)
@pytest.mark.parametrize("name", COMPRESSIBLE)
def test_compressed_stream_matches_oracle(name, codec):
    keys = random_sorted_keys(600, seed=5, key_space=10**9)
    index, _ = build(name, codec, keys)
    model = ReferenceModel(items_of(keys))
    kinds = READONLY_KINDS if "-" in name else MUTATION_KINDS
    run_differential(index, model, num_ops=400, seed=5, kinds=kinds)
    assert index.verify() == len(model)


@pytest.mark.parametrize("codec", COMPRESSED)
@pytest.mark.parametrize("name", RAW_ONLY)
def test_raw_only_indexes_accept_codec_and_stay_correct(name, codec):
    """Indexes without a compressed layout still validate the parameter
    (so ``--codec`` sweeps run every index) and behave identically."""
    keys = random_sorted_keys(300, seed=11, key_space=10**9)
    index, _ = build(name, codec, keys)
    model = ReferenceModel(items_of(keys))
    run_differential(index, model, num_ops=150, seed=11)
    with pytest.raises(ValueError, match="unknown codec"):
        build(name, "zstd", keys[:10])


@pytest.mark.parametrize("codec", COMPRESSED)
@pytest.mark.parametrize("name", COMPRESSIBLE)
def test_compressed_charges_identical_scalar_vs_vectorized(name, codec):
    """The codec decode paths are pure CPU: which in-page search runs
    never changes a single charged read (DESIGN.md Section 15)."""
    def stream(vectorized):
        keys = random_sorted_keys(400, seed=23, key_space=10**9)
        index, device = build(name, codec, keys, profile=HDD)
        model = ReferenceModel(items_of(keys))
        kinds = READONLY_KINDS if "-" in name else MUTATION_KINDS
        if vectorized:
            run_differential(index, model, num_ops=200, seed=23, kinds=kinds)
        else:
            with scalar_lookups():
                run_differential(index, model, num_ops=200, seed=23,
                                 kinds=kinds)
        return dataclasses.asdict(device.stats)

    assert stream(False) == stream(True)


def test_btree_compressed_survives_width_widening_mutations():
    """The FoR hazard cases: one far-off payload widens a whole residual
    column (update), and merged deltas can widen the key column even on
    delete — both must trigger (multi-way) splits, never corruption."""
    keys = random_sorted_keys(3000, seed=3, key_space=2**62)
    index, _ = build("btree", "for", keys)
    count = len(keys)
    # Updates that blow up the payload residual of a dense page.
    for key in keys[100:130]:
        assert index.update(key, 1)
    # Deletes from dense runs (delta-merge widening).
    for key in keys[500:560:2]:
        assert index.delete(key)
        count -= 1
    # An insert storm into one region forces repeated leaf splits.
    for i in range(700):
        index.insert(keys[-1] + 2 * i + 1, i)
        count += 1
    assert index.verify() == count
    for key in keys[100:130]:
        assert index.lookup(key) == 1


# -- raw identity ----------------------------------------------------------

def _raw_stream(name, explicit_raw):
    device = BlockDevice(4096, HDD)
    params = {"codec": "raw"} if explicit_raw else {}
    index = make_index(name, Pager(device), **params)
    keys = random_sorted_keys(400, seed=17, key_space=10**9)
    index.bulk_load(items_of(keys))
    model = ReferenceModel(items_of(keys))
    kinds = READONLY_KINDS if "-" in name else MUTATION_KINDS
    run_differential(index, model, num_ops=150, seed=17, kinds=kinds)
    files = {f.name: [bytes(b) for b in f.blocks]
             for f in device.files.values()}
    return dataclasses.asdict(device.stats), files


@pytest.mark.parametrize(
    "name", index_names(include_plid=True)
    + [n for n in index_names(include_hybrids=True) if "-" in n])
def test_explicit_raw_codec_is_bit_identical_to_default(name):
    """codec="raw" must charge identical stats AND write identical bytes
    to the pre-codec-layer default construction, on every index."""
    default_stats, default_files = _raw_stream(name, explicit_raw=False)
    raw_stats, raw_files = _raw_stream(name, explicit_raw=True)
    assert raw_stats == default_stats
    assert raw_files == default_files


# -- persistence & repair --------------------------------------------------

@pytest.mark.parametrize("codec", COMPRESSED)
@pytest.mark.parametrize("name", COMPRESSIBLE)
def test_compressed_index_save_load_roundtrip(name, codec):
    keys = random_sorted_keys(3000, seed=29)
    index, _ = build(name, codec, keys)
    assert index.init_params()["codec"] == codec
    buffer = io.BytesIO()
    save_index(index, buffer)
    buffer.seek(0)
    reopened = load_index(buffer)
    assert reopened.init_params()["codec"] == codec
    for key in keys[::97]:
        assert reopened.lookup(key) == key + 1
    assert reopened.lookup(keys[-1] + 1) is None
    assert reopened.verify() == len(keys)


@pytest.mark.parametrize("codec", COMPRESSED)
def test_btree_compressed_repair_is_byte_identical(codec):
    """Checkpoint, mutate through the WAL, corrupt compressed leaf
    blocks, scrub, repair: healed bytes equal the pristine file."""
    keys = random_sorted_keys(2000, seed=7)
    index, device = build("btree", codec, keys)
    pager = index.pager
    wal = WriteAheadLog(pager, group_commit=4)
    index.attach_wal(wal)
    ckpt = take_checkpoint(index, wal)
    for k in range(1, 99, 2):
        index.durable_insert(k, k + 1)
    wal.flush()
    leaf = index._leaf_file.name
    pristine = [bytes(b) for b in device.get_file(leaf).blocks]
    for block_no in (0, 2):
        handle = device.get_file(leaf)
        bad = bytearray(handle.blocks[block_no])
        bad[200] ^= 0x5A
        handle.blocks[block_no] = bad
    report = pager.scrub()
    assert sorted(report.bad_blocks) == [(leaf, 0), (leaf, 2)]
    result = repair_blocks(index, ckpt, report.bad_blocks, wal)
    assert sorted(result.repaired) == [(leaf, 0), (leaf, 2)]
    healed = [bytes(b) for b in device.get_file(leaf).blocks]
    assert healed == pristine
    assert pager.scrub().clean
    assert index.verify() == len(keys) + 49


@pytest.mark.parametrize("name", ("pgm", "hybrid-pgm"))
def test_compressed_fence_and_data_repair(name):
    """Corrupt one block of every compressed file (fence pages included)
    and verify scrub + repair restore each byte-identically."""
    keys = random_sorted_keys(2000, seed=13)
    index, device = build(name, "for", keys)
    pager = index.pager
    wal = WriteAheadLog(pager, group_commit=4)
    index.attach_wal(wal)
    ckpt = take_checkpoint(index, wal)
    targets = [fname for fname, role in index.file_roles().items()
               if device.get_file(fname).num_blocks > 0]
    pristine = {fname: [bytes(b) for b in device.get_file(fname).blocks]
                for fname in targets}
    for fname in targets:
        handle = device.get_file(fname)
        block_no = handle.num_blocks - 1
        bad = bytearray(handle.blocks[block_no])
        bad[3] ^= 0xFF
        handle.blocks[block_no] = bad
    report = pager.scrub()
    assert len(report.bad_blocks) == len(targets)
    repair_blocks(index, ckpt, report.bad_blocks, wal)
    for fname in targets:
        healed = [bytes(b) for b in device.get_file(fname).blocks]
        assert healed == pristine[fname], fname
    assert pager.scrub().clean
    assert index.verify() == len(keys)
    for key in keys[::101]:
        assert index.lookup(key) == key + 1


# -- fence zonemap ---------------------------------------------------------

def _zonemap_over(fences, codec="for", block_size=256):
    device = BlockDevice(block_size, HDD)
    pager = Pager(device)
    file = device.create_file("fences")
    return FenceZonemap.build(pager, file, fences, codec), device


def test_zonemap_routes_like_a_ceiling_search():
    from bisect import bisect_left
    fences = [10 * i + 5 for i in range(1000)]  # multi-page under 256B blocks
    zonemap, _ = _zonemap_over(fences)
    assert zonemap.num_blocks > 1
    assert zonemap.verify() == len(fences)
    probes = list(range(0, 10_020, 7)) + [0, fences[-1], fences[-1] + 1]
    for key in probes:
        expected = bisect_left(fences, key)
        got = zonemap.route(key)
        assert got == (expected if expected < len(fences) else None), key
    batched = zonemap.route_many(probes)
    assert batched == {key: zonemap.route(key) for key in probes}


def test_zonemap_route_many_charges_one_span_in_both_modes():
    fences = [10 * i + 5 for i in range(1000)]
    zonemap, device = _zonemap_over(fences)
    probes = list(range(0, 10_000, 11))

    before = device.stats.snapshot()
    vectorized = zonemap.route_many(probes)
    vec_delta = device.stats.diff(before)

    before = device.stats.snapshot()
    with scalar_lookups():
        scalar = zonemap.route_many(probes)
    scalar_delta = device.stats.diff(before)

    assert scalar == vectorized
    assert (scalar_delta.reads, scalar_delta.read_positionings) == \
        (vec_delta.reads, vec_delta.read_positionings)
    # One coalesced span: far fewer positionings than fence pages read.
    assert vec_delta.read_positionings < vec_delta.reads


def test_zonemap_meta_roundtrip_and_verify_catches_drift():
    fences = [3, 7, 100, 2**62]
    zonemap, device = _zonemap_over(fences, block_size=4096)
    meta = zonemap.to_meta()
    attached = FenceZonemap.attach(zonemap.pager, zonemap.file, "for", meta)
    assert attached.route(8) == 2
    assert attached.verify() == 4
    attached.page_lasts[-1] -= 1  # in-memory boundary out of sync
    with pytest.raises(AssertionError):
        attached.verify()


# -- bench plumbing --------------------------------------------------------

TINY = Scale(n_read=3000, n_write_bulk=1200, n_write_ops=500,
             n_lookup_ops=80, n_scan_ops=10)


def test_set_codec_threads_through_fresh_index():
    try:
        set_codec("for")
        setup = fresh_index("btree", "ycsb", "lookup_only", TINY)
        assert setup.index.init_params()["codec"] == "for"
        # An explicit per-cell codec wins over the global override.
        pinned = fresh_index("btree", "ycsb", "lookup_only", TINY,
                             index_params={"codec": "delta"})
        assert pinned.index.init_params()["codec"] == "delta"
    finally:
        set_codec("raw")
    default = fresh_index("btree", "ycsb", "lookup_only", TINY)
    assert "codec" not in default.index.init_params()
    with pytest.raises(ValueError, match="unknown codec"):
        set_codec("zstd")


def test_compression_experiment_shape():
    from repro.bench.experiments import EXPERIMENTS, exp_compression
    assert EXPERIMENTS["compression"] is exp_compression
    # A 4-frame pool: at this toy scale a larger pool absorbs the whole
    # index and every cell degenerates to zero charged reads.
    result = exp_compression(TINY, buffer_blocks=4)
    cells = {(r["device"], r["index"], r["codec"]) for r in result.rows}
    assert len(cells) == len(result.rows) == 2 * 3 * 3
    for row in result.rows:
        if row["codec"] == "raw":
            assert row["entries_ratio"] == 1.0
            assert row["blocks_ratio"] == 1.0
            assert row["decoded_entries_per_lookup"] == 0.0
        else:
            # Compression never loses density, even at tiny scale.
            assert row["entries_ratio"] > 1.0
            assert row["blocks_ratio"] <= 1.0
            assert row["decoded_entries_per_lookup"] > 0.0
        assert row["model_us_per_lookup"] > 0
        assert row["sim_us_per_lookup"] > 0


def test_compression_experiment_survives_full_caching():
    """The 32-frame pool floor absorbs the whole toy index — zero
    charged reads must report ratio 1.0, not divide by zero."""
    result = run_experiment("compression", TINY)
    for row in result.rows:
        assert row["blocks_per_lookup"] == 0.0
        assert row["blocks_ratio"] == 1.0


def test_cli_codec_flag(capsys):
    from repro.bench.__main__ import main
    assert main(["run", "table3", "--scale", "0.02", "--codec", "for"]) == 0
    out = capsys.readouterr().out
    assert "Table 3" in out
    # The global sticks for the process: clear it for later tests.
    set_codec("raw")
