"""LIPP-specific tests: FMCD nodes, conflict children, path statistics."""

import random

import pytest

from repro.core.lipp import SLOT_DATA, SLOT_NODE, SLOT_NULL, LippIndex
from repro.storage import NULL_DEVICE, BlockDevice, Pager

from tests.util import items_of, random_sorted_keys


def fresh(**kwargs):
    device = BlockDevice(4096, NULL_DEVICE)
    return LippIndex(Pager(device), **kwargs), device


def test_parameter_validation():
    device = BlockDevice(4096, NULL_DEVICE)
    with pytest.raises(ValueError):
        LippIndex(Pager(device), rebuild_factor=0)


def test_no_memory_resident_inner():
    """The paper excludes LIPP from the hybrid case (Section 6.2)."""
    index, _ = fresh()
    index.bulk_load(items_of([1, 2, 3]))
    with pytest.raises(NotImplementedError):
        index.set_inner_memory_resident(True)


def test_exact_positions_on_uniform_data():
    """FMCD on uniform data places nearly every key at depth 1."""
    index, _ = fresh()
    keys = random_sorted_keys(20_000, seed=1)
    index.bulk_load(items_of(keys))
    assert index.height() <= 3


def test_conflict_insert_creates_child_node():
    index, _ = fresh()
    keys = list(range(0, 100_000, 100))
    index.bulk_load(items_of(keys))
    conflicts_before = index.num_conflict_nodes
    # Keys immediately adjacent to existing keys predict to occupied slots.
    inserted = []
    for key in range(1, 5001, 100):
        index.insert(key, key + 1)
        inserted.append(key)
    assert index.num_conflict_nodes > conflicts_before
    for key in inserted:
        assert index.lookup(key) == key + 1
    for key in keys[:60]:
        assert index.lookup(key) == key + 1


def test_insert_into_null_slot_no_conflict():
    index, _ = fresh()
    # Widely spaced keys: a key placed in the middle of a huge gap lands
    # in a NULL slot.
    keys = [i * 10**9 for i in range(1, 2000)]
    index.bulk_load(items_of(keys))
    before = index.num_conflict_nodes
    index.insert(keys[1000] + 500_000_000, 7)
    assert index.lookup(keys[1000] + 500_000_000) == 7
    assert index.num_conflict_nodes == before


def test_path_statistics_updated_on_insert():
    index, _ = fresh()
    keys = random_sorted_keys(5000, seed=2)
    index.bulk_load(items_of(keys))
    root_before = index._read_header(index.root_block)
    key = keys[100] + 1
    assert key not in set(keys)
    index.insert(key, key + 1)
    root_after = index._read_header(index.root_block)
    assert root_after.num_inserts == root_before.num_inserts + 1
    assert root_after.item_count == root_before.item_count + 1


def test_every_insert_writes_all_path_headers():
    device = BlockDevice(4096)
    pager = Pager(device)
    index = LippIndex(pager)
    keys = random_sorted_keys(5000, seed=3)
    index.bulk_load(items_of(keys))
    writes_before = device.stats.writes_by_phase.get("maintenance", 0)
    key = keys[42] + 1
    index.insert(key, key + 1)
    maintenance_writes = device.stats.writes_by_phase.get("maintenance", 0) - writes_before
    assert maintenance_writes >= 1  # at least the root header


def test_subtree_rebuild_triggers():
    index, _ = fresh(rebuild_factor=0.5)
    keys = list(range(0, 40_000, 40))
    index.bulk_load(items_of(keys))
    present = set(keys)
    rng = random.Random(4)
    while len(present) < 3000:
        key = rng.randrange(40_000)
        if key in present:
            continue
        present.add(key)
        index.insert(key, key + 1)
    assert index.num_rebuilds >= 1
    for key in rng.sample(sorted(present), 400):
        assert index.lookup(key) == key + 1


def test_rebuild_reduces_conflict_chains():
    index, _ = fresh(rebuild_factor=0.25)
    keys = list(range(0, 10_000, 10))
    index.bulk_load(items_of(keys))
    present = set(keys)
    rng = random.Random(5)
    while len(present) < 2000:
        key = rng.randrange(10_000)
        if key in present:
            continue
        present.add(key)
        index.insert(key, key + 1)
    # After rebuilds the tree must stay shallow relative to insert volume.
    assert index.height() <= 6


def test_node_slot_overallocation():
    """The 5x slot allocation for small nodes (paper O11)."""
    index, device = fresh()
    keys = random_sorted_keys(10_000, seed=6)
    index.bulk_load(items_of(keys))
    header = index._read_header(index.root_block)
    assert header.num_slots == 5 * len(keys)


def test_slot_flags_are_consistent():
    index, _ = fresh()
    keys = random_sorted_keys(3000, seed=7)
    index.bulk_load(items_of(keys))
    header = index._read_header(index.root_block)
    seen = 0
    for slot in range(header.num_slots):
        flag, slot_key, payload = index._read_slot(index.root_block, slot)
        assert flag in (SLOT_NULL, SLOT_DATA, SLOT_NODE)
        if flag == SLOT_DATA:
            seen += 1
            assert payload == slot_key + 1
        elif flag == SLOT_NODE:
            child_header = index._read_header(slot_key)
            seen += child_header.item_count
    assert seen == len(keys)


def test_lookup_cost_is_two_blocks_per_level():
    """Table 2: LIPP lookup = 2 log N — header + slot per level."""
    device = BlockDevice(4096)
    pager = Pager(device)
    index = LippIndex(pager)
    keys = random_sorted_keys(30_000, seed=8)
    index.bulk_load(items_of(keys))
    costs = []
    for key in random.Random(9).sample(keys, 50):
        pager.drop_last_block()
        before = device.stats.reads
        index.lookup(key)
        costs.append(device.stats.reads - before)
    assert min(costs) >= 2
    assert sum(costs) / len(costs) <= 2 * index.height()


def test_scan_traverses_children_in_order():
    index, _ = fresh()
    keys = sorted(random.Random(10).sample(range(10**7), 5000))
    index.bulk_load(items_of(keys))
    present = sorted(set(keys))
    # Force conflict children, then scan across them.
    extra = [k + 1 for k in keys[:300] if k + 1 not in set(keys)]
    for key in extra:
        index.insert(key, key + 1)
    present = sorted(set(present) | set(extra))
    assert index.scan(present[0], 500) == [(k, k + 1) for k in present[:500]]


def test_insert_requires_bulk_load():
    index, _ = fresh()
    with pytest.raises(RuntimeError):
        index.insert(1, 2)
