"""The vectorized lookup machinery (DESIGN.md §15).

Three layers of guarantees, each tested here:

* **Model arithmetic is bit-identical.**  ``LinearModel.predict_many``
  must reproduce per-key ``predict`` exactly — including keys adjacent
  to 2**64, where a naive float subtraction loses thousands of
  positions — because the two paths must probe identical slots to
  charge identical I/O.
* **Zero-copy codecs agree with the materializing ones.**
  ``keys_view``/``entry_at`` are strided views over raw block bytes;
  ``np.searchsorted`` over a view must land exactly where bisection
  over ``unpack_entries`` tuples lands, for both 16-byte leaf entries
  and non-u64-aligned strides.
* **Vectorization never changes the charged cost model.**  For every
  registered index the same differential stream (mutations included,
  so frame-cache invalidation is exercised) must leave the device's
  ``StorageStats`` bit-identical between the scalar and vectorized
  lookup paths.
"""

import bisect
import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import index_names, make_index, scalar_lookups
from repro.core.serial import (
    ENTRY_SIZE,
    _u64_struct,
    entry_at,
    keys_view,
    pack_entries,
    payload_at,
    unpack_entries,
)
from repro.models import LinearModel, anchored_diff
from repro.storage import HDD, BlockDevice, Pager

from tests.util import (
    MUTATION_KINDS,
    READONLY_KINDS,
    ReferenceModel,
    items_of,
    random_sorted_keys,
    run_differential,
)

U64_MAX = 2**64 - 1

# Keys clustered against both ends of the uint64 range, where float64
# cancellation bites, plus the full range.
edge_keys = st.one_of(
    st.integers(0, U64_MAX),
    st.integers(U64_MAX - 2**16, U64_MAX),
    st.integers(0, 2**16),
)
# Realistic model coefficients: |slope| <= 1e6 positions/key over a
# 2**64 key span stays finite in float64.
slopes = st.floats(-1e6, 1e6, allow_nan=False)
intercepts = st.floats(-1e9, 1e9, allow_nan=False)


# ---------------------------------------------------------------------------
# Batched model prediction == scalar model prediction, bit for bit
# ---------------------------------------------------------------------------
@settings(max_examples=200, deadline=None)
@given(keys=st.lists(edge_keys, min_size=1, max_size=32),
       anchor=edge_keys, slope=slopes, intercept=intercepts)
def test_predict_many_matches_predict_bitwise(keys, anchor, slope, intercept):
    model = LinearModel(slope=slope, intercept=intercept, anchor=anchor)
    batched = model.predict_many(keys)
    assert batched.dtype == np.float64
    for key, got in zip(keys, batched.tolist()):
        expected = model.predict(key)
        # Bit-identity, not closeness: repr distinguishes every float64.
        assert repr(got) == repr(expected), (key, anchor, slope, intercept)


@settings(max_examples=200, deadline=None)
@given(keys=st.lists(edge_keys, min_size=1, max_size=32),
       anchor=edge_keys, slope=slopes, intercept=intercepts,
       size=st.integers(1, 2**20))
def test_predict_clamped_many_matches_scalar(keys, anchor, slope, intercept,
                                             size):
    model = LinearModel(slope=slope, intercept=intercept, anchor=anchor)
    slots = model.predict_clamped_many(keys, size).tolist()
    for key, got in zip(keys, slots):
        assert got == model.predict_clamped(key, size)


@settings(max_examples=200, deadline=None)
@given(key=edge_keys, anchor=edge_keys)
def test_anchored_diff_is_exact_integer_difference(key, anchor):
    got = anchored_diff(np.array([key], dtype=np.uint64), anchor)[0]
    assert repr(float(got)) == repr(float(key - anchor))


# ---------------------------------------------------------------------------
# Zero-copy key views == materialized tuples
# ---------------------------------------------------------------------------
sorted_entries = st.lists(
    st.integers(0, U64_MAX), min_size=1, max_size=200, unique=True
).map(lambda ks: [(k, (k + 1) & U64_MAX) for k in sorted(ks)])


@settings(max_examples=200, deadline=None)
@given(items=sorted_entries, probe=edge_keys)
def test_keys_view_searchsorted_matches_unpacked_bisect(items, probe):
    data = pack_entries(items)
    view = keys_view(data, len(items))
    assert view.base is not None  # a view over data, never a copy
    unpacked = unpack_entries(data, len(items))
    assert unpacked == items
    ref_keys = [k for k, _p in unpacked]
    assert view.tolist() == ref_keys
    for side in ("left", "right"):
        got = int(np.searchsorted(view, np.uint64(probe), side=side))
        expected = (bisect.bisect_left if side == "left"
                    else bisect.bisect_right)(ref_keys, probe)
        assert got == expected
    slot = max(0, int(np.searchsorted(view, np.uint64(probe), "right")) - 1)
    assert entry_at(data, slot) == items[slot]
    assert payload_at(data, slot) == items[slot][1]


@settings(max_examples=100, deadline=None)
@given(keys=st.lists(st.integers(0, U64_MAX), min_size=1, max_size=64,
                     unique=True),
       probe=edge_keys)
def test_keys_view_handles_unaligned_strides(keys, probe):
    """12-byte records (u64 key + u32 child) — the B+-tree inner layout —
    go through the record-dtype branch of keys_view."""
    import struct

    keys = sorted(keys)
    data = b"".join(struct.pack("<QI", k, i) for i, k in enumerate(keys))
    view = keys_view(data, len(keys), stride=12)
    assert view.tolist() == keys
    got = int(np.searchsorted(view, np.uint64(probe), side="right"))
    assert got == bisect.bisect_right(keys, probe)


def test_keys_view_offset_and_empty():
    items = [(10, 11), (20, 21), (30, 31)]
    data = b"\x00" * 32 + pack_entries(items)
    assert keys_view(data, 3, offset=32).tolist() == [10, 20, 30]
    assert keys_view(b"", 0).size == 0


# ---------------------------------------------------------------------------
# pack_entries flattening and the bounded Struct cache
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("count", [0, 1, 3, 5, 7, 255, 256, 257])
def test_pack_entries_round_trips_odd_batches(count):
    items = [(2 * i + 1, (2 * i + 1) * 3) for i in range(count)]
    data = pack_entries(items)
    assert len(data) == count * ENTRY_SIZE
    assert unpack_entries(data, count) == items


def test_u64_struct_cache_is_bounded_and_hit():
    info = _u64_struct.cache_info()
    assert info.maxsize == 1024  # bounded: weird counts cannot grow it forever
    assert _u64_struct(14) is _u64_struct(14)  # same object on repeat
    assert _u64_struct.cache_info().hits > info.hits
    assert _u64_struct(6).size == 48


# ---------------------------------------------------------------------------
# Charged I/O is bit-identical between scalar and vectorized paths
# ---------------------------------------------------------------------------
ALL_INDEXES = (index_names(include_plid=True)
               + [n for n in index_names(include_hybrids=True) if "-" in n])


def _charged_stream(name, vectorized, seed=29):
    """One deterministic differential stream; returns the device's full
    stats snapshot.  ``run_differential`` itself asserts every result
    against the oracle, so content agreement rides along for free."""
    device = BlockDevice(4096, HDD)
    index = make_index(name, Pager(device))
    keys = random_sorted_keys(300, seed=seed, key_space=10**9)
    index.bulk_load(items_of(keys))
    model = ReferenceModel(items_of(keys))
    kinds = READONLY_KINDS if "-" in name else MUTATION_KINDS
    if vectorized:
        run_differential(index, model, num_ops=200, seed=seed, kinds=kinds)
    else:
        with scalar_lookups():
            run_differential(index, model, num_ops=200, seed=seed,
                             kinds=kinds)
    return dataclasses.asdict(device.stats)


@pytest.mark.parametrize("name", ALL_INDEXES)
def test_charges_bit_identical_scalar_vs_vectorized(name):
    scalar = _charged_stream(name, vectorized=False)
    vector = _charged_stream(name, vectorized=True)
    assert scalar == vector
