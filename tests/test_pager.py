"""Unit tests for the byte-addressed pager and its cache hierarchy."""

import pytest

from repro.storage import HDD, BlockDevice, BufferPool, Pager


def _prepared(pager, nblocks=4, name="f"):
    f = pager.device.create_file(name)
    f.allocate(nblocks)
    return f


def test_read_bytes_within_one_block(pager):
    f = _prepared(pager)
    block = bytearray(4096)
    block[100:105] = b"hello"
    pager.write_block(f, 0, bytes(block))
    reads_before = pager.stats.reads
    pager.drop_last_block()
    assert pager.read_bytes(f, 100, 5) == b"hello"
    assert pager.stats.reads - reads_before == 1


def test_read_bytes_spanning_blocks(pager):
    f = _prepared(pager)
    pager.write_bytes(f, 4090, b"0123456789AB")  # crosses block 0 -> 1
    pager.drop_last_block()
    assert pager.read_bytes(f, 4090, 12) == b"0123456789AB"


def test_read_bytes_counts_covering_blocks(pager):
    f = _prepared(pager)
    pager.write_bytes(f, 0, bytes(3 * 4096))
    pager.drop_last_block()
    before = pager.stats.reads
    pager.read_bytes(f, 100, 2 * 4096)  # spans 3 blocks
    assert pager.stats.reads - before == 3


def test_zero_length_read(pager):
    f = _prepared(pager)
    assert pager.read_bytes(f, 0, 0) == b""


def test_negative_range_rejected(pager):
    f = _prepared(pager)
    with pytest.raises(ValueError):
        pager.read_bytes(f, -1, 4)
    with pytest.raises(ValueError):
        pager.read_bytes(f, 0, -4)
    with pytest.raises(ValueError):
        pager.write_bytes(f, -1, b"x")


def test_partial_block_write_is_read_modify_write(pager):
    f = _prepared(pager)
    pager.write_block(f, 0, b"\xAA" * 4096)
    pager.drop_last_block()
    pager.write_bytes(f, 10, b"\x00\x00")
    data = pager.read_block(f, 0)
    assert data[9] == 0xAA
    assert data[10:12] == b"\x00\x00"
    assert data[12] == 0xAA


def test_full_block_write_skips_read(pager):
    f = _prepared(pager)
    before = pager.stats.reads
    pager.write_bytes(f, 4096, bytes(4096))  # exactly block 1
    assert pager.stats.reads == before


def test_last_block_reuse(pager):
    f = _prepared(pager)
    pager.write_block(f, 0, bytes(4096))
    before = pager.stats.reads
    pager.read_bytes(f, 0, 8)
    pager.read_bytes(f, 100, 8)   # same block: served from the one-block cache
    assert pager.stats.reads == before  # write primed the cache


def test_drop_last_block_forces_refetch(pager):
    f = _prepared(pager)
    pager.write_block(f, 0, bytes(4096))
    pager.drop_last_block()
    before = pager.stats.reads
    pager.read_bytes(f, 0, 8)
    assert pager.stats.reads == before + 1


def test_reuse_disabled(device):
    pager = Pager(device, reuse_last_block=False)
    f = device.create_file("f")
    f.allocate(1)
    pager.write_block(f, 0, bytes(4096))
    before = pager.stats.reads
    pager.read_bytes(f, 0, 8)
    pager.read_bytes(f, 0, 8)
    assert pager.stats.reads == before + 2


def test_buffer_pool_serves_repeat_reads():
    device = BlockDevice(4096, HDD)
    pager = Pager(device, buffer_pool=BufferPool(8), reuse_last_block=False)
    f = device.create_file("f")
    f.allocate(2)
    pager.write_block(f, 0, bytes(4096))
    pager.write_block(f, 1, bytes(4096))
    before = device.stats.reads
    pager.read_block(f, 0)
    pager.read_block(f, 1)
    pager.read_block(f, 0)
    assert device.stats.reads == before  # writes were write-through cached


def test_buffer_pool_invalidation_via_pager():
    device = BlockDevice(4096, HDD)
    pool = BufferPool(8)
    pager = Pager(device, buffer_pool=pool)
    f = device.create_file("f")
    f.allocate(1)
    pager.write_block(f, 0, bytes(4096))
    pager.invalidate_file("f")
    assert pool.get("f", 0) is None


def test_phase_context_manager(pager):
    f = _prepared(pager)
    with pager.phase("search"):
        pager.read_block(f, 0)
        with pager.phase("smo"):
            pager.read_block(f, 1)
        pager.read_block(f, 2)
    assert pager.stats.reads_by_phase["search"] == 2
    assert pager.stats.reads_by_phase["smo"] == 1
    assert pager.device.phase == "default"


def test_memory_resident_file_bypasses_caches(pager):
    f = _prepared(pager)
    f.memory_resident = True
    pager.write_block(f, 0, b"\x01" * 4096)
    assert pager.read_block(f, 0) == b"\x01" * 4096
    assert pager.stats.reads == 0
    assert pager.stats.writes == 0


def test_memory_resident_reads_see_unflushed_dirty_frames():
    """Free reads under a write-back pager must serve the dirty frame —
    the device copy is stale until the next flush."""
    device = BlockDevice(4096, HDD)
    pager = Pager(device, buffer_pool=BufferPool(8), write_back=True)
    f = _prepared(pager)
    pager.write_block(f, 0, b"\x42" * 4096)   # dirty frame, not on device
    assert bytes(f.blocks[0]) != b"\x42" * 4096
    f.memory_resident = True
    hits_before = pager.buffer_pool.hits
    assert pager.read_block(f, 0) == b"\x42" * 4096
    assert pager.read_span(f, [0]) == {0: b"\x42" * 4096}
    # The peek is recency- and counter-neutral: not a cache probe.
    assert pager.buffer_pool.hits == hits_before
    assert pager.stats.reads == 0
    # Once flushed, the device copy is current and serves as before.
    f.memory_resident = False
    pager.flush()
    f.memory_resident = True
    assert pager.read_block(f, 0) == b"\x42" * 4096
