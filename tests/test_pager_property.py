"""Property tests: the pager's byte-addressed I/O against a flat model."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import NULL_DEVICE, BlockDevice, Pager

BLOCK = 256  # small blocks so ranges cross boundaries often
FILE_BLOCKS = 8
SIZE = BLOCK * FILE_BLOCKS


@settings(max_examples=200, deadline=None)
@given(st.lists(
    st.tuples(st.sampled_from(["read", "write"]),
              st.integers(0, SIZE - 1),
              st.integers(1, 600)),
    max_size=40))
def test_byte_io_matches_flat_reference(ops):
    device = BlockDevice(BLOCK, NULL_DEVICE)
    pager = Pager(device)
    handle = device.create_file("f")
    handle.allocate(FILE_BLOCKS)
    reference = bytearray(SIZE)
    fill = 0
    for kind, offset, length in ops:
        length = min(length, SIZE - offset)
        if length <= 0:
            continue
        if kind == "write":
            fill = (fill + 1) % 251
            data = bytes([fill]) * length
            pager.write_bytes(handle, offset, data)
            reference[offset : offset + length] = data
        else:
            assert pager.read_bytes(handle, offset, length) == bytes(
                reference[offset : offset + length])
    # Final full-file comparison.
    assert pager.read_bytes(handle, 0, SIZE) == bytes(reference)


@settings(max_examples=100, deadline=None)
@given(st.integers(0, SIZE - 1), st.integers(0, 600))
def test_read_never_exceeds_covering_blocks(offset, length):
    device = BlockDevice(BLOCK, NULL_DEVICE)
    pager = Pager(device, reuse_last_block=False)
    handle = device.create_file("f")
    handle.allocate(FILE_BLOCKS)
    length = min(length, SIZE - offset)
    if length == 0:
        return
    before = device.stats.reads
    pager.read_bytes(handle, offset, length)
    covering = (offset + length - 1) // BLOCK - offset // BLOCK + 1
    assert device.stats.reads - before == covering
