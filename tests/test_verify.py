"""Tests for the verify() integrity checkers and the zipfian workloads."""

import random

import pytest

from repro.core import index_names, make_index
from repro.storage import HDD, NULL_DEVICE, BlockDevice, Pager
from repro.workloads import WORKLOADS, build_workload

from tests.util import items_of, random_sorted_keys

ALL_INDEXES = index_names(include_plid=True)
KEYS = random_sorted_keys(6000, seed=13)


@pytest.mark.parametrize("name", ALL_INDEXES)
def test_verify_counts_bulk_entries(name):
    index = make_index(name, Pager(BlockDevice(4096, NULL_DEVICE)))
    index.bulk_load(items_of(KEYS))
    assert index.verify() == len(KEYS)


@pytest.mark.parametrize("name", ALL_INDEXES)
def test_verify_tracks_crud(name):
    index = make_index(name, Pager(BlockDevice(4096, NULL_DEVICE)))
    index.bulk_load(items_of(KEYS))
    rng = random.Random(1)
    present = set(KEYS)
    while len(present) < len(KEYS) + 800:
        key = rng.randrange(10**12)
        if key in present:
            continue
        present.add(key)
        index.insert(key, key + 1)
    for key in rng.sample(KEYS, 120):
        assert index.delete(key)
        present.discard(key)
    index.update(next(iter(present)), 5)
    assert index.verify() == len(present)


@pytest.mark.parametrize("name", ALL_INDEXES)
def test_verify_charges_no_io(name):
    device = BlockDevice(4096, HDD)
    index = make_index(name, Pager(device))
    index.bulk_load(items_of(KEYS))
    before = device.stats.snapshot()
    index.verify()
    delta = device.stats.diff(before)
    assert delta.reads == 0
    assert delta.elapsed_us == 0.0


def test_verify_detects_corruption():
    index = make_index("btree", Pager(BlockDevice(4096, NULL_DEVICE)))
    index.bulk_load(items_of(KEYS))
    # Corrupt a leaf block directly (swap two keys).
    leaf_file = index._leaf_file
    block = bytearray(leaf_file.blocks[0])
    block[16:24], block[32:40] = block[32:40], block[16:24]
    leaf_file.blocks[0] = block
    with pytest.raises(AssertionError):
        index.verify()


# -- zipfian workloads -----------------------------------------------------------

def test_zipfian_lookups_are_skewed():
    import numpy as np
    keys = np.asarray(random_sorted_keys(5000, seed=2), dtype=np.uint64)
    _, uniform_ops = build_workload(WORKLOADS["lookup_only"], keys, 4000,
                                    lookup_distribution="uniform")
    _, zipf_ops = build_workload(WORKLOADS["lookup_only"], keys, 4000,
                                 lookup_distribution="zipfian", zipf_s=0.9)
    def top_share(ops):
        from collections import Counter
        counts = Counter(key for _, key in ops)
        top = sum(c for _, c in counts.most_common(50))
        return top / len(ops)
    assert top_share(zipf_ops) > 3 * top_share(uniform_ops)


def test_zipfian_keys_are_valid():
    import numpy as np
    keys = np.asarray(random_sorted_keys(3000, seed=3), dtype=np.uint64)
    existing = set(int(k) for k in keys)
    _, ops = build_workload(WORKLOADS["lookup_only"], keys, 500,
                            lookup_distribution="zipfian")
    assert all(key in existing for _, key in ops)


def test_zipfian_mixed_workload_targets_present_keys():
    import numpy as np
    keys = np.asarray(random_sorted_keys(3000, seed=4), dtype=np.uint64)
    bulk, ops = build_workload(WORKLOADS["balanced"], keys, 400,
                               lookup_distribution="zipfian")
    present = {k for k, _ in bulk}
    for kind, key in ops:
        if kind == "insert":
            present.add(key)
        else:
            assert key in present


def test_invalid_distribution_rejected():
    import numpy as np
    keys = np.asarray(random_sorted_keys(100, seed=5), dtype=np.uint64)
    with pytest.raises(ValueError):
        build_workload(WORKLOADS["lookup_only"], keys, 10,
                       lookup_distribution="gaussian")
    with pytest.raises(ValueError):
        build_workload(WORKLOADS["lookup_only"], keys, 10,
                       lookup_distribution="zipfian", zipf_s=1.5)
