"""FITing-tree-specific tests: segments, delta buffers, SMOs, head buffer."""

import random

import pytest

from repro.core.fiting import FitingTreeIndex
from repro.storage import NULL_DEVICE, BlockDevice, Pager

from tests.util import items_of, random_sorted_keys


def fresh(**kwargs):
    device = BlockDevice(4096, NULL_DEVICE)
    return FitingTreeIndex(Pager(device), **kwargs), device


def test_parameter_validation():
    device = BlockDevice(4096, NULL_DEVICE)
    with pytest.raises(ValueError):
        FitingTreeIndex(Pager(device), error_bound=0)
    device = BlockDevice(4096, NULL_DEVICE)
    with pytest.raises(ValueError):
        FitingTreeIndex(Pager(device), buffer_capacity=0)


def test_segment_count_tracks_hardness():
    smooth = list(range(0, 500_000, 10))
    index, _ = fresh()
    index.bulk_load(items_of(smooth))
    assert index.num_segments == 1  # perfectly linear: one segment

    rng = random.Random(1)
    jagged = sorted(rng.sample(range(10**14), 50_000))
    hard, _ = fresh()
    hard.bulk_load(items_of(jagged))
    assert hard.num_segments > index.num_segments


def test_error_bound_controls_segments():
    keys = random_sorted_keys(20_000, seed=5)
    tight, _ = fresh(error_bound=8)
    tight.bulk_load(items_of(keys))
    loose, _ = fresh(error_bound=256)
    loose.bulk_load(items_of(keys))
    assert tight.num_segments >= loose.num_segments


def test_buffer_absorbs_inserts_without_smo():
    keys = list(range(0, 100_000, 10))
    index, _ = fresh(buffer_capacity=256)
    index.bulk_load(items_of(keys))
    for key in range(5, 2000, 10):  # < 256 inserts into one segment region
        index.insert(key, key + 1)
    assert index.num_resegments == 0
    assert index.lookup(15) == 16


def test_resegment_triggers_when_buffer_full():
    keys = list(range(0, 100_000, 10))
    index, _ = fresh(buffer_capacity=16)
    index.bulk_load(items_of(keys))
    for key in range(1, 400, 2):
        index.insert(key, key + 1)
    assert index.num_resegments >= 1
    for key in range(1, 400, 2):
        assert index.lookup(key) == key + 1
    for key in range(0, 400, 10):
        assert index.lookup(key) == key + 1


def test_resegment_updates_segment_count():
    keys = list(range(0, 50_000, 10))
    index, _ = fresh(buffer_capacity=8)
    index.bulk_load(items_of(keys))
    before = index.num_segments
    rng = random.Random(2)
    inserted = set()
    while len(inserted) < 500:
        key = rng.randrange(50_000)
        if key % 10 == 0 or key in inserted:
            continue
        inserted.add(key)
        index.insert(key, key + 1)
    assert index.num_resegments > 0
    assert index.num_segments >= before


def test_head_buffer_collects_small_keys():
    keys = list(range(10_000, 20_000, 5))
    index, _ = fresh()
    index.bulk_load(items_of(keys))
    for key in range(100, 140):
        index.insert(key, key + 1)
    for key in range(100, 140):
        assert index.lookup(key) == key + 1
    # The head buffer participates in scans.
    assert index.scan(100, 3) == [(100, 101), (101, 102), (102, 103)]


def test_head_buffer_flush_creates_segments():
    keys = list(range(100_000, 200_000, 10))
    index, _ = fresh()
    index.bulk_load(items_of(keys))
    segments_before = index.num_segments
    head_capacity = index._head_capacity
    small = list(range(0, (head_capacity + 10) * 3, 3))
    for key in small:
        index.insert(key, key + 1)
    assert index.num_segments > segments_before
    for key in small:
        assert index.lookup(key) == key + 1, key
    assert index.scan(0, 2) == [(0, 1), (3, 4)]
    assert index.global_min == 0


def test_sibling_chain_after_resegment():
    keys = list(range(0, 30_000, 3))
    index, _ = fresh(buffer_capacity=8)
    index.bulk_load(items_of(keys))
    present = sorted(keys)
    rng = random.Random(3)
    import bisect
    for _ in range(300):
        key = rng.randrange(30_000)
        i = bisect.bisect_left(present, key)
        if i < len(present) and present[i] == key:
            continue
        present.insert(i, key)
        index.insert(key, key + 1)
    # A long scan crosses many segments; the sibling chain must be intact.
    result = index.scan(present[0], len(present))
    assert result == [(k, k + 1) for k in present]


def test_lookup_hits_buffered_key_via_header_path(device):
    index = FitingTreeIndex(Pager(device))
    keys = list(range(0, 100_000, 10))
    index.bulk_load(items_of(keys))
    index.insert(15, 16)
    assert index.lookup(15) == 16


def test_lookup_miss_reads_more_blocks_than_hit():
    device = BlockDevice(4096)
    pager = Pager(device)
    index = FitingTreeIndex(pager)
    keys = random_sorted_keys(50_000, seed=6)
    index.bulk_load(items_of(keys))
    pager.drop_last_block()
    before = device.stats.reads
    index.lookup(keys[25_000])
    hit_cost = device.stats.reads - before
    pager.drop_last_block()
    missing = keys[25_000] + 1
    assert missing not in set(keys)
    before = device.stats.reads
    index.lookup(missing)
    miss_cost = device.stats.reads - before
    # A miss additionally consults the segment header + delta buffer.
    assert miss_cost >= hit_cost


def test_memory_resident_inner_removes_directory_io():
    device = BlockDevice(4096)
    pager = Pager(device)
    index = FitingTreeIndex(pager)
    keys = random_sorted_keys(50_000, seed=7)
    index.bulk_load(items_of(keys))
    index.set_inner_memory_resident(True)
    pager.drop_last_block()
    before = device.stats.reads
    index.lookup(keys[123])
    resident_cost = device.stats.reads - before
    index.set_inner_memory_resident(False)
    pager.drop_last_block()
    before = device.stats.reads
    index.lookup(keys[456])
    disk_cost = device.stats.reads - before
    assert resident_cost < disk_cost
