"""The runner's batched execution mode and the parallel bench driver."""

import numpy as np
import pytest

from repro.core import make_index
from repro.datasets import make_dataset
from repro.durability import FaultInjector
from repro.workloads import WORKLOADS, build_workload, run_workload

from .util import make_pager


def _setup(workload="lookup_only", n=2000, num_ops=300):
    keys = make_dataset("ycsb", n)
    bulk, ops = build_workload(WORKLOADS[workload], keys, num_ops)
    index = make_index("btree", make_pager())
    index.bulk_load(bulk)
    return index, ops


def test_batch_run_validates_and_reports_fewer_positionings():
    index, ops = _setup()
    serial_index, _ = _setup()
    serial = run_workload(serial_index, ops, workload="lookup_only",
                          validate=True)
    batched = run_workload(index, ops, workload="lookup_only",
                           validate=True, batch=64)
    assert serial.batch == 1 and batched.batch == 64
    assert batched.num_ops == serial.num_ops == len(ops)
    assert batched.read_positionings < serial.read_positionings
    assert batched.blocks_read_per_op < serial.blocks_read_per_op
    assert batched.positionings_per_op < serial.positionings_per_op
    assert batched.coalesced_runs >= 0
    assert batched.throughput_ops_per_s > serial.throughput_ops_per_s


def test_batch_one_is_the_unbatched_path():
    a, ops = _setup(num_ops=120)
    b, _ = _setup(num_ops=120)
    r1 = run_workload(a, ops, validate=True)
    r2 = run_workload(b, ops, validate=True, batch=1)
    assert r1.sim_elapsed_us == r2.sim_elapsed_us
    assert r1.read_positionings == r2.read_positionings


def test_batch_preserves_mixed_stream_order():
    """Inserts flush the pending lookup group, so a mixed stream gives the
    same answers (validate checks every lookup) and the same final state."""
    index, ops = _setup(workload="balanced", n=3000, num_ops=400)
    result = run_workload(index, ops, workload="balanced", validate=True,
                          batch=32)
    assert result.num_ops == len(ops)
    # every op got a latency share; group cost is split across members
    assert result.mean_latency_us > 0


def test_batch_latency_shares_cover_the_run():
    index, ops = _setup(num_ops=200)
    result = run_workload(index, ops, keep_latencies=True, batch=16)
    assert result.latencies_us.shape == (len(ops),)
    assert float(result.latencies_us.sum()) == pytest.approx(
        result.sim_elapsed_us)


def test_batch_run_with_tracer_scopes_one_span_per_group():
    from repro.obs import Tracer

    index, ops = _setup(num_ops=100)
    tracer = Tracer()
    tracer.bind(index.pager)
    result = run_workload(index, ops, tracer=tracer, batch=10)
    tracer.unbind()
    assert result.op_io_histograms is not None
    assert result.op_io_histograms["lookup"]["count"] == len(ops)


def test_batch_rejects_bad_arguments():
    index, ops = _setup(num_ops=10)
    with pytest.raises(ValueError):
        run_workload(index, ops, batch=0)
    with pytest.raises(ValueError):
        run_workload(index, ops, batch=8,
                     fault_injector=FaultInjector(crash_at_op=5))


def test_batch_lookup_experiment_shape():
    from repro.bench import default_scale, run_experiment

    result = run_experiment("batch_lookup", default_scale().scaled(0.05))
    by_cell = {(r["device"], r["index"], r["batch"]): r for r in result.rows}
    assert len(by_cell) == 2 * 3 * 4  # {hdd,ssd} x {btree,fiting,alex} x batches
    for device in ("hdd", "ssd"):
        for index in ("btree", "fiting", "alex"):
            single = by_cell[(device, index, 1)]
            batched = by_cell[(device, index, 64)]
            assert batched["blocks_per_op"] < single["blocks_per_op"]
            assert batched["positionings_per_op"] < single["positionings_per_op"]


def test_cli_jobs_matches_serial(capsys):
    from repro.bench.__main__ import main

    assert main(["run", "table3", "--scale", "0.02", "--jobs", "2"]) == 0
    parallel_out = capsys.readouterr().out
    assert main(["run", "table3", "--scale", "0.02"]) == 0
    serial_out = capsys.readouterr().out

    def tables(text):
        return [line for line in text.splitlines() if "took" not in line]

    assert tables(parallel_out) == tables(serial_out)


def test_cli_jobs_rejects_trace(tmp_path):
    from repro.bench.__main__ import main

    with pytest.raises(SystemExit):
        main(["run", "table3", "fig7", "--jobs", "2",
              "--trace", str(tmp_path / "t.jsonl")])
