"""Unit tests for the simulated block device."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import HDD, NULL_DEVICE, SSD, BlockDevice, DiskProfile
from repro.storage.device import StorageStats


def test_block_size_must_be_positive():
    with pytest.raises(ValueError):
        BlockDevice(block_size=0)


def test_create_file_rejects_duplicates(device):
    device.create_file("a")
    with pytest.raises(ValueError):
        device.create_file("a")


def test_allocate_returns_contiguous_extents(device):
    f = device.create_file("f")
    assert f.allocate(3) == 0
    assert f.allocate(2) == 3
    assert f.num_blocks == 5
    assert f.live_blocks == 5


def test_allocate_rejects_nonpositive_count(device):
    f = device.create_file("f")
    with pytest.raises(ValueError):
        f.allocate(0)


def test_write_read_roundtrip(device):
    f = device.create_file("f")
    f.allocate(2)
    payload = bytes(range(256)) * 16  # exactly 4096 bytes
    device.write_block(f, 1, payload)
    assert device.read_block(f, 1) == payload


def test_write_rejects_wrong_length(device):
    f = device.create_file("f")
    f.allocate(1)
    with pytest.raises(ValueError):
        device.write_block(f, 0, b"short")


def test_out_of_range_access_raises(device):
    f = device.create_file("f")
    f.allocate(1)
    with pytest.raises(IndexError):
        device.read_block(f, 1)
    with pytest.raises(IndexError):
        device.read_block(f, -1)


def test_read_write_counters(device):
    f = device.create_file("f")
    f.allocate(2)
    blank = bytes(device.block_size)
    device.write_block(f, 0, blank)
    device.read_block(f, 0)
    device.read_block(f, 1)
    assert device.stats.writes == 1
    assert device.stats.reads == 2
    assert f.reads == 2
    assert f.writes == 1


def test_memory_resident_files_are_free(device):
    f = device.create_file("f")
    f.allocate(1)
    f.memory_resident = True
    device.write_block(f, 0, bytes(device.block_size))
    device.read_block(f, 0)
    assert device.stats.reads == 0
    assert device.stats.writes == 0
    assert device.stats.elapsed_us == 0.0


def test_sequential_access_is_cheaper_on_hdd(device):
    f = device.create_file("f")
    f.allocate(3)
    device.read_block(f, 0)
    random_cost = device.stats.elapsed_us
    device.read_block(f, 1)  # sequential after block 0
    sequential_cost = device.stats.elapsed_us - random_cost
    assert sequential_cost < random_cost


def test_free_tracks_but_does_not_reclaim(device):
    f = device.create_file("f")
    f.allocate(4)
    f.free(1, 2)
    assert f.num_blocks == 4          # space is not reclaimed (paper 6.3)
    assert f.live_blocks == 2
    assert device.stats.freed_blocks == 2
    # Freed blocks remain readable (the index must never do so, but the
    # device does not enforce it).
    device.read_block(f, 1)


def test_delete_file_reclaims_space(device):
    f = device.create_file("f")
    f.allocate(5)
    assert device.allocated_bytes == 5 * 4096
    device.delete_file("f")
    assert "f" not in device.files
    assert device.allocated_bytes == 0
    assert device.stats.freed_blocks == 5


def test_phase_attribution(device):
    f = device.create_file("f")
    f.allocate(1)
    device.set_phase("smo")
    device.read_block(f, 0)
    device.write_block(f, 0, bytes(device.block_size))
    assert device.stats.reads_by_phase["smo"] == 1
    assert device.stats.writes_by_phase["smo"] == 1
    assert device.stats.time_by_phase["smo"] > 0


def test_stats_snapshot_and_diff(device):
    f = device.create_file("f")
    f.allocate(1)
    device.read_block(f, 0)
    snap = device.stats.snapshot()
    device.read_block(f, 0)
    device.read_block(f, 0)
    delta = device.stats.diff(snap)
    assert delta.reads == 2
    assert snap.reads == 1  # snapshot unaffected


def test_ssd_profile_cheaper_than_hdd():
    hdd = BlockDevice(4096, HDD)
    ssd = BlockDevice(4096, SSD)
    for dev in (hdd, ssd):
        f = dev.create_file("f")
        f.allocate(1)
        dev.read_block(f, 0)
    assert ssd.stats.elapsed_us < hdd.stats.elapsed_us


def test_null_profile_is_free():
    dev = BlockDevice(4096, NULL_DEVICE)
    f = dev.create_file("f")
    f.allocate(1)
    dev.read_block(f, 0)
    assert dev.stats.elapsed_us == 0.0
    assert dev.stats.reads == 1  # still counted


def test_transfer_cost_scales_with_block_size():
    profile = DiskProfile("t", 100.0, 100.0, 100.0, 100.0, transfer_us_per_kib=10.0)
    small = profile.read_cost_us(4096, sequential=False)
    large = profile.read_cost_us(16384, sequential=False)
    assert large == small + 10.0 * 12  # 12 extra KiB


# -- StorageStats snapshot/diff round-trip ----------------------------------

_phase_dicts = st.dictionaries(
    st.sampled_from(["default", "search", "insert", "smo", "maintenance",
                     "scan", "bulkload", "log", "exotic"]),
    st.integers(0, 10**6), max_size=6)


def _stats_from(reads_by_phase, writes_by_phase, time_by_phase):
    return StorageStats(
        reads=sum(reads_by_phase.values()),
        writes=sum(writes_by_phase.values()),
        elapsed_us=float(sum(time_by_phase.values())),
        reads_by_phase=dict(reads_by_phase),
        writes_by_phase=dict(writes_by_phase),
        time_by_phase={p: float(v) for p, v in time_by_phase.items()},
    )


@settings(max_examples=120, deadline=None)
@given(_phase_dicts, _phase_dicts, _phase_dicts, _phase_dicts)
def test_snapshot_diff_round_trips_arbitrary_phase_dicts(
        early_reads, early_writes, late_reads, late_writes):
    """diff(snapshot) must recover exactly what accumulated in between —
    including phases that first appear *after* the snapshot and phases
    the snapshot saw but the delta period never touched."""
    earlier = _stats_from(early_reads, early_writes, early_reads)
    later = _stats_from(
        {p: early_reads.get(p, 0) + late_reads.get(p, 0)
         for p in set(early_reads) | set(late_reads)},
        {p: early_writes.get(p, 0) + late_writes.get(p, 0)
         for p in set(early_writes) | set(late_writes)},
        {p: early_reads.get(p, 0) + late_reads.get(p, 0)
         for p in set(early_reads) | set(late_reads)},
    )
    delta = later.diff(earlier.snapshot())
    for phase in set(late_reads) | set(early_reads):
        assert delta.reads_by_phase[phase] == late_reads.get(phase, 0)
        assert delta.time_by_phase[phase] == float(late_reads.get(phase, 0))
    for phase in set(late_writes) | set(early_writes):
        assert delta.writes_by_phase[phase] == late_writes.get(phase, 0)
    assert delta.reads == sum(late_reads.values())
    assert delta.writes == sum(late_writes.values())
    # No phantom phases: everything reported came from one of the sides.
    assert set(delta.reads_by_phase) <= (
        set(early_reads) | set(late_reads) | set(early_writes)
        | set(late_writes))


def test_diff_reports_phase_only_seen_before_snapshot(device):
    """A phase present in the snapshot but untouched afterwards shows up
    as an explicit zero, not a KeyError or a silent omission."""
    f = device.create_file("f")
    f.allocate(1)
    device.set_phase("smo")
    device.read_block(f, 0)
    snap = device.stats.snapshot()
    device.set_phase("scan")
    device.read_block(f, 0)
    delta = device.stats.diff(snap)
    assert delta.reads_by_phase["smo"] == 0
    assert delta.reads_by_phase["scan"] == 1
    assert delta.time_by_phase["smo"] == 0.0


def test_diff_reports_phase_first_seen_after_snapshot(device):
    f = device.create_file("f")
    f.allocate(1)
    snap = device.stats.snapshot()
    device.set_phase("maintenance")
    device.write_block(f, 0, bytes(device.block_size))
    delta = device.stats.diff(snap)
    assert delta.writes_by_phase["maintenance"] == 1
    assert delta.time_by_phase["maintenance"] > 0


_counters = st.tuples(st.integers(0, 10**6), st.integers(0, 10**6),
                      st.integers(0, 10**6))


@settings(max_examples=60, deadline=None)
@given(_counters, _counters)
def test_snapshot_diff_round_trips_fault_counters(early, late):
    """The self-healing counters (io_retries / checksum_failures /
    repaired_blocks) obey the same rule as every other stat: the delta
    recovers exactly what accumulated between snapshot and diff, and the
    snapshot itself is a faithful, unaliased copy."""
    earlier = StorageStats(io_retries=early[0], checksum_failures=early[1],
                           repaired_blocks=early[2])
    later = StorageStats(io_retries=early[0] + late[0],
                         checksum_failures=early[1] + late[1],
                         repaired_blocks=early[2] + late[2])
    snap = earlier.snapshot()
    delta = later.diff(snap)
    assert delta.io_retries == late[0]
    assert delta.checksum_failures == late[1]
    assert delta.repaired_blocks == late[2]
    assert (snap.io_retries, snap.checksum_failures, snap.repaired_blocks) == early
    later.io_retries += 1  # mutating the live stats must not touch the snapshot
    assert snap.io_retries == early[0]
