"""Update/delete contract across all five indexes.

Learned indexes cannot physically remove entries without invalidating
their trained models, so deletes are logical (tombstones) everywhere
except the B+-tree (dense in-block shift) and LIPP (exact slots revert
to NULL).  The observable semantics must nevertheless be identical.
"""

import bisect
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import index_names, make_index
from repro.core.interface import TOMBSTONE
from repro.storage import NULL_DEVICE, BlockDevice, Pager

ALL_INDEXES = index_names(include_plid=True)
KEYS = sorted(random.Random(77).sample(range(10**12), 3000))


def loaded(name):
    index = make_index(name, Pager(BlockDevice(4096, NULL_DEVICE)))
    index.bulk_load([(k, k + 1) for k in KEYS])
    return index


@pytest.mark.parametrize("name", ALL_INDEXES)
def test_update_existing_key(name):
    index = loaded(name)
    assert index.update(KEYS[100], 9999)
    assert index.lookup(KEYS[100]) == 9999
    assert index.lookup(KEYS[99]) == KEYS[99] + 1  # neighbours untouched


@pytest.mark.parametrize("name", ALL_INDEXES)
def test_update_missing_key_returns_false(name):
    index = loaded(name)
    missing = KEYS[100] + 1
    assert missing not in set(KEYS)
    assert not index.update(missing, 1)
    assert index.lookup(missing) is None


@pytest.mark.parametrize("name", ALL_INDEXES)
def test_update_buffered_insert(name):
    index = loaded(name)
    fresh = KEYS[50] + 1
    assert fresh not in set(KEYS)
    index.insert(fresh, 1)
    assert index.update(fresh, 2)
    assert index.lookup(fresh) == 2


@pytest.mark.parametrize("name", ALL_INDEXES)
def test_delete_then_lookup_none(name):
    index = loaded(name)
    assert index.delete(KEYS[500])
    assert index.lookup(KEYS[500]) is None
    assert index.lookup(KEYS[499]) == KEYS[499] + 1
    assert index.lookup(KEYS[501]) == KEYS[501] + 1


@pytest.mark.parametrize("name", ALL_INDEXES)
def test_delete_missing_returns_false(name):
    index = loaded(name)
    missing = KEYS[500] + 1
    assert missing not in set(KEYS)
    assert not index.delete(missing)


@pytest.mark.parametrize("name", ALL_INDEXES)
def test_double_delete_returns_false(name):
    index = loaded(name)
    assert index.delete(KEYS[500])
    assert not index.delete(KEYS[500])


@pytest.mark.parametrize("name", ALL_INDEXES)
def test_scan_skips_deleted_keys(name):
    index = loaded(name)
    for offset in (200, 201, 202, 250):
        assert index.delete(KEYS[offset])
    result = index.scan(KEYS[198], 10)
    expected_keys = [k for i, k in enumerate(KEYS[198:215])
                     if i + 198 not in (200, 201, 202, 250)][:10]
    assert [k for k, _ in result] == expected_keys
    assert all(v != TOMBSTONE for _, v in result)


@pytest.mark.parametrize("name", ALL_INDEXES)
def test_reinsert_after_delete(name):
    index = loaded(name)
    key = KEYS[321]
    assert index.delete(key)
    index.insert(key, 4242)
    assert index.lookup(key) == 4242
    assert (key, 4242) in index.scan(key, 1)


@pytest.mark.parametrize("name", ALL_INDEXES)
def test_delete_survives_structure_modifications(name):
    """Deleted keys must stay deleted through SMOs (resegment, node
    rebuild, LSM merges) triggered by later inserts."""
    index = loaded(name)
    deleted = KEYS[::10][:100]
    for key in deleted:
        assert index.delete(key)
    present = set(KEYS) - set(deleted)
    rng = random.Random(5)
    added = 0
    while added < 2500:  # enough inserts to trigger SMOs in every index
        key = rng.randrange(10**12)
        if key in present or key in set(deleted):
            continue
        present.add(key)
        index.insert(key, key + 1)
        added += 1
    for key in deleted[:40]:
        assert index.lookup(key) is None, key
    for key in rng.sample(sorted(present), 200):
        assert index.lookup(key) == key + 1


@pytest.mark.parametrize("name", ALL_INDEXES)
def test_delete_heavy_scan_consistency(name):
    index = loaded(name)
    rng = random.Random(6)
    alive = sorted(KEYS)
    for key in rng.sample(KEYS, 800):
        assert index.delete(key)
        alive.remove(key)
    for start_pos in (0, len(alive) // 2, len(alive) - 50):
        start = alive[start_pos]
        assert index.scan(start, 40) == [
            (k, k + 1) for k in alive[start_pos : start_pos + 40]]


@settings(max_examples=10, deadline=None)
@given(st.data())
@pytest.mark.parametrize("name", ALL_INDEXES)
def test_mixed_crud_matches_reference(name, data):
    base = data.draw(st.lists(st.integers(0, 10**8), min_size=20, max_size=100,
                              unique=True).map(sorted))
    index = make_index(name, Pager(BlockDevice(4096, NULL_DEVICE)))
    index.bulk_load([(k, k + 1) for k in base])
    model = {k: k + 1 for k in base}
    ops = data.draw(st.lists(
        st.tuples(st.sampled_from(["insert", "update", "delete", "lookup", "scan"]),
                  st.integers(0, 10**8), st.integers(0, 10**6)),
        max_size=50))
    for kind, key, value in ops:
        if kind == "insert" and key not in model:
            model[key] = key + 1
            index.insert(key, key + 1)
        elif kind == "update":
            expected = key in model
            assert index.update(key, value) == expected
            if expected:
                model[key] = value
        elif kind == "delete":
            expected = key in model
            assert index.delete(key) == expected
            model.pop(key, None)
        elif kind == "lookup":
            assert index.lookup(key) == model.get(key)
        elif kind == "scan":
            expected = sorted((k, v) for k, v in model.items() if k >= key)[:5]
            assert index.scan(key, 5) == expected
