"""Tests for the bench CLI and the quickstart example."""

import subprocess
import sys

import pytest

from repro.bench.__main__ import main


def test_cli_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "table3" in out
    assert "fig14" in out
    assert "scalability" in out


def test_cli_run_tiny_experiment(capsys):
    assert main(["run", "table3", "--scale", "0.02"]) == 0
    out = capsys.readouterr().out
    assert "Table 3" in out
    assert "conflict_degree" in out
    assert "took" in out


def test_cli_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        main(["run", "fig99"])


def test_quickstart_example_runs():
    proc = subprocess.run(
        [sys.executable, "examples/quickstart.py"],
        capture_output=True, text=True, timeout=300, check=False)
    assert proc.returncode == 0, proc.stderr
    for name in ("btree", "fiting", "pgm", "alex", "lipp"):
        assert name in proc.stdout
