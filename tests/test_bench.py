"""Tests for the benchmark harness at a tiny scale."""

import pytest

from repro.bench import (
    EXPERIMENTS,
    Scale,
    experiment_ids,
    format_result,
    format_table,
    fresh_index,
    run_experiment,
)
from repro.workloads import run_workload

TINY = Scale(n_read=4000, n_write_bulk=1500, n_write_ops=800,
             n_lookup_ops=100, n_scan_ops=20)


def test_every_paper_artifact_has_an_experiment():
    expected = {"table2", "table3", "table4", "table5",
                "fig3", "fig5", "fig6", "fig7", "fig8", "fig9",
                "fig10", "fig11", "fig12", "fig13", "fig14"}
    # The registry also carries ablation/extension experiments.
    assert expected <= set(experiment_ids())


def test_unknown_experiment_rejected():
    with pytest.raises(ValueError):
        run_experiment("fig99")


def test_scale_factor():
    assert TINY.scaled(2.0).n_read == 8000
    assert TINY.scaled(0.5).n_lookup_ops == 50


def test_fresh_index_read_workload():
    setup = fresh_index("btree", "ycsb", "lookup_only", TINY)
    assert len(setup.bulk_items) == TINY.n_read
    assert len(setup.ops) == TINY.n_lookup_ops
    result = run_workload(setup.index, setup.ops, validate=True)
    assert result.num_ops == TINY.n_lookup_ops


def test_fresh_index_write_workload_bulk_size():
    setup = fresh_index("btree", "ycsb", "write_only", TINY)
    assert len(setup.bulk_items) == TINY.n_write_bulk
    assert len(setup.ops) == TINY.n_write_ops


def test_fresh_index_memory_resident_flag():
    setup = fresh_index("btree", "ycsb", "lookup_only", TINY,
                        inner_memory_resident=True)
    roles = setup.index.file_roles()
    for name, role in roles.items():
        if role == "inner":
            assert setup.device.get_file(name).memory_resident


def test_fresh_index_buffer_pool():
    setup = fresh_index("btree", "ycsb", "lookup_only", TINY, buffer_blocks=64)
    assert setup.pager.buffer_pool is not None
    assert setup.pager.buffer_pool.capacity == 64


def test_format_table_alignment():
    text = format_table([{"a": 1, "b": "xx"}, {"a": 22}], ["a", "b"])
    lines = text.splitlines()
    assert lines[0].startswith("a")
    assert len(lines) == 4
    assert format_table([], ["a"]) == "(no rows)"


def test_table3_experiment_rows():
    result = run_experiment("table3", TINY)
    assert len(result.rows) == 11
    ycsb = next(r for r in result.rows if r["dataset"] == "ycsb")
    fb = next(r for r in result.rows if r["dataset"] == "fb")
    assert fb["seg@64"] > ycsb["seg@64"]
    assert "conflict_degree" in ycsb
    text = format_result(result)
    assert "Table 3" in text


def test_fig7_experiment_shape():
    result = run_experiment("fig7", TINY)
    # PGM smallest, LIPP largest index size (paper O11).
    for dataset in ("fb", "osm", "ycsb"):
        rows = {r["index"]: r for r in result.rows if r["dataset"] == dataset}
        sizes = {name: rows[name]["size_mib"] for name in rows}
        assert sizes["pgm"] == min(sizes.values())
        assert sizes["lipp"] == max(sizes.values())


def test_fig11_experiment_shape():
    result = run_experiment("fig11", TINY)
    for row in result.rows:
        if row["index"] == "lipp":
            # O17: LIPP's fetched blocks barely move with block size.
            assert abs(row["4k"] - row["16k"]) <= 1.0
        if row["index"] == "btree":
            assert row["16k"] <= row["4k"]


def test_fig13_experiment_shape():
    result = run_experiment("fig13", TINY)
    for row in result.rows:
        # A big LRU buffer can only reduce fetched blocks.
        assert row["buf512"] <= row["buf0"] + 0.01


def test_fig14_normalization():
    result = run_experiment("fig14", TINY)
    for row in result.rows:
        values = [row[name] for name in ("btree", "fiting", "pgm", "alex", "lipp")]
        assert max(values) == pytest.approx(1.0)
        assert all(0 < v <= 1.0 for v in values)
