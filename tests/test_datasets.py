"""Tests for the synthetic datasets and Table 3 profiling."""

import numpy as np
import pytest

from repro.datasets import (
    DATASET_NAMES,
    REPORTED_DATASETS,
    btree_leaf_count,
    dataset_names,
    generate_insert_keys,
    items_for,
    make_dataset,
    profile_dataset,
    sample_lookup_keys,
)


@pytest.mark.parametrize("name", DATASET_NAMES)
def test_exact_size_sorted_unique(name):
    keys = make_dataset(name, 5000)
    assert len(keys) == 5000
    assert keys.dtype == np.uint64
    diffs = np.diff(keys.astype(object))
    assert all(d > 0 for d in diffs)


@pytest.mark.parametrize("name", REPORTED_DATASETS)
def test_deterministic_per_seed(name):
    a = make_dataset(name, 2000, seed=1)
    b = make_dataset(name, 2000, seed=1)
    c = make_dataset(name, 2000, seed=2)
    assert np.array_equal(a, b)
    assert not np.array_equal(a, c)


def test_unknown_dataset_rejected():
    with pytest.raises(ValueError):
        make_dataset("nope", 100)
    with pytest.raises(ValueError):
        make_dataset("ycsb", 0)


def test_items_for_payload_convention():
    assert items_for([5, 9]) == [(5, 6), (9, 10)]


def test_sample_lookup_keys_are_existing():
    keys = make_dataset("ycsb", 1000)
    sample = sample_lookup_keys(keys, 50)
    existing = set(int(k) for k in keys)
    assert len(sample) == 50
    assert all(k in existing for k in sample)


def test_generate_insert_keys_are_fresh():
    keys = make_dataset("ycsb", 1000)
    fresh = generate_insert_keys(keys, 200)
    existing = set(int(k) for k in keys)
    assert len(fresh) == 200
    assert len(set(fresh)) == 200
    assert not set(fresh) & existing


def test_btree_leaf_count_matches_paper():
    # 200M keys, 4 KiB blocks, 0.8 fill -> 980,393 leaves (Table 3).
    assert btree_leaf_count(200_000_000) == 980_393
    assert btree_leaf_count(800_000_000) == 3_921_569


def test_profile_reports_all_error_bounds():
    keys = make_dataset("ycsb", 3000)
    profile = profile_dataset("ycsb", keys, error_bounds=(16, 64))
    assert set(profile.segments_by_error) == {16, 64}
    assert profile.conflict_degree >= 1
    assert profile.btree_leaves == btree_leaf_count(3000)


def test_hardness_ordering_matches_table3():
    """The load-bearing property: relative hardness must match the paper.

    Table 3 at the default error bound 64: FB is the hardest dataset for
    PLA; OSM/Genome/Planet are the hard cluster; YCSB and Stack are the
    easiest.  For conflict degree: OSM >> Genome > FB, with YCSB/Stack/
    Libio at the bottom.
    """
    profiles = {
        name: profile_dataset(name, make_dataset(name, 50_000),
                              error_bounds=(64,))
        for name in dataset_names()
    }
    seg = {name: p.segments_by_error[64] for name, p in profiles.items()}
    cd = {name: p.conflict_degree for name, p in profiles.items()}

    assert seg["fb"] == max(seg.values())
    hard_cluster = {seg["osm"], seg["genome"], seg["planet"]}
    assert min(hard_cluster) > seg["libio"] > seg["covid"]
    assert seg["covid"] >= seg["history"] > seg["ycsb"]
    assert seg["stack"] <= seg["ycsb"]

    assert cd["osm"] == max(cd.values())
    assert cd["osm"] > 2 * cd["genome"]
    assert cd["genome"] > cd["fb"] > cd["covid"]
    assert cd["covid"] > cd["history"]
    assert max(cd["ycsb"], cd["libio"], cd["wise"], cd["stack"]) < cd["fb"]


def test_osm_800m_is_osm_shaped():
    base = profile_dataset("osm", make_dataset("osm", 20_000), error_bounds=(64,))
    large = profile_dataset("osm_800m", make_dataset("osm_800m", 80_000),
                            error_bounds=(64,))
    assert large.segments_by_error[64] > base.segments_by_error[64]
    assert large.conflict_degree > base.conflict_degree


def test_dataset_names_listing():
    assert "osm_800m" not in dataset_names()
    assert "osm_800m" in dataset_names(include_large=True)
    assert len(dataset_names(include_large=True)) == 11
