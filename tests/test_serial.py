"""Unit tests for the binary layout helpers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.serial import (
    ENTRY_SIZE,
    NULL_BLOCK,
    entries_per_block,
    pack_entries,
    pack_u64s,
    unpack_entries,
    unpack_u64s,
)


def test_entry_size_matches_paper_arithmetic():
    # 4 KiB block / 16-byte entries = 256 entries: the paper's B.
    assert ENTRY_SIZE == 16
    assert entries_per_block(4096) == 256
    assert entries_per_block(16384) == 1024


def test_pack_unpack_roundtrip():
    items = [(1, 2), (2**64 - 1, 0), (12345, 54321)]
    raw = pack_entries(items)
    assert len(raw) == len(items) * ENTRY_SIZE
    assert unpack_entries(raw, len(items)) == items


def test_unpack_with_offset():
    raw = b"\x00" * 8 + pack_entries([(7, 8)])
    assert unpack_entries(raw, 1, offset=8) == [(7, 8)]


def test_pack_empty():
    assert pack_entries([]) == b""
    assert unpack_entries(b"", 0) == []


def test_u64_roundtrip():
    values = [0, 1, NULL_BLOCK, 2**64 - 1]
    raw = pack_u64s(values)
    assert list(unpack_u64s(raw, len(values))) == values


@settings(max_examples=100, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 2**64 - 1), st.integers(0, 2**64 - 1)),
                max_size=64))
def test_roundtrip_property(items):
    assert unpack_entries(pack_entries(items), len(items)) == items


def test_pack_rejects_out_of_range():
    with pytest.raises(Exception):
        pack_entries([(-1, 0)])
    with pytest.raises(Exception):
        pack_entries([(2**64, 0)])
