"""Property tests: partition geometry, router split/merge, rebalancer.

Hypothesis draws random partitions and random key batches/ranges and
asserts the structural invariants the sharded tier rests on:

* ``split_keys`` round-trips losslessly (order and duplicates survive
  the merge) and every shard receives only keys inside its range;
* ``split_range`` tiles the query range exactly — no gap, no overlap,
  in key order;
* a router-driven tier answers ``lookup_many`` exactly like per-key
  lookups through the partition;
* a rebalancer migration (random direction and size) preserves the full
  key scan bit-for-bit and leaves every shard owning only in-range keys.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sharding import KEYSPACE_END, RangePartition, Rebalancer

from tests.util import items_of, make_sharded

KEY_SPACE = 10**6

boundaries_st = st.lists(
    st.integers(1, KEY_SPACE - 1), unique=True, max_size=6).map(sorted)
batch_st = st.lists(st.integers(0, KEY_SPACE - 1), max_size=50)


@settings(max_examples=200, deadline=None)
@given(boundaries=boundaries_st, batch=batch_st)
def test_split_keys_roundtrips_and_respects_ranges(boundaries, batch):
    partition = RangePartition(boundaries)
    split = partition.split_keys(batch)
    # Each shard got only in-range keys, in batch order.
    for shard_id, group in split.items():
        lo, hi = partition.range_of(shard_id)
        assert all(lo <= key < hi for _, key in group)
        positions = [position for position, _ in group]
        assert positions == sorted(positions)
    # The merge restores the original batch losslessly (duplicates too).
    merged = [None] * len(batch)
    for group in split.values():
        for position, key in group:
            merged[position] = key
    assert merged == batch


@settings(max_examples=200, deadline=None)
@given(boundaries=boundaries_st,
       a=st.integers(0, KEY_SPACE), b=st.integers(0, KEY_SPACE))
def test_split_range_tiles_the_query_exactly(boundaries, a, b):
    partition = RangePartition(boundaries)
    low, high = min(a, b), max(a, b)
    parts = partition.split_range(low, high)
    assert parts[0][1] == low and parts[-1][2] == high
    previous_hi = low - 1
    for shard_id, lo, hi in parts:
        assert lo == previous_hi + 1, "gap or overlap between sub-ranges"
        assert lo <= hi
        shard_lo, shard_hi = partition.range_of(shard_id)
        assert shard_lo <= lo and hi < shard_hi
        previous_hi = hi
    assert previous_hi == high


@settings(max_examples=25, deadline=None)
@given(keys=st.lists(st.integers(0, KEY_SPACE - 1), unique=True,
                     min_size=12, max_size=80).map(sorted),
       shards=st.integers(2, 4),
       batch=batch_st)
def test_router_lookup_many_equals_per_key_lookups(keys, shards, batch):
    index = make_sharded("btree", shards, sample_keys=keys)
    index.bulk_load(items_of(keys))
    assert index.lookup_many(batch) == [index.lookup(k) for k in batch]


@settings(max_examples=25, deadline=None)
@given(keys=st.lists(st.integers(0, KEY_SPACE - 1), unique=True,
                     min_size=20, max_size=120).map(sorted),
       data=st.data())
def test_migration_preserves_full_scan_bit_for_bit(keys, data):
    index = make_sharded("btree", 3, sample_keys=keys)
    index.bulk_load(items_of(keys))
    source = data.draw(st.integers(0, 2), label="source")
    destination = data.draw(
        st.sampled_from([n for n in (source - 1, source + 1) if 0 <= n <= 2]),
        label="destination")
    lo, hi = index.partition.range_of(source)
    held = len(index.shards[source].primary_scan_range(lo, hi - 1))
    if held < 2:
        return  # a shard must keep at least one key
    count = data.draw(st.integers(1, held - 1), label="count")

    before = index.scan_range(0, KEYSPACE_END - 1)
    assert before == items_of(keys)
    report = Rebalancer(index).migrate(source, destination, count)
    assert report.keys_moved == count
    assert index.scan_range(0, KEYSPACE_END - 1) == before
    # Ownership after the move: every shard holds only in-range keys,
    # replicas agree, nothing lost (verify counts live entries).
    assert index.verify() == len(keys)
    # The destination really owns the moved range now.
    dst_lo, dst_hi = index.partition.range_of(destination)
    moved_keys = [k for k, _ in before if dst_lo <= k < dst_hi]
    assert index.lookup_many(moved_keys) == [k + 1 for k in moved_keys]
