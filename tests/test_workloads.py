"""Tests for workload specs, operation streams and the metric runner."""

import numpy as np
import pytest

from repro.core import make_index
from repro.datasets import make_dataset
from repro.storage import HDD, NULL_DEVICE, BlockDevice, Pager
from repro.workloads import (
    WORKLOADS,
    build_workload,
    bulk_load_timed,
    run_workload,
    workload_names,
)


def test_six_workload_types():
    assert set(workload_names()) == {
        "lookup_only", "scan_only", "write_only",
        "read_heavy", "write_heavy", "balanced",
    }


def test_round_patterns_match_paper():
    # Section 5.2: 2 inserts + 18 lookups; 18 inserts + 2 lookups; 10 + 10.
    assert WORKLOADS["read_heavy"].round_pattern == "II" + "L" * 18
    assert WORKLOADS["write_heavy"].round_pattern == "I" * 18 + "LL"
    assert WORKLOADS["balanced"].round_pattern == "I" * 10 + "L" * 10
    assert WORKLOADS["read_heavy"].insert_fraction == pytest.approx(0.1)
    assert WORKLOADS["write_heavy"].insert_fraction == pytest.approx(0.9)
    assert WORKLOADS["balanced"].insert_fraction == pytest.approx(0.5)
    assert not WORKLOADS["lookup_only"].has_writes
    assert WORKLOADS["write_only"].has_writes


def test_lookup_only_bulk_loads_everything():
    keys = make_dataset("ycsb", 1000)
    bulk, ops = build_workload(WORKLOADS["lookup_only"], keys, 100)
    assert len(bulk) == 1000
    existing = {k for k, _ in bulk}
    assert all(kind == "lookup" and key in existing for kind, key in ops)


def test_scan_only_ops_are_scans():
    keys = make_dataset("ycsb", 1000)
    _bulk, ops = build_workload(WORKLOADS["scan_only"], keys, 50)
    assert all(kind == "scan" for kind, _ in ops)


def test_write_only_splits_dataset():
    keys = make_dataset("ycsb", 1000)
    bulk, ops = build_workload(WORKLOADS["write_only"], keys, 400)
    assert len(bulk) == 600
    assert all(kind == "insert" for kind, _ in ops)
    bulk_keys = {k for k, _ in bulk}
    insert_keys = {k for _, k in ops}
    assert not bulk_keys & insert_keys
    assert len(insert_keys) == 400


def test_mixed_workload_interleaving():
    keys = make_dataset("ycsb", 2000)
    _bulk, ops = build_workload(WORKLOADS["read_heavy"], keys, 200)
    kinds = [kind for kind, _ in ops]
    assert kinds[:2] == ["insert", "insert"]
    assert kinds[2:20] == ["lookup"] * 18
    assert kinds.count("insert") == 20


def test_mixed_lookups_target_present_keys():
    keys = make_dataset("ycsb", 2000)
    bulk, ops = build_workload(WORKLOADS["balanced"], keys, 300)
    present = {k for k, _ in bulk}
    for kind, key in ops:
        if kind == "insert":
            present.add(key)
        else:
            assert key in present


def test_build_workload_rejects_tiny_dataset():
    keys = make_dataset("ycsb", 50)
    with pytest.raises(ValueError):
        build_workload(WORKLOADS["write_only"], keys, 100)
    with pytest.raises(ValueError):
        build_workload(WORKLOADS["lookup_only"], keys, 0)


def test_workloads_are_deterministic():
    keys = make_dataset("fb", 500)
    a = build_workload(WORKLOADS["balanced"], keys, 100, seed=3)
    b = build_workload(WORKLOADS["balanced"], keys, 100, seed=3)
    assert a == b


# -- runner --------------------------------------------------------------------

def _run(workload, num_ops=200, index_name="btree"):
    keys = make_dataset("ycsb", 3000)
    spec = WORKLOADS[workload]
    bulk, ops = build_workload(spec, keys, num_ops)
    device = BlockDevice(4096, HDD)
    index = make_index(index_name, Pager(device))
    bulk_us = bulk_load_timed(index, bulk)
    result = run_workload(index, ops, workload=workload, validate=True)
    return result, bulk_us, device


def test_runner_counts_and_throughput():
    result, bulk_us, device = _run("lookup_only")
    assert result.num_ops == 200
    assert result.sim_elapsed_us > 0
    assert result.throughput_ops_per_s == pytest.approx(
        200 / (result.sim_elapsed_us / 1e6))
    assert bulk_us > 0


def test_runner_latency_statistics():
    result, _, _ = _run("lookup_only")
    assert result.p50_latency_us <= result.p99_latency_us
    assert result.mean_latency_us > 0


def test_runner_block_accounting():
    result, _, _ = _run("lookup_only")
    assert result.blocks_read_per_op > 0
    assert result.blocks_written_per_op == 0  # read-only queries write nothing
    assert result.inner_blocks_per_op + result.leaf_blocks_per_op == (
        pytest.approx(result.blocks_read_per_op))


def test_runner_write_workload_writes_blocks():
    result, _, _ = _run("write_only")
    assert result.blocks_written_per_op > 0


def test_runner_phase_breakdown_sums():
    result, _, _ = _run("write_only", index_name="alex")
    total_phase = sum(result.time_by_phase_us.values())
    assert total_phase == pytest.approx(result.sim_elapsed_us, rel=1e-6)
    assert result.phase_latency_us("maintenance") > 0  # ALEX stats writes


def test_runner_keeps_latencies_when_asked():
    keys = make_dataset("ycsb", 1000)
    bulk, ops = build_workload(WORKLOADS["lookup_only"], keys, 50)
    index = make_index("btree", Pager(BlockDevice(4096, HDD)))
    index.bulk_load(bulk)
    result = run_workload(index, ops, keep_latencies=True)
    assert isinstance(result.latencies_us, np.ndarray)
    assert len(result.latencies_us) == 50


def test_runner_validation_catches_wrong_payload():
    keys = make_dataset("ycsb", 500)
    bulk, ops = build_workload(WORKLOADS["lookup_only"], keys, 20)
    index = make_index("btree", Pager(BlockDevice(4096, NULL_DEVICE)))
    index.bulk_load([(k, 0) for k, _ in bulk])  # wrong payloads
    with pytest.raises(AssertionError):
        run_workload(index, ops, validate=True)


def test_runner_rejects_unknown_op():
    index = make_index("btree", Pager(BlockDevice(4096, NULL_DEVICE)))
    index.bulk_load([(1, 2)])
    with pytest.raises(ValueError):
        run_workload(index, [("frobnicate", 1)])


# -- latest / hotspot lookup distributions ----------------------------------

def test_distributions_registry():
    from repro.workloads import DISTRIBUTIONS
    assert DISTRIBUTIONS == ("uniform", "zipfian", "latest", "hotspot")


def test_latest_distribution_skews_to_most_recent_keys():
    keys = make_dataset("ycsb", 4000)
    _, uniform_ops = build_workload(WORKLOADS["lookup_only"], keys, 3000,
                                    lookup_distribution="uniform")
    _, latest_ops = build_workload(WORKLOADS["lookup_only"], keys, 3000,
                                   lookup_distribution="latest", zipf_s=0.9)
    # Population order is the key array; "latest" counts ranks back from
    # its tail, so the newest decile should dominate.
    cutoff = keys[int(0.9 * len(keys))]
    def tail_share(ops):
        return sum(1 for _, key in ops if key >= cutoff) / len(ops)
    assert tail_share(latest_ops) > 0.6
    assert tail_share(latest_ops) > 3 * tail_share(uniform_ops)


def test_latest_mixed_workload_chases_fresh_inserts():
    keys = make_dataset("ycsb", 4000)
    bulk, ops = build_workload(WORKLOADS["balanced"], keys, 600,
                               lookup_distribution="latest", zipf_s=0.9)
    bulk_keys = {k for k, _ in bulk}
    lookups = [key for kind, key in ops if kind == "lookup"]
    inserted_targets = sum(1 for key in lookups if key not in bulk_keys)
    # Uniform sampling would hit fresh inserts almost never (they are a
    # tiny fraction of the population); latest chases them.
    assert inserted_targets / len(lookups) > 0.3


def test_hotspot_distribution_concentrates_on_hot_set():
    keys = make_dataset("ycsb", 4000)
    _, ops = build_workload(WORKLOADS["lookup_only"], keys, 3000,
                            lookup_distribution="hotspot",
                            hotspot_fraction=0.1, hotspot_probability=0.9)
    hot_cutoff = keys[int(0.1 * len(keys))]
    hot_share = sum(1 for _, key in ops if key < hot_cutoff) / len(ops)
    assert 0.8 < hot_share < 0.97
    existing = {int(k) for k in keys}
    assert all(key in existing for _, key in ops)


def test_hotspot_and_latest_params_validated():
    keys = make_dataset("ycsb", 200)
    with pytest.raises(ValueError, match="hotspot_fraction"):
        build_workload(WORKLOADS["lookup_only"], keys, 10,
                       lookup_distribution="hotspot", hotspot_fraction=0.0)
    with pytest.raises(ValueError, match="hotspot_fraction"):
        build_workload(WORKLOADS["lookup_only"], keys, 10,
                       lookup_distribution="hotspot", hotspot_fraction=1.5)
    with pytest.raises(ValueError, match="hotspot_probability"):
        build_workload(WORKLOADS["lookup_only"], keys, 10,
                       lookup_distribution="hotspot", hotspot_probability=-0.1)
    with pytest.raises(ValueError, match="zipf_s"):
        build_workload(WORKLOADS["lookup_only"], keys, 10,
                       lookup_distribution="latest", zipf_s=0.0)
    with pytest.raises(ValueError, match="distribution"):
        build_workload(WORKLOADS["lookup_only"], keys, 10,
                       lookup_distribution="pareto")
