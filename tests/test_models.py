"""Unit and property tests for the model substrate (linear, PLA, FMCD)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models import (
    LinearModel,
    build_fmcd_model,
    conflict_degree,
    lipp_node_slots,
    optimal_segments,
    shrinking_cone_segments,
)

sorted_unique_keys = st.lists(
    st.integers(0, 2**62), min_size=1, max_size=300, unique=True
).map(sorted)


# -- LinearModel --------------------------------------------------------------

def test_predict_anchored():
    model = LinearModel(slope=2.0, intercept=1.0, anchor=10)
    assert model.predict(10) == 1.0
    assert model.predict(15) == 11.0


def test_predict_clamped_bounds():
    model = LinearModel(slope=1.0, intercept=0.0, anchor=0)
    assert model.predict_clamped(-100 + 2**63, 10) == 9  # way past the end
    assert model.predict_clamped(0, 10) == 0
    with pytest.raises(ValueError):
        model.predict_clamped(5, 0)


def test_fit_least_squares_recovers_exact_line():
    keys = list(range(100, 1100, 10))
    positions = list(range(100))
    model = LinearModel.fit_least_squares(keys, positions)
    for key, pos in zip(keys, positions):
        assert abs(model.predict(key) - pos) < 1e-6


def test_fit_least_squares_single_point():
    model = LinearModel.fit_least_squares([42], [7])
    assert model.predict(42) == 7.0


def test_fit_least_squares_empty_raises():
    with pytest.raises(ValueError):
        LinearModel.fit_least_squares([], [])


def test_fit_min_max_endpoints():
    model = LinearModel.fit_min_max(1000, 2000, 11)
    assert model.predict_clamped(1000, 11) == 0
    assert model.predict_clamped(2000, 11) == 10


def test_fit_min_max_degenerate_range():
    model = LinearModel.fit_min_max(5, 5, 10)
    assert model.predict_clamped(5, 10) == 0


def test_anchored_precision_at_uint64_scale():
    """The motivating case: dense keys near 2**62 must predict exactly."""
    base = 2**62 - 10_000
    keys = [base + i for i in range(2000)]
    model = LinearModel.fit_least_squares(keys, list(range(2000)))
    worst = max(abs(model.predict(k) - i) for i, k in enumerate(keys))
    assert worst < 1.0


# -- PLA segmentation -----------------------------------------------------------

@settings(max_examples=120, deadline=None)
@given(sorted_unique_keys, st.sampled_from([0, 1, 4, 16, 64]))
def test_optimal_segments_respect_error_bound(keys, epsilon):
    segments = optimal_segments(keys, epsilon)
    covered = 0
    for seg in segments:
        assert seg.first_key == keys[seg.first_pos]
        for i in range(seg.first_pos, seg.first_pos + seg.length):
            # +0.5 slack: the model midpoint is a float, the bound holds
            # for the exact feasible region.
            assert abs(seg.model.predict(keys[i]) - i) <= epsilon + 0.5
        covered += seg.length
    assert covered == len(keys)


@settings(max_examples=120, deadline=None)
@given(sorted_unique_keys, st.sampled_from([1, 8, 64]))
def test_greedy_segments_respect_error_bound(keys, epsilon):
    segments = shrinking_cone_segments(keys, epsilon)
    covered = 0
    for seg in segments:
        for i in range(seg.first_pos, seg.first_pos + seg.length):
            assert abs(seg.model.predict(keys[i]) - i) <= epsilon + 0.5
        covered += seg.length
    assert covered == len(keys)


@settings(max_examples=80, deadline=None)
@given(sorted_unique_keys, st.sampled_from([1, 4, 32]))
def test_optimal_never_needs_more_segments_than_greedy(keys, epsilon):
    assert len(optimal_segments(keys, epsilon)) <= len(
        shrinking_cone_segments(keys, epsilon))


def test_segments_partition_positions():
    keys = list(range(0, 10_000, 7))
    segments = optimal_segments(keys, 16)
    positions = []
    for seg in segments:
        positions.extend(range(seg.first_pos, seg.first_pos + seg.length))
    assert positions == list(range(len(keys)))


def test_larger_epsilon_never_more_segments():
    import random
    rng = random.Random(5)
    keys = sorted(rng.sample(range(10**10), 5000))
    counts = [len(optimal_segments(keys, e)) for e in (4, 16, 64, 256)]
    assert counts == sorted(counts, reverse=True)


def test_segments_reject_unsorted_input():
    with pytest.raises(ValueError):
        optimal_segments([3, 1, 2], 8)
    with pytest.raises(ValueError):
        optimal_segments([1, 1], 8)
    with pytest.raises(ValueError):
        shrinking_cone_segments([2, 2], 8)


def test_negative_epsilon_rejected():
    with pytest.raises(ValueError):
        optimal_segments([1, 2, 3], -1)


def test_empty_input():
    assert optimal_segments([], 8) == []
    assert shrinking_cone_segments([], 8) == []


def test_single_key_segment():
    segments = optimal_segments([42], 8)
    assert len(segments) == 1
    assert abs(segments[0].model.predict(42)) <= 8.5


def test_perfectly_linear_data_is_one_segment():
    keys = list(range(0, 100_000, 10))
    assert len(optimal_segments(keys, 1)) == 1


# -- FMCD ------------------------------------------------------------------------

def test_lipp_node_slots_tiers():
    assert lipp_node_slots(10) == 50
    assert lipp_node_slots(99_999) == 99_999 * 5
    assert lipp_node_slots(100_000) == 200_000
    assert lipp_node_slots(2_000_000) == 2_400_000
    with pytest.raises(ValueError):
        lipp_node_slots(0)


def test_fmcd_uniform_data_low_conflict():
    import random
    keys = sorted(random.Random(1).sample(range(10**12), 5000))
    result = build_fmcd_model(keys, lipp_node_slots(len(keys)))
    assert result.conflict_degree <= 8
    assert not result.fallback


def test_fmcd_two_keys_no_conflict():
    result = build_fmcd_model([10, 10**9], 10)
    assert result.conflict_degree == 1


def test_fmcd_zero_keys_rejected():
    with pytest.raises(ValueError):
        build_fmcd_model([], 10)


@settings(max_examples=80, deadline=None)
@given(st.lists(st.integers(0, 2**62), min_size=2, max_size=200, unique=True).map(sorted))
def test_fmcd_conflict_degree_is_achieved_maximum(keys):
    """The reported degree must equal the actual max slot collision."""
    result = build_fmcd_model(keys, lipp_node_slots(len(keys)))
    slots = {}
    for key in keys:
        slot = result.model.predict_clamped(key, result.num_slots)
        slots[slot] = slots.get(slot, 0) + 1
    assert result.conflict_degree == max(slots.values())


def test_conflict_degree_orders_cluster_hardness():
    uniform = list(range(0, 10**9, 10**5))
    clustered = sorted(set(list(range(0, 10**9, 10**6))
                           + [5 * 10**8 + i for i in range(500)]))
    assert conflict_degree(clustered) > conflict_degree(uniform)


def test_fmcd_dense_run_at_uint64_scale_no_collapse():
    """The anchored model must not collapse a dense far-away run."""
    base = 2**61
    keys = [base + i for i in range(3000)]
    result = build_fmcd_model(keys, lipp_node_slots(len(keys)))
    assert result.conflict_degree <= 2
