"""Fault-tolerant serving: fault forks, member health, failover, hedged
reads, resync/reseed rejoin, deadlines, admission — and determinism.

The chaos machinery's contract has three legs (DESIGN.md Section 17):

1. **Zero lost acknowledged writes** — a crash, quarantine or failover
   never loses a write whose commit was acknowledged.
2. **Clean-path identity** — with no fault model attached (or a
   zero-rate one), every counter and every charged microsecond is
   bit-identical to a tier built without any of the machinery.
3. **Determinism** — one chaos seed fixes the entire run: fault
   schedule, failovers, hedges, sheds and all charged I/O reproduce
   exactly across runs, at any client count.
"""

import random

import pytest

from repro.sharding import Shard
from repro.storage import (HDD, NULL_DEVICE, BlockDevice, DeviceFaultModel,
                           MemberCrashError, MemberStallError, Pager,
                           PersistentIOError)
from repro.workloads import run_workload

from tests.util import items_of, make_sharded, random_sorted_keys

KEY_SPACE = 10**9


def _draws(model, n=20):
    return [model.rng.random() for _ in range(n)]


def _durable_shard(replicas=3, n=1200, seed=3, **kwargs):
    keys = random_sorted_keys(n, seed=seed, key_space=KEY_SPACE)
    shard = Shard(0, "btree", replicas=replicas, durability=True,
                  group_commit=2, profile=NULL_DEVICE, **kwargs)
    shard.bulk_load(items_of(keys))
    return shard, keys


# ---------------------------------------------------------------------------
# Fault model: forks, crash, stall, exclusions
# ---------------------------------------------------------------------------

def test_fork_is_deterministic_and_independent():
    parent = DeviceFaultModel(seed=9, transient_error_rate=0.3,
                              bit_rot_rate=0.1, stall_rate=0.05,
                              stall_us=40.0)
    # Same member id -> identical child schedule; siblings -> independent.
    assert _draws(parent.fork(1)) == _draws(parent.fork(1))
    assert _draws(parent.fork(1)) != _draws(parent.fork(2))
    # Children inherit rates and exclusions but not the parent's stream.
    child = parent.fork(7)
    assert child.transient_error_rate == 0.3
    assert child.bit_rot_rate == 0.1
    assert child.stall_us == 40.0
    assert child.exclude_files == parent.exclude_files
    assert child.seed != parent.seed
    # Overrides replace any constructor parameter for one member.
    crashy = parent.fork(7, crash_after=5, transient_error_rate=0.0)
    assert crashy.crash_after == 5
    assert crashy.transient_error_rate == 0.0
    assert crashy.seed == child.seed  # same member, same stream


def test_crash_after_kills_the_whole_member_until_repaired():
    device = BlockDevice(4096, HDD)
    f = device.create_file("data")
    f.allocate(4)
    for block in range(4):
        device.write_block(f, block, bytes([block]) * 4096)
    device.fault_model = DeviceFaultModel(seed=1, crash_after=2)
    assert device.read_block(f, 0) == bytes([0]) * 4096
    assert device.read_block(f, 1) == bytes([1]) * 4096
    with pytest.raises(MemberCrashError):
        device.read_block(f, 2)
    # Not one bad block — the device is gone, block 0 included.
    with pytest.raises(MemberCrashError):
        device.read_block(f, 0)
    assert device.fault_model.crashed
    device.fault_model.clear_crash()
    assert device.read_block(f, 0) == bytes([0]) * 4096


def test_stalls_charge_the_hang_and_escalate_after_retries():
    device = BlockDevice(4096, HDD)
    pager = Pager(device)
    f = device.create_file("data")
    f.allocate(1)
    pager.write_block(f, 0, b"\x07" * 4096)
    pager.drop_last_block()
    device.fault_model = DeviceFaultModel(seed=2, stall_rate=1.0,
                                          stall_us=500.0)
    elapsed_before = device.stats.elapsed_us
    with pytest.raises(PersistentIOError):
        pager.read_block(f, 0)
    # Every attempt stalled: the initial read plus max_read_retries
    # redraws, each retry charging the 500us hang plus backoff.
    assert device.fault_model.injected_stalls == 1 + pager.max_read_retries
    assert device.stats.io_retries == pager.max_read_retries
    assert (device.stats.elapsed_us - elapsed_before
            >= pager.max_read_retries * 500.0)


def test_excluded_files_are_never_faulted_nor_counted():
    device = BlockDevice(4096, HDD)
    wal_file = device.create_file("wal")
    wal_file.allocate(2)
    device.write_block(wal_file, 0, b"\x01" * 4096)
    device.fault_model = DeviceFaultModel(seed=3, transient_error_rate=1.0,
                                          crash_after=0)
    # The log survives its member's faults: no error, no crash, and the
    # read does not advance the crash_after countdown.
    assert device.read_block(wal_file, 0) == b"\x01" * 4096
    assert device.fault_model.reads_observed == 0
    assert not device.fault_model.crashed


# ---------------------------------------------------------------------------
# Member health state machine
# ---------------------------------------------------------------------------

def test_health_escalates_soft_strikes_and_jumps_on_hard():
    from repro.sharding import MemberHealth

    health = MemberHealth(quarantine_after=2)
    assert health.state == "healthy"
    health.strike()
    assert health.state == "suspect"
    health.strike()
    assert health.state == "quarantined"
    health.reset()
    assert health.state == "healthy"
    assert health.faults_seen == 2  # reporting survives the rejoin
    # A hard strike (crash / write-path fault) quarantines immediately.
    health.strike(hard=True)
    assert health.state == "quarantined"


# ---------------------------------------------------------------------------
# Shard: hedged reads, failover, rejoin
# ---------------------------------------------------------------------------

def test_crashed_replica_is_quarantined_and_reads_hedge_around_it():
    shard, keys = _durable_shard(replicas=3)
    victim = shard.replicas[0]
    victim.device.fault_model = DeviceFaultModel(seed=4, crash_after=0)
    # Every key stays readable; the crash surfaces as one (or more)
    # hedged re-issues, never as a caller-visible error.
    for key in keys:
        assert shard.lookup(key) == key + 1
    assert shard.hedged_reads >= 1
    assert victim.health.state == "quarantined"
    assert not victim.tainted  # read-path crash: files are untouched
    assert shard.health_states() == ["healthy", "quarantined", "healthy"]
    # Quarantined members leave the rotation: no further observed reads.
    observed = victim.device.fault_model.reads_observed
    for key in keys[:20]:
        assert shard.lookup(key) == key + 1
    assert victim.device.fault_model.reads_observed == observed


def test_primary_crash_fails_over_with_zero_lost_acked_writes():
    shard, keys = _durable_shard(replicas=3)
    fresh = [KEY_SPACE + 2 * i + 1 for i in range(11)]
    for key in fresh:
        shard.apply("insert", key, key + 1)
    acked = shard.wal.durable_seqno
    assert acked == 10  # 11 records at group_commit=2
    old_primary = shard.primary
    old_primary.device.fault_model = DeviceFaultModel(seed=5, crash_after=0)
    before = shard.failovers

    # Drive reads until the rotation hands one to the primary.
    for key in keys + fresh:
        assert shard.lookup(key) == key + 1
    assert shard.failovers == before + 1
    assert shard.primary is not old_primary
    assert old_primary in shard.replicas
    assert old_primary.tainted  # a crashed primary can only re-seed
    # The log moved with the promotion, numbering unbroken.
    assert shard.wal.pager is shard.primary.pager
    assert shard.wal.durable_seqno == acked
    # Every acknowledged write survived the failover.
    for record in shard.wal.durable_records():
        assert shard.lookup(record.key) == record.payload
    # The shard keeps accepting durable writes on the new primary.
    next_key = KEY_SPACE + 1000
    shard.apply("insert", next_key, 99)
    shard.wal.flush()
    assert shard.lookup(next_key) == 99
    assert shard.wal.next_seqno == acked + 3


def test_rejoin_resyncs_untainted_members_and_reseeds_tainted_ones():
    shard, keys = _durable_shard(replicas=3)
    # Quarantine replica 0 through the read path: untainted.
    clean_victim = shard.replicas[0]
    clean_victim.device.fault_model = DeviceFaultModel(seed=6, crash_after=0)
    for key in keys:
        shard.lookup(key)
    assert clean_victim.health.state == "quarantined"
    # Quarantine replica 1 through the write path (_ship): tainted.
    dirty_victim = shard.replicas[1]
    dirty_victim.device.fault_model = DeviceFaultModel(seed=7, crash_after=0)
    missed = [KEY_SPACE + 2 * i + 1 for i in range(8)]
    for key in missed:
        shard.apply("insert", key, key + 1)
    assert dirty_victim.health.state == "quarantined"
    assert dirty_victim.tainted

    # Operator repairs both enclosures, then rejoins.
    clean_victim.device.fault_model.clear_crash()
    dirty_victim.device.fault_model.clear_crash()
    blocks_before = shard.resync_blocks
    assert shard.rejoin(clean_victim) == "resync"
    assert shard.resyncs == 1
    assert shard.resync_blocks > blocks_before  # charged log scan
    assert clean_victim.applied_seqno == shard.wal.current_lsn
    assert shard.rejoin(dirty_victim) == "reseed"
    assert shard.reseeds == 1
    # Both rejoined copies serve the missed writes; the tier verifies.
    assert shard.health_states() == ["healthy", "healthy", "healthy"]
    assert shard.verify() == len(keys) + len(missed)


def test_zero_rate_fault_model_is_charge_identical():
    """Leg 2 of the contract, at the shard level: attaching a zero-rate
    model must not change a single counter or charged microsecond."""
    def run(with_model):
        keys = random_sorted_keys(1200, seed=8, key_space=KEY_SPACE)
        shard = Shard(0, "btree", replicas=2, durability=True,
                      group_commit=2, profile=HDD,
                      hedge_us=3 * HDD.read_positioning_us)
        shard.bulk_load(items_of(keys))
        if with_model:
            parent = DeviceFaultModel(seed=9)
            for i, member in enumerate(shard.members()):
                member.device.fault_model = parent.fork(i)
        for key in keys:
            assert shard.lookup(key) == key + 1
        for i in range(20):
            shard.apply("insert", KEY_SPACE + 2 * i + 1, i + 1)
        shard.wal.flush()
        return [(m.device.stats.elapsed_us, m.device.stats.reads,
                 m.device.stats.writes, m.device.stats.read_positionings,
                 m.device.stats.io_retries, m.reads_served)
                for m in shard.members()]

    clean, armed = run(False), run(True)
    assert clean == armed


# ---------------------------------------------------------------------------
# Serving engine: deadlines, retry budget, admission
# ---------------------------------------------------------------------------

def _serving_tier(n=2000, seed=12, **shard_kwargs):
    keys = random_sorted_keys(n, seed=seed, key_space=KEY_SPACE)
    index = make_sharded("btree", 2, sample_keys=keys, durability=True,
                         group_commit=4, profile=HDD, **shard_kwargs)
    index.bulk_load(items_of(keys))
    return index, keys


def test_deadline_misses_count_slow_completions():
    index, keys = _serving_tier()
    ops = [("lookup", key) for key in keys[:80]]
    # An HDD lookup takes milliseconds; a 1us deadline misses every op,
    # yet every op still completes (deadlines observe, they don't abort).
    res = run_workload(index, ops, clients=4, validate=True, deadline_us=1.0)
    assert res.deadline_misses == len(ops)
    assert res.shed_ops == 0
    # A generous deadline misses nothing on the identical stream.
    index, keys = _serving_tier()
    res = run_workload(index, ops, clients=4, validate=True,
                       deadline_us=10**9)
    assert res.deadline_misses == 0


def test_admission_gate_sheds_writes_and_never_loses_the_rest():
    index, keys = _serving_tier()
    ops = [("insert", KEY_SPACE + 2 * i + 1) for i in range(120)]
    res = run_workload(index, ops, clients=8, max_inflight_writes=1)
    assert res.shed_ops > 0
    # Shed + committed partitions the stream: nothing hangs, nothing is
    # double-counted, and every admitted write was acknowledged durable.
    assert res.committed_writes == len(ops) - res.shed_ops
    assert res.per_client  # the serving path actually ran
    assert sum(c["shed_ops"] for c in res.per_client.values()) == res.shed_ops


def test_retry_budget_bounds_fault_reexecution_then_sheds():
    index, keys = _serving_tier(replicas=1)
    # With a single member per shard there is nowhere to hedge: an
    # exhausted pager retry ladder escapes to the engine, which spends
    # the client's retry budget and then sheds the op cleanly.
    for shard in index.shards:
        shard.primary.device.fault_model = DeviceFaultModel(
            seed=13, transient_error_rate=1.0)
    ops = [("lookup", key) for key in keys[:30]]
    res = run_workload(index, ops, clients=1, retry_budget=2)
    assert res.op_retries == 2        # the budget, spent exactly once
    assert res.shed_ops == len(ops)   # then every faulting op sheds
    # Every op was consumed (shed, not completed): the run terminated
    # instead of hanging or crashing on the unrecoverable member.
    assert res.num_ops + res.shed_ops == len(ops)


# ---------------------------------------------------------------------------
# Determinism (the chaos seed fixes the whole run)
# ---------------------------------------------------------------------------

def _chaos_run(clients, fault_seed=77):
    keys = random_sorted_keys(2400, seed=5, key_space=KEY_SPACE)
    index = make_sharded("btree", 2, sample_keys=keys, durability=True,
                         group_commit=4, replicas=2, profile=HDD,
                         hedge_us=3 * HDD.read_positioning_us)
    index.bulk_load(items_of(keys))
    parent = DeviceFaultModel(seed=fault_seed, transient_error_rate=5e-3,
                              bit_rot_rate=2e-3, stall_rate=2e-3,
                              stall_us=100.0)
    for shard in index.shards:
        shard.replicas[0].device.fault_model = parent.fork(shard.shard_id + 1)
    rng = random.Random(31)
    ops = []
    for i in range(240):
        if rng.random() < 0.4:
            ops.append(("insert", KEY_SPACE + 2 * i + 1))
        else:
            ops.append(("lookup", keys[rng.randrange(len(keys))]))
    res = run_workload(index, ops, clients=clients, validate=True,
                       deadline_us=150_000.0, retry_budget=3,
                       max_inflight_writes=64)
    return (res.sim_elapsed_us, res.p50_latency_us, res.p99_latency_us,
            res.blocks_read_per_op, res.blocks_written_per_op,
            res.io_retries, res.checksum_failures, res.failovers,
            res.hedged_reads, res.resync_blocks, res.shed_ops,
            res.deadline_misses, res.op_retries, res.committed_writes,
            res.log_records, res.log_flushes)


@pytest.mark.parametrize("clients", [1, 4])
def test_same_fault_seed_reproduces_the_run_bit_for_bit(clients):
    first = _chaos_run(clients)
    second = _chaos_run(clients)
    assert first == second
    # The faults actually fired (the schedule is non-trivial) ...
    assert first[5] > 0 or first[6] > 0  # io_retries / checksum_failures
    # ... and a different seed yields a different schedule.
    assert _chaos_run(clients, fault_seed=78) != first
