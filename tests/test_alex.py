"""ALEX-specific tests: gapped arrays, bitmap, SMO mechanisms, layouts."""

import random

import pytest

from repro.core.alex import AlexIndex, _pack_ptr, _ptr_block, _ptr_is_data
from repro.storage import NULL_DEVICE, BlockDevice, Pager

from tests.util import items_of, random_sorted_keys


def fresh(**kwargs):
    device = BlockDevice(4096, NULL_DEVICE)
    return AlexIndex(Pager(device), **kwargs), device


def test_pointer_packing_roundtrip():
    for is_data in (True, False):
        for block in (0, 1, 2**31, 2**32 - 1):
            ptr = _pack_ptr(is_data, block)
            assert _ptr_is_data(ptr) == is_data
            assert _ptr_block(ptr) == block


def test_parameter_validation():
    device = BlockDevice(4096, NULL_DEVICE)
    with pytest.raises(ValueError):
        AlexIndex(Pager(device), layout=3)
    device = BlockDevice(4096, NULL_DEVICE)
    with pytest.raises(ValueError):
        AlexIndex(Pager(device), init_density=0.9, full_density=0.8)
    device = BlockDevice(4096, NULL_DEVICE)
    with pytest.raises(ValueError):
        AlexIndex(Pager(device), max_data_node_entries=4)


def test_layouts_agree_on_results():
    keys = random_sorted_keys(20_000, seed=1)
    for layout in (1, 2):
        index, _ = fresh(layout=layout)
        index.bulk_load(items_of(keys))
        for key in random.Random(2).sample(keys, 200):
            assert index.lookup(key) == key + 1


def test_layout2_uses_two_files_layout1_one():
    index2, device2 = fresh(layout=2)
    assert len(device2.files) == 2
    index1, device1 = fresh(layout=1)
    assert len(device1.files) == 1


def test_layout1_rejects_memory_resident_inner():
    index, _ = fresh(layout=1)
    index.bulk_load(items_of(list(range(100))))
    with pytest.raises(NotImplementedError):
        index.set_inner_memory_resident(True)


def test_expand_smo_fires_before_split():
    index, _ = fresh(max_data_node_entries=256)
    index.bulk_load(items_of(list(range(0, 1000, 10))))
    for key in range(1, 500, 10):
        index.insert(key, key + 1)
    assert index.num_expands >= 1
    assert index.num_splits == 0  # capacity cap not reached yet


def test_split_smo_fires_at_max_capacity():
    index, _ = fresh(max_data_node_entries=64, max_fanout=8)
    keys = random_sorted_keys(1000, seed=3, key_space=10**9)
    index.bulk_load(items_of(keys))
    present = set(keys)
    rng = random.Random(4)
    while len(present) < 4000:
        key = rng.randrange(10**9)
        if key in present:
            continue
        present.add(key)
        index.insert(key, key + 1)
    assert index.num_splits > 0
    for key in rng.sample(sorted(present), 500):
        assert index.lookup(key) == key + 1


def test_split_down_grows_height():
    index, _ = fresh(max_data_node_entries=64, max_fanout=4)
    keys = list(range(0, 800, 4))
    index.bulk_load(items_of(keys))
    height_before = index.height()
    present = set(keys)
    rng = random.Random(5)
    while len(present) < 2500:
        key = rng.randrange(3000)
        if key in present:
            continue
        present.add(key)
        index.insert(key, key + 1)
    assert index.num_split_downs > 0
    assert index.height() > height_before


def test_skewed_data_builds_deeper_tree():
    uniform, _ = fresh()
    uniform.bulk_load(items_of(random_sorted_keys(30_000, seed=6)))
    rng = random.Random(7)
    clusters = sorted(set(
        int(c) + off
        for c in rng.sample(range(0, 2**50, 2**40), 25)
        for off in rng.sample(range(50_000), 1200)
    ))
    skewed, _ = fresh()
    skewed.bulk_load(items_of(clusters))
    assert skewed.height() >= uniform.height()


def test_lookup_never_touches_bitmap():
    """ALEX overwrites gaps with entry copies so lookups skip the bitmap
    (paper S5); verify a lookup costs only header + entry probes."""
    device = BlockDevice(4096)
    pager = Pager(device)
    index = AlexIndex(pager)
    keys = random_sorted_keys(30_000, seed=8)
    index.bulk_load(items_of(keys))
    pager.drop_last_block()
    before = device.stats.reads
    index.lookup(keys[15_000])
    assert device.stats.reads - before <= index.height() + 3


def test_insert_updates_header_statistics():
    index, _ = fresh()
    keys = list(range(0, 5000, 10))
    index.bulk_load(items_of(keys))
    block, _path = index._descend(4001)
    before = index._read_data_header(block)
    index.insert(4001, 4002)
    after = index._read_data_header(block)
    assert after.num_inserts == before.num_inserts + 1
    assert after.num_keys == before.num_keys + 1


def test_gapped_insert_cheaper_than_shift():
    """Inserting into a gap writes one entry; a conflicting slot forces
    shift writes — the gapped array's raison d'etre."""
    index, device = fresh()
    keys = list(range(0, 100_000, 100))
    index.bulk_load(items_of(keys))
    block, _ = index._descend(keys[50])
    header_before = index._read_data_header(block)
    shifts_before = header_before.num_shifts
    rng = random.Random(9)
    for key in rng.sample(range(1, 100_000), 300):
        if key % 100 == 0:
            continue
        try:
            index.insert(key, key + 1)
        except KeyError:
            pass
    # Some inserts found gaps (no shift) — the counter grows slower than
    # the insert count.
    block, _ = index._descend(keys[50])
    header_after = index._read_data_header(block)
    assert header_after.num_shifts - shifts_before < 300


def test_scan_uses_bitmap_blocks():
    device = BlockDevice(4096)
    pager = Pager(device)
    index = AlexIndex(pager)
    keys = random_sorted_keys(30_000, seed=10)
    index.bulk_load(items_of(keys))
    pager.drop_last_block()
    before = device.stats.reads
    index.lookup(keys[9])
    lookup_cost = device.stats.reads - before
    pager.drop_last_block()
    before = device.stats.reads
    index.scan(keys[9], 2000)
    scan_cost = device.stats.reads - before
    assert scan_cost > lookup_cost  # bitmap + extra entry blocks


def test_empty_bulk_load():
    index, _ = fresh()
    index.bulk_load([])
    assert index.lookup(42) is None
    index.insert(42, 43)
    assert index.lookup(42) == 43
