"""Unit and property tests for repro.obs.metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import Counter, Histogram, MetricsRegistry, io_bounds, latency_bounds


def test_bounds_factories_strictly_increasing():
    for bounds in (latency_bounds(), latency_bounds(per_decade=1),
                   latency_bounds(per_decade=10), io_bounds(), io_bounds(64)):
        assert all(a < b for a, b in zip(bounds, bounds[1:]))


def test_histogram_rejects_bad_bounds():
    with pytest.raises(ValueError):
        Histogram([])
    with pytest.raises(ValueError):
        Histogram([1.0, 1.0])
    with pytest.raises(ValueError):
        Histogram([2.0, 1.0])


def test_empty_histogram_summary():
    h = Histogram([1.0, 10.0])
    assert h.count == 0
    assert h.percentile(50) == 0.0
    assert h.summary() == {"count": 0, "mean": 0.0, "p50": 0.0, "p90": 0.0,
                           "p99": 0.0, "max": 0.0}


def test_histogram_counts_and_extremes():
    h = Histogram([10.0, 100.0, 1000.0])
    for v in (5, 7, 50, 200, 5000):
        h.record(v)
    assert h.count == 5
    assert h.min == 5 and h.max == 5000
    assert h.counts == [2, 1, 1, 1]  # two <=10, one <=100, one <=1000, one over
    assert h.mean == pytest.approx((5 + 7 + 50 + 200 + 5000) / 5)


def test_percentile_max_is_exact():
    h = Histogram(latency_bounds())
    values = [3, 17, 90, 1200, 88000]
    for v in values:
        h.record(v)
    assert h.percentile(100) == max(values)
    assert h.summary()["max"] == max(values)


def test_percentile_never_outside_observed_range():
    h = Histogram([100.0, 200.0])
    h.record(150.0)
    for q in (0, 1, 50, 99, 100):
        assert h.percentile(q) == 150.0  # single sample: every quantile is it


def test_percentile_rejects_out_of_range():
    h = Histogram([1.0])
    with pytest.raises(ValueError):
        h.percentile(-1)
    with pytest.raises(ValueError):
        h.percentile(101)


@settings(max_examples=100, deadline=None)
@given(st.lists(st.floats(min_value=1.0, max_value=1e7), min_size=1, max_size=300),
       st.sampled_from([0.0, 50.0, 90.0, 99.0, 100.0]))
def test_percentile_within_one_bucket_of_order_statistic(values, q):
    """The estimate lands in (or adjacent to) the bucket holding the
    nearest-rank order statistic — the histogram's stated error bound.

    (numpy's default linear-interpolation percentile uses a different
    rank convention, so it is not the reference here; the histogram's
    rank is ``q/100 * count``, nearest-rank style.)
    """
    import bisect
    import math

    bounds = latency_bounds(low_us=1.0, high_us=1e7, per_decade=4)
    h = Histogram(bounds)
    for v in values:
        h.record(v)
    rank = max(math.ceil(q / 100.0 * len(values)), 1)
    reference = sorted(values)[rank - 1]
    estimate = h.percentile(q)
    assert h.min <= estimate <= h.max
    ref_bucket = bisect.bisect_left(bounds, reference)
    est_bucket = bisect.bisect_left(bounds, estimate)
    assert abs(est_bucket - ref_bucket) <= 1


def test_merge_requires_same_bounds():
    with pytest.raises(ValueError):
        Histogram([1.0]).merge(Histogram([2.0]))


def test_merge_equals_recording_into_one():
    a, b, both = (Histogram(io_bounds()) for _ in range(3))
    for v in (1, 2, 3, 40):
        a.record(v)
        both.record(v)
    for v in (5, 600):
        b.record(v)
        both.record(v)
    a.merge(b)
    assert a.counts == both.counts
    assert a.count == both.count
    assert a.total == both.total
    assert a.min == both.min and a.max == both.max


def test_counter():
    c = Counter("ops")
    c.inc()
    c.inc(4)
    assert c.value == 5


def test_registry_get_or_create():
    reg = MetricsRegistry()
    assert reg.counter("a") is reg.counter("a")
    assert reg.histogram("h") is reg.histogram("h")
    reg.counter("a").inc(3)
    reg.histogram("h").record(12.0)
    snap = reg.snapshot()
    assert snap["counters"] == {"a": 3}
    assert snap["histograms"]["h"]["count"] == 1
