"""Disk-profile arithmetic and documentation-snippet tests."""

import pytest

from repro.storage import HDD, NULL_DEVICE, SSD, DiskProfile


def test_hdd_positioning_dominates():
    random = HDD.read_cost_us(4096, sequential=False)
    sequential = HDD.read_cost_us(4096, sequential=True)
    assert random / sequential > 50  # seek + rotation vs streaming


def test_ssd_small_sequential_discount():
    random = SSD.read_cost_us(4096, sequential=False)
    sequential = SSD.read_cost_us(4096, sequential=True)
    assert 1.0 < random / sequential < 5


def test_writes_cost_at_least_reads_on_ssd():
    assert SSD.write_cost_us(4096, False) > SSD.read_cost_us(4096, False)


def test_profiles_are_frozen():
    with pytest.raises(Exception):
        HDD.read_positioning_us = 1.0


def test_custom_profile():
    profile = DiskProfile("tape", 10_000.0, 1.0, 20_000.0, 2.0, 0.5)
    assert profile.read_cost_us(2048, sequential=True) == 1.0 + 0.5 * 2
    assert profile.write_cost_us(2048, sequential=False) == 20_000.0 + 0.5 * 2


def test_readme_quickstart_snippet():
    """The exact code shown in README.md must keep working."""
    from repro import BlockDevice, Pager, HDD, make_index

    device = BlockDevice(block_size=4096, profile=HDD)
    index = make_index("alex", Pager(device))
    index.bulk_load([(k, k + 1) for k in range(0, 10_000_000, 100)])

    index.insert(5, 6)
    assert index.lookup(5) == 6
    assert index.scan(0, 3) == [(0, 1), (5, 6), (100, 101)]
    assert device.stats.reads > 0


def test_package_docstring_snippet():
    """The snippet in repro/__init__ must keep working."""
    from repro import BlockDevice, Pager, HDD, make_index

    device = BlockDevice(block_size=4096, profile=HDD)
    index = make_index("alex", Pager(device))
    index.bulk_load([(k, k + 1) for k in range(0, 1_000_000, 10)])
    index.insert(5, 6)
    assert index.lookup(5) == 6
