"""Every registered experiment body runs end-to-end at micro scale.

The figure/table experiments are normally exercised only through the
bench CLI at full scale, so a refactor of an index, the pager, or the
serving tier can break an experiment loop (or its row schema) without
any test noticing until someone regenerates EXPERIMENTS.md.  This
module executes all of them — with sweeps narrowed to one or two points
where the signature allows — and checks the row contract that
``repro.bench.report`` and the perf-smoke benchmarks rely on.
"""

import pytest

from repro.bench import EXPERIMENTS, run_experiment
from repro.bench.config import Scale

#: Small enough that every index bulk-loads in milliseconds, big enough
#: that leaves split and scans cross block boundaries.
MICRO = Scale(n_read=800, n_write_bulk=500, n_write_ops=150,
              n_lookup_ops=40, n_scan_ops=6)

#: Sweep-narrowing kwargs so the smoke run stays cheap; experiments not
#: listed run with their defaults (their loops are bounded by MICRO).
NARROW = {
    "fig11": {"block_sizes": (4096,)},
    "fig13": {"buffer_sizes": (0, 8)},
    "durability": {"batch_sizes": (8,)},
    "batch_lookup": {"batch_sizes": (1, 16)},
    "wallclock": {"batch_sizes": (64,), "min_ops": 256},
    "fault_sweep": {"transient_rates": (0.0, 1e-3)},
    "concurrency": {"client_counts": (1, 4)},
    "sharding": {"shard_counts": (1, 2)},
    # A micro run charges few device reads, so the member-crash
    # countdown must be short for the crash to fire at all.
    "chaos": {"fault_rates": (0.0, 1e-2), "crash_after": 5},
}


@pytest.mark.parametrize("experiment_id", sorted(EXPERIMENTS))
def test_experiment_runs_at_micro_scale(experiment_id, monkeypatch):
    # One dataset keeps the figure loops to a handful of cells.
    monkeypatch.setenv("REPRO_DATASETS", "ycsb")
    result = run_experiment(experiment_id, MICRO,
                            **NARROW.get(experiment_id, {}))
    assert result.experiment_id == experiment_id
    assert result.rows, f"{experiment_id} produced no rows"
    schema = None
    for row in result.rows:
        assert isinstance(row, dict) and row
        assert all(isinstance(k, str) for k in row)
        # report.py renders one header per experiment section: every row
        # must carry the same columns in the same order.
        if schema is None:
            schema = list(row)
        elif list(row) != schema:
            # A few experiments emit multi-section rows (e.g. sharding);
            # each row still has to be self-consistently renderable.
            assert set(row), f"{experiment_id} emitted an empty row"
