"""Tests for device images and whole-index persistence."""

import io
import random

import pytest

from repro.core import index_names, load_index, make_index, save_index
from repro.storage import (
    HDD,
    NULL_DEVICE,
    SSD,
    BlockDevice,
    Pager,
    load_device,
    save_device,
)

from tests.util import items_of, random_sorted_keys


def test_device_image_roundtrip(tmp_path):
    device = BlockDevice(4096, HDD)
    f = device.create_file("a")
    f.allocate(3)
    device.write_block(f, 1, b"\xAB" * 4096)
    f.free(2, 1)
    f.memory_resident = True
    path = str(tmp_path / "img.bin")
    save_device(device, path)

    loaded = load_device(path)
    assert loaded.block_size == 4096
    assert loaded.profile is HDD
    g = loaded.get_file("a")
    assert g.num_blocks == 3
    assert g.live_blocks == 2
    assert g.memory_resident
    assert loaded.read_block(g, 1) == b"\xAB" * 4096
    # Counters start fresh after a "reboot".
    assert loaded.stats.elapsed_us == 0.0


def test_device_image_profile_override():
    device = BlockDevice(4096, HDD)
    device.create_file("a").allocate(1)
    buffer = io.BytesIO()
    save_device(device, buffer)
    buffer.seek(0)
    loaded = load_device(buffer, profile=SSD)
    assert loaded.profile is SSD


def test_device_image_bad_magic():
    with pytest.raises(ValueError):
        load_device(io.BytesIO(b"NOTANIMG" + b"\x00" * 64))


def test_custom_profile_requires_override():
    from repro.storage import DiskProfile
    custom = DiskProfile("weird", 1, 1, 1, 1, 0)
    device = BlockDevice(4096, custom)
    buffer = io.BytesIO()
    save_device(device, buffer)
    buffer.seek(0)
    with pytest.raises(ValueError):
        load_device(buffer)
    buffer.seek(0)
    assert load_device(buffer, profile=custom).profile is custom


KEYS = random_sorted_keys(8000, seed=42)


@pytest.mark.parametrize("name", index_names(include_hybrids=True, include_plid=True))
def test_index_save_reopen_lookups(name):
    index = make_index(name, Pager(BlockDevice(4096, NULL_DEVICE)))
    index.bulk_load(items_of(KEYS))
    buffer = io.BytesIO()
    save_index(index, buffer)
    buffer.seek(0)
    reopened = load_index(buffer)
    assert reopened.name == name
    for key in random.Random(1).sample(KEYS, 150):
        assert reopened.lookup(key) == key + 1
    assert reopened.scan(KEYS[10], 5) == items_of(KEYS)[10:15]


@pytest.mark.parametrize("name", index_names(include_plid=True))
def test_index_reopen_preserves_updates_and_continues(name):
    index = make_index(name, Pager(BlockDevice(4096, NULL_DEVICE)))
    index.bulk_load(items_of(KEYS))
    rng = random.Random(2)
    present = set(KEYS)
    for _ in range(500):
        key = rng.randrange(10**12)
        if key in present:
            continue
        present.add(key)
        index.insert(key, key + 1)
    assert index.delete(KEYS[3])
    present.discard(KEYS[3])
    assert index.update(KEYS[4], 777)

    buffer = io.BytesIO()
    save_index(index, buffer)
    buffer.seek(0)
    reopened = load_index(buffer)

    assert reopened.lookup(KEYS[3]) is None
    assert reopened.lookup(KEYS[4]) == 777
    for key in rng.sample(sorted(present), 200):
        expected = 777 if key == KEYS[4] else key + 1
        assert reopened.lookup(key) == expected
    # The reopened index keeps working: inserts + SMOs still function.
    added = 0
    while added < 400:
        key = rng.randrange(10**12)
        if key in present:
            continue
        present.add(key)
        reopened.insert(key, key + 1)
        added += 1
    for key in rng.sample(sorted(present), 100):
        expected = 777 if key == KEYS[4] else key + 1
        assert reopened.lookup(key) == expected


def test_index_file_persistence_on_disk(tmp_path):
    index = make_index("pgm", Pager(BlockDevice(4096, HDD)))
    index.bulk_load(items_of(KEYS))
    path = str(tmp_path / "pgm.idx")
    save_index(index, path)
    reopened = load_index(path, profile=SSD)
    assert reopened.pager.device.profile is SSD
    assert reopened.lookup(KEYS[0]) == KEYS[0] + 1


def test_pgm_components_survive_reopen():
    index = make_index("pgm", Pager(BlockDevice(4096, NULL_DEVICE)),
                       buffer_capacity=32)
    index.bulk_load(items_of(KEYS))
    rng = random.Random(3)
    present = set(KEYS)
    for _ in range(300):
        key = rng.randrange(10**12)
        if key in present:
            continue
        present.add(key)
        index.insert(key, key + 1)
    assert index.num_components >= 1
    buffer = io.BytesIO()
    save_index(index, buffer)
    buffer.seek(0)
    reopened = load_index(buffer)
    assert reopened.num_components == index.num_components
    assert reopened.buffer_count == index.buffer_count
