"""Tests for the durability subsystem: WAL, group commit, faults, recovery."""

import random
import subprocess
import sys

import pytest

from repro.bench.__main__ import main as bench_main
from repro.core import make_index
from repro.durability import (
    CrashError,
    FaultInjector,
    LogRecord,
    WriteAheadLog,
    recover,
    take_checkpoint,
)
from repro.storage import HDD, NULL_DEVICE, BlockDevice, Pager
from repro.workloads import run_workload


def _loaded_index(name, bulk_items, profile=NULL_DEVICE):
    pager = Pager(BlockDevice(4096, profile))
    index = make_index(name, pager)
    index.bulk_load(bulk_items)
    return index


def _full_scan(index, limit=100_000):
    return index.scan(0, limit)


# ---------------------------------------------------------------------------
# WAL mechanics
# ---------------------------------------------------------------------------

def test_wal_append_flush_and_group_commit_accounting(pager):
    wal = WriteAheadLog(pager, group_commit=4)
    for i in range(10):
        wal.append("insert", i, i + 1)
    # 10 appends at batch 4 -> two automatic flushes, two records pending.
    assert wal.flushes == 2
    assert wal.pending == 2
    assert wal.durable_seqno == 8
    wal.flush()
    assert wal.pending == 0
    assert wal.durable_seqno == 10
    # Each flush wrote one block (4 records fit easily), charged as "log".
    assert wal.log_blocks == 3
    assert pager.stats.writes_by_phase.get("log") == 3


def test_wal_records_roundtrip(pager):
    wal = WriteAheadLog(pager, group_commit=3)
    expected = []
    ops = ["insert", "update", "delete"]
    rng = random.Random(5)
    for i in range(50):
        op = ops[i % 3]
        key, payload = rng.randrange(2**64), rng.randrange(2**63)
        wal.append(op, key, payload)
        expected.append(LogRecord(op, i + 1, key, payload))
    wal.flush()
    assert list(wal.durable_records()) == expected


def test_wal_spans_blocks_when_batch_exceeds_block_capacity(pager):
    wal = WriteAheadLog(pager, group_commit=500)
    per_block = wal.records_per_block
    assert per_block < 500  # 25-byte records, 4 KiB blocks -> 163
    for i in range(500):
        wal.append("insert", i, i + 1)
    assert wal.flushes == 1
    assert wal.log_blocks == (500 + per_block - 1) // per_block
    assert len(list(wal.durable_records())) == 500


def test_wal_group_commit_reduces_log_writes():
    per_op = {}
    for batch in (1, 8, 64):
        pager = Pager(BlockDevice(4096, HDD))
        wal = WriteAheadLog(pager, group_commit=batch)
        for i in range(128):
            wal.append("insert", i, i + 1)
        wal.flush()
        per_op[batch] = pager.stats.writes_by_phase["log"] / 128
    assert per_op[1] > per_op[8] > per_op[64]
    assert per_op[1] == 1.0


def test_wal_torn_tail_detected_and_cut(pager):
    wal = WriteAheadLog(pager, group_commit=5)
    for i in range(15):
        wal.append("insert", i, i + 1)
    assert wal.durable_seqno == 15
    assert wal.tear_tail_block()
    survivors = list(wal.durable_records())
    # The torn third block is cut; the first two blocks' prefix survives.
    assert [r.seqno for r in survivors] == list(range(1, 11))


def test_wal_rejects_bad_parameters(pager):
    with pytest.raises(ValueError):
        WriteAheadLog(pager, group_commit=0)
    wal = WriteAheadLog(pager)
    with pytest.raises(ValueError):
        wal.append("compact", 1, 2)


# ---------------------------------------------------------------------------
# Fault injector
# ---------------------------------------------------------------------------

def test_fault_injector_deterministic_and_single_shot():
    injector = FaultInjector(crash_at_op=3)
    for i in range(3):
        injector.maybe_crash(i)
    with pytest.raises(CrashError) as err:
        injector.maybe_crash(3)
    assert err.value.op_index == 3
    injector.maybe_crash(4)  # already fired: never crashes twice


def test_fault_injector_probabilistic_reproducible():
    def crash_point():
        injector = FaultInjector(crash_probability=0.02, seed=99)
        for i in range(1000):
            try:
                injector.maybe_crash(i)
            except CrashError as err:
                return err.op_index
        return None

    first = crash_point()
    assert first is not None
    assert crash_point() == first  # seeded RNG -> same crash point


def test_crash_drops_unflushed_buffer(pager):
    wal = WriteAheadLog(pager, group_commit=10)
    for i in range(7):
        wal.append("insert", i, i + 1)
    report = FaultInjector().crash(wal, op_index=7)
    assert report.dropped_records == 7
    assert wal.pending == 0
    assert list(wal.durable_records()) == []


# ---------------------------------------------------------------------------
# Crash + recovery vs a never-crashed oracle (property-style, seeded random)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("index_name", ["btree", "alex"])
def test_recovery_matches_oracle_for_any_crash_point(index_name):
    """For random crash points / batch sizes / torn tails, replaying the
    WAL over the checkpoint must reproduce the oracle that executed
    exactly the recovered prefix — asserted by a full key scan."""
    rng = random.Random(0xD15C)
    keys = sorted(rng.sample(range(1, 10**9), 600))
    bulk = [(k, k + 1) for k in keys[:300]]
    ops = [("insert", k) for k in keys[300:]]

    for _trial in range(8):
        crash_at = rng.randrange(0, len(ops) + 1)
        batch = rng.choice([1, 4, 16, 64])
        torn = rng.random() < 0.5

        index = _loaded_index(index_name, bulk)
        wal = WriteAheadLog(index.pager, group_commit=batch)
        index.attach_wal(wal)
        checkpoint = take_checkpoint(index, wal)

        injector = FaultInjector(crash_at_op=crash_at, torn_tail=torn)
        result = run_workload(index, ops, fault_injector=injector)
        assert result.crashed_at_op == crash_at
        assert result.num_ops == crash_at

        recovered = recover(checkpoint, wal)
        # Durability contract: the recovered prefix is exactly the log's
        # surviving records — never more than what was executed.
        assert recovered.last_seqno <= crash_at
        if batch == 1 and not torn:
            assert recovered.last_seqno == crash_at  # every op force-flushed

        oracle = _loaded_index(index_name, bulk)
        for _kind, key in ops[:recovered.last_seqno]:
            oracle.insert(key, key + 1)
        assert _full_scan(recovered.index) == _full_scan(oracle)
        recovered.index.verify()


def test_update_and_delete_records_replay():
    bulk = [(k, k + 1) for k in range(0, 500, 5)]
    index = _loaded_index("btree", bulk)
    wal = WriteAheadLog(index.pager, group_commit=1)
    index.attach_wal(wal)
    checkpoint = take_checkpoint(index, wal)

    index.durable_insert(1001, 7)
    assert index.durable_update(10, 999) is True
    assert index.durable_delete(20) is True
    assert index.durable_delete(3) is False  # absent key: logged, replays as no-op

    recovered = recover(checkpoint, wal)
    assert recovered.records_applied == 4
    assert _full_scan(recovered.index) == _full_scan(index)
    assert recovered.index.lookup(10) == 999
    assert recovered.index.lookup(20) is None
    assert recovered.index.lookup(1001) == 7


def test_recovery_ignores_crashed_index_state():
    """Recovery must trust only checkpoint + WAL: corrupt the crashed
    device's index files outright and recovery still succeeds."""
    bulk = [(k, k + 1) for k in range(0, 1000, 2)]
    index = _loaded_index("btree", bulk)
    wal = WriteAheadLog(index.pager, group_commit=2)
    index.attach_wal(wal)
    checkpoint = take_checkpoint(index, wal)
    for key in range(1, 101, 2):
        index.durable_insert(key, key + 1)
    wal.flush()
    # Trash every non-WAL file, as an arbitrarily interrupted SMO might.
    for name, handle in index.pager.device.files.items():
        if name != wal.file.name:
            for block in handle.blocks:
                block[:] = b"\xde" * len(block)
    recovered = recover(checkpoint, wal)
    assert recovered.records_applied == 50
    assert recovered.index.lookup(99) == 100
    recovered.index.verify()


def test_recovery_charges_simulated_io():
    bulk = [(k, k + 1) for k in range(0, 2000, 2)]
    index = _loaded_index("btree", bulk, profile=HDD)
    wal = WriteAheadLog(index.pager, group_commit=8)
    index.attach_wal(wal)
    checkpoint = take_checkpoint(index, wal)
    for key in range(1, 401, 2):
        index.durable_insert(key, key + 1)
    wal.flush()
    recovered = recover(checkpoint, wal)
    assert recovered.wal_scan_us > 0       # log scan pays read I/O
    assert recovered.replay_us > 0         # redo pays write I/O
    assert recovered.recovery_us == recovered.wal_scan_us + recovered.replay_us
    # The scan was charged on the crashed device under the "log" phase.
    assert index.pager.stats.reads_by_phase.get("log", 0) > 0


# ---------------------------------------------------------------------------
# Runner accounting and CLI integration
# ---------------------------------------------------------------------------

def test_runner_reports_log_accounting():
    bulk = [(k, k + 1) for k in range(0, 4000, 4)]
    ops = [("insert", k) for k in range(1, 801, 4)]
    index = _loaded_index("btree", bulk, profile=HDD)
    wal = WriteAheadLog(index.pager, group_commit=8)
    index.attach_wal(wal)
    result = run_workload(index, ops)
    assert result.log_records == len(ops)
    assert result.log_flushes == len(ops) // 8
    assert result.log_blocks_written == result.log_flushes
    assert result.ops_per_log_flush == 8.0
    assert result.crashed_at_op is None
    assert wal.pending == 0  # clean finish flushes the tail batch


def test_runner_without_wal_reports_zero_log_traffic():
    bulk = [(k, k + 1) for k in range(0, 400, 4)]
    index = _loaded_index("btree", bulk)
    result = run_workload(index, [("insert", 1), ("lookup", 4)])
    assert result.log_records == 0
    assert result.log_flushes == 0
    assert result.ops_per_log_flush == 0.0


def test_fresh_index_wal_defaults_to_scale_group_commit():
    from repro.bench.config import Scale, fresh_index

    scale = Scale().scaled(0.01)
    setup = fresh_index("btree", "ycsb", "write_only", scale, with_wal=True)
    assert setup.wal is not None
    assert setup.wal.group_commit == scale.group_commit
    assert setup.index.wal is setup.wal
    override = fresh_index("btree", "ycsb", "write_only", scale,
                           wal_group_commit=64)
    assert override.wal.group_commit == 64
    plain = fresh_index("btree", "ycsb", "write_only", scale)
    assert plain.wal is None


def test_cli_durability_experiment(capsys):
    assert bench_main(["run", "durability", "--scale", "0.01"]) == 0
    out = capsys.readouterr().out
    assert "log_blocks_per_op" in out
    assert "recovery_ms" in out


def test_crash_recovery_example_runs():
    proc = subprocess.run(
        [sys.executable, "examples/crash_recovery.py"],
        capture_output=True, text=True, timeout=300, check=False)
    assert proc.returncode == 0, proc.stderr
    assert "recovered" in proc.stdout.lower()
