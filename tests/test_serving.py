"""Tests for the concurrent serving engine: latches, group commit,
snapshot reads, fairness, the commit-order oracle, and crash recovery."""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import make_index
from repro.durability import FaultInjector, WriteAheadLog, recover, take_checkpoint
from repro.obs import Tracer
from repro.serving import LatchManager, ServingEngine, split_ops
from repro.storage import HDD, NULL_DEVICE, SSD, BlockDevice, Pager
from repro.workloads import run_workload


def _loaded(name="btree", n_bulk=300, profile=HDD, with_wal=False,
            group_commit=1, buffer_blocks=0, step=7):
    """A bulk-loaded index over keys ``step, 2*step, ...`` (payload k+1)."""
    from repro.storage import make_buffer_pool

    pool = make_buffer_pool(buffer_blocks, "lru") if buffer_blocks else None
    pager = Pager(BlockDevice(4096, profile), buffer_pool=pool)
    index = make_index(name, pager)
    bulk = [(k, k + 1) for k in range(step, step * (n_bulk + 1), step)]
    index.bulk_load(bulk)
    wal = None
    if with_wal:
        wal = WriteAheadLog(pager, group_commit=group_commit)
        index.attach_wal(wal)
    return index, bulk, wal


def _mixed_ops(bulk, n_ops, insert_base, seed=11, insert_frac=0.5):
    """A random lookup/insert mix; insert keys are fresh and unique."""
    rng = random.Random(seed)
    ops = []
    next_insert = insert_base
    for _ in range(n_ops):
        if rng.random() < insert_frac:
            ops.append(("insert", next_insert))
            next_insert += 1
        else:
            ops.append(("lookup", rng.choice(bulk)[0]))
    return ops


# ---------------------------------------------------------------------------
# Latch manager unit tests
# ---------------------------------------------------------------------------

def test_shared_holds_are_compatible():
    latches = LatchManager()
    frame = ("leaf", 3)
    latches.hold(0, release_us=100.0, reads=[frame], writes=[])
    assert latches.wait_until(1, 10.0, reads=[frame], writes=[]) == 10.0


def test_exclusive_hold_blocks_readers_and_writers():
    latches = LatchManager()
    frame = ("leaf", 3)
    latches.hold(0, release_us=100.0, reads=[], writes=[frame])
    assert latches.wait_until(1, 10.0, reads=[frame], writes=[]) == 100.0
    assert latches.wait_until(1, 10.0, reads=[], writes=[frame]) == 100.0
    # ... but not its own session, and not after the release time.
    assert latches.wait_until(0, 10.0, reads=[frame], writes=[]) == 10.0
    assert latches.wait_until(1, 150.0, reads=[frame], writes=[]) == 150.0


def test_writer_waits_for_last_shared_reader():
    latches = LatchManager()
    frame = ("leaf", 9)
    latches.hold(0, release_us=50.0, reads=[frame], writes=[])
    latches.hold(1, release_us=80.0, reads=[frame], writes=[])
    assert latches.wait_until(2, 0.0, reads=[], writes=[frame]) == 80.0
    assert latches.wait_until(2, 0.0, reads=[frame], writes=[]) == 0.0


def test_write_subsumes_read_and_prune_drops_expired():
    latches = LatchManager()
    frame = ("leaf", 1)
    latches.hold(0, release_us=60.0, reads=[frame], writes=[frame])
    assert latches.wait_until(1, 0.0, reads=[frame], writes=[]) == 60.0
    latches.hold(1, release_us=90.0, reads=[("leaf", 2)], writes=[])
    latches.prune(70.0, force=True)
    # The exclusive hold (released at 60) is gone; the shared one remains.
    assert latches.wait_until(2, 0.0, reads=[frame], writes=[frame]) == 0.0
    assert latches.wait_until(2, 0.0, reads=[], writes=[("leaf", 2)]) == 90.0


def test_split_ops_round_robin():
    ops = [("lookup", k) for k in range(10)]
    streams = split_ops(ops, 3)
    assert [len(s) for s in streams] == [4, 3, 3]
    assert streams[0] == [("lookup", 0), ("lookup", 3), ("lookup", 6), ("lookup", 9)]
    assert split_ops(ops, 1) == [ops]
    with pytest.raises(ValueError):
        split_ops(ops, 0)


# ---------------------------------------------------------------------------
# Cross-client group commit
# ---------------------------------------------------------------------------

def test_group_commit_amortizes_flushes_across_clients():
    """At 64 clients the commit group fills from every session, so log
    flushes per committed write must drop at least 4x vs one client
    (the PR's acceptance bar; the engine typically does much better)."""
    ratios = {}
    for clients in (1, 64):
        index, bulk, _wal = _loaded(profile=SSD, with_wal=True)
        ops = _mixed_ops(bulk, 320, insert_base=10**6)
        res = run_workload(index, ops, client_ops=split_ops(ops, clients))
        assert res.clients == clients
        assert res.committed_writes == sum(1 for k, _ in ops if k == "insert")
        ratios[clients] = res.flushes_per_committed_write
    assert ratios[1] == pytest.approx(1.0)  # sync commit: one flush per write
    assert ratios[64] <= ratios[1] / 4.0


def test_commit_waits_are_client_perceived_not_device_time():
    index, bulk, _wal = _loaded(profile=SSD, with_wal=True)
    ops = _mixed_ops(bulk, 200, insert_base=10**6)
    res = run_workload(index, ops, client_ops=split_ops(ops, 16))
    assert res.commit_waits > 0
    # The device never idles waiting for an ack: commit wait is not a
    # storage phase, unlike latch stalls.
    assert "commit" not in res.time_by_phase_us
    assert res.mean_commit_group > 1.0
    assert res.commit_groups < res.committed_writes


# ---------------------------------------------------------------------------
# Snapshot reads
# ---------------------------------------------------------------------------

def test_snapshot_readers_charge_zero_latch_wait():
    index, bulk, _wal = _loaded(profile=HDD, with_wal=True)
    ops = _mixed_ops(bulk, 240, insert_base=10**6, insert_frac=0.5)
    res = run_workload(index, ops, client_ops=split_ops(ops, 16))
    assert res.snapshot_reads > 0
    assert res.read_latch_wait_us == 0.0
    for client in res.per_client.values():
        assert client["snapshot_reads"] >= 0
    # Writers still contend with each other.
    assert res.latch_wait_us == res.write_latch_wait_us


def test_latch_stats_reconcile_with_device_and_trace():
    index, bulk, _wal = _loaded(profile=HDD, with_wal=True)
    tracer = Tracer()
    index.attach_tracer(tracer)
    ops = _mixed_ops(bulk, 240, insert_base=10**6)
    res = run_workload(index, ops, client_ops=split_ops(ops, 16),
                       snapshot_reads=False)
    stats = index.pager.device.stats
    assert res.latch_waits == stats.latch_waits
    assert res.latch_wait_us == pytest.approx(stats.latch_wait_us)
    assert res.snapshot_reads == 0
    if res.latch_waits:
        assert stats.time_by_phase["latch"] == pytest.approx(res.latch_wait_us)
        assert "latch" in res.phase_latency_histograms
    assert res.client_phase_histograms  # per-client digests exist when traced
    index.detach_tracer()


# ---------------------------------------------------------------------------
# Fairness / starvation
# ---------------------------------------------------------------------------

def test_no_session_starves_under_hot_key_skew():
    """99%-hot-key lookups pile every client onto the same frames; the
    min-virtual-time scheduler must still cycle through all sessions."""
    clients = 16
    index, bulk, _wal = _loaded(profile=HDD)
    hot_key = bulk[0][0]
    rng = random.Random(3)
    ops = []
    next_insert = hot_key + 1  # lands in the hot leaf: exclusive latches
    for i in range(clients * 20):
        if i % 10 == 0 and next_insert % 7 != 0:
            ops.append(("insert", next_insert))
            next_insert += 1
        elif rng.random() < 0.99:
            ops.append(("lookup", hot_key))
        else:
            ops.append(("lookup", rng.choice(bulk)[0]))
    # No WAL: writes acknowledge on apply, so dispatch gaps measure the
    # scheduler alone (commit waits would legitimately widen them).
    res = run_workload(index, ops, client_ops=split_ops(ops, clients),
                       snapshot_reads=False, keep_latencies=True)
    assert res.num_ops == len(ops)
    assert res.latch_waits > 0  # the hot frame really did contend
    base_op_us = min(us for us in res.latencies_us if us > 0)
    for client in res.per_client.values():
        assert client["ops"] == 20  # every session finished its stream
        gap = client["max_dispatch_gap"]
        assert gap is not None
        # Fair queuing: a session sits out only while repaying virtual
        # time it already consumed, so its dispatch gap is bounded by
        # the other sessions' ops that fit inside its own stall time —
        # never unboundedly (starvation would be an unbounded gap).
        stall_rounds = client["latch_wait_us"] / base_op_us
        assert gap <= clients * (2 + stall_rounds)
        if client["latch_waits"] == 0:
            assert gap <= 2 * clients


def test_every_session_completes_with_writers_blocked_on_commit():
    """With group commit in play a writer's dispatch gap includes its
    commit wait, so fairness is asserted as completion: every session
    drains its queue even under 99%-hot-key read skew."""
    clients = 16
    index, bulk, _wal = _loaded(profile=HDD, with_wal=True)
    hot_key = bulk[0][0]
    rng = random.Random(3)
    ops = []
    next_insert = 10**6
    for i in range(clients * 20):
        if i % 10 == 0:
            ops.append(("insert", next_insert))
            next_insert += 1
        elif rng.random() < 0.99:
            ops.append(("lookup", hot_key))
        else:
            ops.append(("lookup", rng.choice(bulk)[0]))
    res = run_workload(index, ops, client_ops=split_ops(ops, clients),
                       snapshot_reads=False)
    assert res.num_ops == len(ops)
    assert all(c["ops"] == 20 for c in res.per_client.values())
    assert res.committed_writes == sum(1 for k, _ in ops if k == "insert")


# ---------------------------------------------------------------------------
# Commit-order oracle (property)
# ---------------------------------------------------------------------------

@settings(max_examples=20, deadline=None)
@given(
    choices=st.lists(st.tuples(st.booleans(), st.integers(0, 49)),
                     min_size=1, max_size=60),
    clients=st.integers(1, 5),
    group=st.integers(1, 8),
)
def test_interleaving_matches_commit_order_oracle(choices, clients, group):
    """The served index must equal an oracle that applies exactly the
    committed writes, in commit order, to the same bulk load — for any
    op mix, client count and commit-group capacity."""
    bulk = [(k, k + 1) for k in range(10, 510, 10)]
    pager = Pager(BlockDevice(4096, NULL_DEVICE))
    index = make_index("btree", pager)
    index.bulk_load(bulk)
    wal = WriteAheadLog(pager, group_commit=1)
    index.attach_wal(wal)

    ops = []
    next_insert = 10_000
    for is_insert, pick in choices:
        if is_insert:
            ops.append(("insert", next_insert))
            next_insert += 1
        else:
            ops.append(("lookup", bulk[pick][0]))
    engine = ServingEngine(index, split_ops(ops, clients),
                           commit_group=group, validate=True)
    report = engine.run()
    assert report.executed == len(ops)
    # Commit order is seqno order: groups flush oldest-first.
    seqnos = [s for s, _, _ in report.committed]
    assert seqnos == sorted(seqnos)

    oracle_pager = Pager(BlockDevice(4096, NULL_DEVICE))
    oracle = make_index("btree", oracle_pager)
    oracle.bulk_load(bulk)
    for _seqno, key, payload in report.committed:
        oracle.insert(key, payload)
    assert index.scan(0, 10_000) == oracle.scan(0, 10_000)


# ---------------------------------------------------------------------------
# Crash under concurrency
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("crash_at", [5, 37, 120])
def test_crash_recovers_to_cross_client_committed_prefix(crash_at):
    """Crash mid-schedule with 8 clients: recovery must rebuild exactly
    the acknowledged (group-committed) writes — nothing more, nothing
    less — regardless of which sessions' ops were in flight."""
    index, bulk, wal = _loaded(profile=SSD, with_wal=True)
    checkpoint = take_checkpoint(index, wal)
    ops = _mixed_ops(bulk, 200, insert_base=10**6)
    injector = FaultInjector(crash_at_op=crash_at)
    engine = ServingEngine(index, split_ops(ops, 8),
                           fault_injector=injector)
    report = engine.run()
    assert report.crashed_at_op == crash_at
    assert report.executed < len(ops)

    recovered = recover(checkpoint, wal)
    oracle_pager = Pager(BlockDevice(4096, SSD))
    oracle = make_index("btree", oracle_pager)
    oracle.bulk_load(bulk)
    for _seqno, key, payload in report.committed:
        oracle.insert(key, payload)
    assert recovered.index.scan(0, 10**9) == oracle.scan(0, 10**9)
    # Every acknowledged write survived; unacknowledged ones are absent.
    committed_keys = {key for _s, key, _p in report.committed}
    for key in committed_keys:
        assert recovered.index.lookup(key) == key + 1


def test_crash_through_run_workload_reports_crash_point():
    index, bulk, _wal = _loaded(profile=SSD, with_wal=True)
    ops = _mixed_ops(bulk, 120, insert_base=10**6)
    injector = FaultInjector(crash_at_op=40)
    res = run_workload(index, ops, client_ops=split_ops(ops, 8),
                       fault_injector=injector)
    assert res.crashed_at_op == 40
    assert res.num_ops < len(ops)


# ---------------------------------------------------------------------------
# Single-client parity with the legacy path
# ---------------------------------------------------------------------------

def test_default_call_never_enters_serving(monkeypatch):
    """clients=1 with no client_ops must execute the original code path
    (the seed's single-stream runner), not the serving engine."""
    import repro.workloads.runner as runner_mod

    def _boom(*args, **kwargs):  # pragma: no cover - must not be called
        raise AssertionError("serving path entered for a single-client run")

    monkeypatch.setattr(runner_mod, "_run_serving", _boom)
    index, bulk, _wal = _loaded(profile=SSD)
    ops = _mixed_ops(bulk, 60, insert_base=10**6)
    res = run_workload(index, ops)
    assert res.clients == 1 and res.per_client == {}


def test_snapshot_reads_never_serve_stale_cached_frames():
    """Regression for the zero-copy frame caches (DESIGN.md §15): under
    concurrent serving, writers rewrite leaf frames between snapshot
    reads, and the pager's parsed-key caches must drop those frames (via
    the write path and buffer-pool eviction hooks) instead of serving a
    pre-write parse.  A staleness bug surfaces here as a wrong payload —
    either in the validated concurrent phase or in the final sweep,
    which runs over the same warm caches the writers just invalidated."""
    index, bulk, _wal = _loaded(profile=HDD, with_wal=True,
                                buffer_blocks=64)
    pager = index.pager
    keys = [k for k, _p in bulk]
    # Warm the parsed-frame caches with a batched sweep.
    assert index.lookup_many(keys) == [k + 1 for k in keys]
    assert pager.key_cache_builds > 0
    for round_no in range(3):
        ops = _mixed_ops(bulk, 200, insert_base=(round_no + 1) * 10**6,
                         insert_frac=0.5, seed=round_no)
        res = run_workload(index, ops, client_ops=split_ops(ops, 8),
                           validate=True)
        assert res.snapshot_reads > 0
        # The sweep after each concurrent round runs over the same warm
        # caches the round's writers just had to invalidate.
        keys = sorted(set(keys) | {key for kind, key in ops
                                   if kind == "insert"})
        assert index.lookup_many(keys) == [k + 1 for k in keys]
    assert pager.key_cache_hits > 0


def test_single_session_matches_legacy_metrics():
    """One session, no WAL, no conflicts: the serving path must charge
    the device identically to the legacy runner — same elapsed time,
    same block counts, same latencies."""
    ops = None
    results = {}
    for mode in ("legacy", "serving"):
        index, bulk, _wal = _loaded(profile=HDD, buffer_blocks=32)
        if ops is None:
            ops = _mixed_ops(bulk, 100, insert_base=10**6)
        if mode == "legacy":
            results[mode] = run_workload(index, ops, keep_latencies=True)
        else:
            results[mode] = run_workload(index, ops, client_ops=[ops],
                                         keep_latencies=True)
    legacy, serving = results["legacy"], results["serving"]
    assert serving.sim_elapsed_us == legacy.sim_elapsed_us
    assert serving.blocks_read_per_op == legacy.blocks_read_per_op
    assert serving.blocks_written_per_op == legacy.blocks_written_per_op
    assert serving.latch_waits == 0
    np.testing.assert_array_equal(serving.latencies_us, legacy.latencies_us)
    assert serving.time_by_phase_us == legacy.time_by_phase_us


def test_workload_split_serves_full_stream():
    """run_workload(clients=N) splits ops round-robin and executes all."""
    index, bulk, _wal = _loaded(profile=SSD, with_wal=True)
    res = run_workload(index, _mixed_ops(bulk, 150, insert_base=10**7),
                       clients=5)
    assert res.clients == 5
    assert res.num_ops == 150
    assert set(res.per_client) == set(range(5))
