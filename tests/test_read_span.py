"""Vectorized multi-block I/O: device ``read_blocks``, pager ``read_span``
and ``prefetch``, the bulk buffer-pool API, and the coalescing cost-model
property (coalesced reads never charge more positionings than a serial
sorted loop, and return identical bytes)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import HDD, BlockDevice, Pager
from repro.storage.buffer_pool import make_buffer_pool


def _loaded(num_blocks=16, buffer_blocks=0, block_size=4096):
    """A device + pager + file with distinct per-block payloads."""
    device = BlockDevice(block_size=block_size, profile=HDD)
    pool = make_buffer_pool(buffer_blocks) if buffer_blocks else None
    pager = Pager(device, buffer_pool=pool)
    f = device.create_file("f")
    f.allocate(num_blocks)
    for i in range(num_blocks):
        device.write_block(f, i, bytes([i % 256]) * block_size)
    return device, pager, f


# -- device.read_blocks ------------------------------------------------------

def test_read_blocks_empty_and_data():
    device, _pager, f = _loaded(8)
    assert device.read_blocks(f, []) == []
    out = device.read_blocks(f, [1, 4, 5])
    assert out == [bytes([1]) * 4096, bytes([4]) * 4096, bytes([5]) * 4096]


def test_read_blocks_rejects_unsorted_and_duplicates():
    device, _pager, f = _loaded(8)
    with pytest.raises(ValueError):
        device.read_blocks(f, [3, 1])
    with pytest.raises(ValueError):
        device.read_blocks(f, [2, 2])
    with pytest.raises(IndexError):
        device.read_blocks(f, [7, 8])


def test_read_blocks_charges_one_positioning_per_run():
    device, _pager, f = _loaded(16)
    before = device.stats.snapshot()
    device.read_blocks(f, [2, 3, 4, 9, 10, 13])
    delta = device.stats.diff(before)
    assert delta.reads == 6
    # three runs: [2..4], [9..10], [13] -> one positioning each
    assert delta.read_positionings == 3
    assert delta.coalesced_runs == 2
    assert delta.coalesced_blocks == 5  # 3 + 2; the singleton isn't a run
    # run members after the first pay the sequential cost
    seq = device.profile.read_cost_us(device.block_size, sequential=True)
    rand = device.profile.read_cost_us(device.block_size, sequential=False)
    assert delta.elapsed_us == 3 * rand + 3 * seq


def test_read_blocks_extends_a_preceding_sequential_access():
    device, _pager, f = _loaded(16)
    device.read_block(f, 4)
    before = device.stats.snapshot()
    device.read_blocks(f, [5, 6])
    delta = device.stats.diff(before)
    assert delta.read_positionings == 0  # the head joins the prior access
    assert delta.coalesced_runs == 1


def test_on_run_hook_reports_each_multiblock_run():
    device, _pager, f = _loaded(16)
    runs = []
    device.on_run = lambda name, length: runs.append((name, length))
    device.read_blocks(f, [0, 1, 2, 5, 8, 9])
    assert runs == [("f", 3), ("f", 2)]


def test_read_blocks_memory_resident_is_free():
    device, _pager, f = _loaded(8)
    f.memory_resident = True
    before = device.stats.snapshot()
    out = device.read_blocks(f, [0, 3])
    delta = device.stats.diff(before)
    assert out[1] == bytes([3]) * 4096
    assert delta.reads == 0 and delta.elapsed_us == 0


# -- pager.read_span / prefetch ----------------------------------------------

def test_read_span_sorts_dedups_and_matches_read_block():
    _device, pager, f = _loaded(16)
    span = pager.read_span(f, [9, 2, 2, 5])
    assert sorted(span) == [2, 5, 9]
    for no, data in span.items():
        assert data == bytes([no]) * 4096
    assert pager.read_span(f, []) == {}


def test_read_span_serves_pool_hits_and_backfills():
    _device, pager, f = _loaded(16, buffer_blocks=8)
    pager.read_span(f, [3, 4, 5])
    assert pager.buffer_pool.get_many("f", [3, 4, 5])  # back-filled
    before = pager.device.stats.snapshot()
    span = pager.read_span(f, [3, 4, 5, 6])
    delta = pager.device.stats.diff(before)
    assert delta.reads == 1  # only block 6 goes to the device
    assert span[4] == bytes([4]) * 4096


def test_read_span_last_block_reuse_only_at_the_span_head():
    # A serial ascending loop can only ever hit the pager's one-block
    # reuse cache on its first block; read_span must not do better.
    _device, pager, f = _loaded(16)
    pager.read_block(f, 7)  # _last = block 7
    before = pager.device.stats.snapshot()
    pager.read_span(f, [7, 8])
    assert pager.device.stats.diff(before).reads == 1  # 7 from _last
    pager.read_block(f, 9)  # _last = block 9
    before = pager.device.stats.snapshot()
    pager.read_span(f, [8, 9])
    assert pager.device.stats.diff(before).reads == 2  # 9 is mid-span: refetch


def test_prefetch_returns_device_read_count():
    _device, pager, f = _loaded(16, buffer_blocks=8)
    assert pager.prefetch(f, [1, 2, 3]) == 3
    assert pager.prefetch(f, [1, 2, 3]) == 0  # now pool-resident


def test_batch_scope_pins_blocks_across_read_spans():
    _device, pager, f = _loaded(16)
    with pager.batch():
        pager.read_span(f, [4, 5])
        before = pager.device.stats.snapshot()
        assert pager.read_block(f, 4) == bytes([4]) * 4096
        pager.read_span(f, [4, 5])
        assert pager.device.stats.diff(before).reads == 0
    before = pager.device.stats.snapshot()
    pager.read_block(f, 4)  # pins dropped at scope exit
    assert pager.device.stats.diff(before).reads == 1


# -- bulk buffer-pool API ----------------------------------------------------

@pytest.mark.parametrize("policy", ["lru", "fifo", "clock"])
def test_put_many_get_many_roundtrip(policy):
    pool = make_buffer_pool(4, policy)
    pool.put_many("f", {1: b"a", 2: b"b", 3: b"c"})
    hits = pool.get_many("f", [1, 2, 3, 9])
    assert hits == {1: b"a", 2: b"b", 3: b"c"}
    assert pool.hits == 3 and pool.misses == 1
    assert len(pool) == 3


@pytest.mark.parametrize("policy", ["lru", "fifo", "clock"])
def test_put_many_respects_capacity(policy):
    pool = make_buffer_pool(2, policy)
    pool.put_many("f", {i: bytes([i]) for i in range(5)})
    assert len(pool) == 2


@pytest.mark.parametrize("policy", ["lru", "fifo", "clock"])
def test_zero_capacity_bulk_ops_are_noops(policy):
    pool = make_buffer_pool(0, policy)
    pool.put_many("f", {1: b"a"})
    assert pool.get_many("f", [1]) == {}


def test_bulk_eviction_order_matches_policy():
    lru = make_buffer_pool(2, "lru")
    lru.put_many("f", {1: b"a", 2: b"b"})
    lru.get_many("f", [1])          # 1 becomes most recent
    lru.put_many("f", {3: b"c"})    # evicts 2
    assert lru.get_many("f", [1, 2, 3]) == {1: b"a", 3: b"c"}

    fifo = make_buffer_pool(2, "fifo")
    fifo.put_many("f", {1: b"a", 2: b"b"})
    fifo.get_many("f", [1])         # recency ignored
    fifo.put_many("f", {1: b"A", 3: b"c"})  # refresh keeps 1 oldest; evicts 1
    assert fifo.get_many("f", [1, 2, 3]) == {2: b"b", 3: b"c"}

    clock = make_buffer_pool(2, "clock")
    clock.put_many("f", {1: b"a", 2: b"b"})
    clock.get_many("f", [1])        # referenced bit set -> second chance
    clock.put_many("f", {3: b"c"})  # hand skips 1, evicts 2
    assert clock.get_many("f", [1, 2, 3]) == {1: b"a", 3: b"c"}


# -- the coalescing cost-model property --------------------------------------

@settings(max_examples=60, deadline=None)
@given(st.sets(st.integers(min_value=0, max_value=31), min_size=1, max_size=20),
       st.booleans())
def test_read_span_matches_serial_sorted_loop(block_nos, use_pool):
    """Coalescing is a pure scheduling optimization: identical bytes, and
    never more device reads, positionings, or simulated time than reading
    the same sorted blocks one at a time."""
    buffer_blocks = 8 if use_pool else 0
    _d1, serial_pager, f1 = _loaded(32, buffer_blocks=buffer_blocks)
    _d2, span_pager, f2 = _loaded(32, buffer_blocks=buffer_blocks)

    before = serial_pager.device.stats.snapshot()
    expected = {no: serial_pager.read_block(f1, no) for no in sorted(block_nos)}
    serial = serial_pager.device.stats.diff(before)

    before = span_pager.device.stats.snapshot()
    span = span_pager.read_span(f2, block_nos)
    coalesced = span_pager.device.stats.diff(before)

    assert span == expected
    assert coalesced.reads <= serial.reads
    assert coalesced.read_positionings <= serial.read_positionings
    assert coalesced.elapsed_us <= serial.elapsed_us
