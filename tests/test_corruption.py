"""Failure injection: on-disk corruption must be caught.

Two independent detection layers are exercised:

* ``verify()`` — each test flips bytes an index's verifier actually
  guards, then checks the structural walk raises instead of silently
  serving garbage (verification reads are free and skip the envelope,
  so these tests see the corrupt bytes directly);
* the checksum envelope — for *every* registered index, a byte flipped
  behind the device's back (media corruption: the stored bytes change,
  the envelope does not) makes the next charged read of that block on
  the lookup and scan paths raise :class:`ChecksumError` instead of
  returning the corrupt payload.
"""

import struct

import pytest

from repro.core import make_index
from repro.storage import ChecksumError, NULL_DEVICE, BlockDevice, Pager

from tests.util import items_of, random_sorted_keys

KEYS = random_sorted_keys(5000, seed=31)

#: Every registered index shape (one hybrid stands in for all four —
#: they share the leaf machinery under test).
ALL_INDEXES = ("btree", "fiting", "pgm", "alex", "lipp", "plid", "hybrid-pgm")


def loaded(name):
    index = make_index(name, Pager(BlockDevice(4096, NULL_DEVICE)))
    index.bulk_load(items_of(KEYS))
    return index


def _swap_entries(file, block_no, first_offset, second_offset, width=8):
    block = bytearray(file.blocks[block_no])
    (block[first_offset : first_offset + width],
     block[second_offset : second_offset + width]) = (
        block[second_offset : second_offset + width],
        block[first_offset : first_offset + width])
    file.blocks[block_no] = block


def test_btree_detects_leaf_disorder():
    index = loaded("btree")
    _swap_entries(index._leaf_file, 0, 16, 32)  # swap first two keys
    with pytest.raises(AssertionError):
        index.verify()


def test_btree_detects_count_mismatch():
    index = loaded("btree")
    index.tree.num_records += 1  # meta lies about the record count
    with pytest.raises(AssertionError):
        index.verify()


def test_fiting_detects_segment_disorder():
    index = loaded("fiting")
    # Segment 1 starts at block 1 of the data file (block 0 = head buffer);
    # its entries start 64 bytes in.
    _swap_entries(index._data, 1, 64, 80)
    with pytest.raises(AssertionError):
        index.verify()


def test_fiting_detects_chain_break():
    index = loaded("fiting")
    header = index._read_header(index.first_segment_block)
    header.right_sib = index.first_segment_block  # self-loop
    index._write_header(index.first_segment_block, header)
    if index.num_segments > 1:
        with pytest.raises(AssertionError):
            index.verify()


def test_pgm_detects_component_disorder():
    index = loaded("pgm")
    component = next(c for c in index.components if c is not None)
    _swap_entries(component.data_file, 0, 0, 16)
    with pytest.raises(AssertionError):
        index.verify()


def test_alex_detects_bitmap_corruption():
    index = loaded("alex")
    block, _ = index._descend(KEYS[0])
    # Zero the first bitmap byte: the population no longer matches the
    # header's num_keys.
    offset = index._bitmap_offset(block, 0) % 4096
    bitmap_block = index._bitmap_offset(block, 0) // 4096
    raw = bytearray(index._data_file.blocks[bitmap_block])
    raw[offset] = 0 if raw[offset] else 0xFF
    index._data_file.blocks[bitmap_block] = raw
    with pytest.raises(AssertionError):
        index.verify()


def test_lipp_detects_misplaced_key():
    index = loaded("lipp")
    header = index._read_header(index.root_block)
    # Find a DATA slot and move its entry to a wrong (NULL) slot.
    from repro.core.lipp import SLOT_DATA, SLOT_NULL
    data_slot = null_slot = None
    for slot in range(header.num_slots):
        flag, key, payload = index._read_slot(index.root_block, slot)
        if flag == SLOT_DATA and data_slot is None:
            data_slot = (slot, key, payload)
        elif flag == SLOT_NULL and null_slot is None and data_slot is not None:
            null_slot = slot
        if data_slot and null_slot:
            break
    assert data_slot and null_slot is not None
    slot, key, payload = data_slot
    index._write_slot(index.root_block, null_slot, SLOT_DATA, key, payload)
    with pytest.raises(AssertionError):
        index.verify()


def test_plid_detects_directory_divergence():
    index = loaded("plid")
    # Break the leaf chain: point the first leaf's next at itself.
    entries, _next, prev = index._read_leaf(index.first_leaf_block)
    index._write_leaf(index.first_leaf_block, entries,
                      index.first_leaf_block, prev)
    with pytest.raises(AssertionError):
        index.verify()


def test_hybrid_detects_leaf_disorder():
    index = loaded("hybrid-pgm")
    _swap_entries(index._leaf_file, 0, 16, 32)  # swap first two keys
    with pytest.raises(AssertionError):
        index.verify()


def test_hybrid_detects_chain_break():
    index = loaded("hybrid-pgm")
    from repro.core.hybrid import _LEAF_HEADER
    # Point the first leaf's next pointer at itself: a cycle.
    raw = bytearray(index._leaf_file.blocks[0])
    count, pad, _next, prev, pad2 = _LEAF_HEADER.unpack_from(raw, 0)
    _LEAF_HEADER.pack_into(raw, 0, count, pad, 0, prev, pad2)
    index._leaf_file.blocks[0] = raw
    assert index.num_leaves > 1
    with pytest.raises(AssertionError):
        index.verify()


def test_verify_passes_on_untouched_indexes():
    for name in ALL_INDEXES:
        assert loaded(name).verify() == len(KEYS)


# -- checksum-level detection (the storage layer, below verify()) ----------

def _blocks_read_during(index, op):
    """Run ``op`` and return the (file_name, block_no) reads it charged."""
    device = index.pager.device
    touched = []
    device.on_access = lambda kind, fn, no, phase, cost: (
        touched.append((fn, no)) if kind == "r" else None)
    try:
        op()
    finally:
        device.on_access = None
    return touched


def _flip_byte(device, file_name, block_no, offset=100):
    """Media corruption: mutate stored bytes, leave the envelope stale."""
    handle = device.get_file(file_name)
    block = bytearray(handle.blocks[block_no])
    block[offset] ^= 0xFF
    handle.blocks[block_no] = block


@pytest.mark.parametrize("name", ALL_INDEXES)
def test_checksum_catches_flipped_byte_on_lookup(name):
    index = loaded(name)
    key = KEYS[len(KEYS) // 2]
    reads = _blocks_read_during(index, lambda: index.lookup(key))
    assert reads, "lookup must charge at least one device read"
    file_name, block_no = reads[-1]  # the leaf/data block holding the key
    _flip_byte(index.pager.device, file_name, block_no)
    index.pager.drop_last_block()
    with pytest.raises(ChecksumError):
        index.lookup(key)


@pytest.mark.parametrize("name", ALL_INDEXES)
def test_checksum_catches_flipped_byte_on_scan(name):
    index = loaded(name)
    key = KEYS[len(KEYS) // 2]
    reads = _blocks_read_during(index, lambda: index.scan(key, 50))
    assert reads, "scan must charge at least one device read"
    file_name, block_no = reads[-1]
    _flip_byte(index.pager.device, file_name, block_no)
    index.pager.drop_last_block()
    with pytest.raises(ChecksumError):
        index.scan(key, 50)


def test_checksum_failure_counted_and_carries_coordinates():
    index = loaded("btree")
    key = KEYS[0]
    reads = _blocks_read_during(index, lambda: index.lookup(key))
    file_name, block_no = reads[-1]
    _flip_byte(index.pager.device, file_name, block_no)
    index.pager.drop_last_block()
    with pytest.raises(ChecksumError) as exc:
        index.lookup(key)
    assert exc.value.file_name == file_name
    assert exc.value.block_no == block_no
    assert index.pager.device.stats.checksum_failures == 1


def test_checksums_can_be_disabled():
    index = loaded("btree")
    index.pager.device.checksums = False
    key = KEYS[0]
    reads = _blocks_read_during(index, lambda: index.lookup(key))
    file_name, block_no = reads[-1]
    _flip_byte(index.pager.device, file_name, block_no, offset=4000)
    index.pager.drop_last_block()
    # With verification off the corrupt payload is served (the flip at a
    # padding offset keeps the structural decode intact).
    index.lookup(key)
    assert index.pager.device.stats.checksum_failures == 0
