"""Failure injection: on-disk corruption must be caught by verify().

Each test flips bytes an index's verifier actually guards, then checks
the walk raises instead of silently serving garbage.
"""

import struct

import pytest

from repro.core import make_index
from repro.storage import NULL_DEVICE, BlockDevice, Pager

from tests.util import items_of, random_sorted_keys

KEYS = random_sorted_keys(5000, seed=31)


def loaded(name):
    index = make_index(name, Pager(BlockDevice(4096, NULL_DEVICE)))
    index.bulk_load(items_of(KEYS))
    return index


def _swap_entries(file, block_no, first_offset, second_offset, width=8):
    block = bytearray(file.blocks[block_no])
    (block[first_offset : first_offset + width],
     block[second_offset : second_offset + width]) = (
        block[second_offset : second_offset + width],
        block[first_offset : first_offset + width])
    file.blocks[block_no] = block


def test_btree_detects_leaf_disorder():
    index = loaded("btree")
    _swap_entries(index._leaf_file, 0, 16, 32)  # swap first two keys
    with pytest.raises(AssertionError):
        index.verify()


def test_btree_detects_count_mismatch():
    index = loaded("btree")
    index.tree.num_records += 1  # meta lies about the record count
    with pytest.raises(AssertionError):
        index.verify()


def test_fiting_detects_segment_disorder():
    index = loaded("fiting")
    # Segment 1 starts at block 1 of the data file (block 0 = head buffer);
    # its entries start 64 bytes in.
    _swap_entries(index._data, 1, 64, 80)
    with pytest.raises(AssertionError):
        index.verify()


def test_fiting_detects_chain_break():
    index = loaded("fiting")
    header = index._read_header(index.first_segment_block)
    header.right_sib = index.first_segment_block  # self-loop
    index._write_header(index.first_segment_block, header)
    if index.num_segments > 1:
        with pytest.raises(AssertionError):
            index.verify()


def test_pgm_detects_component_disorder():
    index = loaded("pgm")
    component = next(c for c in index.components if c is not None)
    _swap_entries(component.data_file, 0, 0, 16)
    with pytest.raises(AssertionError):
        index.verify()


def test_alex_detects_bitmap_corruption():
    index = loaded("alex")
    block, _ = index._descend(KEYS[0])
    # Zero the first bitmap byte: the population no longer matches the
    # header's num_keys.
    offset = index._bitmap_offset(block, 0) % 4096
    bitmap_block = index._bitmap_offset(block, 0) // 4096
    raw = bytearray(index._data_file.blocks[bitmap_block])
    raw[offset] = 0 if raw[offset] else 0xFF
    index._data_file.blocks[bitmap_block] = raw
    with pytest.raises(AssertionError):
        index.verify()


def test_lipp_detects_misplaced_key():
    index = loaded("lipp")
    header = index._read_header(index.root_block)
    # Find a DATA slot and move its entry to a wrong (NULL) slot.
    from repro.core.lipp import SLOT_DATA, SLOT_NULL
    data_slot = null_slot = None
    for slot in range(header.num_slots):
        flag, key, payload = index._read_slot(index.root_block, slot)
        if flag == SLOT_DATA and data_slot is None:
            data_slot = (slot, key, payload)
        elif flag == SLOT_NULL and null_slot is None and data_slot is not None:
            null_slot = slot
        if data_slot and null_slot:
            break
    assert data_slot and null_slot is not None
    slot, key, payload = data_slot
    index._write_slot(index.root_block, null_slot, SLOT_DATA, key, payload)
    with pytest.raises(AssertionError):
        index.verify()


def test_plid_detects_directory_divergence():
    index = loaded("plid")
    # Break the leaf chain: point the first leaf's next at itself.
    entries, _next, prev = index._read_leaf(index.first_leaf_block)
    index._write_leaf(index.first_leaf_block, entries,
                      index.first_leaf_block, prev)
    with pytest.raises(AssertionError):
        index.verify()


def test_verify_passes_on_untouched_indexes():
    for name in ("btree", "fiting", "pgm", "alex", "lipp", "plid"):
        assert loaded(name).verify() == len(KEYS)
