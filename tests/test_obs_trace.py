"""Tracing: op attribution, ring-buffer folding, JSONL export, and the
exact reconciliation of trace totals with ``StorageStats``.

The reconciliation tests enforce the acceptance bar of the observability
layer: every charged block access appears in the exported trace exactly
once, so summing the records reproduces the device counters — to the
last block and the last float bit of simulated time.
"""

import json

import numpy as np
import pytest

from repro.bench.config import Scale, fresh_index, tracing
from repro.bench.experiments import run_experiment
from repro.core import index_names, make_index
from repro.durability import WriteAheadLog
from repro.obs import Tracer, format_summary, load_trace, summarize
from repro.storage import HDD, BlockDevice, BufferPool, Pager
from repro.workloads import WORKLOADS, build_workload, run_workload

from tests.util import items_of, random_sorted_keys

SMALL = Scale(n_read=3000, n_write_bulk=1500, n_write_ops=800,
              n_lookup_ops=300, n_scan_ops=40)


def sum_records(records, field):
    """Per-phase totals over all accounting records of an exported trace."""
    out = {}
    for record in records:
        if record["type"] not in ("op", "evicted", "background"):
            continue
        for phase, value in record.get(field, {}).items():
            out[phase] = out.get(phase, 0) + value
    return out


def export(tracer, tmp_path, name="trace.jsonl"):
    path = tmp_path / name
    tracer.export_jsonl(str(path))
    return [json.loads(line) for line in open(path)]


# -- reconciliation: trace totals == StorageStats, exactly -----------------

@pytest.mark.parametrize("name", index_names(include_plid=True))
def test_trace_reconciles_with_storage_stats(name, tmp_path):
    """Summed per-phase reads/writes/µs of the exported JSONL equal the
    device's StorageStats exactly, for every index, with a buffer pool
    and a WAL in the loop and the ring buffer forced to evict."""
    keys = np.array(random_sorted_keys(1200, seed=5), dtype="u8")
    bulk, ops = build_workload(WORKLOADS["balanced"], keys, 400, seed=9)
    device = BlockDevice(4096, HDD)
    pager = Pager(device, buffer_pool=BufferPool(32))
    index = make_index(name, pager)
    tracer = Tracer(capacity=100)  # much smaller than the op count
    index.attach_tracer(tracer)
    index.bulk_load(bulk)
    index.attach_wal(WriteAheadLog(pager, group_commit=4))
    run_workload(index, ops, workload="balanced")

    records = export(tracer, tmp_path)
    stats = device.stats
    assert sum_records(records, "reads") == dict(stats.reads_by_phase)
    assert sum_records(records, "writes") == dict(stats.writes_by_phase)
    # Exact float equality: the trace observes the identical cost charges.
    assert sum_records(records, "us_by_phase") == dict(stats.time_by_phase)
    # The summary record accumulates in the device's own order: bitwise.
    summary = records[0]
    assert summary["type"] == "summary"
    assert summary["reads"] == dict(stats.reads_by_phase)
    assert summary["writes"] == dict(stats.writes_by_phase)
    assert summary["us_by_phase"] == dict(stats.time_by_phase)
    assert summary["dropped_ops"] > 0  # the ring buffer really did fold


def test_trace_reconciles_across_run_experiment(tmp_path, monkeypatch):
    """The CLI path: run_experiment(--trace) exports a multi-device trace
    whose records sum to the summary record's totals."""
    monkeypatch.setenv("REPRO_DATASETS", "ycsb")
    path = tmp_path / "exp.jsonl"
    run_experiment("fig12", SMALL, trace_path=str(path))
    records = load_trace(str(path))
    summary = records[0]
    assert summary["type"] == "summary"
    assert sum_records(records, "reads") == summary["reads"]
    assert sum_records(records, "writes") == summary["writes"]
    assert sum_records(records, "us_by_phase") == summary["us_by_phase"]
    assert summary["events"] == sum(1 for r in records if r["type"] == "op")


def test_tracing_context_binds_every_fresh_index(tmp_path):
    tracer = Tracer()
    with tracing(tracer):
        setups = [fresh_index(name, "ycsb", "write_only", SMALL)
                  for name in ("btree", "alex")]
        for setup in setups:
            run_workload(setup.index, setup.ops[:100])
    records = export(tracer, tmp_path)
    total_reads = {}
    total_writes = {}
    total_us = {}
    for setup in setups:
        for phase, v in setup.device.stats.reads_by_phase.items():
            total_reads[phase] = total_reads.get(phase, 0) + v
        for phase, v in setup.device.stats.writes_by_phase.items():
            total_writes[phase] = total_writes.get(phase, 0) + v
        for phase, v in setup.device.stats.time_by_phase.items():
            total_us[phase] = total_us.get(phase, 0.0) + v
    assert sum_records(records, "reads") == total_reads
    assert sum_records(records, "writes") == total_writes
    assert sum_records(records, "us_by_phase") == pytest.approx(total_us)
    tracer.unbind()


# -- tracing disabled: bit-identical results -------------------------------

def test_disabled_tracing_results_bit_identical():
    """Every pre-existing RunResult metric must be unchanged by merely
    having tracing available — traced and untraced runs agree bit for bit."""
    def one_run(with_tracer):
        setup = fresh_index("alex", "ycsb", "balanced", SMALL, buffer_blocks=16,
                            with_wal=True)
        tracer = None
        if with_tracer:
            tracer = Tracer()
            setup.index.attach_tracer(tracer)
        return run_workload(setup.index, setup.ops, workload="balanced",
                            keep_latencies=True)

    plain, traced = one_run(False), one_run(True)
    assert plain.sim_elapsed_us == traced.sim_elapsed_us
    assert plain.throughput_ops_per_s == traced.throughput_ops_per_s
    assert plain.mean_latency_us == traced.mean_latency_us
    assert plain.p50_latency_us == traced.p50_latency_us
    assert plain.p99_latency_us == traced.p99_latency_us
    assert plain.std_latency_us == traced.std_latency_us
    assert plain.blocks_read_per_op == traced.blocks_read_per_op
    assert plain.blocks_written_per_op == traced.blocks_written_per_op
    assert plain.time_by_phase_us == traced.time_by_phase_us
    assert plain.reads_by_phase == traced.reads_by_phase
    assert plain.writes_by_phase == traced.writes_by_phase
    assert plain.log_records == traced.log_records
    assert plain.log_flushes == traced.log_flushes
    assert (plain.latencies_us == traced.latencies_us).all()
    # The histogram extras exist only on the traced run.
    assert plain.phase_latency_histograms is None
    assert plain.op_io_histograms is None
    assert traced.phase_latency_histograms is not None
    assert traced.op_io_histograms is not None


# -- span attribution ------------------------------------------------------

def test_event_fields_attribute_op_io(tmp_path):
    keys = random_sorted_keys(800, seed=11)
    device = BlockDevice(4096, HDD)
    pager = Pager(device, buffer_pool=BufferPool(8))
    index = make_index("btree", pager)
    tracer = Tracer()
    index.attach_tracer(tracer)
    index.bulk_load(items_of(keys))
    wal = WriteAheadLog(pager, group_commit=2)
    index.attach_wal(wal)

    with tracer.op("insert", 12345, 0):
        index.durable_insert(1, 2)
    with tracer.op("insert", 12346, 1):
        index.durable_insert(3, 4)  # group commit of 2 flushes here
    with tracer.op("lookup", 12347, 2):
        index.lookup(keys[0])

    records = export(tracer, tmp_path)
    ops = [r for r in records if r["type"] == "op"]
    assert [r["op"] for r in ops] == ["insert", "insert", "lookup"]
    assert ops[0]["wal_records"] == 1 and ops[0]["wal_flushes"] == 0
    assert ops[1]["wal_records"] == 1 and ops[1]["wal_flushes"] == 1
    assert ops[1]["writes"].get("log", 0) == 1  # the group commit block
    assert ops[2]["wal_records"] == 0
    # The lookup touched blocks — charged reads, pool hits, or reuse hits.
    touched = (sum(ops[2]["reads"].values()) + ops[2]["pool_hits"]
               + ops[2]["reuse_hits"])
    assert touched > 0
    # Bulk-load I/O happened outside any span: the background record owns it.
    background = next(r for r in records if r["type"] == "background")
    assert background["writes"].get("bulkload", 0) > 0
    # Every op event accounts the files it touched.
    assert all(sum(r["files"].values())
               == sum(r["reads"].values()) + sum(r["writes"].values())
               for r in ops)


def test_pool_and_reuse_attribution():
    device = BlockDevice(4096, HDD)
    pool = BufferPool(8)
    pager = Pager(device, buffer_pool=pool)
    file = device.create_file("f")
    file.allocate(4)
    tracer = Tracer()
    tracer.bind(pager)

    with tracer.op("lookup", 0, 0) as span:
        pager.read_block(file, 0)   # miss
        pager.read_block(file, 0)   # last-block reuse, not even a pool probe
        pager.drop_last_block()
        pager.read_block(file, 0)   # pool hit
    assert span["pool_misses"] == 1
    assert span["reuse_hits"] == 1
    assert span["pool_hits"] == 1
    assert pool.hits == 1 and pool.misses == 1
    tracer.unbind()


def test_span_misuse_raises():
    tracer = Tracer()
    with pytest.raises(RuntimeError):
        tracer.end_op()
    tracer.begin_op("lookup", 1, 0)
    with pytest.raises(RuntimeError):
        tracer.begin_op("lookup", 2, 1)
    tracer.end_op()


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        Tracer(capacity=0)


def test_detach_restores_zero_overhead():
    device = BlockDevice(4096, HDD)
    pager = Pager(device)
    index = make_index("btree", pager)
    tracer = Tracer()
    index.attach_tracer(tracer)
    assert device.on_access is not None
    index.detach_tracer()
    assert device.on_access is None
    assert pager.tracer is None
    assert index.tracer is None
    index.bulk_load(items_of(random_sorted_keys(100, seed=1)))
    index.lookup(1)
    assert tracer.totals() == {"reads": {}, "writes": {}, "us": {}}


def test_ring_buffer_folds_instead_of_dropping(tmp_path):
    device = BlockDevice(4096, HDD)
    pager = Pager(device)
    file = device.create_file("f")
    file.allocate(1)
    tracer = Tracer(capacity=3)
    tracer.bind(pager)
    for i in range(10):
        with tracer.op("lookup", i, i):
            pager.drop_last_block()
            pager.read_block(file, 0)
    assert len(tracer) == 3
    assert tracer.dropped_ops == 7
    records = export(tracer, tmp_path)
    evicted = next(r for r in records if r["type"] == "evicted")
    assert evicted["ops_folded"] == 7
    assert evicted["reads"] == {"default": 7}
    assert sum_records(records, "reads") == {"default": 10}


# -- analyze ---------------------------------------------------------------

def _synthetic_records():
    def op(i, kind, us, smo_w=0, hits=0, misses=0):
        return {"type": "op", "i": i, "op": kind, "key": i * 10, "us": us,
                "reads": {"search": 1}, "writes": {"smo": smo_w} if smo_w else {},
                "us_by_phase": {"search": us}, "files": {"leaf": 1 + smo_w},
                "pool_hits": hits, "pool_misses": misses,
                "reuse_hits": 0, "wal_records": 0, "wal_flushes": 0}
    return [
        {"type": "summary", "schema": 4, "events": 4, "dropped_ops": 0,
         "reads": {"search": 4}, "writes": {"smo": 12},
         "us_by_phase": {"search": 6800.0}},
        {"type": "background", "us": 0.0, "reads": {}, "writes": {},
         "us_by_phase": {}, "files": {}, "pool_hits": 0, "pool_misses": 0,
         "reuse_hits": 0, "wal_records": 0, "wal_flushes": 0},
        op(0, "lookup", 100.0, hits=3, misses=1),
        op(1, "insert", 5000.0, smo_w=12, misses=4),
        op(2, "lookup", 200.0, hits=4),
        op(3, "insert", 1500.0, hits=2, misses=2),
    ]


def test_summarize_top_cascades_timeline():
    summary = summarize(_synthetic_records(), top_k=2, windows=2,
                        cascade_blocks=8)
    assert summary["num_ops"] == 4
    assert [r["i"] for r in summary["top_ops"]] == [1, 3]
    assert [c["i"] for c in summary["cascades"]] == [1]
    assert summary["cascades"][0]["smo_blocks"] == 12
    timeline = summary["hit_rate_timeline"]
    assert len(timeline) == 2
    assert timeline[0]["hit_rate"] == pytest.approx(3 / 8)
    assert timeline[1]["hit_rate"] == pytest.approx(6 / 8)
    assert summary["by_op"]["insert"]["count"] == 2
    assert summary["reconciliation"]["writes"] == {"smo": 12}
    assert summary["declared_totals"]["writes"] == {"smo": 12}


def test_format_summary_mentions_key_sections():
    text = format_summary(summarize(_synthetic_records()))
    for needle in ("per op type", "most expensive", "SMO cascade",
                   "hit rate timeline", "per-phase totals"):
        assert needle in text, needle


def test_analyze_cli_roundtrip(tmp_path, capsys):
    from repro.obs.analyze import main

    path = tmp_path / "t.jsonl"
    with open(path, "w") as handle:
        for record in _synthetic_records():
            handle.write(json.dumps(record) + "\n")
    assert main([str(path), "--top", "1"]) == 0
    out = capsys.readouterr().out
    assert "trace: 4 ops" in out
    assert "SMO cascades" in out
