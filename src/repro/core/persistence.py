"""Save and reopen whole indexes.

The paper keeps a *meta block* — root address and utility information —
that is "stored in main memory when in use".  This module is the
materialization of that block: :func:`save_index` snapshots the device
image plus the index's meta state to a file, and :func:`load_index`
reconstructs a fully working index object from it.

Format: the :mod:`repro.storage.persist` device image, followed by a
JSON meta trailer (length-prefixed) describing the index kind, its
constructor parameters, and its in-memory meta state.
"""

from __future__ import annotations

import json
import struct
from typing import BinaryIO, Optional, Union

from ..storage import DiskProfile, Pager, load_device, save_device
from .interface import DiskIndex
from .registry import make_index

__all__ = ["save_index", "load_index"]

_TRAILER = struct.Struct("<I")


def save_index(index: DiskIndex, target: Union[str, BinaryIO]) -> None:
    """Persist an index (device image + meta) to ``target``.

    The index's pager is handed to :func:`save_device` so a write-back
    configuration flushes its dirty pages (in coalesced runs) before the
    device blocks are imaged — the image always reflects every write.
    """
    meta = {
        "kind": index.name,
        "params": index.init_params(),
        "state": index.to_meta(),
    }
    own = isinstance(target, str)
    stream: BinaryIO = open(target, "wb") if own else target
    try:
        save_device(index.pager.device, stream, pager=index.pager)
        raw = json.dumps(meta).encode("utf-8")
        stream.write(_TRAILER.pack(len(raw)))
        stream.write(raw)
    finally:
        if own:
            stream.close()


def load_index(source: Union[str, BinaryIO],
               profile: Optional[DiskProfile] = None,
               pager_kwargs: Optional[dict] = None) -> DiskIndex:
    """Reopen an index persisted with :func:`save_index`.

    ``profile`` optionally overrides the stored latency model — e.g. to
    replay an HDD-built index on the SSD cost model.  ``pager_kwargs``
    configures the rebuilt :class:`Pager` (buffer pool, write-back,
    flush watermark): an image only captures device bytes, so callers
    that want the reopened index to keep its original storage
    configuration must pass it back in.
    """
    own = isinstance(source, str)
    stream: BinaryIO = open(source, "rb") if own else source
    try:
        device = load_device(stream, profile=profile)
        raw_len = _TRAILER.unpack(stream.read(_TRAILER.size))[0]
        meta = json.loads(stream.read(raw_len).decode("utf-8"))
    finally:
        if own:
            stream.close()
    index = make_index(meta["kind"], Pager(device, **(pager_kwargs or {})),
                       **meta["params"])
    index.restore_meta(meta["state"])
    return index
