"""Common interface of every on-disk index in the study.

All five indexes (B+-tree, FITing-tree, PGM, ALEX, LIPP) and the hybrid
designs implement :class:`DiskIndex`.  The workload runner in
:mod:`repro.workloads` only ever talks to this interface, so any future
index can be dropped into every experiment via
:func:`repro.core.registry.make_index`.
"""

from __future__ import annotations

import abc
from contextlib import contextmanager
from typing import Iterable, List, Optional, Sequence, Tuple

from ..storage import Pager

__all__ = ["DiskIndex", "KeyPayload", "TOMBSTONE"]

KeyPayload = Tuple[int, int]

#: Reserved payload marking a logically deleted key.  Physically removing
#: an entry from a learned index would shift positions and violate the
#: trained models' error bounds, so — like LSM systems — deletes write a
#: tombstone instead.  User payloads must stay below this value when
#: deletes are used.
TOMBSTONE = 2**64 - 1


class DiskIndex(abc.ABC):
    """An updatable, disk-resident ordered index over uint64 keys.

    Concrete indexes allocate their structure through ``pager`` so that
    every block fetch is counted and charged simulated latency.  The only
    state an index may keep in main memory is what the paper allows: the
    meta block (root address, file handles, level table) — everything
    else must round-trip through the pager.
    """

    #: registry name, e.g. ``"btree"``; set by subclasses.
    name: str = "abstract"

    def __init__(self, pager: Pager) -> None:
        self.pager = pager
        #: optional :class:`repro.durability.WriteAheadLog`; when attached,
        #: the ``durable_*`` mutation paths emit logical log records.
        self.wal = None
        #: optional :class:`repro.obs.Tracer`; when attached, the workload
        #: runner scopes one trace event to each logical operation.
        self.tracer = None

    # -- required operations -------------------------------------------------

    @abc.abstractmethod
    def bulk_load(self, items: Sequence[KeyPayload]) -> None:
        """Build the index from key-sorted, duplicate-free ``items``."""

    @abc.abstractmethod
    def lookup(self, key: int) -> Optional[int]:
        """Return the payload stored for ``key`` or None."""

    @abc.abstractmethod
    def insert(self, key: int, payload: int) -> None:
        """Insert a new key-payload pair (key must not already exist)."""

    @abc.abstractmethod
    def scan(self, start_key: int, count: int) -> List[KeyPayload]:
        """Return up to ``count`` pairs with key >= start_key, in key order."""

    def update(self, key: int, payload: int) -> bool:
        """Overwrite the payload of an existing key; False if absent."""
        raise NotImplementedError(f"{self.name} does not support updates")

    def delete(self, key: int) -> bool:
        """Remove a key; False if absent.

        Learned indexes delete logically (a :data:`TOMBSTONE` payload or a
        cleared slot): physical removal would shift positions under the
        trained models.  Space is reclaimed by the index's own SMOs
        (resegment / node rebuild / LSM merge).
        """
        raise NotImplementedError(f"{self.name} does not support deletes")

    # -- durability ------------------------------------------------------------

    def attach_wal(self, wal) -> None:
        """Route this index's mutations through a write-ahead log.

        After attaching, callers that need durability use the
        ``durable_*`` methods; the plain mutation methods stay unlogged
        (bulk loads and recovery replay go through those, since their
        effects are captured by the checkpoint / are the redo itself).
        The WAL also becomes the pager's log-before-data barrier: under
        write-back, no dirty page flushes ahead of its covering records.
        """
        self.wal = wal
        self.pager.set_wal(wal)
        if self.tracer is not None:
            self.tracer.bind_wal(wal)

    def durable_insert(self, key: int, payload: int) -> None:
        """Log-then-apply insert: the logical record enters the WAL buffer
        before the index mutates, so a durable log implies a redoable op."""
        if self.wal is not None:
            self.wal.append("insert", key, payload)
        self.insert(key, payload)

    def durable_update(self, key: int, payload: int) -> bool:
        if self.wal is not None:
            self.wal.append("update", key, payload)
        return self.update(key, payload)

    def durable_delete(self, key: int) -> bool:
        if self.wal is not None:
            self.wal.append("delete", key)
        return self.delete(key)

    def flush(self) -> int:
        """Force buffered writes to the device: WAL tail, then dirty pages.

        A no-op (returning 0) for write-through configurations; under a
        write-back pager this is the explicit flush point callers use at
        phase boundaries.  Returns the number of dirty blocks written.
        """
        if self.wal is not None:
            self.wal.flush()
        return self.pager.flush()

    # -- observability -----------------------------------------------------------

    def attach_tracer(self, tracer) -> None:
        """Observe this index's I/O with a :class:`repro.obs.Tracer`.

        Binds the tracer to the index's pager (device access hook, buffer
        pool probes, last-block reuse) and to its WAL if one is attached.
        The workload runner then emits one trace event per operation.
        """
        self.tracer = tracer
        tracer.bind(self.pager, wal=self.wal)

    def detach_tracer(self) -> None:
        """Remove the tracer's hooks; tracing overhead drops to zero."""
        if self.tracer is not None:
            self.tracer.unbind()
            self.tracer = None

    # -- optional hooks --------------------------------------------------------

    def set_inner_memory_resident(self, resident: bool) -> None:
        """Pin the index's inner structure in main memory (paper Section 6.2).

        The default raises: indexes that separate inner and leaf storage
        override this.  LIPP deliberately does not (the paper excludes it
        from the hybrid experiment because its root alone is gigabytes).
        """
        raise NotImplementedError(f"{self.name} does not support memory-resident inner nodes")

    def height(self) -> int:
        """Root-to-leaf level count, for reporting."""
        raise NotImplementedError

    def verify(self) -> int:
        """Walk the whole structure checking its invariants.

        Returns the number of live (non-deleted) entries.  Raises
        ``AssertionError`` on any structural corruption.  The walk is
        served without I/O charges so it can run between measurements.
        """
        raise NotImplementedError(f"{self.name} does not implement verify")

    @contextmanager
    def _free_io(self):
        """Serve all reads without latency/charges for the duration."""
        files = list(self.pager.device.files.values())
        saved = [handle.memory_resident for handle in files]
        for handle in files:
            handle.memory_resident = True
        try:
            yield
        finally:
            for handle, was in zip(files, saved):
                handle.memory_resident = was

    def init_params(self) -> dict:
        """Constructor parameters needed to re-instantiate this index
        over a reopened device (see :mod:`repro.core.persistence`)."""
        raise NotImplementedError(f"{self.name} does not support persistence")

    def to_meta(self) -> dict:
        """The in-memory meta-block state (root address etc.) as a
        JSON-serializable dict."""
        raise NotImplementedError(f"{self.name} does not support persistence")

    def restore_meta(self, meta: dict) -> None:
        """Adopt meta-block state captured by :meth:`to_meta`."""
        raise NotImplementedError(f"{self.name} does not support persistence")

    def file_roles(self) -> dict:
        """Map each of the index's file names to ``"inner"`` or ``"leaf"``.

        Used by the Table 4 analysis to split fetched blocks into inner
        and leaf components.  LIPP maps everything to ``"leaf"`` — it has
        a single node type (the paper reports only totals for it).
        """
        return {}

    # -- shared helpers ---------------------------------------------------------

    @staticmethod
    def check_bulk_items(items: Sequence[KeyPayload]) -> None:
        """Validate bulk-load input: sorted, unique, uint64-ranged keys."""
        previous = -1
        for key, _payload in items:
            if key <= previous:
                raise ValueError(
                    f"bulk load requires strictly increasing keys; got {key} after {previous}"
                )
            if not 0 <= key < 2**64:
                raise ValueError(f"key {key} out of uint64 range")
            previous = key

    def lookup_many(self, keys: Iterable[int]) -> List[Optional[int]]:
        """Batched point lookups; results match ``[lookup(k) for k in keys]``.

        The base implementation sorts and dedups the key batch and runs
        the per-key lookups inside one :meth:`Pager.batch` pin scope, so
        blocks shared between keys (inner nodes, a shared leaf) are
        fetched once and accesses proceed in key order — physically
        adjacent leaves ride the sequential rate.  Indexes with separated
        leaf storage override this with a truly coalesced two-phase path.
        """
        keys = list(keys)
        if len(keys) <= 1:
            return [self.lookup(key) for key in keys]
        results = {}
        with self.pager.batch():
            for key in sorted(set(keys)):
                results[key] = self.lookup(key)
        return [results[key] for key in keys]

    def scan_range(self, low: int, high: int, batch: int = 256) -> List[KeyPayload]:
        """All pairs with ``low <= key <= high``, in key order.

        A convenience wrapper over :meth:`scan` that pages through the
        range in ``batch``-sized chunks.  The batch pin scope keeps the
        chunked paging from re-fetching the same inner path per chunk;
        indexes with a leaf sibling chain override this with a single
        descent followed by coalesced leaf reads.
        """
        if high < low:
            return []
        out: List[KeyPayload] = []
        start = low
        with self.pager.batch():
            while True:
                chunk = self.scan(start, batch)
                for key, payload in chunk:
                    if key > high:
                        return out
                    out.append((key, payload))
                if len(chunk) < batch:
                    return out
                start = chunk[-1][0] + 1
