"""Binary layout helpers shared by the on-disk indexes.

Every index serializes real bytes into device blocks.  Keys and payloads
are uint64 (the paper's datasets are uint64 keys with payload = key + 1),
so one key-payload entry is 16 bytes and a 4 KiB block holds 256 entries
— exactly the arithmetic behind the paper's Table 2 cost formulas.
"""

from __future__ import annotations

import struct
from typing import List, Sequence, Tuple

__all__ = [
    "ENTRY_SIZE",
    "KEY_SIZE",
    "NULL_BLOCK",
    "pack_entries",
    "unpack_entries",
    "pack_u64s",
    "unpack_u64s",
    "entries_per_block",
]

KEY_SIZE = 8
ENTRY_SIZE = 16
#: Sentinel "no block" pointer (u32).
NULL_BLOCK = 0xFFFFFFFF

_ENTRY = struct.Struct("<QQ")


def entries_per_block(block_size: int) -> int:
    """Key-payload entries that fit in one block (the paper's ``B``)."""
    return block_size // ENTRY_SIZE


def pack_entries(items: Sequence[Tuple[int, int]]) -> bytes:
    """Serialize (key, payload) pairs to little-endian uint64 pairs."""
    out = bytearray(len(items) * ENTRY_SIZE)
    for i, (key, payload) in enumerate(items):
        _ENTRY.pack_into(out, i * ENTRY_SIZE, key, payload)
    return bytes(out)


def unpack_entries(data: bytes, count: int, offset: int = 0) -> List[Tuple[int, int]]:
    """Deserialize ``count`` (key, payload) pairs starting at ``offset``."""
    return [
        _ENTRY.unpack_from(data, offset + i * ENTRY_SIZE)
        for i in range(count)
    ]


def pack_u64s(values: Sequence[int]) -> bytes:
    return struct.pack(f"<{len(values)}Q", *values)


def unpack_u64s(data: bytes, count: int, offset: int = 0) -> Tuple[int, ...]:
    return struct.unpack_from(f"<{count}Q", data, offset)
