"""Binary layout helpers shared by the on-disk indexes.

Every index serializes real bytes into device blocks.  Keys and payloads
are uint64 (the paper's datasets are uint64 keys with payload = key + 1),
so one key-payload entry is 16 bytes and a 4 KiB block holds 256 entries
— exactly the arithmetic behind the paper's Table 2 cost formulas.

The pack/unpack helpers run on every block (de)serialization, so they use
one flattened ``struct`` call per batch (with the per-count ``Struct``
objects cached) instead of a Python-level loop of ``pack_into`` calls.
"""

from __future__ import annotations

import struct
from functools import lru_cache
from typing import List, Sequence, Tuple

__all__ = [
    "ENTRY_SIZE",
    "KEY_SIZE",
    "NULL_BLOCK",
    "pack_entries",
    "unpack_entries",
    "pack_u64s",
    "unpack_u64s",
    "entries_per_block",
]

KEY_SIZE = 8
ENTRY_SIZE = 16
#: Sentinel "no block" pointer (u32).
NULL_BLOCK = 0xFFFFFFFF

_ENTRY = struct.Struct("<QQ")


@lru_cache(maxsize=1024)
def _u64_struct(count: int) -> struct.Struct:
    """Cached ``Struct`` for ``count`` little-endian uint64s."""
    return struct.Struct(f"<{count}Q")


def entries_per_block(block_size: int) -> int:
    """Key-payload entries that fit in one block (the paper's ``B``)."""
    return block_size // ENTRY_SIZE


def pack_entries(items: Sequence[Tuple[int, int]]) -> bytes:
    """Serialize (key, payload) pairs to little-endian uint64 pairs."""
    if not items:
        return b""
    flat: List[int] = []
    for pair in items:
        flat.extend(pair)
    return _u64_struct(len(flat)).pack(*flat)


def unpack_entries(data: bytes, count: int, offset: int = 0) -> List[Tuple[int, int]]:
    """Deserialize ``count`` (key, payload) pairs starting at ``offset``."""
    if count <= 0:
        return []
    flat = _u64_struct(2 * count).unpack_from(data, offset)
    return list(zip(flat[0::2], flat[1::2]))


def pack_u64s(values: Sequence[int]) -> bytes:
    return _u64_struct(len(values)).pack(*values) if values else b""


def unpack_u64s(data: bytes, count: int, offset: int = 0) -> Tuple[int, ...]:
    return _u64_struct(count).unpack_from(data, offset) if count else ()
