"""Binary layout helpers shared by the on-disk indexes.

Every index serializes real bytes into device blocks.  Keys and payloads
are uint64 (the paper's datasets are uint64 keys with payload = key + 1),
so one key-payload entry is 16 bytes and a 4 KiB block holds 256 entries
— exactly the arithmetic behind the paper's Table 2 cost formulas.

The pack/unpack helpers run on every block (de)serialization, so they use
one flattened ``struct`` call per batch (with the per-count ``Struct``
objects cached) instead of a Python-level loop of ``pack_into`` calls.

The zero-copy side (DESIGN.md §15): :func:`keys_view` exposes the sorted
key column of a serialized region as a strided ``numpy`` view over the
raw block bytes — no tuples, no copies — so batched lookups can run one
``np.searchsorted`` per leaf and only touch payload bytes on the hit, via
:func:`entry_at`.
"""

from __future__ import annotations

import struct
from functools import lru_cache
from itertools import chain
from typing import List, Sequence, Tuple

import numpy as np

__all__ = [
    "ENTRY_SIZE",
    "KEY_SIZE",
    "NULL_BLOCK",
    "pack_entries",
    "unpack_entries",
    "pack_u64s",
    "unpack_u64s",
    "entries_per_block",
    "keys_view",
    "entry_at",
    "payload_at",
]

KEY_SIZE = 8
ENTRY_SIZE = 16
#: Sentinel "no block" pointer (u32).
NULL_BLOCK = 0xFFFFFFFF

_ENTRY = struct.Struct("<QQ")
_U64 = struct.Struct("<Q")


@lru_cache(maxsize=1024)
def _u64_struct(count: int) -> struct.Struct:
    """Cached ``Struct`` for ``count`` little-endian uint64s."""
    return struct.Struct(f"<{count}Q")


@lru_cache(maxsize=64)
def _keys_dtype(stride: int) -> np.dtype:
    """A one-field record dtype reading a ``<u8`` key out of each
    ``stride``-byte record (used when the stride is not u64-aligned)."""
    return np.dtype({"names": ["key"], "formats": ["<u8"],
                     "offsets": [0], "itemsize": stride})


def entries_per_block(block_size: int, codec=None) -> int:
    """Key-payload entries that fit in one block (the paper's ``B``).

    With no ``codec`` (or the raw codec) this is the fixed-stride
    constant ``block_size // 16``.  With a compressed codec capacity is
    data-dependent, so this returns the codec's *upper bound*
    (:meth:`~repro.core.codecs.LeafCodec.max_entries`) — sizing math
    that needs the achieved density must measure a built index instead
    (see ``bench/experiments.py::exp_compression``).
    """
    if codec is None:
        return block_size // ENTRY_SIZE
    from .codecs import get_codec
    resolved = get_codec(codec)
    if resolved.is_raw:
        return block_size // ENTRY_SIZE
    return resolved.max_entries(block_size)


def pack_entries(items: Sequence[Tuple[int, int]]) -> bytes:
    """Serialize (key, payload) pairs to little-endian uint64 pairs."""
    if not items:
        return b""
    return _u64_struct(2 * len(items)).pack(*chain.from_iterable(items))


def unpack_entries(data: bytes, count: int, offset: int = 0) -> List[Tuple[int, int]]:
    """Deserialize ``count`` (key, payload) pairs starting at ``offset``."""
    if count <= 0:
        return []
    flat = _u64_struct(2 * count).unpack_from(data, offset)
    return list(zip(flat[0::2], flat[1::2]))


def pack_u64s(values: Sequence[int]) -> bytes:
    return _u64_struct(len(values)).pack(*values) if values else b""


def unpack_u64s(data: bytes, count: int, offset: int = 0) -> Tuple[int, ...]:
    return _u64_struct(count).unpack_from(data, offset) if count else ()


def keys_view(data, count: int, offset: int = 0,
              stride: int = ENTRY_SIZE) -> np.ndarray:
    """Zero-copy uint64 view of the key column of ``count`` serialized
    records of ``stride`` bytes each, starting at ``offset``.

    The result aliases ``data`` (no copy): when the stride is a multiple
    of 8 it is a sliced ``<u8`` view, otherwise a record-dtype field view
    (e.g. the B+-tree's 12-byte inner entries).  Either form is accepted
    by ``np.searchsorted`` directly.
    """
    if count <= 0:
        return _EMPTY_U64
    if stride % 8 == 0:
        step = stride // 8
        flat = np.frombuffer(data, dtype="<u8",
                             count=(count - 1) * step + 1, offset=offset)
        return flat[::step]
    rec = np.frombuffer(data, dtype=_keys_dtype(stride),
                        count=count, offset=offset)
    return rec["key"]


_EMPTY_U64 = np.empty(0, dtype="<u8")


def entry_at(data, index: int, offset: int = 0) -> Tuple[int, int]:
    """The single (key, payload) entry at slot ``index`` — parses 16
    bytes instead of materializing the whole region like
    :func:`unpack_entries`."""
    return _ENTRY.unpack_from(data, offset + index * ENTRY_SIZE)


def payload_at(data, index: int, offset: int = 0,
               stride: int = ENTRY_SIZE) -> int:
    """The uint64 payload of the record at slot ``index`` (the 8 bytes
    following the key)."""
    return _U64.unpack_from(data, offset + index * stride + KEY_SIZE)[0]
