"""Factory for every index in the study.

The workload runner and benchmark harness construct indexes exclusively
through :func:`make_index`, so experiments are parameterized by name:
``btree``, ``fiting``, ``pgm``, ``alex``, ``lipp`` and the Table 5
hybrids ``hybrid-fiting`` / ``hybrid-pgm`` / ``hybrid-alex`` /
``hybrid-lipp`` / ``hybrid-btree``.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..storage import Pager
from .alex import AlexIndex
from .btree import BTreeIndex
from .fiting import FitingTreeIndex
from .hybrid import HYBRID_INNER_KINDS, HybridIndex
from .interface import DiskIndex
from .lipp import LippIndex
from .pgm import PgmIndex
from .plid import PlidIndex

__all__ = ["make_index", "make_sharded_index", "index_names",
           "INDEX_FACTORIES"]

INDEX_FACTORIES: Dict[str, Callable[..., DiskIndex]] = {
    "btree": BTreeIndex,
    "fiting": FitingTreeIndex,
    "pgm": PgmIndex,
    "alex": AlexIndex,
    "lipp": LippIndex,
    "plid": PlidIndex,
}
for _kind in HYBRID_INNER_KINDS:
    INDEX_FACTORIES[f"hybrid-{_kind}"] = (
        lambda pager, _kind=_kind, **params: HybridIndex(pager, inner_kind=_kind, **params)
    )


def index_names(include_hybrids: bool = False, include_plid: bool = False) -> List[str]:
    """The five studied index names, optionally with the hybrid variants
    and PLID (this repository's instantiation of the paper's design
    principles P1-P5)."""
    names = ["btree", "fiting", "pgm", "alex", "lipp"]
    if include_plid:
        names.append("plid")
    if include_hybrids:
        names += [f"hybrid-{kind}" for kind in ("fiting", "pgm", "alex", "lipp")]
    return names


def make_index(name: str, pager: Pager, **params) -> DiskIndex:
    """Construct an index by registry name over the given pager."""
    try:
        factory = INDEX_FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown index {name!r}; available: {sorted(INDEX_FACTORIES)}") from None
    return factory(pager, **params)


def make_sharded_index(index_names, shards=None, **kwargs) -> DiskIndex:
    """Build a range-partitioned :class:`repro.sharding.ShardedIndex`.

    Unlike :func:`make_index`, no pager is passed: each shard member
    owns its own device/pager/pool (see :mod:`repro.sharding`).
    Imported lazily — :mod:`repro.sharding` builds its members through
    this registry, so a top-level import would be circular.
    """
    from ..sharding import make_sharded_index as _make
    return _make(index_names, shards, **kwargs)
