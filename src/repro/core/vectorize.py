"""Vectorized-execution switch and charge-preserving batch helpers.

DESIGN.md §15: the vectorized ``lookup_many`` paths change *only*
wall-clock behaviour.  Charged I/O (``StorageStats`` positionings /
reads / writes) must stay bit-identical to the scalar paths, which the
test suite and the wall-clock perf-smoke assert for every registered
index.  Two tools make that invariant easy to keep:

* a process-wide switch (:func:`enabled` / :func:`scalar_lookups`) so
  the scalar paths stay callable — the bit-identity tests and the
  ``--wallclock`` benchmark run both modes on identical fresh devices;

* :class:`BlockMirror` — a per-batch local copy of block bytes fetched
  *through the pager*.  Re-reads of a block already fetched in the same
  ``pager.batch()`` scope are served locally instead of re-walking the
  pager.  Inside a batch scope every touched block is pinned, so the
  skipped pager calls are exactly the calls the pager would have served
  from its pin cache for free — same device operations, same order,
  same charges; only the Python per-probe overhead disappears.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator

import numpy as np

__all__ = [
    "BlockMirror",
    "enabled",
    "pack_uint_bits",
    "scalar_lookups",
    "set_vectorized",
    "unpack_uint_bits",
]

_VECTORIZED = True


def enabled() -> bool:
    """True when the vectorized ``lookup_many`` paths are active."""
    return _VECTORIZED


def set_vectorized(on: bool) -> bool:
    """Flip the switch; returns the previous setting."""
    global _VECTORIZED
    previous = _VECTORIZED
    _VECTORIZED = bool(on)
    return previous


@contextmanager
def scalar_lookups() -> Iterator[None]:
    """Run the block with the scalar (pre-vectorization) lookup paths."""
    previous = set_vectorized(False)
    try:
        yield
    finally:
        set_vectorized(previous)


_ONE = np.uint64(1)


def pack_uint_bits(values: np.ndarray, width: int) -> bytes:
    """Bit-pack uint64 ``values`` at ``width`` bits each, LSB-first.

    The frame-of-reference codec's column layout: value ``i`` occupies
    bits ``[i*width, (i+1)*width)`` of the output, each value stored
    least-significant-bit first, and the bit stream is laid into bytes
    with ``bitorder="little"`` so :func:`unpack_uint_bits` is a single
    ``np.unpackbits``/reshape/dot on the way back.  ``width == 0`` (all
    values equal zero) packs to zero bytes.
    """
    values = np.ascontiguousarray(values, dtype=np.uint64)
    n = len(values)
    if n == 0 or width == 0:
        return b""
    if width > 64:
        raise ValueError(f"bit width must be <= 64, got {width}")
    shifts = np.arange(width, dtype=np.uint64)
    bits = ((values[:, None] >> shifts[None, :]) & _ONE).astype(np.uint8)
    return np.packbits(bits.reshape(-1), bitorder="little").tobytes()


def unpack_uint_bits(data, count: int, width: int, offset: int = 0) -> np.ndarray:
    """Inverse of :func:`pack_uint_bits`: ``count`` uint64 values of
    ``width`` bits each, read from ``data`` starting at byte ``offset``."""
    if count <= 0:
        return np.empty(0, dtype=np.uint64)
    if width == 0:
        return np.zeros(count, dtype=np.uint64)
    if width > 64:
        raise ValueError(f"bit width must be <= 64, got {width}")
    total_bits = count * width
    nbytes = (total_bits + 7) // 8
    raw = np.frombuffer(data, dtype=np.uint8, count=nbytes, offset=offset)
    flat = np.unpackbits(raw, bitorder="little")[:total_bits]
    bits = flat.reshape(count, width).astype(np.uint64)
    weights = _ONE << np.arange(width, dtype=np.uint64)
    return (bits * weights[None, :]).sum(axis=1).astype(np.uint64)


class BlockMirror:
    """Local mirror of one file's blocks fetched through the pager.

    ``read(offset, length)`` behaves exactly like
    ``pager.read_bytes(file, offset, length)`` — single-block ranges go
    through ``read_block``, multi-block ranges through ``read_span``, so
    first touches charge identically — but every fetched block is kept
    locally and later reads covered by mirrored blocks skip the pager.
    Only valid inside a ``pager.batch()`` scope (the mirror's lifetime
    must not exceed the pin cache's, or a skipped re-read could differ
    from what the pager would have charged).
    """

    __slots__ = ("pager", "file", "blocks", "_bs")

    def __init__(self, pager, file, blocks: Dict[int, bytes] = None) -> None:
        self.pager = pager
        self.file = file
        self.blocks: Dict[int, bytes] = {} if blocks is None else dict(blocks)
        self._bs = pager.block_size

    def absorb(self, span: Dict[int, bytes]) -> None:
        """Mirror blocks already fetched elsewhere (e.g. a ``read_span``)."""
        self.blocks.update(span)

    def read(self, offset: int, length: int) -> bytes:
        bs = self._bs
        first = offset // bs
        last = (offset + length - 1) // bs
        blocks = self.blocks
        start = offset - first * bs
        if first == last:
            data = blocks.get(first)
            if data is None:
                data = self.pager.read_block(self.file, first)
                blocks[first] = data
            return data[start : start + length]
        missing = any(no not in blocks for no in range(first, last + 1))
        if missing:
            blocks.update(self.pager.read_span(self.file, range(first, last + 1)))
        blob = b"".join(blocks[no] for no in range(first, last + 1))
        return blob[start : start + length]
