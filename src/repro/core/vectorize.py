"""Vectorized-execution switch and charge-preserving batch helpers.

DESIGN.md §15: the vectorized ``lookup_many`` paths change *only*
wall-clock behaviour.  Charged I/O (``StorageStats`` positionings /
reads / writes) must stay bit-identical to the scalar paths, which the
test suite and the wall-clock perf-smoke assert for every registered
index.  Two tools make that invariant easy to keep:

* a process-wide switch (:func:`enabled` / :func:`scalar_lookups`) so
  the scalar paths stay callable — the bit-identity tests and the
  ``--wallclock`` benchmark run both modes on identical fresh devices;

* :class:`BlockMirror` — a per-batch local copy of block bytes fetched
  *through the pager*.  Re-reads of a block already fetched in the same
  ``pager.batch()`` scope are served locally instead of re-walking the
  pager.  Inside a batch scope every touched block is pinned, so the
  skipped pager calls are exactly the calls the pager would have served
  from its pin cache for free — same device operations, same order,
  same charges; only the Python per-probe overhead disappears.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator

__all__ = ["BlockMirror", "enabled", "scalar_lookups", "set_vectorized"]

_VECTORIZED = True


def enabled() -> bool:
    """True when the vectorized ``lookup_many`` paths are active."""
    return _VECTORIZED


def set_vectorized(on: bool) -> bool:
    """Flip the switch; returns the previous setting."""
    global _VECTORIZED
    previous = _VECTORIZED
    _VECTORIZED = bool(on)
    return previous


@contextmanager
def scalar_lookups() -> Iterator[None]:
    """Run the block with the scalar (pre-vectorization) lookup paths."""
    previous = set_vectorized(False)
    try:
        yield
    finally:
        set_vectorized(previous)


class BlockMirror:
    """Local mirror of one file's blocks fetched through the pager.

    ``read(offset, length)`` behaves exactly like
    ``pager.read_bytes(file, offset, length)`` — single-block ranges go
    through ``read_block``, multi-block ranges through ``read_span``, so
    first touches charge identically — but every fetched block is kept
    locally and later reads covered by mirrored blocks skip the pager.
    Only valid inside a ``pager.batch()`` scope (the mirror's lifetime
    must not exceed the pin cache's, or a skipped re-read could differ
    from what the pager would have charged).
    """

    __slots__ = ("pager", "file", "blocks", "_bs")

    def __init__(self, pager, file, blocks: Dict[int, bytes] = None) -> None:
        self.pager = pager
        self.file = file
        self.blocks: Dict[int, bytes] = {} if blocks is None else dict(blocks)
        self._bs = pager.block_size

    def absorb(self, span: Dict[int, bytes]) -> None:
        """Mirror blocks already fetched elsewhere (e.g. a ``read_span``)."""
        self.blocks.update(span)

    def read(self, offset: int, length: int) -> bytes:
        bs = self._bs
        first = offset // bs
        last = (offset + length - 1) // bs
        blocks = self.blocks
        start = offset - first * bs
        if first == last:
            data = blocks.get(first)
            if data is None:
                data = self.pager.read_block(self.file, first)
                blocks[first] = data
            return data[start : start + length]
        missing = any(no not in blocks for no in range(first, last + 1))
        if missing:
            blocks.update(self.pager.read_span(self.file, range(first, last + 1)))
        blob = b"".join(blocks[no] for no in range(first, last + 1))
        return blob[start : start + length]
