"""LIPP on disk (Updatable Learned Index with Precise Positions).

LIPP has a single node type.  Each node holds a linear model (built with
the FMCD algorithm) and an array of slots; a slot is NULL, DATA (one
key-payload pair) or NODE (a child pointer for conflicting keys).
Predictions are exact: a lookup never searches inside a node.

The on-disk layout follows Section 4.2 of the paper: same extent scheme
as ALEX, but the per-node bitmap is replaced with a per-slot type flag
stored *inside* the 24-byte slot, so reading a slot yields its type and
content in one fetch — the lookup cost is 2 reads per level (header with
the model + the predicted slot), the ``2 log N`` of Table 2.

Write-path behaviour the paper measures:

* conflict inserts create a new child node — an SMO roughly every third
  insert (Section 6.1.3);
* every node on the root-to-slot path has its statistics updated after
  each insert — the *maintenance* overhead dominating LIPP's Figure 6
  breakdown;
* a subtree whose insert count since construction reaches its build size
  is rebuilt with FMCD (the second SMO type, "adjusting the tree
  structure").

LIPP is excluded from the memory-resident-inner experiment: it does not
distinguish inner from leaf nodes, and its root node alone is larger
than every other index's full inner structure (Section 6.2).
"""

from __future__ import annotations

import struct
from typing import Iterator, List, Optional, Sequence, Tuple

from ..models import build_fmcd_model, lipp_node_slots
from ..storage import Pager
from .codecs import get_codec
from .interface import DiskIndex, KeyPayload
from .serial import NULL_BLOCK

__all__ = ["LippIndex"]

_NODE_HEADER = struct.Struct("<IIddQII")
# item_count, num_slots, slope, intercept, anchor, build_size, num_inserts
HEADER_SIZE = 64
_SLOT = struct.Struct("<B7xQQ")  # flag, key (or child block), payload
SLOT_SIZE = _SLOT.size  # 24

SLOT_NULL = 0
SLOT_DATA = 1
SLOT_NODE = 2


class _NodeHeader:
    __slots__ = ("item_count", "num_slots", "slope", "intercept", "anchor",
                 "build_size", "num_inserts")

    def __init__(self, item_count: int, num_slots: int, slope: float,
                 intercept: float, anchor: int, build_size: int,
                 num_inserts: int) -> None:
        self.item_count = item_count
        self.num_slots = num_slots
        self.slope = slope
        self.intercept = intercept
        self.anchor = anchor
        self.build_size = build_size
        self.num_inserts = num_inserts

    def pack(self) -> bytes:
        out = bytearray(HEADER_SIZE)
        _NODE_HEADER.pack_into(out, 0, self.item_count, self.num_slots,
                               self.slope, self.intercept, self.anchor,
                               self.build_size, self.num_inserts)
        return bytes(out)

    @classmethod
    def unpack(cls, raw: bytes) -> "_NodeHeader":
        return cls(*_NODE_HEADER.unpack_from(raw, 0))

    def predict(self, key: int) -> int:
        # Anchored evaluation: exact integer subtraction first.
        pos = int(self.slope * float(int(key) - self.anchor) + self.intercept)
        if pos < 0:
            return 0
        if pos >= self.num_slots:
            return self.num_slots - 1
        return pos


class LippIndex(DiskIndex):
    """Disk-resident LIPP.

    Args:
        pager: storage access path.
        rebuild_factor: a subtree is rebuilt when the inserts since its
            construction reach ``rebuild_factor * build_size``.
        build_gap_count: LIPP's slot over-allocation for small nodes
            (default 4, i.e. 5x slots for nodes under 100K items — the
            source of LIPP's outsized storage footprint in Figure 10).
    """

    name = "lipp"

    def __init__(self, pager: Pager, rebuild_factor: float = 1.0,
                 build_gap_count: int = 4, file_prefix: str = "lipp",
                 codec: str = "raw") -> None:
        super().__init__(pager)
        # LIPP's FMCD models map keys directly to fixed-stride node
        # slots (DATA/NULL/CHILD), incompatible with variable-width
        # codec pages; the codec name is validated, then raw is kept.
        get_codec(codec)
        if rebuild_factor <= 0:
            raise ValueError(f"rebuild factor must be positive, got {rebuild_factor}")
        self._file_prefix = file_prefix
        self.rebuild_factor = rebuild_factor
        self.build_gap_count = build_gap_count
        self._file = pager.device.get_or_create_file(f"{file_prefix}.data")
        self.root_block: int = NULL_BLOCK  # meta block, in memory
        self.num_conflict_nodes = 0
        self.num_rebuilds = 0

    # -- geometry ------------------------------------------------------------

    def _extent_blocks(self, num_slots: int) -> int:
        nbytes = HEADER_SIZE + num_slots * SLOT_SIZE
        return (nbytes + self.pager.block_size - 1) // self.pager.block_size

    def _slot_offset(self, block: int, slot: int) -> int:
        return block * self.pager.block_size + HEADER_SIZE + slot * SLOT_SIZE

    # -- node I/O --------------------------------------------------------------

    def _read_header(self, block: int) -> _NodeHeader:
        raw = self.pager.read_bytes(self._file, block * self.pager.block_size, HEADER_SIZE)
        return _NodeHeader.unpack(raw)

    def _write_header(self, block: int, header: _NodeHeader) -> None:
        self.pager.write_bytes(self._file, block * self.pager.block_size, header.pack())

    def _read_slot(self, block: int, slot: int) -> Tuple[int, int, int]:
        raw = self.pager.read_bytes(self._file, self._slot_offset(block, slot), SLOT_SIZE)
        return _SLOT.unpack(raw)

    def _write_slot(self, block: int, slot: int, flag: int, key: int, payload: int) -> None:
        self.pager.write_bytes(self._file, self._slot_offset(block, slot),
                               _SLOT.pack(flag, key, payload))

    # -- construction -------------------------------------------------------------

    def bulk_load(self, items: Sequence[KeyPayload]) -> None:
        if self.root_block != NULL_BLOCK:
            raise RuntimeError("index already bulk-loaded")
        with self.pager.phase("bulkload"):
            self.root_block = self._build_node(list(items))

    def _node_model(self, keys: List[int], num_slots: int):
        """FMCD model for a node, with a min-max fallback when FMCD's
        clamped tails collapse most keys into one slot.

        Datasets mixing a dense run with far outliers (OSM-like) make
        FMCD's slot width tiny; every key outside the central span clamps
        to slot 0 or the last slot, so a conflict child would receive
        almost the whole key set and construction would never converge.
        The min-max model separates the extremes, so the span (and hence
        the group) shrinks strictly at each level.
        """
        fmcd = build_fmcd_model(keys, num_slots)
        model = fmcd.model
        if len(keys) >= 4 and not fmcd.fallback:
            first = model.predict_clamped(keys[0], num_slots)
            run = best = 1
            prev = first
            for key in keys[1:]:
                slot = model.predict_clamped(key, num_slots)
                run = run + 1 if slot == prev else 1
                prev = slot
                best = max(best, run)
            if best > len(keys) // 2:
                from ..models import LinearModel
                model = LinearModel.fit_min_max(keys[0], keys[-1], num_slots)
        return model

    def _build_node(self, items: List[KeyPayload]) -> int:
        """Build a node (and its conflict children) with FMCD.

        Children are built iteratively with an explicit work stack — the
        conflict chains on hard datasets can be deeper than the Python
        recursion limit.  A child's block number is patched into its
        parent's slot after the child is written.
        """
        root_block: Optional[int] = None
        # Work items: (items, parent block, parent slot); the root has no parent.
        stack: List[Tuple[List[KeyPayload], Optional[int], int]] = [(items, None, 0)]
        while stack:
            node_items, parent_block, parent_slot = stack.pop()
            n = len(node_items)
            keys = [key for key, _ in node_items]
            num_slots = lipp_node_slots(max(n, 1), self.build_gap_count)
            model = self._node_model(keys, num_slots) if n else None
            header = _NodeHeader(
                item_count=n, num_slots=num_slots,
                slope=model.slope if model else 0.0,
                intercept=model.intercept if model else 0.0,
                anchor=model.anchor if model else 0,
                build_size=n, num_inserts=0,
            )
            # Group items by predicted slot; singletons become DATA slots,
            # conflicts become child nodes built the same way.
            slots = bytearray(num_slots * SLOT_SIZE)
            groups: List[Tuple[int, List[KeyPayload]]] = []
            for key, payload in node_items:
                slot = header.predict(key)
                if groups and groups[-1][0] == slot:
                    groups[-1][1].append((key, payload))
                else:
                    groups.append((slot, [(key, payload)]))
            block = self._file.allocate(self._extent_blocks(num_slots))
            for slot, group in groups:
                if len(group) == 1:
                    _SLOT.pack_into(slots, slot * SLOT_SIZE, SLOT_DATA,
                                    group[0][0], group[0][1])
                else:
                    # Placeholder NODE slot; the child patches it when built.
                    _SLOT.pack_into(slots, slot * SLOT_SIZE, SLOT_NODE, 0, 0)
                    stack.append((group, block, slot))
            self.pager.write_bytes(self._file, block * self.pager.block_size,
                                   header.pack() + bytes(slots))
            if parent_block is None:
                root_block = block
            else:
                self._write_slot(parent_block, parent_slot, SLOT_NODE, block, 0)
        assert root_block is not None
        return root_block

    # -- lookup -----------------------------------------------------------------------

    def lookup(self, key: int) -> Optional[int]:
        with self.pager.phase("search"):
            return self._lookup_walk(key)

    def _lookup_walk(self, key: int) -> Optional[int]:
        block = self.root_block
        while True:
            header = self._read_header(block)
            slot = header.predict(key)
            flag, slot_key, payload = self._read_slot(block, slot)
            if flag == SLOT_NULL:
                return None
            if flag == SLOT_DATA:
                return payload if slot_key == key else None
            block = slot_key  # NODE: the key field holds the child block

    def lookup_many(self, keys) -> List[Optional[int]]:
        """Batched lookups inside one pin scope: the root header block —
        which every single lookup re-reads — and all shared upper-node
        blocks are fetched once for the whole sorted batch."""
        keys = list(keys)
        if len(keys) <= 1:
            return [self.lookup(key) for key in keys]
        unique = sorted(set(keys))
        results = {}
        with self.pager.phase("search"), self.pager.batch():
            for key in unique:
                results[key] = self._lookup_walk(key)
        return [results[key] for key in keys]

    # -- insert -----------------------------------------------------------------------

    def insert(self, key: int, payload: int) -> None:
        if self.root_block == NULL_BLOCK:
            raise RuntimeError("index not bulk-loaded")
        path: List[Tuple[int, _NodeHeader]] = []
        with self.pager.phase("search"):
            block = self.root_block
            while True:
                header = self._read_header(block)
                path.append((block, header))
                slot = header.predict(key)
                flag, slot_key, slot_payload = self._read_slot(block, slot)
                if flag != SLOT_NODE:
                    break
                block = slot_key
        if flag == SLOT_DATA and slot_key == key:
            raise KeyError(f"duplicate key {key}")
        if flag == SLOT_NULL:
            with self.pager.phase("insert"):
                self._write_slot(block, slot, SLOT_DATA, key, payload)
        else:
            # Conflict: build a child node holding both keys (SMO type 1).
            with self.pager.phase("smo"):
                self.num_conflict_nodes += 1
                pair = sorted([(slot_key, slot_payload), (key, payload)])
                child = self._build_node(pair)
                self._write_slot(block, slot, SLOT_NODE, child, 0)
        # Maintenance: bump statistics in every node along the path.
        with self.pager.phase("maintenance"):
            for node_block, node_header in path:
                node_header.item_count += 1
                node_header.num_inserts += 1
                self._write_header(node_block, node_header)
        # SMO type 2: rebuild the highest subtree that grew past its
        # rebuild threshold (skip index 0 checks below the root lazily).
        for depth, (node_block, node_header) in enumerate(path):
            if node_header.num_inserts >= max(1, int(node_header.build_size
                                                     * self.rebuild_factor)):
                with self.pager.phase("smo"):
                    self._rebuild_subtree(node_block, path[:depth])
                break

    def _rebuild_subtree(self, block: int, parent_path: List[Tuple[int, _NodeHeader]]) -> None:
        """Collect a subtree's items, rebuild it with FMCD, repoint the parent."""
        self.num_rebuilds += 1
        items = list(self._iterate_subtree(block))
        self._free_subtree(block)
        new_block = self._build_node(items)
        if not parent_path:
            self.root_block = new_block
            return
        parent_block, parent_header = parent_path[-1]
        # The subtree hangs off exactly one NODE slot of the parent; its
        # slot is the prediction of any of its keys.
        slot = parent_header.predict(items[0][0])
        self._write_slot(parent_block, slot, SLOT_NODE, new_block, 0)

    def _free_subtree(self, block: int) -> None:
        header = self._read_header(block)
        for slot in range(header.num_slots):
            flag, slot_key, _payload = self._read_slot(block, slot)
            if flag == SLOT_NODE:
                self._free_subtree(slot_key)
        self._file.free(block, self._extent_blocks(header.num_slots))

    # -- update / delete ----------------------------------------------------------------

    def update(self, key: int, payload: int) -> bool:
        with self.pager.phase("search"):
            block = self.root_block
            while True:
                header = self._read_header(block)
                slot = header.predict(key)
                flag, slot_key, _payload = self._read_slot(block, slot)
                if flag == SLOT_NULL:
                    return False
                if flag == SLOT_DATA:
                    break
                block = slot_key
        if slot_key != key:
            return False
        with self.pager.phase("insert"):
            self._write_slot(block, slot, SLOT_DATA, key, payload)
        return True

    def delete(self, key: int) -> bool:
        """Physical delete: LIPP's exact positions make it trivial — the
        DATA slot reverts to NULL and the path statistics are adjusted."""
        path: List[Tuple[int, _NodeHeader]] = []
        with self.pager.phase("search"):
            block = self.root_block
            while True:
                header = self._read_header(block)
                path.append((block, header))
                slot = header.predict(key)
                flag, slot_key, _payload = self._read_slot(block, slot)
                if flag == SLOT_NULL:
                    return False
                if flag == SLOT_DATA:
                    break
                block = slot_key
        if slot_key != key:
            return False
        with self.pager.phase("insert"):
            self._write_slot(block, slot, SLOT_NULL, 0, 0)
        with self.pager.phase("maintenance"):
            for node_block, node_header in path:
                node_header.item_count -= 1
                self._write_header(node_block, node_header)
        return True

    # -- scan -------------------------------------------------------------------------

    def scan(self, start_key: int, count: int) -> List[KeyPayload]:
        if count <= 0:
            return []
        with self.pager.phase("scan"):
            out: List[KeyPayload] = []
            for entry in self._iterate_subtree(self.root_block, start_key):
                out.append(entry)
                if len(out) >= count:
                    break
            return out

    def _iterate_subtree(self, block: int, start_key: int = 0) -> Iterator[KeyPayload]:
        """In-order iteration, descending into conflict children.

        Monotonicity of the model guarantees keys >= start_key never live
        in slots before the predicted start slot.
        """
        header = self._read_header(block)
        first_slot = header.predict(start_key) if start_key else 0
        for slot in range(first_slot, header.num_slots):
            flag, slot_key, payload = self._read_slot(block, slot)
            if flag == SLOT_NULL:
                continue
            if flag == SLOT_DATA:
                if slot_key >= start_key:
                    yield (slot_key, payload)
            else:
                child_start = start_key if slot == first_slot else 0
                yield from self._iterate_subtree(slot_key, child_start)

    # -- misc -------------------------------------------------------------------------

    def verify(self) -> int:
        """Check slot-flag sanity, model-placement exactness (every DATA
        key predicts to its own slot) and per-node item counts."""
        with self._free_io():
            return self._verify_node(self.root_block, previous=[-1])

    def _verify_node(self, block: int, previous: List[int]) -> int:
        header = self._read_header(block)
        count = 0
        for slot in range(header.num_slots):
            flag, slot_key, _payload = self._read_slot(block, slot)
            assert flag in (SLOT_NULL, SLOT_DATA, SLOT_NODE), f"bad slot flag {flag}"
            if flag == SLOT_DATA:
                assert header.predict(slot_key) == slot, (
                    f"key {slot_key} stored at slot {slot}, model predicts "
                    f"{header.predict(slot_key)}")
                assert slot_key > previous[0], "keys out of in-order sequence"
                previous[0] = slot_key
                count += 1
            elif flag == SLOT_NODE:
                count += self._verify_node(slot_key, previous)
        assert count == header.item_count, (
            f"node item_count {header.item_count} != walked {count}")
        return count

    def init_params(self) -> dict:
        return {"rebuild_factor": self.rebuild_factor,
                "build_gap_count": self.build_gap_count,
                "file_prefix": self._file_prefix}

    def to_meta(self) -> dict:
        return {"root_block": self.root_block,
                "num_conflict_nodes": self.num_conflict_nodes,
                "num_rebuilds": self.num_rebuilds}

    def restore_meta(self, meta: dict) -> None:
        self.root_block = meta["root_block"]
        self.num_conflict_nodes = meta["num_conflict_nodes"]
        self.num_rebuilds = meta["num_rebuilds"]

    def file_roles(self) -> dict:
        return {self._file.name: "leaf"}  # LIPP has a single node type

    def height(self) -> int:
        """Maximum root-to-slot depth.

        Reporting only: the full-tree walk is served without I/O charges
        so that calling it between measurements cannot skew experiments.
        """
        was_resident = self._file.memory_resident
        self._file.memory_resident = True
        try:
            return self._depth(self.root_block)
        finally:
            self._file.memory_resident = was_resident

    def _depth(self, block: int) -> int:
        header = self._read_header(block)
        best = 1
        for slot in range(header.num_slots):
            flag, slot_key, _payload = self._read_slot(block, slot)
            if flag == SLOT_NODE:
                best = max(best, 1 + self._depth(slot_key))
        return best
