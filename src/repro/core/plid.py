"""PLID — a Principled Learned Index on Disk.

The paper ends with four design principles (P1-P4) and a co-design
recommendation (P5) for *future* on-disk learned indexes; PLID is this
repository's instantiation of them, the "what should have been built"
index the evaluation argues for:

* **P1 — reduce the tree height.**  Two on-disk levels: a flat learned
  directory (a PLA over leaf boundary keys) and the leaves.  The root
  model lives in the meta block.  A lookup costs 1 directory block + 1
  leaf block (+1 while the split buffer is non-empty) — at or below the
  B+-tree's height for any dataset size.
* **P2 — light-weight SMOs.**  A leaf split appends one directory entry
  to a small on-disk *split buffer* (one block write); the directory is
  re-segmented lazily, only when the buffer fills, and it is tiny —
  ``N / 204`` entries — so the rebuild touches a handful of blocks.  No
  statistics are maintained, so nothing is written on reads and no
  header update follows an insert.
* **P3 — cheap next-item fetch.**  Leaves are dense, sorted,
  sibling-linked B+-tree-style blocks: scans read ``z/B`` contiguous
  blocks, and deletes can be *physical* (an in-block shift) because no
  model predicts positions inside a leaf.
* **P4 — storage layout.**  Every model lives in the *parent*: the root
  model in the meta block, the per-segment models in the directory
  entries.  No node ever spans a model and its slots, so the paper's S1
  overhead cannot occur.
* **P5 — co-design with the buffer.**  The whole inner part (directory +
  split buffer) is a few blocks; pinning it in memory
  (``set_inner_memory_resident``) or caching it in a small LRU pool
  drops lookups to a single leaf fetch.

Directory layout (``<prefix>.dir`` file)::

    block 0..k   segment entry array: (first_key, slope, intercept,
                 position) — the PLA over the *leaf directory* (the
                 sorted array of (leaf max key, leaf block) pairs)
    leaf directory array: (max_key u64, leaf_block u64) entries
    split buffer: one region of sorted (max_key, leaf_block) entries

The leaf directory array and its PLA are rebuilt together; between
rebuilds, new leaves produced by splits live in the split buffer.
"""

from __future__ import annotations

import struct
from typing import List, Optional, Sequence, Tuple

from ..models import LinearModel, optimal_segments
from ..storage import Pager
from .codecs import get_codec
from .interface import DiskIndex, KeyPayload
from .serial import ENTRY_SIZE, NULL_BLOCK, pack_entries, unpack_entries

__all__ = ["PlidIndex"]

_LEAF_HEADER = struct.Struct("<HHIII")  # count, pad, next, prev, pad
LEAF_HEADER_SIZE = 16
_SEGMENT = struct.Struct("<Qddq")  # first_key, slope, intercept, position
SEGMENT_SIZE = _SEGMENT.size  # 32
_DIR_ENTRY = struct.Struct("<QQ")  # leaf max key, leaf block
DIR_ENTRY_SIZE = _DIR_ENTRY.size  # 16


class PlidIndex(DiskIndex):
    """The design-principles index: learned directory over dense leaves.

    Args:
        pager: storage access path.
        error_bound: PLA error bound over the leaf directory.  The
            directory is ~200x smaller than the data, so even eps=8
            keeps it at a handful of segments.
        leaf_fill: bulk-load fill factor of the leaves.
        split_buffer_capacity: directory entries buffered between
            directory rebuilds (one block holds 256).
    """

    name = "plid"

    def __init__(self, pager: Pager, error_bound: int = 8, leaf_fill: float = 0.8,
                 split_buffer_capacity: int = 128, file_prefix: str = "plid",
                 codec: str = "raw") -> None:
        super().__init__(pager)
        # PLID's leaf models predict fixed-stride slot positions within
        # the leaf, so compressed pages do not apply; the codec name is
        # validated, then the raw layout is kept.
        get_codec(codec)
        if error_bound < 1:
            raise ValueError(f"error bound must be >= 1, got {error_bound}")
        if not 0.1 <= leaf_fill <= 1.0:
            raise ValueError("leaf fill factor must be in [0.1, 1.0]")
        if split_buffer_capacity < 1:
            raise ValueError("split buffer capacity must be >= 1")
        self._file_prefix = file_prefix
        self.error_bound = error_bound
        self.leaf_fill = leaf_fill
        self.split_buffer_capacity = split_buffer_capacity
        device = pager.device
        self._dir_file = device.get_or_create_file(f"{file_prefix}.dir")
        self._leaf_file = device.get_or_create_file(f"{file_prefix}.leaf")
        self.leaf_capacity = (pager.block_size - LEAF_HEADER_SIZE) // ENTRY_SIZE
        # Meta-block state (the paper's in-memory meta block): the root
        # model over the segment array plus the region table.
        self.root_model: Optional[LinearModel] = None
        self.num_segments = 0
        self.num_dir_entries = 0
        self.split_buffer_count = 0
        self._segments_offset = 0
        self._dir_offset = 0
        self._buffer_offset = 0
        self.first_leaf_block = NULL_BLOCK
        self.last_leaf_block = NULL_BLOCK
        self.num_records = 0
        self.num_leaves = 0
        self.num_rebuilds = 0
        self.num_splits = 0

    # -- leaf (de)serialization ------------------------------------------------

    def _parse_leaf(self, raw: bytes):
        count, _pad, next_, prev, _pad2 = _LEAF_HEADER.unpack_from(raw, 0)
        entries = unpack_entries(raw, count, offset=LEAF_HEADER_SIZE)
        return entries, next_, prev

    def _write_leaf(self, block: int, entries: Sequence[KeyPayload],
                    next_: int, prev: int) -> None:
        raw = bytearray(self.pager.block_size)
        _LEAF_HEADER.pack_into(raw, 0, len(entries), 0, next_, prev, 0)
        raw[LEAF_HEADER_SIZE : LEAF_HEADER_SIZE + len(entries) * ENTRY_SIZE] = (
            pack_entries(entries))
        self.pager.write_block(self._leaf_file, block, bytes(raw))

    def _read_leaf(self, block: int):
        return self._parse_leaf(self.pager.read_block(self._leaf_file, block))

    # -- directory construction --------------------------------------------------

    def bulk_load(self, items: Sequence[KeyPayload]) -> None:
        if self.num_leaves:
            raise RuntimeError("index already bulk-loaded")
        with self.pager.phase("bulkload"):
            directory = self._write_leaves(items)
            self._write_directory(directory)

    def _write_leaves(self, items: Sequence[KeyPayload]) -> List[KeyPayload]:
        per_leaf = max(1, int(self.leaf_capacity * self.leaf_fill))
        num_leaves = max(1, (len(items) + per_leaf - 1) // per_leaf)
        first = self._leaf_file.allocate(num_leaves)
        directory: List[KeyPayload] = []
        for i in range(num_leaves):
            chunk = items[i * per_leaf : (i + 1) * per_leaf]
            next_ = first + i + 1 if i + 1 < num_leaves else NULL_BLOCK
            prev = first + i - 1 if i > 0 else NULL_BLOCK
            self._write_leaf(first + i, chunk, next_, prev)
            directory.append((chunk[-1][0] if chunk else 0, first + i))
        self.first_leaf_block = first
        # Splits always keep the right half in the old block (the new leaf
        # goes to the left), so the chain's last block never changes.
        self.last_leaf_block = first + num_leaves - 1
        self.num_records = len(items)
        self.num_leaves = num_leaves
        return directory

    def _write_directory(self, directory: List[KeyPayload]) -> None:
        """(Re)write the segment array + leaf directory + empty split buffer.

        The directory is append-allocated in the dir file; the previous
        extent (if any) is freed — it is a few blocks, so the rebuild is
        the cheap SMO P2 asks for.
        """
        bs = self.pager.block_size
        keys = [key for key, _ in directory]
        segments = optimal_segments(keys, self.error_bound) if keys else []
        seg_raw = b"".join(
            _SEGMENT.pack(seg.first_key, seg.model.slope, seg.model.intercept,
                          seg.first_pos)
            for seg in segments
        )
        dir_raw = b"".join(_DIR_ENTRY.pack(key, block) for key, block in directory)
        buffer_bytes = self.split_buffer_capacity * DIR_ENTRY_SIZE
        total = len(seg_raw) + len(dir_raw) + buffer_bytes
        nblocks = max(1, (total + bs - 1) // bs)
        start = self._dir_file.allocate(nblocks)
        self.pager.write_bytes(self._dir_file, start * bs,
                               seg_raw + dir_raw + bytes(buffer_bytes))
        self._segments_offset = start * bs
        self._dir_offset = start * bs + len(seg_raw)
        self._buffer_offset = self._dir_offset + len(dir_raw)
        self.num_segments = len(segments)
        self.num_dir_entries = len(directory)
        self.split_buffer_count = 0
        # Root model over segment first keys lives in the meta block (P4).
        if segments:
            seg_keys = [seg.first_key for seg in segments]
            root_segments = optimal_segments(seg_keys, self.error_bound)
            # The directory is small: one root segment always suffices in
            # practice; if not, fall back to a min-max spread.
            if len(root_segments) == 1:
                self.root_model = root_segments[0].model
            else:
                self.root_model = LinearModel.fit_min_max(
                    seg_keys[0], max(seg_keys[-1], seg_keys[0] + 1), len(seg_keys))
        else:
            self.root_model = None

    # -- directory search ---------------------------------------------------------

    def _read_segment(self, index: int) -> Tuple[int, float, float, int]:
        raw = self.pager.read_bytes(self._dir_file,
                                    self._segments_offset + index * SEGMENT_SIZE,
                                    SEGMENT_SIZE)
        return _SEGMENT.unpack(raw)

    def _read_dir_entries(self, lo: int, hi: int) -> List[Tuple[int, int]]:
        raw = self.pager.read_bytes(self._dir_file,
                                    self._dir_offset + lo * DIR_ENTRY_SIZE,
                                    (hi - lo + 1) * DIR_ENTRY_SIZE)
        return [_DIR_ENTRY.unpack_from(raw, i * DIR_ENTRY_SIZE)
                for i in range(hi - lo + 1)]

    def _read_split_buffer(self) -> List[Tuple[int, int]]:
        if self.split_buffer_count == 0:
            return []
        raw = self.pager.read_bytes(self._dir_file, self._buffer_offset,
                                    self.split_buffer_count * DIR_ENTRY_SIZE)
        return [_DIR_ENTRY.unpack_from(raw, i * DIR_ENTRY_SIZE)
                for i in range(self.split_buffer_count)]

    def _route(self, key: int) -> int:
        """Leaf block whose max key is the ceiling of ``key``.

        One segment-array probe (root model is in memory), one directory
        window read, plus the split buffer while it is non-empty.
        """
        if self.root_model is None or self.num_dir_entries == 0:
            return self.first_leaf_block
        # Locate the covering segment via the in-memory root model.
        seg_index = self.root_model.predict_clamped(key, self.num_segments)
        lo = max(0, seg_index - self.error_bound - 1)
        hi = min(self.num_segments - 1, seg_index + self.error_bound + 1)
        raw = self.pager.read_bytes(self._dir_file,
                                    self._segments_offset + lo * SEGMENT_SIZE,
                                    (hi - lo + 1) * SEGMENT_SIZE)
        segments = [_SEGMENT.unpack_from(raw, i * SEGMENT_SIZE)
                    for i in range(hi - lo + 1)]
        slot = _floor(segments, key)
        first_key, slope, intercept, position = segments[slot]
        # Predict into the leaf directory, read the +-eps window.
        pred = int(slope * float(int(key) - first_key) + intercept)
        dlo = max(0, min(pred - self.error_bound - 1, self.num_dir_entries - 1))
        dhi = max(dlo, min(pred + self.error_bound + 1, self.num_dir_entries - 1))
        entries = self._read_dir_entries(dlo, dhi)
        # Walk to the ceiling entry; windows are exact by the PLA bound,
        # but the ceiling may sit one window to the right for keys larger
        # than every max key in the window.
        while entries[-1][0] < key and dhi + 1 < self.num_dir_entries:
            dlo, dhi = dhi + 1, min(dhi + 1 + 2 * self.error_bound,
                                    self.num_dir_entries - 1)
            entries = self._read_dir_entries(dlo, dhi)
        index = _ceiling_index(entries, key)
        best: Optional[Tuple[int, int]] = (
            entries[index] if index < len(entries) else None)
        # The split buffer may hold a tighter (newer) boundary.
        for max_key, block in self._read_split_buffer():
            if max_key >= key and (best is None or max_key < best[0]):
                best = (max_key, block)
        if best is None:
            # Key beyond every max key: the rightmost leaf takes it.
            return self._rightmost_leaf_block()
        return best[1]

    def _rightmost_leaf_block(self) -> int:
        # The last leaf absorbs keys above the global max, so its recorded
        # max key understates its contents; the chain-stable meta pointer
        # is the reliable route.
        return self.last_leaf_block

    # -- operations ------------------------------------------------------------------

    def lookup(self, key: int) -> Optional[int]:
        with self.pager.phase("search"):
            block = self._route(key)
            entries, _next, _prev = self._read_leaf(block)
        slot = _leaf_position(entries, key)
        if slot < len(entries) and entries[slot][0] == key:
            return entries[slot][1]
        return None

    def insert(self, key: int, payload: int) -> None:
        with self.pager.phase("search"):
            block = self._route(key)
            entries, next_, prev = self._read_leaf(block)
        slot = _leaf_position(entries, key)
        if slot < len(entries) and entries[slot][0] == key:
            raise KeyError(f"duplicate key {key}")
        entries = list(entries)
        entries.insert(slot, (key, payload))
        self.num_records += 1
        if len(entries) <= self.leaf_capacity:
            with self.pager.phase("insert"):
                self._write_leaf(block, entries, next_, prev)
            return
        with self.pager.phase("smo"):
            self._split_leaf(block, entries, next_, prev)

    def _split_leaf(self, block: int, entries: List[KeyPayload],
                    next_: int, prev: int) -> None:
        """P2's light SMO: one new leaf, one split-buffer append."""
        self.num_splits += 1
        mid = len(entries) // 2
        new_block = self._leaf_file.allocate(1)
        # Left half stays in place (its directory entry's max key now
        # lives in the split buffer); right half keeps the old max key,
        # so the existing directory entry still routes to it via the new
        # block... the cheaper arrangement is the reverse: keep the
        # right half in the OLD block so the old directory entry (old
        # max key -> old block) stays correct, and register only the new
        # left leaf.
        left, right = entries[:mid], entries[mid:]
        self._write_leaf(new_block, left, block, prev)
        self._write_leaf(block, right, next_, new_block)
        if prev != NULL_BLOCK:
            prev_entries, prev_next, prev_prev = self._read_leaf(prev)
            self._write_leaf(prev, prev_entries, new_block, prev_prev)
        else:
            self.first_leaf_block = new_block
        self.num_leaves += 1
        self._append_split_entry(left[-1][0], new_block)

    def _append_split_entry(self, max_key: int, block: int) -> None:
        buffered = self._read_split_buffer()
        buffered.append((max_key, block))
        buffered.sort()
        self.pager.write_bytes(self._dir_file, self._buffer_offset,
                               b"".join(_DIR_ENTRY.pack(*entry) for entry in buffered))
        self.split_buffer_count = len(buffered)
        if self.split_buffer_count >= self.split_buffer_capacity:
            self._rebuild_directory()

    def _rebuild_directory(self) -> None:
        """Merge the split buffer into the directory and re-run the PLA.

        The directory is ~N/204 entries: the rebuild reads and writes a
        handful of blocks, the whole point of P2.
        """
        self.num_rebuilds += 1
        merged = sorted(
            self._read_dir_entries(0, self.num_dir_entries - 1)
            + self._read_split_buffer())
        old_start = self._segments_offset // self.pager.block_size
        old_end = (self._buffer_offset
                   + self.split_buffer_capacity * DIR_ENTRY_SIZE
                   + self.pager.block_size - 1) // self.pager.block_size
        self._write_directory([(key, block) for key, block in merged])
        self._dir_file.free(old_start, old_end - old_start)

    def update(self, key: int, payload: int) -> bool:
        with self.pager.phase("insert"):
            block = self._route(key)
            entries, next_, prev = self._read_leaf(block)
            slot = _leaf_position(entries, key)
            if slot >= len(entries) or entries[slot][0] != key:
                return False
            entries = list(entries)
            entries[slot] = (key, payload)
            self._write_leaf(block, entries, next_, prev)
            return True

    def delete(self, key: int) -> bool:
        """Physical delete: dense leaves shift in-block (P3's payoff)."""
        with self.pager.phase("insert"):
            block = self._route(key)
            entries, next_, prev = self._read_leaf(block)
            slot = _leaf_position(entries, key)
            if slot >= len(entries) or entries[slot][0] != key:
                return False
            entries = list(entries)
            del entries[slot]
            self._write_leaf(block, entries, next_, prev)
            self.num_records -= 1
            return True

    def scan(self, start_key: int, count: int) -> List[KeyPayload]:
        out: List[KeyPayload] = []
        if count <= 0:
            return out
        with self.pager.phase("scan"):
            block = self._route(start_key)
            while block != NULL_BLOCK and len(out) < count:
                entries, next_, _prev = self._read_leaf(block)
                for key, payload in entries:
                    if key >= start_key:
                        out.append((key, payload))
                        if len(out) >= count:
                            break
                block = next_
        return out

    # -- maintenance / reporting --------------------------------------------------------

    def set_inner_memory_resident(self, resident: bool) -> None:
        self._dir_file.memory_resident = resident

    def height(self) -> int:
        return 3  # meta-resident root model + directory + leaf

    def file_roles(self) -> dict:
        return {self._dir_file.name: "inner", self._leaf_file.name: "leaf"}

    def verify(self) -> int:
        """Check leaf-chain order, directory routing and record counts."""
        with self._free_io():
            directory = sorted(
                self._read_dir_entries(0, self.num_dir_entries - 1)
                + self._read_split_buffer())
            assert len(directory) == self.num_leaves, "directory/leaf count mismatch"
            block = self.first_leaf_block
            previous_key = -1
            previous_block = NULL_BLOCK
            count = 0
            walked = 0
            for max_key, dir_block in directory:
                assert block == dir_block, "directory order diverges from leaf chain"
                entries, next_, prev = self._read_leaf(block)
                assert prev == previous_block, "broken prev link"
                keys = [k for k, _ in entries]
                assert keys == sorted(set(keys)), "leaf unsorted"
                if keys:
                    assert keys[0] > previous_key, "leaves out of order"
                    if next_ != NULL_BLOCK:
                        # The rightmost leaf absorbs keys above the global
                        # max, so only interior leaves are bounded by
                        # their directory entry.
                        assert keys[-1] <= max_key, "leaf exceeds its directory max key"
                    previous_key = keys[-1]
                count += len(entries)
                walked += 1
                previous_block = block
                block = next_
            assert block == NULL_BLOCK, "leaf chain longer than directory"
            assert count == self.num_records, "record count mismatch"
            return count

    # -- persistence -----------------------------------------------------------------------

    def init_params(self) -> dict:
        return {"error_bound": self.error_bound, "leaf_fill": self.leaf_fill,
                "split_buffer_capacity": self.split_buffer_capacity,
                "file_prefix": self._file_prefix}

    def to_meta(self) -> dict:
        root = self.root_model
        return {"root_model": ([root.slope, root.intercept, root.anchor]
                               if root is not None else None),
                "num_segments": self.num_segments,
                "num_dir_entries": self.num_dir_entries,
                "split_buffer_count": self.split_buffer_count,
                "segments_offset": self._segments_offset,
                "dir_offset": self._dir_offset,
                "buffer_offset": self._buffer_offset,
                "first_leaf_block": self.first_leaf_block,
                "last_leaf_block": self.last_leaf_block,
                "num_records": self.num_records,
                "num_leaves": self.num_leaves,
                "num_rebuilds": self.num_rebuilds,
                "num_splits": self.num_splits}

    def restore_meta(self, meta: dict) -> None:
        raw_model = meta["root_model"]
        self.root_model = (LinearModel(raw_model[0], raw_model[1], raw_model[2])
                           if raw_model is not None else None)
        self.num_segments = meta["num_segments"]
        self.num_dir_entries = meta["num_dir_entries"]
        self.split_buffer_count = meta["split_buffer_count"]
        self._segments_offset = meta["segments_offset"]
        self._dir_offset = meta["dir_offset"]
        self._buffer_offset = meta["buffer_offset"]
        self.first_leaf_block = meta["first_leaf_block"]
        self.last_leaf_block = meta["last_leaf_block"]
        self.num_records = meta["num_records"]
        self.num_leaves = meta["num_leaves"]
        self.num_rebuilds = meta["num_rebuilds"]
        self.num_splits = meta["num_splits"]


def _floor(segments: List[Tuple], key: int) -> int:
    lo, hi = 0, len(segments)
    while lo < hi:
        mid = (lo + hi) // 2
        if segments[mid][0] <= key:
            lo = mid + 1
        else:
            hi = mid
    return max(0, lo - 1)


def _ceiling_index(entries: List[Tuple[int, int]], key: int) -> int:
    lo, hi = 0, len(entries)
    while lo < hi:
        mid = (lo + hi) // 2
        if entries[mid][0] < key:
            lo = mid + 1
        else:
            hi = mid
    return lo


def _leaf_position(entries: Sequence[KeyPayload], key: int) -> int:
    lo, hi = 0, len(entries)
    while lo < hi:
        mid = (lo + hi) // 2
        if entries[mid][0] < key:
            lo = mid + 1
        else:
            hi = mid
    return lo
