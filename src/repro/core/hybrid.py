"""Hybrid index designs: learned inner structure + B+-tree-style leaves.

Section 6.1.2 of the paper evaluates an "emerging idea": keep the
key-payload pairs in dense, linked, B+-tree-style leaf blocks (which scan
well) and use a learned index only as the *inner* part, indexing the
maximum key of every leaf.  Table 5 reports the average fetched block
count of this design with each learned index as the inner part.

We build the hybrid by composition: the inner part is a full instance of
the corresponding on-disk index (FITing-tree, PGM, ALEX or LIPP) whose
entries are ``(leaf max key -> leaf block number)``.  Routing a search
key is a ceiling lookup — the smallest stored max key >= the search key —
which is exactly ``inner.scan(key, 1)``.  The paper's note that the LIPP
hybrid "has to scan forward to find the next DATA slot if meeting a NULL
slot" is therefore reproduced verbatim by LIPP's scan path.

The hybrid is evaluated read-only in the paper (lookup and scan on a
bulk-loaded index); inserts raise ``NotImplementedError``.

Compressed leaves (DESIGN.md Section 16): with a non-raw ``codec`` the
leaves hold self-framing codec pages (2-4x the entries per block) and
the inner part — *whatever* ``inner_kind`` was requested — is replaced
by a LeCo-style :class:`~repro.models.zonemap.FenceZonemap` over the
leaf max keys.  At a few hundred fences the structure of the learned
inner no longer matters at page granularity (the SIGMOD 2024 follow-up's
finding); what matters is that the fence array itself is compressed, so
routing is an in-memory bisect plus exactly one fence-block read.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Sequence, Type

import numpy as np

from ..storage import Pager
from .alex import AlexIndex
from .btree import BTreeIndex
from .codecs import get_codec
from .fiting import FitingTreeIndex
from .interface import DiskIndex, KeyPayload
from .lipp import LippIndex
from .pgm import PgmIndex
from .serial import (ENTRY_SIZE, NULL_BLOCK, pack_entries, payload_at,
                     unpack_entries)
from .vectorize import enabled as _vectorized

__all__ = ["HybridIndex", "HYBRID_INNER_KINDS"]

_LEAF_HEADER = struct.Struct("<HHIII")  # count, pad, next, prev, pad
LEAF_HEADER_SIZE = 16
_U64 = struct.Struct("<Q")

#: Inner-part choices for the hybrid design (Table 5 columns).
HYBRID_INNER_KINDS: Dict[str, Type[DiskIndex]] = {
    "fiting": FitingTreeIndex,
    "pgm": PgmIndex,
    "alex": AlexIndex,
    "lipp": LippIndex,
    "btree": BTreeIndex,  # degenerates to a plain B+-tree; kept for sanity checks
}


class HybridIndex(DiskIndex):
    """Learned-inner / dense-leaf hybrid (read-only).

    Args:
        pager: storage access path.
        inner_kind: one of ``HYBRID_INNER_KINDS``.
        leaf_fill: bulk-load fill factor of the dense leaves (under a
            compressed codec: fraction of the leaf byte budget used).
        codec: leaf-page codec (Section 16).  Raw keeps the byte-
            identical learned-inner layout; a compressed codec packs
            codec pages into the leaves and swaps the inner part for a
            compressed fence zonemap (``<file_prefix>.fence``).
        inner_params: forwarded to the inner index constructor (ignored
            under a compressed codec, which has no inner index).
    """

    def __init__(self, pager: Pager, inner_kind: str = "pgm", leaf_fill: float = 0.8,
                 file_prefix: str = "hybrid", codec: str = "raw",
                 **inner_params) -> None:
        super().__init__(pager)
        if inner_kind not in HYBRID_INNER_KINDS:
            raise ValueError(
                f"unknown inner kind {inner_kind!r}; choose from {sorted(HYBRID_INNER_KINDS)}")
        if not 0.1 <= leaf_fill <= 1.0:
            raise ValueError("leaf fill factor must be in [0.1, 1.0]")
        self.name = f"hybrid-{inner_kind}"
        self.inner_kind = inner_kind
        self.leaf_fill = leaf_fill
        self.codec = get_codec(codec)
        self._file_prefix = file_prefix
        self._inner_params = dict(inner_params)
        self._files_before = set(pager.device.files)
        self._leaf_file = pager.device.get_or_create_file(f"{file_prefix}.leaf")
        self.zonemap = None
        if self.codec.is_raw:
            inner_cls = HYBRID_INNER_KINDS[inner_kind]
            self.inner: Optional[DiskIndex] = inner_cls(
                pager, file_prefix=f"{file_prefix}.inner", **inner_params)
            self._fence_file = None
        else:
            self.inner = None
            self._fence_file = pager.device.get_or_create_file(
                f"{file_prefix}.fence")
        self._inner_resident = False
        self.leaf_capacity = (pager.block_size - LEAF_HEADER_SIZE) // ENTRY_SIZE
        self.leaf_base = 0
        self.num_leaves = 0
        self.max_key: Optional[int] = None

    # -- bulk load ------------------------------------------------------------

    def bulk_load(self, items: Sequence[KeyPayload]) -> None:
        if self.num_leaves:
            raise RuntimeError("index already bulk-loaded")
        if self.codec.is_raw:
            with self.pager.phase("bulkload"):
                directory = self._write_leaves(items)
            self.inner.bulk_load(directory)
        else:
            with self.pager.phase("bulkload"):
                self._write_leaves_compressed(items)
        self.max_key = items[-1][0] if items else None

    def _write_leaves_compressed(self, items: Sequence[KeyPayload]) -> None:
        """Greedy-pack codec pages into linked leaves and build the
        fence zonemap over the leaf max keys.

        ``leaf_fill`` scales the per-leaf byte budget the way it scales
        the raw layout's entry count; the codec id is stamped into the
        leaf header's pad field (raw leaves carry 0 there — RawCodec's
        id) on top of the codec page's own self-framing header.
        """
        from ..models.zonemap import FenceZonemap

        bs = self.pager.block_size
        codec = self.codec
        budget = max(64, int((bs - LEAF_HEADER_SIZE) * self.leaf_fill))
        chunks: List[Sequence[KeyPayload]] = []
        pos = 0
        while pos < len(items):
            take = codec.pack_greedy(items, pos, budget)
            chunks.append(items[pos : pos + take])
            pos += take
        if not chunks:
            chunks.append([])
        num_leaves = len(chunks)
        first = self._leaf_file.allocate(num_leaves)
        writes: List[tuple] = []
        fences: List[int] = []
        for i, chunk in enumerate(chunks):
            next_ = first + i + 1 if i + 1 < num_leaves else NULL_BLOCK
            prev = first + i - 1 if i > 0 else NULL_BLOCK
            page = codec.encode(chunk)
            block = bytearray(bs)
            _LEAF_HEADER.pack_into(block, 0, len(chunk), codec.codec_id,
                                   next_, prev, 0)
            block[LEAF_HEADER_SIZE : LEAF_HEADER_SIZE + len(page)] = page
            writes.append((first + i, bytes(block)))
            if chunk:
                fences.append(chunk[-1][0])
        # One coalesced call, exactly like the raw layout.
        self.pager.write_blocks(self._leaf_file, writes)
        self.leaf_base = first
        self.num_leaves = num_leaves
        self.zonemap = FenceZonemap.build(
            self.pager, self._fence_file, fences, codec)

    def _write_leaves(self, items: Sequence[KeyPayload]) -> List[KeyPayload]:
        """Pack dense linked leaves; returns (max key -> leaf block) entries."""
        per_leaf = max(1, int(self.leaf_capacity * self.leaf_fill))
        num_leaves = max(1, (len(items) + per_leaf - 1) // per_leaf)
        first = self._leaf_file.allocate(num_leaves)
        directory: List[KeyPayload] = []
        bs = self.pager.block_size
        writes: List[tuple] = []
        for i in range(num_leaves):
            chunk = items[i * per_leaf : (i + 1) * per_leaf]
            next_ = first + i + 1 if i + 1 < num_leaves else NULL_BLOCK
            prev = first + i - 1 if i > 0 else NULL_BLOCK
            block = bytearray(bs)
            _LEAF_HEADER.pack_into(block, 0, len(chunk), 0, next_, prev, 0)
            block[LEAF_HEADER_SIZE : LEAF_HEADER_SIZE + len(chunk) * ENTRY_SIZE] = (
                pack_entries(chunk))
            writes.append((first + i, bytes(block)))
            if chunk:
                directory.append((chunk[-1][0], first + i))
        # One coalesced call: the freshly allocated leaves are contiguous,
        # so the whole image is charged a single positioning run.
        self.pager.write_blocks(self._leaf_file, writes)
        self.num_leaves = num_leaves
        return directory

    # -- leaf access ------------------------------------------------------------

    def _read_leaf(self, block: int):
        raw = self.pager.read_block(self._leaf_file, block)
        return self._parse_leaf(raw)

    def _parse_leaf(self, raw: bytes):
        count, _codec_id, next_, prev, _pad2 = _LEAF_HEADER.unpack_from(raw, 0)
        if self.codec.is_raw:
            entries = unpack_entries(raw, count, offset=LEAF_HEADER_SIZE)
        else:
            entries = self.codec.decode(raw, offset=LEAF_HEADER_SIZE)
        return entries, next_

    def _route(self, key: int) -> Optional[int]:
        """Leaf block whose max key is the ceiling of ``key``."""
        if self.max_key is None or key > self.max_key:
            return None
        if self.zonemap is not None:
            with self.pager.phase("search"):
                ordinal = self.zonemap.route(key)
            if ordinal is None:
                return None
            return self.leaf_base + ordinal
        hits = self.inner.scan(key, 1)
        if not hits:
            return None
        return hits[0][1]

    # -- operations ----------------------------------------------------------------

    @staticmethod
    def _find_in_entries(entries, key: int) -> Optional[int]:
        lo, hi = 0, len(entries)
        while lo < hi:
            mid = (lo + hi) // 2
            if entries[mid][0] < key:
                lo = mid + 1
            else:
                hi = mid
        if lo < len(entries) and entries[lo][0] == key:
            return entries[lo][1]
        return None

    def lookup(self, key: int) -> Optional[int]:
        leaf_block = self._route(key)
        if leaf_block is None:
            return None
        with self.pager.phase("search"):
            entries, _next = self._read_leaf(leaf_block)
        return self._find_in_entries(entries, key)

    def lookup_many(self, keys) -> List[Optional[int]]:
        """Batched lookups: route the whole sorted batch through the
        pinned inner index, then fetch the distinct leaf blocks in one
        coalesced span and search each parsed leaf once."""
        keys = list(keys)
        if len(keys) <= 1:
            return [self.lookup(key) for key in keys]
        unique = sorted(set(keys))
        results = {}
        with self.pager.batch():
            if self.zonemap is not None:
                leaf_of = self._route_batch_compressed(unique)
            else:
                leaf_of = {key: self._route(key) for key in unique}
            wanted = {block for block in leaf_of.values() if block is not None}
            with self.pager.phase("search"):
                blocks = self.pager.read_span(self._leaf_file, wanted)
                if _vectorized():
                    if self.zonemap is not None:
                        self._search_leaves_vec_compressed(
                            unique, leaf_of, blocks, results)
                    else:
                        self._search_leaves_vec(unique, leaf_of, blocks, results)
                else:
                    parsed = {}
                    for key in unique:
                        block = leaf_of[key]
                        if block is None:
                            results[key] = None
                            continue
                        entries = parsed.get(block)
                        if entries is None:
                            entries = parsed[block] = self._parse_leaf(
                                blocks[block])[0]
                        results[key] = self._find_in_entries(entries, key)
        return [results[key] for key in keys]

    def _route_batch_compressed(self, unique) -> Dict[int, Optional[int]]:
        """Batched zonemap routing: one coalesced fence-page span for
        the whole batch, identical in both execution modes."""
        routable = [key for key in unique
                    if self.max_key is not None and key <= self.max_key]
        with self.pager.phase("search"):
            ordinals = self.zonemap.route_many(routable)
        leaf_of: Dict[int, Optional[int]] = {key: None for key in unique}
        for key, ordinal in ordinals.items():
            if ordinal is not None:
                leaf_of[key] = self.leaf_base + ordinal
        return leaf_of

    def _search_leaves_vec_compressed(self, unique, leaf_of, blocks,
                                      results) -> None:
        """Vectorized compressed-leaf search: the decoded page columns
        are frame-cached (:meth:`Pager.cached_decode`) and each distinct
        leaf is searched with one ``np.searchsorted`` over its group.
        The leaves were already fetched by the caller's ``read_span``,
        so no charged I/O happens here."""
        groups: Dict[int, List[int]] = {}
        for key in unique:
            block = leaf_of[key]
            if block is None:
                results[key] = None
            else:
                groups.setdefault(block, []).append(key)
        for block, group in groups.items():
            raw = blocks[block]
            leaf_keys, payloads = self.pager.cached_decode(
                self._leaf_file, block, raw, self.codec,
                offset=LEAF_HEADER_SIZE)
            count = len(leaf_keys)
            karr = np.array(group, dtype=np.uint64)
            slots = np.searchsorted(leaf_keys, karr, side="left")
            for key, slot in zip(group, slots.tolist()):
                if slot < count and int(leaf_keys[slot]) == key:
                    results[key] = int(payloads[slot])
                else:
                    results[key] = None

    def _search_leaves_vec(self, unique, leaf_of, blocks, results) -> None:
        """Vectorized leaf search: one ``np.searchsorted`` per distinct
        leaf over a zero-copy key view instead of a per-key bisection
        over parsed tuples.  The leaves were already fetched by the
        caller's ``read_span``, so no charged I/O happens here."""
        groups: Dict[int, List[int]] = {}
        for key in unique:
            block = leaf_of[key]
            if block is None:
                results[key] = None
            else:
                groups.setdefault(block, []).append(key)
        unpack_u64 = _U64.unpack_from
        for block, group in groups.items():
            raw = blocks[block]
            count = _LEAF_HEADER.unpack_from(raw, 0)[0]
            if len(group) < 4:
                # Tiny group: a raw-byte bisection per key beats the
                # numpy round-trip (array build + searchsorted call).
                for key in group:
                    lo, hi = 0, count
                    while lo < hi:
                        mid = (lo + hi) // 2
                        if unpack_u64(raw,
                                      LEAF_HEADER_SIZE + mid * ENTRY_SIZE)[0] < key:
                            lo = mid + 1
                        else:
                            hi = mid
                    if (lo < count and
                            unpack_u64(raw,
                                       LEAF_HEADER_SIZE + lo * ENTRY_SIZE)[0] == key):
                        results[key] = payload_at(raw, lo, offset=LEAF_HEADER_SIZE)
                    else:
                        results[key] = None
                continue
            leaf_keys = self.pager.cached_keys(
                self._leaf_file, block, raw, count,
                offset=LEAF_HEADER_SIZE, stride=ENTRY_SIZE)
            karr = np.array(group, dtype=np.uint64)
            slots = np.searchsorted(leaf_keys, karr, side="left")
            for key, slot in zip(group, slots.tolist()):
                if slot < count and int(leaf_keys[slot]) == key:
                    results[key] = payload_at(
                        raw, slot, offset=LEAF_HEADER_SIZE)
                else:
                    results[key] = None

    def insert(self, key: int, payload: int) -> None:
        raise NotImplementedError(
            "the hybrid design is evaluated read-only in the paper (Table 5)")

    def scan(self, start_key: int, count: int) -> List[KeyPayload]:
        leaf_block = self._route(start_key)
        out: List[KeyPayload] = []
        if leaf_block is None or count <= 0:
            return out
        with self.pager.phase("scan"):
            block = leaf_block
            while block != NULL_BLOCK and len(out) < count:
                entries, next_ = self._read_leaf(block)
                for key, payload in entries:
                    if key >= start_key:
                        out.append((key, payload))
                        if len(out) >= count:
                            break
                block = next_
        return out

    # -- misc -------------------------------------------------------------------------

    def verify(self) -> int:
        """Check leaf-chain linkage and order, per-leaf sortedness, and
        the routing agreement between the inner structure (learned index
        or fence zonemap) and the leaves.  Under a compressed codec also
        checks the codec-id stamp of every leaf header."""
        with self._free_io():
            count = 0
            walked = 0
            previous_key = -1
            previous_block = NULL_BLOCK
            base = self.leaf_base if self.zonemap is not None else 0
            block = base if self.num_leaves else NULL_BLOCK
            while block != NULL_BLOCK:
                assert walked < self.num_leaves, "leaf chain cycles or overruns"
                raw = self.pager.read_block(self._leaf_file, block)
                entry_count, codec_id, next_, prev, _pad2 = (
                    _LEAF_HEADER.unpack_from(raw, 0))
                assert codec_id == self.codec.codec_id, (
                    f"leaf {block} stamped codec {codec_id}, "
                    f"expected {self.codec.codec_id}")
                entries, _next = self._parse_leaf(raw)
                assert len(entries) == entry_count, "leaf count drift"
                assert prev == previous_block, "broken prev link"
                keys = [k for k, _ in entries]
                assert keys == sorted(set(keys)), "leaf unsorted"
                if keys:
                    assert keys[0] > previous_key, "leaves out of order"
                    if self.zonemap is not None:
                        assert self.zonemap.route(keys[-1]) == walked, (
                            "fence zonemap misroutes a leaf max key")
                    else:
                        assert self.inner.lookup(keys[-1]) == block, (
                            "inner directory misroutes a leaf max key")
                    previous_key = keys[-1]
                count += len(entries)
                walked += 1
                previous_block = block
                block = next_
            assert walked == self.num_leaves, "leaf chain shorter than num_leaves"
            if self.max_key is not None:
                assert previous_key == self.max_key, "stored max_key diverges"
            if self.zonemap is not None:
                self.zonemap.verify()
            return count

    def _inner_file_names(self) -> List[str]:
        """Every file the inner index owns, including files it created
        after construction (PGM components appear during bulk load)."""
        return [name for name in self.pager.device.files
                if name not in self._files_before and name != self._leaf_file.name]

    def set_inner_memory_resident(self, resident: bool) -> None:
        """Pin every file of the inner learned index in memory (P5 co-design)."""
        self._inner_resident = resident
        for name in self._inner_file_names():
            self.pager.device.get_file(name).memory_resident = resident

    def init_params(self) -> dict:
        params = dict(self._inner_params)
        params.update({"leaf_fill": self.leaf_fill, "file_prefix": self._file_prefix})
        if not self.codec.is_raw:
            params["codec"] = self.codec.name
        return params

    def to_meta(self) -> dict:
        meta = {"num_leaves": self.num_leaves, "max_key": self.max_key}
        if self.zonemap is not None:
            meta["leaf_base"] = self.leaf_base
            meta["zonemap"] = self.zonemap.to_meta()
        else:
            meta["inner"] = self.inner.to_meta()
        return meta

    def restore_meta(self, meta: dict) -> None:
        self.num_leaves = meta["num_leaves"]
        self.max_key = meta["max_key"]
        if "zonemap" in meta:
            from ..models.zonemap import FenceZonemap

            self.leaf_base = meta["leaf_base"]
            self.zonemap = FenceZonemap.attach(
                self.pager, self._fence_file, self.codec, meta["zonemap"])
        else:
            self.inner.restore_meta(meta["inner"])

    def file_roles(self) -> dict:
        if self.zonemap is not None or not self.codec.is_raw:
            return {self._fence_file.name: "inner",
                    self._leaf_file.name: "leaf"}
        roles = {name: "inner" for name in self._inner_file_names()}
        roles[self._leaf_file.name] = "leaf"
        return roles

    def height(self) -> int:
        if self.zonemap is not None:
            # In-memory page boundaries -> one fence block -> one leaf.
            return 2
        return self.inner.height() + 1
