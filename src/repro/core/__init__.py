"""The paper's core contribution: five disk-resident updatable indexes.

* :class:`BTreeIndex` — the baseline on-disk B+-tree.
* :class:`FitingTreeIndex` — FITing-tree with the Delta Insert Strategy.
* :class:`PgmIndex` — dynamic (LSM-style) PGM-index.
* :class:`AlexIndex` — ALEX with gapped arrays and on-disk SMOs.
* :class:`LippIndex` — LIPP with FMCD nodes and slot type flags.
* :class:`HybridIndex` — learned inner + B+-tree-style leaves (Table 5).
"""

from .alex import AlexIndex
from .btree import BPlusTree, BTreeIndex
from .codecs import (CODEC_NAMES, DeltaVarintCodec, FoRCodec, LeafCodec,
                     RawCodec, get_codec)
from .fiting import FitingTreeIndex
from .hybrid import HYBRID_INNER_KINDS, HybridIndex
from .interface import DiskIndex, KeyPayload
from .lipp import LippIndex
from .persistence import load_index, save_index
from .pgm import PgmIndex, StaticPgm
from .plid import PlidIndex
from .registry import (INDEX_FACTORIES, index_names, make_index,
                       make_sharded_index)
from .vectorize import scalar_lookups, set_vectorized

__all__ = [
    "AlexIndex",
    "BPlusTree",
    "BTreeIndex",
    "CODEC_NAMES",
    "DeltaVarintCodec",
    "DiskIndex",
    "FoRCodec",
    "LeafCodec",
    "RawCodec",
    "get_codec",
    "FitingTreeIndex",
    "HYBRID_INNER_KINDS",
    "HybridIndex",
    "INDEX_FACTORIES",
    "KeyPayload",
    "LippIndex",
    "PgmIndex",
    "PlidIndex",
    "StaticPgm",
    "index_names",
    "load_index",
    "save_index",
    "make_index",
    "make_sharded_index",
    "scalar_lookups",
    "set_vectorized",
]
