"""Pluggable leaf-page codecs: raw, delta+varint, frame-of-reference.

PRs 3-8 cut positionings, write amplification and interpreter time, but
every index still paid the same blocks-per-op floor: a leaf stores fixed
16-byte ``(key, payload)`` slots, so each fetched block yields exactly
``block_size // 16`` entries.  The SIGMOD 2024 follow-up ("Making
In-Memory Learned Indexes Efficient on Disk") shows compression is the
biggest remaining lever for disk-resident learned indexes; this module
is that lever (DESIGN.md Section 16).

Three codecs, selected per index via the ``codec`` init parameter:

* :class:`RawCodec` (``"raw"``, id 0) — the pre-existing headerless
  16-byte-slot layout, byte-identical to PRs 1-8 so its charged
  ``StorageStats`` are bit-identical by construction (the indexes branch
  straight into their legacy code path when ``codec.is_raw``).
* :class:`DeltaVarintCodec` (``"delta"``, id 1) — keys as LEB128
  varint-coded deltas over the sorted order, payloads as a split column
  of zigzag-varint residuals against their own key (the paper's datasets
  use ``payload = key + 1``, which encodes to one byte).
* :class:`FoRCodec` (``"for"``, id 2) — frame-of-reference: per-page
  fixed bit widths for key deltas and zigzag payload residuals, packed
  with numpy (:func:`~.vectorize.pack_uint_bits`), so the vectorized
  decode is one ``np.unpackbits``/``np.cumsum`` and the decoded key
  column feeds ``np.searchsorted`` exactly like a ``keys_view``.

Compressed pages are self-framing.  Every page opens with an 8-byte
header ``<BBHI`` = (codec id, page kind, entry count, payload column
offset), so WAL redo, checksum repair and ``save_index`` round-trip the
bytes without out-of-band layout knowledge, and a mismatched codec id is
detected at decode time.  Two page kinds exist: ``KIND_ENTRIES`` pages
carry (key, payload) pairs (index leaves); ``KIND_KEYS`` pages carry a
bare sorted key column (the :class:`~repro.models.zonemap.FenceZonemap`
fence pages, ``payload_off == 0``).

Capacity under compression is data-dependent: callers size pages with
:meth:`LeafCodec.pack_greedy` (how many of these entries fit a budget)
and :meth:`LeafCodec.encoded_size` (would this page still fit) instead
of the raw layout's ``entries_per_block`` constant.
"""

from __future__ import annotations

import struct
from typing import List, Sequence, Tuple

import numpy as np

from .serial import ENTRY_SIZE, pack_entries, unpack_entries
from .vectorize import pack_uint_bits, unpack_uint_bits

__all__ = [
    "CODEC_NAMES",
    "DeltaVarintCodec",
    "FoRCodec",
    "KIND_ENTRIES",
    "KIND_KEYS",
    "LeafCodec",
    "PAGE_HEADER_SIZE",
    "RawCodec",
    "codec_id_of",
    "get_codec",
]

_PAGE_HEADER = struct.Struct("<BBHI")  # codec id, kind, count, payload offset
PAGE_HEADER_SIZE = _PAGE_HEADER.size  # 8
KIND_ENTRIES = 0
KIND_KEYS = 1

#: A page's entry count is a u16 in the header.
_MAX_PAGE_COUNT = 0xFFFF

_U64_MASK = (1 << 64) - 1
_U64 = struct.Struct("<Q")


def _zigzag(key: int, payload: int) -> int:
    """Zigzag-encoded 64-bit residual ``payload - key`` (mod 2^64)."""
    diff = (payload - key) & _U64_MASK
    signed = diff - (1 << 64) if diff >= (1 << 63) else diff
    return ((signed << 1) ^ (signed >> 63)) & _U64_MASK


def _unzigzag(key: int, z: int) -> int:
    signed = (z >> 1) ^ -(z & 1)
    return (key + signed) & _U64_MASK


_Z_ONE = np.uint64(1)
_Z_63 = np.uint64(63)
_Z_MASK = np.uint64(_U64_MASK)


def _zigzag_arr(keys: np.ndarray, payloads: np.ndarray) -> np.ndarray:
    diff = payloads - keys  # uint64 arithmetic wraps mod 2^64
    sign = np.where((diff >> _Z_63).astype(bool), _Z_MASK, np.uint64(0))
    return (diff << _Z_ONE) ^ sign


def _unzigzag_arr(keys: np.ndarray, z: np.ndarray) -> np.ndarray:
    sign = np.where((z & _Z_ONE).astype(bool), _Z_MASK, np.uint64(0))
    return keys + ((z >> _Z_ONE) ^ sign)


def _varint_len(value: int) -> int:
    return max(1, (value.bit_length() + 6) // 7)


def _varint_append(out: bytearray, value: int) -> None:
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _varint_read(data, pos: int) -> Tuple[int, int]:
    value = 0
    shift = 0
    while True:
        byte = data[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, pos
        shift += 7


class LeafCodec:
    """Shared interface of the leaf-page codecs.

    ``encode``/``decode``/``decode_arrays`` handle ``KIND_ENTRIES``
    pages; ``encode_keys``/``decode_keys`` handle ``KIND_KEYS`` fence
    pages.  ``decode`` is the scalar (tuple-materializing) path,
    ``decode_arrays``/``decode_keys`` the vectorized one — both read the
    exact same bytes, so which one runs never changes charged I/O.
    """

    name: str = ""
    codec_id: int = -1
    is_raw: bool = False

    # -- entries pages ------------------------------------------------------

    def encode(self, items: Sequence[Tuple[int, int]]) -> bytes:
        raise NotImplementedError

    def decode(self, data, offset: int = 0, count: int = -1) -> List[Tuple[int, int]]:
        raise NotImplementedError

    def decode_arrays(self, data, offset: int = 0,
                      count: int = -1) -> Tuple[np.ndarray, np.ndarray]:
        raise NotImplementedError

    def encoded_size(self, items: Sequence[Tuple[int, int]]) -> int:
        """Bytes :meth:`encode` would produce (without encoding)."""
        raise NotImplementedError

    def pack_greedy(self, items: Sequence[Tuple[int, int]], start: int,
                    budget: int) -> int:
        """How many of ``items[start:]`` fit an encoded page of at most
        ``budget`` bytes (always at least 1 so packing makes progress)."""
        raise NotImplementedError

    # -- keys-only (fence/zonemap) pages ------------------------------------

    def encode_keys(self, keys: Sequence[int]) -> bytes:
        raise NotImplementedError

    def decode_keys(self, data, offset: int = 0, count: int = -1) -> np.ndarray:
        raise NotImplementedError

    def pack_keys_greedy(self, keys: Sequence[int], start: int,
                         budget: int) -> int:
        raise NotImplementedError

    # -- shared helpers ------------------------------------------------------

    def page_count(self, data, offset: int = 0) -> int:
        """Entry count of a framed page (not available for raw pages)."""
        codec_id, _kind, count, _poff = _PAGE_HEADER.unpack_from(data, offset)
        if codec_id != self.codec_id:
            raise ValueError(
                f"page stamped codec id {codec_id}, decoder is {self.codec_id}")
        return count

    def _check_header(self, data, offset: int, kind: int) -> Tuple[int, int]:
        codec_id, got_kind, count, payload_off = _PAGE_HEADER.unpack_from(data, offset)
        if codec_id != self.codec_id:
            raise ValueError(
                f"page stamped codec id {codec_id}, decoder is {self.codec_id}")
        if got_kind != kind:
            raise ValueError(f"expected page kind {kind}, got {got_kind}")
        return count, payload_off

    def max_entries(self, budget: int) -> int:
        """Upper bound on entries any page of ``budget`` bytes can hold."""
        raise NotImplementedError


class RawCodec(LeafCodec):
    """The legacy headerless 16-byte-slot layout, unchanged bytes.

    Indexes never route raw pages through the framing API — they branch
    into their pre-existing serialization when ``codec.is_raw`` — so the
    raw layout (and therefore every charged read and write) is
    bit-identical to the code before the codec layer existed.  The
    methods below exist so the property-test suite can exercise one
    uniform interface; ``decode`` needs an explicit ``count`` because
    raw pages carry no header.
    """

    name = "raw"
    codec_id = 0
    is_raw = True

    def encode(self, items: Sequence[Tuple[int, int]]) -> bytes:
        return pack_entries(items)

    def decode(self, data, offset: int = 0, count: int = -1) -> List[Tuple[int, int]]:
        if count < 0:
            raise ValueError("raw pages are headerless: decode needs a count")
        return unpack_entries(data, count, offset)

    def decode_arrays(self, data, offset: int = 0,
                      count: int = -1) -> Tuple[np.ndarray, np.ndarray]:
        if count < 0:
            raise ValueError("raw pages are headerless: decode needs a count")
        flat = np.frombuffer(data, dtype="<u8", count=2 * count, offset=offset)
        return flat[0::2], flat[1::2]

    def encoded_size(self, items: Sequence[Tuple[int, int]]) -> int:
        return ENTRY_SIZE * len(items)

    def pack_greedy(self, items: Sequence[Tuple[int, int]], start: int,
                    budget: int) -> int:
        return max(1, min(len(items) - start, budget // ENTRY_SIZE))

    def encode_keys(self, keys: Sequence[int]) -> bytes:
        from .serial import pack_u64s
        return pack_u64s(list(keys))

    def decode_keys(self, data, offset: int = 0, count: int = -1) -> np.ndarray:
        if count < 0:
            raise ValueError("raw pages are headerless: decode needs a count")
        return np.frombuffer(data, dtype="<u8", count=count, offset=offset)

    def pack_keys_greedy(self, keys: Sequence[int], start: int,
                         budget: int) -> int:
        return max(1, min(len(keys) - start, budget // 8))

    def max_entries(self, budget: int) -> int:
        return budget // ENTRY_SIZE


class DeltaVarintCodec(LeafCodec):
    """Delta + LEB128 varint coding with a split payload column.

    Entries-page wire layout (after the 8-byte page header)::

        u64 first_key
        varint key_delta[1..count-1]        (delta to previous key)
        -- payload column at header.payload_off --
        varint zigzag(payload[i] - key[i])  for i in [0, count)

    The paper's uniform ycsb keys span 2^62, so a delta at 100k-200k
    keys costs ~7 bytes and the ``payload = key + 1`` residual one byte:
    ~8 bytes per entry against raw's 16.  Keys-only pages drop the
    payload column (``payload_off == 0``).
    """

    name = "delta"
    codec_id = 1

    def encode(self, items: Sequence[Tuple[int, int]]) -> bytes:
        count = len(items)
        if count > _MAX_PAGE_COUNT:
            raise ValueError(f"page overflow: {count} entries")
        if not count:
            return _PAGE_HEADER.pack(self.codec_id, KIND_ENTRIES, 0, 0)
        body = bytearray()
        body += _U64.pack(items[0][0])
        previous = items[0][0]
        for key, _payload in items[1:]:
            _varint_append(body, (key - previous) & _U64_MASK)
            previous = key
        payload_off = PAGE_HEADER_SIZE + len(body)
        for key, payload in items:
            _varint_append(body, _zigzag(key, payload))
        return _PAGE_HEADER.pack(self.codec_id, KIND_ENTRIES, count,
                                 payload_off) + bytes(body)

    def decode(self, data, offset: int = 0, count: int = -1) -> List[Tuple[int, int]]:
        count, payload_off = self._check_header(data, offset, KIND_ENTRIES)
        if not count:
            return []
        keys = self._decode_key_column(data, offset, count)
        pos = offset + payload_off
        out: List[Tuple[int, int]] = []
        for key in keys:
            z, pos = _varint_read(data, pos)
            out.append((key, _unzigzag(key, z)))
        return out

    def decode_arrays(self, data, offset: int = 0,
                      count: int = -1) -> Tuple[np.ndarray, np.ndarray]:
        count, payload_off = self._check_header(data, offset, KIND_ENTRIES)
        if not count:
            empty = np.empty(0, dtype=np.uint64)
            return empty, empty
        keys = self._decode_key_column(data, offset, count)
        pos = offset + payload_off
        zs = []
        for _ in range(count):
            z, pos = _varint_read(data, pos)
            zs.append(z)
        keys_arr = np.array(keys, dtype=np.uint64)
        payloads = _unzigzag_arr(keys_arr, np.array(zs, dtype=np.uint64))
        return keys_arr, payloads

    def _decode_key_column(self, data, offset: int, count: int) -> List[int]:
        pos = offset + PAGE_HEADER_SIZE
        key = _U64.unpack_from(data, pos)[0]
        pos += 8
        keys = [key]
        for _ in range(count - 1):
            delta, pos = _varint_read(data, pos)
            key = (key + delta) & _U64_MASK
            keys.append(key)
        return keys

    def encoded_size(self, items: Sequence[Tuple[int, int]]) -> int:
        if not items:
            return PAGE_HEADER_SIZE
        size = PAGE_HEADER_SIZE + 8
        previous = items[0][0]
        for key, _payload in items[1:]:
            size += _varint_len((key - previous) & _U64_MASK)
            previous = key
        for key, payload in items:
            size += _varint_len(_zigzag(key, payload))
        return size

    def pack_greedy(self, items: Sequence[Tuple[int, int]], start: int,
                    budget: int) -> int:
        size = PAGE_HEADER_SIZE + 8 + _varint_len(
            _zigzag(items[start][0], items[start][1]))
        taken = 1
        previous = items[start][0]
        limit = min(len(items) - start, _MAX_PAGE_COUNT)
        while taken < limit:
            key, payload = items[start + taken]
            size += _varint_len((key - previous) & _U64_MASK)
            size += _varint_len(_zigzag(key, payload))
            if size > budget:
                break
            previous = key
            taken += 1
        return taken

    def encode_keys(self, keys: Sequence[int]) -> bytes:
        count = len(keys)
        if count > _MAX_PAGE_COUNT:
            raise ValueError(f"page overflow: {count} keys")
        if not count:
            return _PAGE_HEADER.pack(self.codec_id, KIND_KEYS, 0, 0)
        body = bytearray()
        body += _U64.pack(keys[0])
        previous = keys[0]
        for key in keys[1:]:
            _varint_append(body, (key - previous) & _U64_MASK)
            previous = key
        return _PAGE_HEADER.pack(self.codec_id, KIND_KEYS, count, 0) + bytes(body)

    def decode_keys(self, data, offset: int = 0, count: int = -1) -> np.ndarray:
        count, _poff = self._check_header(data, offset, KIND_KEYS)
        if not count:
            return np.empty(0, dtype=np.uint64)
        return np.array(self._decode_key_column(data, offset, count),
                        dtype=np.uint64)

    def pack_keys_greedy(self, keys: Sequence[int], start: int,
                         budget: int) -> int:
        size = PAGE_HEADER_SIZE + 8
        taken = 1
        previous = keys[start]
        limit = min(len(keys) - start, _MAX_PAGE_COUNT)
        while taken < limit:
            key = keys[start + taken]
            size += _varint_len((key - previous) & _U64_MASK)
            if size > budget:
                break
            previous = key
            taken += 1
        return taken

    def max_entries(self, budget: int) -> int:
        # Two bytes per entry minimum: a 1-byte key delta + 1-byte residual.
        return min(_MAX_PAGE_COUNT, max(1, (budget - PAGE_HEADER_SIZE - 8) // 2))


_FOR_SUBHEADER = struct.Struct("<BB6x")  # key width, payload width
_FOR_KEYS_SUBHEADER = struct.Struct("<B7x")  # key width


class FoRCodec(LeafCodec):
    """Frame-of-reference with numpy bit-packed residual columns.

    Entries-page wire layout (after the 8-byte page header)::

        u64 first_key
        u8  key_width | u8 payload_width | 6 pad
        key column:     (count-1) deltas of key_width bits, LSB-first
        -- payload column at header.payload_off (byte aligned) --
        payload column: count zigzag residuals of payload_width bits

    Both widths are the page-local maximum bit length, so decode is
    fully vectorized: one ``np.unpackbits`` + reshape + weighted sum per
    column (:func:`~.vectorize.unpack_uint_bits`), ``np.cumsum`` to
    rebuild keys.  The decoded key column is a sorted uint64 array that
    drops straight into the ``np.searchsorted`` fast paths of PR 8.
    """

    name = "for"
    codec_id = 2

    @staticmethod
    def _widths(items: Sequence[Tuple[int, int]]) -> Tuple[int, int]:
        key_width = 0
        payload_width = 0
        previous = items[0][0]
        for key, payload in items:
            key_width = max(key_width, ((key - previous) & _U64_MASK).bit_length())
            payload_width = max(payload_width, _zigzag(key, payload).bit_length())
            previous = key
        return key_width, payload_width

    def encode(self, items: Sequence[Tuple[int, int]]) -> bytes:
        count = len(items)
        if count > _MAX_PAGE_COUNT:
            raise ValueError(f"page overflow: {count} entries")
        if not count:
            return _PAGE_HEADER.pack(self.codec_id, KIND_ENTRIES, 0, 0)
        keys = np.array([key for key, _ in items], dtype=np.uint64)
        payloads = np.array([payload for _, payload in items], dtype=np.uint64)
        deltas = np.diff(keys)
        residuals = _zigzag_arr(keys, payloads)
        key_width = int(deltas.max()).bit_length() if len(deltas) else 0
        payload_width = int(residuals.max()).bit_length() if count else 0
        key_col = pack_uint_bits(deltas, key_width)
        payload_col = pack_uint_bits(residuals, payload_width)
        payload_off = PAGE_HEADER_SIZE + 8 + _FOR_SUBHEADER.size + len(key_col)
        return (_PAGE_HEADER.pack(self.codec_id, KIND_ENTRIES, count, payload_off)
                + _U64.pack(items[0][0])
                + _FOR_SUBHEADER.pack(key_width, payload_width)
                + key_col + payload_col)

    def decode_arrays(self, data, offset: int = 0,
                      count: int = -1) -> Tuple[np.ndarray, np.ndarray]:
        count, payload_off = self._check_header(data, offset, KIND_ENTRIES)
        if not count:
            empty = np.empty(0, dtype=np.uint64)
            return empty, empty
        first_key = _U64.unpack_from(data, offset + PAGE_HEADER_SIZE)[0]
        key_width, payload_width = _FOR_SUBHEADER.unpack_from(
            data, offset + PAGE_HEADER_SIZE + 8)
        col_off = offset + PAGE_HEADER_SIZE + 8 + _FOR_SUBHEADER.size
        deltas = unpack_uint_bits(data, count - 1, key_width, col_off)
        keys = np.empty(count, dtype=np.uint64)
        keys[0] = first_key
        if count > 1:
            keys[1:] = np.uint64(first_key) + np.cumsum(deltas, dtype=np.uint64)
        residuals = unpack_uint_bits(data, count, payload_width,
                                     offset + payload_off)
        return keys, _unzigzag_arr(keys, residuals)

    def decode(self, data, offset: int = 0, count: int = -1) -> List[Tuple[int, int]]:
        # The scalar path shares the decoder: FoR columns are opaque bit
        # streams, so there is no per-slot parse to do lazily; charged
        # I/O is unaffected either way (the whole block is already read).
        keys, payloads = self.decode_arrays(data, offset)
        return list(zip(keys.tolist(), payloads.tolist()))

    def encoded_size(self, items: Sequence[Tuple[int, int]]) -> int:
        if not items:
            return PAGE_HEADER_SIZE
        key_width, payload_width = self._widths(items)
        count = len(items)
        return (PAGE_HEADER_SIZE + 8 + _FOR_SUBHEADER.size
                + ((count - 1) * key_width + 7) // 8
                + (count * payload_width + 7) // 8)

    def pack_greedy(self, items: Sequence[Tuple[int, int]], start: int,
                    budget: int) -> int:
        fixed = PAGE_HEADER_SIZE + 8 + _FOR_SUBHEADER.size
        key_width = 0
        payload_width = max(0, _zigzag(items[start][0], items[start][1]).bit_length())
        taken = 1
        previous = items[start][0]
        limit = min(len(items) - start, _MAX_PAGE_COUNT)
        while taken < limit:
            key, payload = items[start + taken]
            kw = max(key_width, ((key - previous) & _U64_MASK).bit_length())
            pw = max(payload_width, _zigzag(key, payload).bit_length())
            size = fixed + (taken * kw + 7) // 8 + ((taken + 1) * pw + 7) // 8
            if size > budget:
                break
            key_width, payload_width = kw, pw
            previous = key
            taken += 1
        return taken

    def encode_keys(self, keys: Sequence[int]) -> bytes:
        count = len(keys)
        if count > _MAX_PAGE_COUNT:
            raise ValueError(f"page overflow: {count} keys")
        if not count:
            return _PAGE_HEADER.pack(self.codec_id, KIND_KEYS, 0, 0)
        arr = np.array(list(keys), dtype=np.uint64)
        deltas = np.diff(arr)
        key_width = int(deltas.max()).bit_length() if len(deltas) else 0
        return (_PAGE_HEADER.pack(self.codec_id, KIND_KEYS, count, 0)
                + _U64.pack(int(arr[0]))
                + _FOR_KEYS_SUBHEADER.pack(key_width)
                + pack_uint_bits(deltas, key_width))

    def decode_keys(self, data, offset: int = 0, count: int = -1) -> np.ndarray:
        count, _poff = self._check_header(data, offset, KIND_KEYS)
        if not count:
            return np.empty(0, dtype=np.uint64)
        first_key = _U64.unpack_from(data, offset + PAGE_HEADER_SIZE)[0]
        key_width = _FOR_KEYS_SUBHEADER.unpack_from(
            data, offset + PAGE_HEADER_SIZE + 8)[0]
        col_off = offset + PAGE_HEADER_SIZE + 8 + _FOR_KEYS_SUBHEADER.size
        deltas = unpack_uint_bits(data, count - 1, key_width, col_off)
        keys = np.empty(count, dtype=np.uint64)
        keys[0] = first_key
        if count > 1:
            keys[1:] = np.uint64(first_key) + np.cumsum(deltas, dtype=np.uint64)
        return keys

    def pack_keys_greedy(self, keys: Sequence[int], start: int,
                         budget: int) -> int:
        fixed = PAGE_HEADER_SIZE + 8 + _FOR_KEYS_SUBHEADER.size
        key_width = 0
        taken = 1
        previous = keys[start]
        limit = min(len(keys) - start, _MAX_PAGE_COUNT)
        while taken < limit:
            key = keys[start + taken]
            kw = max(key_width, ((key - previous) & _U64_MASK).bit_length())
            if fixed + (taken * kw + 7) // 8 > budget:
                break
            key_width = kw
            previous = key
            taken += 1
        return taken

    def max_entries(self, budget: int) -> int:
        # Width-0 columns make the true maximum the u16 count ceiling.
        return _MAX_PAGE_COUNT


_CODECS = {codec.name: codec for codec in (RawCodec(), DeltaVarintCodec(), FoRCodec())}
_BY_ID = {codec.codec_id: codec for codec in _CODECS.values()}

#: Registered codec names, in codec-id order.
CODEC_NAMES = tuple(sorted(_CODECS, key=lambda name: _CODECS[name].codec_id))


def get_codec(codec) -> LeafCodec:
    """Resolve a codec name (or pass a :class:`LeafCodec` through)."""
    if isinstance(codec, LeafCodec):
        return codec
    try:
        return _CODECS[codec]
    except KeyError:
        raise ValueError(
            f"unknown codec {codec!r}; choose from {CODEC_NAMES}") from None


def codec_id_of(data, offset: int = 0) -> int:
    """The codec id stamped in a framed page header."""
    return data[offset]
