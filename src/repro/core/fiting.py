"""FITing-tree on disk (Delta Insert Strategy).

Port of Galakatos et al.'s FITing-tree following Section 4.2 of the
paper, which makes three changes to the original in-memory design:

1. the greedy segmentation is replaced with PGM's optimal streaming
   algorithm (:func:`repro.models.optimal_segments`);
2. an extra one-block *head buffer* holds keys smaller than the current
   minimum key (the original cannot insert below the first segment);
3. each segment carries sibling links and its item count in a small
   header, so scans can walk segments like linked B+-tree leaves.

Structure on disk:

* ``<prefix>.idx.inner`` / ``<prefix>.idx.leaf`` — a B+-tree over
  segment descriptors.  The descriptor stores the segment's linear model,
  so the model lives *in the parent* (the paper's S1 shortcoming does not
  apply to the FITing-tree).
* ``<prefix>.data`` — block 0 is the head buffer; segments follow as
  contiguous extents: a 64-byte header, the sorted data region, then a
  sorted delta buffer of ``buffer_capacity`` entries.

Inserts go to the segment's delta buffer; a full buffer triggers the
*resegment* SMO: data + buffer are merged, re-segmented with the error
bound, and the descriptor tree is patched.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..models import (SegmentArray, optimal_segments, shrinking_cone_segments,
                      truncate_positions)
from ..storage import Pager
from .btree import BPlusTree
from .codecs import get_codec
from .interface import DiskIndex, KeyPayload, TOMBSTONE
from .serial import (ENTRY_SIZE, NULL_BLOCK, keys_view, pack_entries,
                     payload_at, unpack_entries)
from .vectorize import enabled as _vectorized

__all__ = ["FitingTreeIndex"]

_SEG_HEADER = struct.Struct("<IIIIII QQ dd")
# item_count, buffer_count, left_sib, right_sib, data_capacity, buffer_capacity,
# first_key, reserved, slope, intercept
SEG_HEADER_SIZE = 64

_DESCRIPTOR = struct.Struct("<IIII dd")
# seg_block, extent_blocks, data_capacity, buffer_capacity, slope, intercept
DESCRIPTOR_SIZE = _DESCRIPTOR.size  # 32

_HEAD_HEADER = struct.Struct("<I12x")  # count; head buffer occupies block 0


class _SegmentHeader:
    __slots__ = ("item_count", "buffer_count", "left_sib", "right_sib",
                 "data_capacity", "buffer_capacity", "first_key", "slope", "intercept")

    def __init__(self, item_count: int, buffer_count: int, left_sib: int, right_sib: int,
                 data_capacity: int, buffer_capacity: int, first_key: int,
                 slope: float, intercept: float) -> None:
        self.item_count = item_count
        self.buffer_count = buffer_count
        self.left_sib = left_sib
        self.right_sib = right_sib
        self.data_capacity = data_capacity
        self.buffer_capacity = buffer_capacity
        self.first_key = first_key
        self.slope = slope
        self.intercept = intercept

    def pack(self) -> bytes:
        out = bytearray(SEG_HEADER_SIZE)
        _SEG_HEADER.pack_into(out, 0, self.item_count, self.buffer_count,
                              self.left_sib, self.right_sib,
                              self.data_capacity, self.buffer_capacity,
                              self.first_key, 0, self.slope, self.intercept)
        return bytes(out)

    @classmethod
    def unpack(cls, data: bytes) -> "_SegmentHeader":
        (item_count, buffer_count, left_sib, right_sib, data_capacity,
         buffer_capacity, first_key, _reserved, slope, intercept) = _SEG_HEADER.unpack_from(data, 0)
        return cls(item_count, buffer_count, left_sib, right_sib,
                   data_capacity, buffer_capacity, first_key, slope, intercept)


class FitingTreeIndex(DiskIndex):
    """Disk-resident FITing-tree with the Delta Insert Strategy.

    Args:
        pager: storage access path.
        error_bound: PLA error bound epsilon (paper default 64).
        buffer_capacity: delta-buffer entries per segment (paper default 256).
    """

    name = "fiting"

    def __init__(self, pager: Pager, error_bound: int = 64, buffer_capacity: int = 256,
                 segmentation: str = "streaming", file_prefix: str = "fiting",
                 codec: str = "raw") -> None:
        super().__init__(pager)
        # The FITing-tree addresses segment data through per-segment
        # linear models whose predictions are fixed-stride slot offsets,
        # so compressed leaf pages (Section 16) do not apply: the codec
        # name is validated, then the raw layout is kept.
        get_codec(codec)
        if error_bound < 1:
            raise ValueError(f"error bound must be >= 1, got {error_bound}")
        if buffer_capacity < 1:
            raise ValueError(f"buffer capacity must be >= 1, got {buffer_capacity}")
        if segmentation not in ("streaming", "greedy"):
            raise ValueError(
                f"segmentation must be 'streaming' or 'greedy', got {segmentation!r}")
        self._file_prefix = file_prefix
        self.error_bound = error_bound
        self.buffer_capacity = buffer_capacity
        # Section 4.2 of the paper replaces the original greedy algorithm
        # with PGM's optimal streaming one; "greedy" restores the original
        # shrinking-cone for ablations.
        self.segmentation = segmentation
        self._segment_fn = (optimal_segments if segmentation == "streaming"
                            else shrinking_cone_segments)
        device = pager.device
        self._idx_inner = device.get_or_create_file(f"{file_prefix}.idx.inner")
        self._idx_leaf = device.get_or_create_file(f"{file_prefix}.idx.leaf")
        self._data = device.get_or_create_file(f"{file_prefix}.data")
        self.directory = BPlusTree(pager, self._idx_inner, self._idx_leaf,
                                   data_size=DESCRIPTOR_SIZE)
        # Meta-block state, allowed in main memory per the paper.
        self.global_min: Optional[int] = None
        self.first_segment_block: int = NULL_BLOCK
        self.num_segments = 0
        self.num_resegments = 0
        self._head_capacity = (pager.block_size - 16) // ENTRY_SIZE

    # -- low-level segment access ---------------------------------------------

    def _extent_blocks(self, data_capacity: int, buffer_capacity: int) -> int:
        nbytes = SEG_HEADER_SIZE + (data_capacity + buffer_capacity) * ENTRY_SIZE
        return (nbytes + self.pager.block_size - 1) // self.pager.block_size

    def _read_header(self, seg_block: int) -> _SegmentHeader:
        raw = self.pager.read_bytes(self._data, seg_block * self.pager.block_size,
                                    SEG_HEADER_SIZE)
        return _SegmentHeader.unpack(raw)

    def _write_header(self, seg_block: int, header: _SegmentHeader) -> None:
        self.pager.write_bytes(self._data, seg_block * self.pager.block_size, header.pack())

    def _data_offset(self, seg_block: int, slot: int) -> int:
        return seg_block * self.pager.block_size + SEG_HEADER_SIZE + slot * ENTRY_SIZE

    def _buffer_offset(self, seg_block: int, data_capacity: int, slot: int) -> int:
        return (seg_block * self.pager.block_size + SEG_HEADER_SIZE
                + (data_capacity + slot) * ENTRY_SIZE)

    def _read_data_range(self, seg_block: int, lo: int, hi: int) -> List[KeyPayload]:
        """Entries ``lo..hi`` inclusive of the segment's data region."""
        if hi < lo:
            return []
        raw = self.pager.read_bytes(self._data, self._data_offset(seg_block, lo),
                                    (hi - lo + 1) * ENTRY_SIZE)
        return unpack_entries(raw, hi - lo + 1)

    def _read_buffer(self, seg_block: int, header: _SegmentHeader) -> List[KeyPayload]:
        if header.buffer_count == 0:
            return []
        raw = self.pager.read_bytes(
            self._data,
            self._buffer_offset(seg_block, header.data_capacity, 0),
            header.buffer_count * ENTRY_SIZE,
        )
        return unpack_entries(raw, header.buffer_count)

    # -- descriptor (de)serialization --------------------------------------------

    @staticmethod
    def _pack_descriptor(seg_block: int, extent_blocks: int, data_capacity: int,
                         buffer_capacity: int, slope: float, intercept: float) -> bytes:
        return _DESCRIPTOR.pack(seg_block, extent_blocks, data_capacity,
                                buffer_capacity, slope, intercept)

    @staticmethod
    def _unpack_descriptor(data: bytes) -> Tuple[int, int, int, int, float, float]:
        return _DESCRIPTOR.unpack(data)

    # -- bulk load -------------------------------------------------------------------

    def bulk_load(self, items: Sequence[KeyPayload]) -> None:
        if self._data.num_blocks:
            raise RuntimeError("index already bulk-loaded")
        with self.pager.phase("bulkload"):
            self._bulk_load(items)

    def _bulk_load(self, items: Sequence[KeyPayload]) -> None:
        # Block 0 of the data file is the head buffer.
        head_block = self._data.allocate(1)
        self.pager.write_block(self._data, head_block,
                               _HEAD_HEADER.pack(0).ljust(self.pager.block_size, b"\x00"))
        if not items:
            self.directory.bulk_load([])
            return
        keys = [key for key, _ in items]
        segments = self._segment_fn(keys, self.error_bound)
        descriptors: List[Tuple[int, bytes]] = []
        seg_blocks: List[int] = []
        for seg in segments:
            seg_items = items[seg.first_pos : seg.first_pos + seg.length]
            block = self._write_segment(seg_items,
                                        seg.model.slope,
                                        seg.model.intercept - seg.first_pos)
            seg_blocks.append(block)
            extent = self._extent_blocks(seg.length, self.buffer_capacity)
            descriptors.append((
                seg.first_key,
                self._pack_descriptor(block, extent, seg.length, self.buffer_capacity,
                                      seg.model.slope,
                                      seg.model.intercept - seg.first_pos),
            ))
        self._chain_segments(seg_blocks)
        self.directory.bulk_load(descriptors)
        self.global_min = keys[0]
        self.first_segment_block = seg_blocks[0]
        self.num_segments = len(segments)

    def _write_segment(self, seg_items: Sequence[KeyPayload], slope: float,
                       rel_intercept: float) -> int:
        """Allocate and write one segment extent; returns its start block."""
        extent = self._extent_blocks(len(seg_items), self.buffer_capacity)
        block = self._data.allocate(extent)
        header = _SegmentHeader(
            item_count=len(seg_items), buffer_count=0,
            left_sib=NULL_BLOCK, right_sib=NULL_BLOCK,
            data_capacity=len(seg_items), buffer_capacity=self.buffer_capacity,
            first_key=seg_items[0][0], slope=slope, intercept=rel_intercept,
        )
        payload = header.pack() + pack_entries(seg_items)
        self.pager.write_bytes(self._data, block * self.pager.block_size, payload)
        return block

    def _chain_segments(self, seg_blocks: List[int]) -> None:
        """Set left/right sibling links along consecutive segments."""
        for i, block in enumerate(seg_blocks):
            header = self._read_header(block)
            header.left_sib = seg_blocks[i - 1] if i > 0 else header.left_sib
            header.right_sib = seg_blocks[i + 1] if i + 1 < len(seg_blocks) else header.right_sib
            self._write_header(block, header)

    # -- lookup ---------------------------------------------------------------------

    def _predict_range(self, first_key: int, slope: float, intercept: float, key: int,
                       item_count: int) -> Tuple[int, int]:
        """The [pred - eps, pred + eps] window inside a segment.

        The model is anchored at the segment's first key; the integer
        subtraction keeps float evaluation exact within the segment.
        """
        pred = int(slope * float(int(key) - int(first_key)) + intercept)
        # One extra slot of slack on each side: float associativity can
        # truncate a boundary prediction down by one, and the PLA bound
        # only holds in exact arithmetic.
        lo = max(0, pred - self.error_bound - 1)
        hi = min(item_count - 1, pred + self.error_bound + 1)
        return lo, hi

    def _locate_descriptor(self, key: int) -> Optional[Tuple[int, Tuple]]:
        """Floor-search the directory; returns (first_key, descriptor tuple)."""
        record = self.directory.floor_record(key)
        if record is None:
            return None
        first_key, data = record
        return first_key, self._unpack_descriptor(data)

    def lookup(self, key: int) -> Optional[int]:
        with self.pager.phase("search"):
            return self._lookup(key)

    def _lookup(self, key: int) -> Optional[int]:
        if self.global_min is None or key < self.global_min:
            return self._head_buffer_lookup(key)
        located = self._locate_descriptor(key)
        if located is None:
            return self._head_buffer_lookup(key)
        first_key, descriptor = located
        return self._lookup_in_segment(key, first_key, descriptor)

    def _lookup_in_segment(self, key: int, first_key: int,
                           descriptor: Tuple) -> Optional[int]:
        seg_block, _extent, data_cap, _buf_cap, slope, intercept = descriptor
        # The descriptor carries everything the data-region probe needs
        # (the data region is immutable between SMOs), so the segment
        # header is only fetched on a miss, when the delta buffer must be
        # consulted — this is why the paper's FITing-tree averages ~1.2
        # leaf blocks per lookup.
        lo, hi = self._predict_range(first_key, slope, intercept, key, data_cap)
        entries = self._read_data_range(seg_block, lo, hi)
        found = _binary_find(entries, key)
        if found is not None and found != TOMBSTONE:
            return found
        # Miss or tombstoned: the delta buffer may hold the key (a
        # re-insert after a delete shadows the tombstone).
        header = self._read_header(seg_block)
        buffered = _binary_find(self._read_buffer(seg_block, header), key)
        if buffered is not None:
            return None if buffered == TOMBSTONE else buffered
        return None

    def lookup_many(self, keys) -> List[Optional[int]]:
        """Batched lookups: one coalesced descent through the descriptor
        tree for the whole sorted batch (:meth:`BPlusTree.floor_records`),
        then per-segment probes inside a pin scope so keys sharing a
        segment share its fetched range/header/buffer blocks."""
        keys = list(keys)
        if len(keys) <= 1:
            return [self.lookup(key) for key in keys]
        unique = sorted(set(keys))
        results = {}
        with self.pager.phase("search"), self.pager.batch():
            routable = ([key for key in unique if key >= self.global_min]
                        if self.global_min is not None else [])
            located = self.directory.floor_records(routable) if routable else {}
            if _vectorized():
                self._lookup_many_vec(unique, located, results)
            else:
                for key in unique:
                    record = located.get(key)
                    if record is None:
                        results[key] = self._head_buffer_lookup(key)
                        continue
                    first_key, data = record
                    results[key] = self._lookup_in_segment(
                        key, first_key, self._unpack_descriptor(data))
        return [results[key] for key in keys]

    def _lookup_many_vec(self, unique: List[int], located: dict,
                         results: dict) -> None:
        """Vectorized batch body: all routed keys' prediction windows in
        one :class:`SegmentArray` pass, then zero-copy window probes.
        The window arithmetic reproduces :meth:`_predict_range` exactly
        and the probes issue the same pager reads in the same (ascending
        unique-key) order as the scalar loop, so charged I/O is
        bit-identical; only the per-key Python model evaluation and the
        tuple materialization of fetched windows disappear."""
        seg_of: Dict[int, Tuple[int, int]] = {}  # key -> (seg_block, row)
        seg_blocks: List[int] = []
        first_keys: List[int] = []
        slopes: List[float] = []
        intercepts: List[float] = []
        caps: List[int] = []
        row_of: Dict[int, int] = {}
        routed_keys: List[int] = []
        key_rows: List[int] = []
        for key in unique:
            record = located.get(key)
            if record is None:
                continue
            first_key, data = record
            seg_block, _extent, data_cap, _buf_cap, slope, intercept = (
                self._unpack_descriptor(data))
            row = row_of.get(seg_block)
            if row is None:
                row = row_of[seg_block] = len(seg_blocks)
                seg_blocks.append(seg_block)
                first_keys.append(first_key)
                slopes.append(slope)
                intercepts.append(intercept)
                caps.append(data_cap)
            seg_of[key] = (seg_block, row)
            routed_keys.append(key)
            key_rows.append(row)
        windows: Dict[int, Tuple[int, int]] = {}
        if routed_keys:
            segments = SegmentArray(np.array(first_keys, dtype=np.uint64),
                                    np.array(slopes, dtype=np.float64),
                                    np.array(intercepts, dtype=np.float64))
            karr = np.array(routed_keys, dtype=np.uint64)
            idx = np.array(key_rows, dtype=np.int64)
            pred = truncate_positions(segments.predict(karr, idx))
            slack = self.error_bound + 1
            lo = np.maximum(pred - slack, 0)
            hi = np.minimum(pred + slack,
                            np.array(caps, dtype=np.int64)[idx] - 1)
            for key, wlo, whi in zip(routed_keys, lo.tolist(), hi.tolist()):
                windows[key] = (wlo, whi)
        for key in unique:
            info = seg_of.get(key)
            if info is None:
                results[key] = self._head_buffer_lookup(key)
                continue
            seg_block, _row = info
            wlo, whi = windows[key]
            results[key] = self._probe_segment_vec(key, seg_block, wlo, whi)

    def _probe_segment_vec(self, key: int, seg_block: int, lo: int,
                           hi: int) -> Optional[int]:
        """One key's segment probe over a zero-copy key view (same fetch
        and miss path as :meth:`_lookup_in_segment`)."""
        if hi >= lo:
            count = hi - lo + 1
            raw = self.pager.read_bytes(self._data,
                                        self._data_offset(seg_block, lo),
                                        count * ENTRY_SIZE)
            kv = keys_view(raw, count)
            slot = int(np.searchsorted(kv, np.uint64(key), side="left"))
            if slot < count and int(kv[slot]) == key:
                payload = payload_at(raw, slot)
                if payload != TOMBSTONE:
                    return payload
        header = self._read_header(seg_block)
        buffered = _binary_find(self._read_buffer(seg_block, header), key)
        if buffered is not None:
            return None if buffered == TOMBSTONE else buffered
        return None

    def _head_buffer_lookup(self, key: int) -> Optional[int]:
        raw = self.pager.read_block(self._data, 0)
        count = _HEAD_HEADER.unpack_from(raw, 0)[0]
        found = _binary_find(unpack_entries(raw, count, offset=16), key)
        return None if found == TOMBSTONE else found

    # -- insert ------------------------------------------------------------------------

    def insert(self, key: int, payload: int) -> None:
        if self.global_min is None or key < self.global_min:
            self._head_buffer_insert(key, payload)
            return
        with self.pager.phase("search"):
            located = self._locate_descriptor(key)
            if located is None:
                raise RuntimeError("index not bulk-loaded")
            first_key, (seg_block, extent, data_cap, buf_cap, slope, intercept) = located
            header = self._read_header(seg_block)
            buffered = self._read_buffer(seg_block, header)
        with self.pager.phase("insert"):
            slot = _insert_position(buffered, key)
            if slot < len(buffered) and buffered[slot][0] == key:
                if buffered[slot][1] != TOMBSTONE:
                    raise KeyError(f"duplicate key {key}")
                buffered[slot] = (key, payload)  # re-insert over a tombstone
            else:
                buffered.insert(slot, (key, payload))
            if len(buffered) <= header.buffer_capacity:
                # Rewrite the buffer tail from the insertion point and bump the
                # header count (the extra block write the paper attributes to
                # the FITing-tree's insert step in Figure 6).
                self.pager.write_bytes(
                    self._data,
                    self._buffer_offset(seg_block, header.data_capacity, slot),
                    pack_entries(buffered[slot:]),
                )
                header.buffer_count = len(buffered)
                self._write_header(seg_block, header)
                return
        with self.pager.phase("smo"):
            self._resegment(first_key, seg_block, header, buffered)

    def _head_buffer_insert(self, key: int, payload: int) -> None:
        with self.pager.phase("insert"):
            raw = self.pager.read_block(self._data, 0)
            count = _HEAD_HEADER.unpack_from(raw, 0)[0]
            entries = unpack_entries(raw, count, offset=16)
            slot = _insert_position(entries, key)
            if slot < len(entries) and entries[slot][0] == key:
                if entries[slot][1] != TOMBSTONE:
                    raise KeyError(f"duplicate key {key}")
                entries[slot] = (key, payload)  # re-insert over a tombstone
            else:
                entries.insert(slot, (key, payload))
            if len(entries) <= self._head_capacity:
                block = bytearray(self.pager.block_size)
                block[0:16] = _HEAD_HEADER.pack(len(entries)).ljust(16, b"\x00")
                block[16 : 16 + len(entries) * ENTRY_SIZE] = pack_entries(entries)
                self.pager.write_block(self._data, 0, bytes(block))
                return
        with self.pager.phase("smo"):
            self._flush_head_buffer(entries)

    def _flush_head_buffer(self, entries: List[KeyPayload]) -> None:
        """Turn a full head buffer into leading segments of the index."""
        keys = [key for key, _ in entries]
        segments = self._segment_fn(keys, self.error_bound)
        seg_blocks: List[int] = []
        for seg in segments:
            seg_items = entries[seg.first_pos : seg.first_pos + seg.length]
            block = self._write_segment(seg_items, seg.model.slope,
                                        seg.model.intercept - seg.first_pos)
            seg_blocks.append(block)
            extent = self._extent_blocks(seg.length, self.buffer_capacity)
            self.directory.insert(seg.first_key, self._pack_descriptor(
                block, extent, seg.length, self.buffer_capacity,
                seg.model.slope, seg.model.intercept - seg.first_pos))
        self._chain_segments(seg_blocks)
        # Link the new leading run in front of the old first segment.
        if self.first_segment_block != NULL_BLOCK:
            old_first = self._read_header(self.first_segment_block)
            old_first.left_sib = seg_blocks[-1]
            self._write_header(self.first_segment_block, old_first)
            last_new = self._read_header(seg_blocks[-1])
            last_new.right_sib = self.first_segment_block
            self._write_header(seg_blocks[-1], last_new)
        self.first_segment_block = seg_blocks[0]
        self.global_min = keys[0] if self.global_min is None else min(self.global_min, keys[0])
        self.num_segments += len(segments)
        # Reset the head buffer.
        block = bytearray(self.pager.block_size)
        block[0:16] = _HEAD_HEADER.pack(0).ljust(16, b"\x00")
        self.pager.write_block(self._data, 0, bytes(block))

    def _resegment(self, first_key: int, seg_block: int, header: _SegmentHeader,
                   buffered: List[KeyPayload]) -> None:
        """The FITing-tree SMO: merge data + buffer, re-segment, patch the tree."""
        self.num_resegments += 1
        data_entries = self._read_data_range(seg_block, 0, header.item_count - 1)
        merged = [entry for entry in _merge_sorted(data_entries, buffered)
                  if entry[1] != TOMBSTONE]
        if not merged:
            # Everything in the segment was deleted: keep the segment alive
            # with a single tombstone so the directory stays consistent.
            merged = [(header.first_key, TOMBSTONE)]
        keys = [key for key, _ in merged]
        segments = self._segment_fn(keys, self.error_bound)
        seg_blocks: List[int] = []
        for seg in segments:
            seg_items = merged[seg.first_pos : seg.first_pos + seg.length]
            block = self._write_segment(seg_items, seg.model.slope,
                                        seg.model.intercept - seg.first_pos)
            seg_blocks.append(block)
        self._chain_segments(seg_blocks)
        # Splice into the sibling chain.
        if header.left_sib != NULL_BLOCK:
            left = self._read_header(header.left_sib)
            left.right_sib = seg_blocks[0]
            self._write_header(header.left_sib, left)
            new_first = self._read_header(seg_blocks[0])
            new_first.left_sib = header.left_sib
            self._write_header(seg_blocks[0], new_first)
        if header.right_sib != NULL_BLOCK:
            right = self._read_header(header.right_sib)
            right.left_sib = seg_blocks[-1]
            self._write_header(header.right_sib, right)
            new_last = self._read_header(seg_blocks[-1])
            new_last.right_sib = header.right_sib
            self._write_header(seg_blocks[-1], new_last)
        if seg_block == self.first_segment_block:
            self.first_segment_block = seg_blocks[0]
        # Patch the directory: replace the old descriptor, add the rest.
        old_extent = self._extent_blocks(header.data_capacity, header.buffer_capacity)
        self._data.free(seg_block, old_extent)
        for i, seg in enumerate(segments):
            extent = self._extent_blocks(seg.length, self.buffer_capacity)
            descriptor = self._pack_descriptor(seg_blocks[i], extent, seg.length,
                                               self.buffer_capacity, seg.model.slope,
                                               seg.model.intercept - seg.first_pos)
            if i == 0:
                if not self.directory.update(seg.first_key, descriptor):
                    self.directory.insert(seg.first_key, descriptor)
            else:
                self.directory.insert(seg.first_key, descriptor)
        self.num_segments += len(segments) - 1

    # -- update / delete ---------------------------------------------------------------

    def update(self, key: int, payload: int) -> bool:
        with self.pager.phase("insert"):
            return self._write_payload(key, payload)

    def delete(self, key: int) -> bool:
        """Logical delete: a tombstone payload; space is reclaimed when the
        segment's next resegment SMO filters tombstones out."""
        with self.pager.phase("insert"):
            return self._write_payload(key, TOMBSTONE)

    def _write_payload(self, key: int, payload: int) -> bool:
        """Overwrite an existing key's payload in place (data region,
        delta buffer, or head buffer); False if the key is absent."""
        if self.global_min is None or key < self.global_min:
            raw = self.pager.read_block(self._data, 0)
            count = _HEAD_HEADER.unpack_from(raw, 0)[0]
            entries = unpack_entries(raw, count, offset=16)
            slot = _insert_position(entries, key)
            if slot >= len(entries) or entries[slot][0] != key \
                    or entries[slot][1] == TOMBSTONE:
                return False
            self.pager.write_bytes(self._data, 16 + slot * ENTRY_SIZE,
                                   pack_entries([(key, payload)]))
            return True
        located = self._locate_descriptor(key)
        if located is None:
            return False
        first_key, (seg_block, _extent, data_cap, _buf_cap, slope, intercept) = located
        # Mirror the lookup's precedence exactly: a live data-region entry
        # is the copy readers see, so it is the copy updates and deletes
        # must hit; the delta buffer is consulted only when the data
        # region misses or holds a tombstone.
        lo, hi = self._predict_range(first_key, slope, intercept, key, data_cap)
        entries = self._read_data_range(seg_block, lo, hi)
        pos = _insert_position(entries, key)
        if pos < len(entries) and entries[pos][0] == key \
                and entries[pos][1] != TOMBSTONE:
            self.pager.write_bytes(self._data,
                                   self._data_offset(seg_block, lo + pos),
                                   pack_entries([(key, payload)]))
            # Write through to a buffered duplicate (a shadowing insert)
            # so every copy a reader could reach carries the same payload
            # — otherwise tombstoning the data copy would expose a stale
            # buffered one.
            header = self._read_header(seg_block)
            buffered = self._read_buffer(seg_block, header)
            slot = _insert_position(buffered, key)
            if slot < len(buffered) and buffered[slot][0] == key:
                self.pager.write_bytes(
                    self._data,
                    self._buffer_offset(seg_block, header.data_capacity, slot),
                    pack_entries([(key, payload)]))
            return True
        header = self._read_header(seg_block)
        buffered = self._read_buffer(seg_block, header)
        slot = _insert_position(buffered, key)
        if slot >= len(buffered) or buffered[slot][0] != key:
            return False
        if buffered[slot][1] == TOMBSTONE:
            return False  # deleted (the buffered tombstone shadows)
        self.pager.write_bytes(
            self._data, self._buffer_offset(seg_block, header.data_capacity, slot),
            pack_entries([(key, payload)]))
        return True

    # -- scan ---------------------------------------------------------------------------

    def scan(self, start_key: int, count: int) -> List[KeyPayload]:
        with self.pager.phase("scan"):
            return self._scan(start_key, count)

    def _scan(self, start_key: int, count: int) -> List[KeyPayload]:
        out: List[KeyPayload] = []
        if count <= 0:
            return out
        # Head buffer first: it holds the globally smallest keys.
        if self.global_min is None or start_key < self.global_min:
            raw = self.pager.read_block(self._data, 0)
            head_count = _HEAD_HEADER.unpack_from(raw, 0)[0]
            for key, payload in unpack_entries(raw, head_count, offset=16):
                if key >= start_key and payload != TOMBSTONE:
                    out.append((key, payload))
                    if len(out) >= count:
                        return out
        located = self._locate_descriptor(start_key)
        if located is None:
            if self.first_segment_block == NULL_BLOCK:
                return out
            seg_block = self.first_segment_block
        else:
            seg_block = located[1][0]
        while seg_block != NULL_BLOCK and len(out) < count:
            header = self._read_header(seg_block)
            lo = 0
            if located is not None and seg_block == located[1][0]:
                # Entries before pred - epsilon cannot be >= start_key, so the
                # first fetch can skip them; later segments read from slot 0.
                lo, _ = self._predict_range(located[0], located[1][4], located[1][5],
                                            start_key, header.item_count)
            buffered = [e for e in self._read_buffer(seg_block, header)
                        if e[0] >= start_key]
            self._scan_segment(seg_block, header, lo, start_key, buffered, count, out)
            seg_block = header.right_sib
            located = None  # subsequent segments are read from the start
        return out

    def _scan_segment(self, seg_block: int, header: _SegmentHeader, lo: int,
                      start_key: int, buffered: List[KeyPayload], count: int,
                      out: List[KeyPayload]) -> None:
        """Stream a segment's data region in small chunks, merging the
        (already filtered) delta buffer in key order.

        Reading only as many entries as the scan still needs keeps the
        fetched block count proportional to the scan length, matching the
        paper's FITing-tree scan costs (rather than the whole segment).
        """
        buf_pos = 0
        pos = lo
        while pos < header.item_count and len(out) < count:
            # A chunk sized to the remaining need (+ slack for entries
            # below start_key inside the first fetched range).
            chunk_len = min(count - len(out) + self.error_bound,
                            header.item_count - pos)
            chunk = self._read_data_range(seg_block, pos, pos + chunk_len - 1)
            for key, payload in chunk:
                if key < start_key:
                    continue
                while (buf_pos < len(buffered) and buffered[buf_pos][0] < key):
                    if buffered[buf_pos][1] != TOMBSTONE:
                        out.append(buffered[buf_pos])
                        if len(out) >= count:
                            return
                    buf_pos += 1
                if buf_pos < len(buffered) and buffered[buf_pos][0] == key:
                    # A buffered re-insert shadows the data region entry.
                    if buffered[buf_pos][1] != TOMBSTONE:
                        out.append(buffered[buf_pos])
                    buf_pos += 1
                elif payload != TOMBSTONE:
                    out.append((key, payload))
                if len(out) >= count:
                    return
            pos += chunk_len
        # Data exhausted: drain the remaining buffered entries.
        while buf_pos < len(buffered) and len(out) < count:
            if buffered[buf_pos][1] != TOMBSTONE:
                out.append(buffered[buf_pos])
            buf_pos += 1

    # -- misc --------------------------------------------------------------------------

    def set_inner_memory_resident(self, resident: bool) -> None:
        self._idx_inner.memory_resident = resident
        self._idx_leaf.memory_resident = resident

    def verify(self) -> int:
        """Check segment chain order, data/buffer sortedness and the
        directory's agreement with the segment headers."""
        with self._free_io():
            count = 0
            # Head buffer: sorted, strictly below the global minimum.
            raw = self.pager.read_block(self._data, 0)
            head_count = _HEAD_HEADER.unpack_from(raw, 0)[0]
            head = unpack_entries(raw, head_count, offset=16)
            head_keys = [k for k, _ in head]
            assert head_keys == sorted(set(head_keys)), "head buffer unsorted"
            if self.global_min is not None and head_keys:
                assert head_keys[-1] < self.global_min, "head buffer overlaps segments"
            count += sum(1 for _, p in head if p != TOMBSTONE)
            # Segment chain vs directory.
            directory = list(self.directory.iterate_from(0))
            assert len(directory) == self.num_segments, "segment count mismatch"
            seg_block = self.first_segment_block
            previous_key = -1
            for first_key, data in directory:
                descriptor = self._unpack_descriptor(data)
                assert seg_block == descriptor[0], "sibling chain diverges from directory"
                header = self._read_header(seg_block)
                assert header.first_key == first_key, "header/descriptor key mismatch"
                assert header.item_count == descriptor[2], "stale descriptor capacity"
                entries = self._read_data_range(seg_block, 0, header.item_count - 1)
                keys = [k for k, _ in entries]
                assert keys == sorted(set(keys)), "segment data unsorted"
                assert keys[0] == first_key, "segment first key mismatch"
                assert keys[0] > previous_key, "segments out of order"
                previous_key = keys[-1]
                buffered = self._read_buffer(seg_block, header)
                buffer_keys = [k for k, _ in buffered]
                assert buffer_keys == sorted(set(buffer_keys)), "delta buffer unsorted"
                count += sum(1 for k, p in entries
                             if p != TOMBSTONE and k not in
                             {bk for bk, _ in buffered})
                count += sum(1 for k, p in buffered if p != TOMBSTONE)
                seg_block = header.right_sib
            assert seg_block == NULL_BLOCK, "sibling chain longer than directory"
            return count

    def init_params(self) -> dict:
        return {"error_bound": self.error_bound,
                "buffer_capacity": self.buffer_capacity,
                "segmentation": self.segmentation,
                "file_prefix": self._file_prefix}

    def to_meta(self) -> dict:
        return {"global_min": self.global_min,
                "first_segment_block": self.first_segment_block,
                "num_segments": self.num_segments,
                "num_resegments": self.num_resegments,
                "directory": {"root_block": self.directory.root_block,
                              "root_is_leaf": self.directory.root_is_leaf,
                              "num_levels": self.directory.num_levels,
                              "num_records": self.directory.num_records}}

    def restore_meta(self, meta: dict) -> None:
        self.global_min = meta["global_min"]
        self.first_segment_block = meta["first_segment_block"]
        self.num_segments = meta["num_segments"]
        self.num_resegments = meta["num_resegments"]
        directory = meta["directory"]
        self.directory.root_block = directory["root_block"]
        self.directory.root_is_leaf = directory["root_is_leaf"]
        self.directory.num_levels = directory["num_levels"]
        self.directory.num_records = directory["num_records"]

    def file_roles(self) -> dict:
        return {self._idx_inner.name: "inner", self._idx_leaf.name: "inner",
                self._data.name: "leaf"}

    def height(self) -> int:
        return self.directory.num_levels + 1


def _binary_find(entries: List[KeyPayload], key: int) -> Optional[int]:
    lo, hi = 0, len(entries)
    while lo < hi:
        mid = (lo + hi) // 2
        if entries[mid][0] < key:
            lo = mid + 1
        else:
            hi = mid
    if lo < len(entries) and entries[lo][0] == key:
        return entries[lo][1]
    return None


def _insert_position(entries: List[KeyPayload], key: int) -> int:
    lo, hi = 0, len(entries)
    while lo < hi:
        mid = (lo + hi) // 2
        if entries[mid][0] < key:
            lo = mid + 1
        else:
            hi = mid
    return lo


def _merge_sorted(a: List[KeyPayload], b: List[KeyPayload]) -> List[KeyPayload]:
    """Merge two key-sorted entry lists; on equal keys a *live* ``a``
    (data region) entry wins — the copy lookups serve — while a
    tombstoned one yields to ``b`` (the delta buffer), so a buffered
    re-insert after a delete still shadows the dead data entry."""
    out: List[KeyPayload] = []
    i = j = 0
    while i < len(a) and j < len(b):
        if a[i][0] < b[j][0]:
            out.append(a[i])
            i += 1
        elif a[i][0] > b[j][0]:
            out.append(b[j])
            j += 1
        else:
            out.append(a[i] if a[i][1] != TOMBSTONE else b[j])
            i += 1
            j += 1
    out.extend(a[i:])
    out.extend(b[j:])
    return out
