"""PGM-index on disk (static components + LSM-style dynamic index).

Static component
    A multi-level PGM built with the optimal streaming PLA.  The sorted
    data lives in ``<name>.data``; every upper level is an array of
    24-byte segment descriptors ``(first_key, slope, intercept)`` in
    ``<name>.levels``.  A descriptor's model predicts positions *in the
    level below* — PGM stores models in the parent, so shortcoming S1
    does not apply.  The root descriptor and the per-level offset table
    are meta-block state kept in memory, as the paper allows.

Dynamic index (Arbitrary Insert, Figure 1(b) of the paper)
    An LSM over static components: inserts go to a small fixed-size
    sorted buffer on disk (the paper observes 585 entries ≈ 3 blocks);
    when full it is merged with the leading run of components whose
    cumulative size exceeds the target level capacity.  Each component
    is a separate pair of files and a merged component's files are
    deleted from disk — which is why PGM has the smallest storage
    footprint in the paper's Figure 10.

    Lookups probe the buffer and then every component from newest to
    oldest until the key is found — the access pattern behind O10 (PGM
    degrades as the read ratio grows).
"""

from __future__ import annotations

import struct
from bisect import bisect_left, bisect_right
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..models import optimal_segments
from ..storage import BlockFile, Pager
from .codecs import get_codec
from .interface import DiskIndex, KeyPayload, TOMBSTONE
from .serial import ENTRY_SIZE, entry_at, pack_entries, payload_at, unpack_entries
from .vectorize import BlockMirror, enabled as _vectorized

__all__ = ["StaticPgm", "PgmIndex"]

_DESCRIPTOR = struct.Struct("<Qdd")  # first_key, slope, intercept
DESCRIPTOR_SIZE = _DESCRIPTOR.size  # 24

_U64 = struct.Struct("<Q")


def _floor_slot_raw(raw, count: int, key: int, stride: int) -> int:
    """``_floor_slot`` over packed records in ``raw`` whose leading field
    is a little-endian u64 key, decoding only the probed keys.

    For the small windows PGM descends through (2*epsilon+3 records) this
    beats building an array view: log2(n) 8-byte decodes instead of a
    numpy call per window.
    """
    unpack = _U64.unpack_from
    lo, hi = 0, count
    while lo < hi:
        mid = (lo + hi) // 2
        if unpack(raw, mid * stride)[0] <= key:
            lo = mid + 1
        else:
            hi = mid
    return lo - 1 if lo else 0


class StaticPgm:
    """One immutable PGM component over a sorted entry array.

    Args:
        pager: storage access path.
        name: file-name prefix; creates ``<name>.data`` and ``<name>.levels``.
        items: key-sorted unique entries.
        epsilon: PLA error bound (paper default 64).
        levels_memory_resident: pin the descriptor levels in RAM
            (Section 6.2 hybrid case).
        codec: leaf-page codec (DESIGN.md Section 16).  Raw keeps the
            byte-identical PR 1-8 layout; a compressed codec packs the
            data into self-framing codec pages (one per block) and
            replaces the PLA descriptor levels with a LeCo-style
            :class:`~repro.models.zonemap.FenceZonemap` over the data
            pages' max keys, stored in the same ``.levels`` file.
    """

    def __init__(self, pager: Pager, name: str, items: Sequence[KeyPayload],
                 epsilon: int = 64, levels_memory_resident: bool = False,
                 codec="raw") -> None:
        if not items:
            raise ValueError("a static PGM component cannot be empty")
        if epsilon < 1:
            raise ValueError(f"epsilon must be >= 1, got {epsilon}")
        self.pager = pager
        self.name = name
        self.epsilon = epsilon
        self.codec = get_codec(codec)
        self.count = len(items)
        self.min_key = items[0][0]
        self.max_key = items[-1][0]
        device = pager.device
        self.data_file: BlockFile = device.get_or_create_file(f"{name}.data")
        self.levels_file: BlockFile = device.get_or_create_file(f"{name}.levels")
        self.levels_file.memory_resident = levels_memory_resident
        # Meta: per-level (byte offset in levels file, descriptor count),
        # ordered bottom-up; level 0 predicts into the data array.
        self.level_table: List[Tuple[int, int]] = []
        self.root: Optional[Tuple[int, float, float]] = None
        # Compressed layout: data-page position table + fence zonemap.
        self.page_starts: List[int] = []
        self.zonemap = None
        self.data_base = 0
        if self.codec.is_raw:
            self._build(items)
        else:
            self._build_compressed(items)

    @classmethod
    def attach(cls, pager: Pager, meta: dict) -> "StaticPgm":
        """Reconstruct a component over an already-loaded device image."""
        from ..models.zonemap import FenceZonemap

        component = cls.__new__(cls)
        component.pager = pager
        component.name = meta["name"]
        component.epsilon = meta["epsilon"]
        component.codec = get_codec(meta.get("codec", "raw"))
        component.count = meta["count"]
        component.min_key = meta["min_key"]
        component.max_key = meta["max_key"]
        component.data_file = pager.device.get_file(f"{meta['name']}.data")
        component.levels_file = pager.device.get_file(f"{meta['name']}.levels")
        component.level_table = [tuple(entry) for entry in meta["level_table"]]
        component.root = tuple(meta["root"]) if meta["root"] is not None else None
        component.page_starts = list(meta.get("page_starts", []))
        component.data_base = meta.get("data_base", 0)
        component.zonemap = None
        if meta.get("zonemap") is not None:
            component.zonemap = FenceZonemap.attach(
                pager, component.levels_file, component.codec, meta["zonemap"])
        return component

    def to_meta(self) -> dict:
        return {"name": self.name, "epsilon": self.epsilon, "count": self.count,
                "codec": self.codec.name,
                "min_key": self.min_key, "max_key": self.max_key,
                "level_table": [list(entry) for entry in self.level_table],
                "root": list(self.root) if self.root is not None else None,
                "page_starts": list(self.page_starts),
                "data_base": self.data_base,
                "zonemap": self.zonemap.to_meta() if self.zonemap is not None
                else None}

    # -- construction --------------------------------------------------------

    def _build_compressed(self, items: Sequence[KeyPayload]) -> None:
        """Greedy-pack the sorted entries into codec pages, one page per
        block, and build the fence zonemap over the page max keys."""
        from ..models.zonemap import FenceZonemap

        bs = self.pager.block_size
        codec = self.codec
        pages: List[bytes] = []
        page_lasts: List[int] = []
        pos = 0
        while pos < self.count:
            take = codec.pack_greedy(items, pos, bs)
            chunk = items[pos : pos + take]
            self.page_starts.append(pos)
            page_lasts.append(chunk[-1][0])
            pages.append(codec.encode(chunk))
            pos += take
        start = self.data_file.allocate(len(pages))
        self.pager.write_blocks(self.data_file, [
            (start + i, page + b"\x00" * (bs - len(page)))
            for i, page in enumerate(pages)])
        self.data_base = start
        self.zonemap = FenceZonemap.build(
            self.pager, self.levels_file, page_lasts, codec)

    def _build(self, items: Sequence[KeyPayload]) -> None:
        blocks = (self.count * ENTRY_SIZE + self.pager.block_size - 1) // self.pager.block_size
        start = self.data_file.allocate(blocks)
        self.pager.write_bytes(self.data_file, start * self.pager.block_size,
                               pack_entries(items))
        keys = [key for key, _ in items]
        offset = 0
        while True:
            segments = optimal_segments(keys, self.epsilon)
            descriptors = [
                (seg.first_key, seg.model.slope, seg.model.intercept)
                for seg in segments
            ]
            if len(descriptors) == 1:
                self.root = descriptors[0]
                return
            raw = b"".join(_DESCRIPTOR.pack(*d) for d in descriptors)
            nblocks = (len(raw) + self.pager.block_size - 1) // self.pager.block_size
            blk = self.levels_file.allocate(nblocks)
            self.pager.write_bytes(self.levels_file, blk * self.pager.block_size, raw)
            self.level_table.append((blk * self.pager.block_size, len(descriptors)))
            keys = [d[0] for d in descriptors]

    @property
    def num_levels(self) -> int:
        """Levels including the data level and the in-memory root."""
        if self.zonemap is not None:
            # Compressed: data pages + fence pages + the in-memory
            # page-boundary array standing in for the root.
            return 3
        return len(self.level_table) + 2

    # -- compressed search ---------------------------------------------------

    def _read_page(self, page: int) -> bytes:
        return self.pager.read_block(self.data_file, self.data_base + page)

    def _lookup_compressed(self, key: int) -> Optional[int]:
        """Zonemap route (1 fence block) + 1 data page, scalar search."""
        page = self.zonemap.route(key)
        raw = self._read_page(page)
        entries = self.codec.decode(raw)
        slot = _floor_slot([k for k, _ in entries], key)
        if entries[slot][0] == key:
            return entries[slot][1]
        return None

    def _lookup_compressed_vec(self, key: int) -> Optional[int]:
        """Same fetches as :meth:`_lookup_compressed`; the decoded page
        columns are frame-cached (:meth:`Pager.cached_decode`) and the
        in-page search is one ``np.searchsorted``."""
        page = self.zonemap.route(key)
        raw = self._read_page(page)
        keys, payloads = self.pager.cached_decode(
            self.data_file, self.data_base + page, raw, self.codec)
        slot = int(np.searchsorted(keys, np.uint64(key), side="left"))
        if slot < len(keys) and int(keys[slot]) == key:
            return int(payloads[slot])
        return None

    # -- search ------------------------------------------------------------------

    def _clamped_window(self, pred: float, count: int) -> Tuple[int, int]:
        # One slot of slack per side: float rounding can push a boundary
        # prediction just outside the exact-arithmetic PLA guarantee.
        # Both ends clamp into [0, count); a model extrapolating far past
        # its segment (a floor-routed key near a component boundary) must
        # still yield a valid, possibly single-slot window.
        center = int(pred)
        lo = max(0, min(center - self.epsilon - 1, count - 1))
        hi = max(lo, min(center + self.epsilon + 1, count - 1))
        return lo, hi

    def _read_descriptors(self, level: int, lo: int, hi: int) -> List[Tuple[int, float, float]]:
        base, _count = self.level_table[level]
        raw = self.pager.read_bytes(self.levels_file, base + lo * DESCRIPTOR_SIZE,
                                    (hi - lo + 1) * DESCRIPTOR_SIZE)
        return [
            _DESCRIPTOR.unpack_from(raw, i * DESCRIPTOR_SIZE)
            for i in range(hi - lo + 1)
        ]

    @staticmethod
    def _predict(descriptor: Tuple[int, float, float], key: int) -> float:
        """Anchored evaluation: slope * (key - first_key) + intercept.

        The integer subtraction keeps the float multiply within the
        segment span, avoiding uint64-scale cancellation.
        """
        first_key, slope, intercept = descriptor
        return slope * float(int(key) - int(first_key)) + intercept

    def _descend(self, key: int) -> Tuple[int, int]:
        """Return the (lo, hi) window in the data array that must hold ``key``."""
        if self.root is None:
            raise RuntimeError("component not built")
        model = self.root
        # Walk descriptor levels top-down; level_table is bottom-up.
        for level in range(len(self.level_table) - 1, -1, -1):
            _base, count = self.level_table[level]
            lo, hi = self._clamped_window(self._predict(model, key), count)
            descriptors = self._read_descriptors(level, lo, hi)
            slot = _floor_slot([d[0] for d in descriptors], key)
            model = descriptors[slot]
        return self._clamped_window(self._predict(model, key), self.count)

    def _read_data_range(self, lo: int, hi: int) -> List[KeyPayload]:
        raw = self.pager.read_bytes(self.data_file, lo * ENTRY_SIZE,
                                    (hi - lo + 1) * ENTRY_SIZE)
        return unpack_entries(raw, hi - lo + 1)

    def lookup(self, key: int) -> Optional[int]:
        if key < self.min_key or key > self.max_key:
            return None
        if self.zonemap is not None:
            return self._lookup_compressed(key)
        lo, hi = self._descend(key)
        entries = self._read_data_range(lo, hi)
        slot = _floor_slot([k for k, _ in entries], key)
        if entries[slot][0] == key:
            return entries[slot][1]
        return None

    def _descend_vec(self, key: int) -> Tuple[int, int]:
        """``_descend`` with zero-copy descriptor parsing: only the
        bisection probes and the winning descriptor are decoded from the
        fetched window; reads are byte-identical to scalar."""
        if self.root is None:
            raise RuntimeError("component not built")
        model = self.root
        for level in range(len(self.level_table) - 1, -1, -1):
            base, count = self.level_table[level]
            lo, hi = self._clamped_window(self._predict(model, key), count)
            raw = self.pager.read_bytes(self.levels_file,
                                        base + lo * DESCRIPTOR_SIZE,
                                        (hi - lo + 1) * DESCRIPTOR_SIZE)
            slot = _floor_slot_raw(raw, hi - lo + 1, key, DESCRIPTOR_SIZE)
            model = _DESCRIPTOR.unpack_from(raw, slot * DESCRIPTOR_SIZE)
        return self._clamped_window(self._predict(model, key), self.count)

    def lookup_vec(self, key: int) -> Optional[int]:
        """``lookup`` decoding only the bisection probes (same fetches
        as scalar)."""
        if key < self.min_key or key > self.max_key:
            return None
        if self.zonemap is not None:
            return self._lookup_compressed_vec(key)
        lo, hi = self._descend_vec(key)
        raw = self.pager.read_bytes(self.data_file, lo * ENTRY_SIZE,
                                    (hi - lo + 1) * ENTRY_SIZE)
        slot = _floor_slot_raw(raw, hi - lo + 1, key, ENTRY_SIZE)
        if _U64.unpack_from(raw, slot * ENTRY_SIZE)[0] == key:
            return payload_at(raw, slot)
        return None

    def ceiling_position(self, key: int) -> int:
        """Index of the first entry with key >= ``key`` (may equal count)."""
        if key <= self.min_key:
            return 0
        if key > self.max_key:
            return self.count
        if self.zonemap is not None:
            # The routed page is the first whose max key >= key, so every
            # earlier page holds only smaller keys: the global ceiling is
            # the in-page ceiling offset by the page's start position.
            page = self.zonemap.route(key)
            raw = self._read_page(page)
            if _vectorized():
                keys, _payloads = self.pager.cached_decode(
                    self.data_file, self.data_base + page, raw, self.codec)
                slot = int(np.searchsorted(keys, np.uint64(key), side="left"))
            else:
                page_keys = [k for k, _ in self.codec.decode(raw)]
                slot = bisect_left(page_keys, key)
            return self.page_starts[page] + slot
        if _vectorized():
            lo, hi = self._descend_vec(key)
            raw = self.pager.read_bytes(self.data_file, lo * ENTRY_SIZE,
                                        (hi - lo + 1) * ENTRY_SIZE)
            slot = _floor_slot_raw(raw, hi - lo + 1, key, ENTRY_SIZE)
            if _U64.unpack_from(raw, slot * ENTRY_SIZE)[0] >= key:
                return lo + slot
            return lo + slot + 1
        lo, hi = self._descend(key)
        entries = self._read_data_range(lo, hi)
        keys = [k for k, _ in entries]
        slot = _floor_slot(keys, key)
        if keys[slot] >= key:
            return lo + slot
        return lo + slot + 1

    def iterate_from(self, position: int) -> Iterator[KeyPayload]:
        """Yield entries sequentially starting at a data position.

        Blocks are fetched identically in both execution modes; the
        vectorized mode just extracts entries from the fetched bytes one
        at a time as the consumer pulls them, so a take-1 scan (the
        hybrid's routing pattern) no longer pays for parsing the whole
        block into tuples."""
        if self.zonemap is not None:
            yield from self._iterate_compressed(position)
            return
        bs = self.pager.block_size
        per_block = bs // ENTRY_SIZE
        pos = position
        while pos < self.count:
            block_no = (pos * ENTRY_SIZE) // bs
            first_in_block = block_no * per_block
            in_block = min(per_block, self.count - first_in_block)
            raw = self.pager.read_bytes(self.data_file, first_in_block * ENTRY_SIZE,
                                        in_block * ENTRY_SIZE)
            if _vectorized():
                for i in range(pos - first_in_block, in_block):
                    yield entry_at(raw, i)
            else:
                entries = unpack_entries(raw, in_block)
                for entry in entries[pos - first_in_block :]:
                    yield entry
            pos = first_in_block + in_block

    def _iterate_compressed(self, position: int) -> Iterator[KeyPayload]:
        """Sequential walk over codec pages from a data position.

        One charged block read per page in both execution modes; each
        page decodes to (count) entries — the per-block entry yield that
        makes compressed scans fetch proportionally fewer blocks.
        """
        num_pages = len(self.page_starts)
        page = bisect_right(self.page_starts, position) - 1
        if page < 0:
            page = 0
        while page < num_pages:
            raw = self._read_page(page)
            entries = self.codec.decode(raw)
            skip = max(0, position - self.page_starts[page])
            for entry in entries[skip:]:
                yield entry
            page += 1
            position = self.page_starts[page] if page < num_pages else self.count

    def destroy(self) -> None:
        """Delete both files from disk (after an LSM merge)."""
        self.pager.invalidate_file(self.data_file.name)
        self.pager.invalidate_file(self.levels_file.name)
        self.pager.device.delete_file(self.data_file.name)
        self.pager.device.delete_file(self.levels_file.name)


class PgmIndex(DiskIndex):
    """The dynamic (LSM-style) disk-resident PGM-index.

    Args:
        pager: storage access path.
        epsilon: PLA error bound for every component (paper default 64).
        buffer_capacity: entries in the sorted insert buffer (paper: 585).
        level_ratio: LSM size ratio between adjacent levels.
        codec: leaf-page codec for static components (Section 16).  The
            insert buffer always stays raw: it is tiny (a few blocks),
            rewritten in place on every upsert, and probed with 16-byte
            point reads — compressing it would buy nothing and cost a
            decode per probe.  LSM merges rebuild components through the
            codec, so flushed data is compressed from the first merge.
    """

    name = "pgm"

    def __init__(self, pager: Pager, epsilon: int = 64, buffer_capacity: int = 585,
                 level_ratio: int = 2, file_prefix: str = "pgm",
                 codec: str = "raw") -> None:
        super().__init__(pager)
        if buffer_capacity < 1:
            raise ValueError(f"buffer capacity must be >= 1, got {buffer_capacity}")
        if level_ratio < 2:
            raise ValueError(f"level ratio must be >= 2, got {level_ratio}")
        self.epsilon = epsilon
        self.buffer_capacity = buffer_capacity
        self.level_ratio = level_ratio
        self.file_prefix = file_prefix
        self.codec = get_codec(codec)
        self._buffer_file = pager.device.get_or_create_file(f"{file_prefix}.buffer")
        if self._buffer_file.num_blocks == 0:
            self._buffer_file.allocate(
                (buffer_capacity * ENTRY_SIZE + pager.block_size - 1) // pager.block_size)
        self.buffer_count = 0  # meta-block state
        self.components: List[Optional[StaticPgm]] = []  # index = LSM level
        self._generation = 0
        self._levels_resident = False
        self.num_merges = 0

    # -- helpers ------------------------------------------------------------------

    def _level_capacity(self, level: int) -> int:
        return self.buffer_capacity * (self.level_ratio ** (level + 1))

    def _new_component(self, items: Sequence[KeyPayload]) -> StaticPgm:
        self._generation += 1
        return StaticPgm(self.pager, f"{self.file_prefix}.c{self._generation}",
                         items, epsilon=self.epsilon,
                         levels_memory_resident=self._levels_resident,
                         codec=self.codec)

    def _read_buffer(self, count: Optional[int] = None) -> List[KeyPayload]:
        count = self.buffer_count if count is None else count
        if count == 0:
            return []
        raw = self.pager.read_bytes(self._buffer_file, 0, count * ENTRY_SIZE)
        return unpack_entries(raw, count)

    # -- bulk load -------------------------------------------------------------------

    def bulk_load(self, items: Sequence[KeyPayload]) -> None:
        if self.num_components or self.buffer_count:
            raise RuntimeError("index already bulk-loaded")
        with self.pager.phase("bulkload"):
            if not items:
                return
            level = 0
            while self._level_capacity(level) < len(items):
                level += 1
            self.components.extend([None] * (level + 1 - len(self.components)))
            self.components[level] = self._new_component(items)

    # -- lookup ----------------------------------------------------------------------

    def lookup(self, key: int) -> Optional[int]:
        with self.pager.phase("search"):
            found = self._lookup_raw(key)
        return None if found == TOMBSTONE else found

    def _lookup_raw(self, key: int) -> Optional[int]:
        """Newest-wins lookup that surfaces tombstone payloads."""
        found = _binary_find_region(self.pager, self._buffer_file, 0,
                                    self.buffer_count, key)
        if found is not None:
            return found
        for component in self.components:
            if component is None:
                continue
            result = component.lookup(key)
            if result is not None:
                return result
        return None

    def lookup_many(self, keys) -> List[Optional[int]]:
        """Batched lookups inside one pin scope: the insert buffer's
        blocks and every component's upper descriptor levels are fetched
        once for the whole sorted batch instead of once per key."""
        keys = list(keys)
        if len(keys) <= 1:
            return [self.lookup(key) for key in keys]
        unique = sorted(set(keys))
        results = {}
        with self.pager.phase("search"), self.pager.batch():
            if _vectorized():
                # One buffer mirror for the whole batch: probe reads hit
                # the same byte ranges in the same order as scalar, but
                # revisited buffer blocks skip the pager walk (they are
                # pinned in this batch scope — free either way).
                buffer_mirror = BlockMirror(self.pager, self._buffer_file)
                for key in unique:
                    results[key] = self._lookup_raw_vec(key, buffer_mirror)
            else:
                for key in unique:
                    results[key] = self._lookup_raw(key)
        return [None if results[key] == TOMBSTONE else results[key]
                for key in keys]

    def _lookup_raw_vec(self, key: int,
                        buffer_mirror: BlockMirror) -> Optional[int]:
        """Newest-wins lookup through the vectorized component paths."""
        found = _binary_find_region_vec(buffer_mirror, 0, self.buffer_count, key)
        if found is not None:
            return found
        for component in self.components:
            if component is None:
                continue
            result = component.lookup_vec(key)
            if result is not None:
                return result
        return None

    # -- insert -----------------------------------------------------------------------

    def insert(self, key: int, payload: int) -> None:
        with self.pager.phase("insert"):
            entries = self._read_buffer()
            slot = _insert_position(entries, key)
            if slot < len(entries) and entries[slot][0] == key:
                if entries[slot][1] != TOMBSTONE:
                    raise KeyError(f"duplicate key {key}")
                # Re-inserting a buffered-deleted key overwrites in place.
                entries[slot] = (key, payload)
                self.pager.write_bytes(self._buffer_file, slot * ENTRY_SIZE,
                                       pack_entries([(key, payload)]))
                return
            entries.insert(slot, (key, payload))
            self.buffer_count = len(entries)
            # Rewrite the shifted tail of the sorted buffer.
            self.pager.write_bytes(self._buffer_file, slot * ENTRY_SIZE,
                                   pack_entries(entries[slot:]))
        if self.buffer_count >= self.buffer_capacity:
            with self.pager.phase("smo"):
                self._flush_buffer(entries)

    def update(self, key: int, payload: int) -> bool:
        """LSM upsert: the newest value shadows older components."""
        with self.pager.phase("search"):
            current = self._lookup_raw(key)
        if current is None or current == TOMBSTONE:
            return False
        self._buffer_upsert(key, payload)
        return True

    def delete(self, key: int) -> bool:
        """LSM delete: a tombstone run entry; dropped when a merge reaches
        the bottommost level (the paper's compaction-time reclamation)."""
        with self.pager.phase("search"):
            current = self._lookup_raw(key)
        if current is None or current == TOMBSTONE:
            return False
        self._buffer_upsert(key, TOMBSTONE)
        return True

    def _buffer_upsert(self, key: int, payload: int) -> None:
        """Write (key, payload) into the sorted buffer, shadowing any
        existing buffered entry for the key; flushes when full."""
        with self.pager.phase("insert"):
            entries = self._read_buffer()
            slot = _insert_position(entries, key)
            if slot < len(entries) and entries[slot][0] == key:
                entries[slot] = (key, payload)
                self.pager.write_bytes(self._buffer_file, slot * ENTRY_SIZE,
                                       pack_entries([(key, payload)]))
                return
            entries.insert(slot, (key, payload))
            self.buffer_count = len(entries)
            self.pager.write_bytes(self._buffer_file, slot * ENTRY_SIZE,
                                   pack_entries(entries[slot:]))
        if self.buffer_count >= self.buffer_capacity:
            with self.pager.phase("smo"):
                self._flush_buffer(entries)

    def _flush_buffer(self, buffered: List[KeyPayload]) -> None:
        """Merge the full buffer down the LSM hierarchy (the PGM 'SMO')."""
        self.num_merges += 1
        carry = list(buffered)
        merged_components: List[StaticPgm] = []
        target = 0
        total = len(carry)
        while target < len(self.components) and self.components[target] is not None:
            component = self.components[target]
            total += component.count
            merged_components.append(component)
            self.components[target] = None
            if total <= self._level_capacity(target):
                break
            target += 1
        # Read every merged component sequentially and k-way merge in memory.
        runs = [carry] + [list(c.iterate_from(0)) for c in merged_components]
        merged = _merge_runs(runs)
        while target < len(self.components) and self._level_capacity(target) < len(merged):
            target += 1
        if target >= len(self.components):
            self.components.extend([None] * (target + 1 - len(self.components)))
        is_bottom = all(self.components[i] is None
                        for i in range(target + 1, len(self.components)))
        if is_bottom:
            # Nothing older can be shadowed: tombstones can be dropped.
            merged = [entry for entry in merged if entry[1] != TOMBSTONE]
        if merged:
            self.components[target] = self._new_component(merged)
        for component in merged_components:
            component.destroy()
        self.buffer_count = 0

    # -- scan --------------------------------------------------------------------------

    def scan(self, start_key: int, count: int) -> List[KeyPayload]:
        with self.pager.phase("scan"):
            iters: List[Iterator[KeyPayload]] = []
            buffered = self._read_buffer()
            slot = _insert_position(buffered, start_key)
            iters.append(iter(buffered[slot:]))
            for component in self.components:
                if component is None:
                    continue
                pos = component.ceiling_position(start_key)
                if pos < component.count:
                    iters.append(component.iterate_from(pos))
            return _merge_iters_take(iters, count)

    # -- misc ---------------------------------------------------------------------------

    def set_inner_memory_resident(self, resident: bool) -> None:
        """Pin descriptor levels of all (current and future) components."""
        self._levels_resident = resident
        for component in self.components:
            if component is not None:
                component.levels_file.memory_resident = resident

    def verify(self) -> int:
        """Check buffer/component sortedness, level capacities and the
        newest-wins visibility of every key."""
        with self._free_io():
            buffered = self._read_buffer()
            buffer_keys = [k for k, _ in buffered]
            assert buffer_keys == sorted(set(buffer_keys)), "insert buffer unsorted"
            assert len(buffered) < self.buffer_capacity, "buffer overfull"
            seen = {}
            for k, p in buffered:
                seen.setdefault(k, p)
            for level, component in enumerate(self.components):
                if component is None:
                    continue
                assert component.count <= self._level_capacity(level), (
                    f"component at level {level} over capacity")
                previous = -1
                walked = 0
                for k, p in component.iterate_from(0):
                    assert k > previous, "component data unsorted"
                    previous = k
                    walked += 1
                    seen.setdefault(k, p)
                assert walked == component.count, "component count mismatch"
            return sum(1 for p in seen.values() if p != TOMBSTONE)

    def init_params(self) -> dict:
        return {"epsilon": self.epsilon, "buffer_capacity": self.buffer_capacity,
                "level_ratio": self.level_ratio, "file_prefix": self.file_prefix,
                "codec": self.codec.name}

    def to_meta(self) -> dict:
        return {"buffer_count": self.buffer_count,
                "generation": self._generation,
                "levels_resident": self._levels_resident,
                "num_merges": self.num_merges,
                "components": [c.to_meta() if c is not None else None
                               for c in self.components]}

    def restore_meta(self, meta: dict) -> None:
        self.buffer_count = meta["buffer_count"]
        self._generation = meta["generation"]
        self._levels_resident = meta["levels_resident"]
        self.num_merges = meta["num_merges"]
        self.components = [
            StaticPgm.attach(self.pager, c) if c is not None else None
            for c in meta["components"]
        ]

    def file_roles(self) -> dict:
        roles = {self._buffer_file.name: "leaf"}
        for component in self.components:
            if component is not None:
                roles[component.levels_file.name] = "inner"
                roles[component.data_file.name] = "leaf"
        return roles

    def height(self) -> int:
        heights = [c.num_levels for c in self.components if c is not None]
        return max(heights) if heights else 1

    @property
    def num_components(self) -> int:
        return sum(1 for c in self.components if c is not None)


# -- module helpers -------------------------------------------------------------


def _floor_slot(keys: List[int], key: int) -> int:
    """Rightmost index with keys[i] <= key, clamped to 0."""
    lo, hi = 0, len(keys)
    while lo < hi:
        mid = (lo + hi) // 2
        if keys[mid] <= key:
            lo = mid + 1
        else:
            hi = mid
    return max(0, lo - 1)


def _insert_position(entries: List[KeyPayload], key: int) -> int:
    lo, hi = 0, len(entries)
    while lo < hi:
        mid = (lo + hi) // 2
        if entries[mid][0] < key:
            lo = mid + 1
        else:
            hi = mid
    return lo


def _binary_find_region(pager: Pager, file: BlockFile, base_offset: int,
                        count: int, key: int) -> Optional[int]:
    """Binary search a sorted on-disk entry region, probing entry by entry.

    Each probe reads 16 bytes; the pager's last-block reuse means the
    search touches only the distinct blocks the probes land in — one or
    two for a 3-block buffer, matching the paper's Figure 6 analysis.
    """
    lo, hi = 0, count
    while lo < hi:
        mid = (lo + hi) // 2
        raw = pager.read_bytes(file, base_offset + mid * ENTRY_SIZE, ENTRY_SIZE)
        mid_key, payload = unpack_entries(raw, 1)[0]
        if mid_key == key:
            return payload
        if mid_key < key:
            lo = mid + 1
        else:
            hi = mid
    return None


def _binary_find_region_vec(mirror: BlockMirror, base_offset: int,
                            count: int, key: int) -> Optional[int]:
    """:func:`_binary_find_region` served through a :class:`BlockMirror`:
    identical probe sequence, but blocks already mirrored in this batch
    scope skip the pager walk (pin-cache-equivalent, charge-free)."""
    lo, hi = 0, count
    while lo < hi:
        mid = (lo + hi) // 2
        raw = mirror.read(base_offset + mid * ENTRY_SIZE, ENTRY_SIZE)
        mid_key, payload = entry_at(raw, 0)
        if mid_key == key:
            return payload
        if mid_key < key:
            lo = mid + 1
        else:
            hi = mid
    return None


def _merge_runs(runs: List[List[KeyPayload]]) -> List[KeyPayload]:
    """Merge key-sorted runs; on duplicate keys the earliest run wins."""
    import heapq

    heap: List[Tuple[int, int, int]] = []  # key, run index, position
    for run_index, run in enumerate(runs):
        if run:
            heap.append((run[0][0], run_index, 0))
    heapq.heapify(heap)
    out: List[KeyPayload] = []
    while heap:
        key, run_index, pos = heapq.heappop(heap)
        if not out or out[-1][0] != key:
            out.append(runs[run_index][pos])
        if pos + 1 < len(runs[run_index]):
            heapq.heappush(heap, (runs[run_index][pos + 1][0], run_index, pos + 1))
    return out


def _merge_iters_take(iters: List[Iterator[KeyPayload]], count: int) -> List[KeyPayload]:
    """Take the first ``count`` live entries of the merged iterators.

    Iterators are ordered newest-first; on duplicate keys the newest run
    wins, and keys whose newest value is a tombstone are skipped.
    """
    import heapq

    heap: List[Tuple[int, int, int, Iterator[KeyPayload]]] = []
    for i, it in enumerate(iters):
        first = next(it, None)
        if first is not None:
            heap.append((first[0], i, first[1], it))
    heapq.heapify(heap)
    out: List[KeyPayload] = []
    last_key: Optional[int] = None
    while heap and len(out) < count:
        key, i, payload, it = heapq.heappop(heap)
        if key != last_key:
            last_key = key
            if payload != TOMBSTONE:
                out.append((key, payload))
        nxt = next(it, None)
        if nxt is not None:
            heapq.heappush(heap, (nxt[0], i, nxt[1], it))
    return out
