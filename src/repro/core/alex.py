"""ALEX on disk.

The paper's Section 4.1 uses ALEX as its running example because it is
the hardest index to port: variable-size nodes crossing blocks, bitmaps,
gapped arrays, per-node statistics, and structure-modifying operations.
This implementation follows that section:

* **Layout#2** (default): inner nodes in one file, data nodes in another
  — the paper measures 0.5%-30% speedup over Layout#1 (a single file)
  because several small inner nodes share a block.  Both layouts are
  implemented; pass ``layout=1`` for the single-file variant.
* The first "block" of metadata (root pointer) lives in memory, as the
  paper's meta-block convention allows.
* A node's extent is contiguous; a data node's linear model sits in the
  node header, so the header and a predicted slot can land in different
  blocks — shortcoming **S1** measured in Table 4.
* Gap slots hold a copy of the nearest real entry on their left (the
  first entry for leading gaps), so lookups never touch the bitmap; the
  price is the forward gap-overwrite on inserts — shortcoming **S5**.
* Scans must skip gaps with the bitmap, loading it block by block —
  shortcoming **S3**.
* Every insert updates the node-header statistics, an extra block write
  the paper charges to the *maintenance* step in Figure 6.

The one deliberate simplification: ALEX's workload-statistics cost model
for choosing between node expansion and splitting is replaced with the
deterministic policy "expand until the maximum node size, then split
sideways".  The I/O profile of each mechanism is modelled faithfully;
only the *choice* is simplified (documented in DESIGN.md).
"""

from __future__ import annotations

import struct
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..models import LinearModel, anchored_diff, truncate_positions
from ..storage import Pager
from .codecs import get_codec
from .interface import DiskIndex, KeyPayload, TOMBSTONE
from .serial import ENTRY_SIZE, NULL_BLOCK, pack_entries, unpack_entries
from .vectorize import BlockMirror, enabled as _vectorized

__all__ = ["AlexIndex"]

_ENTRY = struct.Struct("<QQ")
_U64 = struct.Struct("<Q")

_INNER_HEADER = struct.Struct("<BxxxIddQ")  # type, fanout, slope, intercept, anchor
_DATA_HEADER = struct.Struct("<BxxxIIddQIIII")
# type, capacity, num_keys, slope, intercept, anchor, prev, next, num_inserts, num_shifts
_DATA_HEADER_HOT = struct.Struct("<BxxxIIddQ")  # leading fields the lookup path needs
HEADER_SIZE = 64
_IS_DATA = 1 << 63
_PTR_MASK = (1 << 40) - 1
# A pointer's value field holds a *block number* for data nodes (data
# extents are block aligned) and a *byte offset* for inner nodes — in
# Layout#2 several small inner nodes are packed into one block, which is
# exactly the advantage the paper measures for that layout.


def _partition_point(items: Sequence[KeyPayload], is_left: "callable") -> int:
    """First index whose key fails the monotone ``is_left`` predicate."""
    lo, hi = 0, len(items)
    while lo < hi:
        mid = (lo + hi) // 2
        if is_left(items[mid][0]):
            lo = mid + 1
        else:
            hi = mid
    return lo


def _pack_ptr(is_data: bool, block: int) -> int:
    return (_IS_DATA if is_data else 0) | block


def _ptr_is_data(ptr: int) -> bool:
    return bool(ptr & _IS_DATA)


def _ptr_block(ptr: int) -> int:
    return ptr & _PTR_MASK


def _search_node_vec(mirror: BlockMirror, base: int, capacity: int,
                     key: int, pos: int) -> int:
    """``_exponential_search`` against mirrored data-node bytes.

    The probe sequence — and therefore every first-touch charge issued
    through the pager — is identical to the scalar helper's; the common
    non-straddling probe is inlined to a dict hit plus one
    ``unpack_from`` on the mirrored block bytes.  The trailing
    ``probe(lo)`` re-check is elided whenever the search already decoded
    slot ``lo`` — for the scalar path that re-probe is a pin-cache hit,
    so eliding it is charge-free.

    ``base`` is the byte offset of the node's slot-0 entry
    (``_entries_offset(block, capacity, 0)``).  Consecutive probes
    usually land in the same block, so the last decoded block is kept in
    ``cur_no``/``cur_data`` locals and only re-resolved on a change.
    """
    bs = mirror._bs
    blocks = mirror.blocks
    get = blocks.get
    read_block = mirror.pager.read_block
    data_file = mirror.file
    unpack = _U64.unpack_from
    cur_no = -1
    cur_data = b""

    offset = base + pos * ENTRY_SIZE
    block_no = offset // bs
    rel = offset - block_no * bs
    if rel + ENTRY_SIZE <= bs:
        cur_data = get(block_no)
        if cur_data is None:
            cur_data = read_block(data_file, block_no)
            blocks[block_no] = cur_data
        cur_no = block_no
        pos_key = unpack(cur_data, rel)[0]
    else:
        pos_key = unpack(mirror.read(offset, ENTRY_SIZE), 0)[0]

    lo_le_key = True  # e[lo] <= key proven by a probe already made
    if pos_key <= key:
        bound = 1
        while pos + bound < capacity:
            offset = base + (pos + bound) * ENTRY_SIZE
            block_no = offset // bs
            rel = offset - block_no * bs
            if rel + ENTRY_SIZE <= bs:
                if block_no != cur_no:
                    cur_data = get(block_no)
                    if cur_data is None:
                        cur_data = read_block(data_file, block_no)
                        blocks[block_no] = cur_data
                    cur_no = block_no
                probed = unpack(cur_data, rel)[0]
            else:
                probed = unpack(mirror.read(offset, ENTRY_SIZE), 0)[0]
            if probed > key:
                break
            bound *= 2
        # lo = pos + bound // 2 was probed <= key (or is pos itself).
        lo, hi = pos + bound // 2, min(pos + bound, capacity - 1)
    else:
        bound = 1
        while pos - bound >= 0:
            offset = base + (pos - bound) * ENTRY_SIZE
            block_no = offset // bs
            rel = offset - block_no * bs
            if rel + ENTRY_SIZE <= bs:
                if block_no != cur_no:
                    cur_data = get(block_no)
                    if cur_data is None:
                        cur_data = read_block(data_file, block_no)
                        blocks[block_no] = cur_data
                    cur_no = block_no
                probed = unpack(cur_data, rel)[0]
            else:
                probed = unpack(mirror.read(offset, ENTRY_SIZE), 0)[0]
            if probed <= key:
                break
            bound *= 2
        else:
            lo_le_key = False  # ran off the front: slot 0 never probed
        lo, hi = max(pos - bound, 0), pos - bound // 2
    while lo < hi:
        mid = (lo + hi + 1) // 2
        offset = base + mid * ENTRY_SIZE
        block_no = offset // bs
        rel = offset - block_no * bs
        if rel + ENTRY_SIZE <= bs:
            if block_no != cur_no:
                cur_data = get(block_no)
                if cur_data is None:
                    cur_data = read_block(data_file, block_no)
                    blocks[block_no] = cur_data
                cur_no = block_no
            probed = unpack(cur_data, rel)[0]
        else:
            probed = unpack(mirror.read(offset, ENTRY_SIZE), 0)[0]
        if probed <= key:
            lo = mid
            lo_le_key = True
        else:
            hi = mid - 1
    if lo_le_key:
        return lo
    offset = base + lo * ENTRY_SIZE
    block_no = offset // bs
    rel = offset - block_no * bs
    if rel + ENTRY_SIZE <= bs:
        if block_no != cur_no:
            cur_data = get(block_no)
            if cur_data is None:
                cur_data = read_block(data_file, block_no)
                blocks[block_no] = cur_data
        probed = unpack(cur_data, rel)[0]
    else:
        probed = unpack(mirror.read(offset, ENTRY_SIZE), 0)[0]
    return lo if probed <= key else -1


class _DataHeader:
    __slots__ = ("capacity", "num_keys", "slope", "intercept", "anchor", "prev", "next",
                 "num_inserts", "num_shifts")

    def __init__(self, capacity: int, num_keys: int, slope: float, intercept: float,
                 anchor: int = 0, prev: int = NULL_BLOCK, next_: int = NULL_BLOCK,
                 num_inserts: int = 0, num_shifts: int = 0) -> None:
        self.capacity = capacity
        self.num_keys = num_keys
        self.slope = slope
        self.intercept = intercept
        self.anchor = anchor
        self.prev = prev
        self.next = next_
        self.num_inserts = num_inserts
        self.num_shifts = num_shifts

    @property
    def model(self) -> LinearModel:
        return LinearModel(self.slope, self.intercept, self.anchor)

    def pack(self) -> bytes:
        out = bytearray(HEADER_SIZE)
        _DATA_HEADER.pack_into(out, 0, 1, self.capacity, self.num_keys,
                               self.slope, self.intercept, self.anchor,
                               self.prev, self.next,
                               self.num_inserts, self.num_shifts)
        return bytes(out)

    @classmethod
    def unpack(cls, raw: bytes) -> "_DataHeader":
        (_type, capacity, num_keys, slope, intercept, anchor, prev, next_,
         num_inserts, num_shifts) = _DATA_HEADER.unpack_from(raw, 0)
        return cls(capacity, num_keys, slope, intercept, anchor, prev, next_,
                   num_inserts, num_shifts)


class AlexIndex(DiskIndex):
    """Disk-resident ALEX (updatable adaptive learned index).

    Args:
        pager: storage access path.
        layout: 2 (default) for separate inner/data files, 1 for a
            single shared file (the paper's Layout#1 ablation).
        max_data_node_entries: capacity cap of a data node's gapped
            array (the paper's in-memory ALEX caps nodes at 16 MiB; the
            default 4096 entries = 16 blocks keeps the same multi-block
            geometry at our scaled-down N).
        init_density / full_density: gapped-array densities at node
            creation and at the SMO trigger (ALEX defaults 0.7 / 0.8).
    """

    name = "alex"

    def __init__(self, pager: Pager, layout: int = 2, max_data_node_entries: int = 4096,
                 init_density: float = 0.7, full_density: float = 0.8,
                 max_fanout: int = 4096, file_prefix: str = "alex",
                 codec: str = "raw") -> None:
        super().__init__(pager)
        # ALEX's gapped arrays address slots in place through the node
        # model (fixed 16-byte stride, exponential search around the
        # prediction), which a variable-width codec page cannot provide;
        # the codec name is validated, then the raw layout is kept.
        get_codec(codec)
        if layout not in (1, 2):
            raise ValueError(f"layout must be 1 or 2, got {layout}")
        if not 0.0 < init_density < full_density <= 1.0:
            raise ValueError("need 0 < init_density < full_density <= 1")
        if max_data_node_entries < 16:
            raise ValueError("max_data_node_entries must be >= 16")
        self._file_prefix = file_prefix
        self.layout = layout
        self.max_data_node_entries = max_data_node_entries
        self.init_density = init_density
        self.full_density = full_density
        self.max_fanout = max_fanout
        device = pager.device
        if layout == 2:
            self._inner_file = device.get_or_create_file(f"{file_prefix}.inner")
            self._data_file = device.get_or_create_file(f"{file_prefix}.data")
        else:
            shared = device.get_or_create_file(f"{file_prefix}.all")
            self._inner_file = shared
            self._data_file = shared
        self.root_ptr: Optional[int] = None  # meta block, in memory
        self._inner_tail = 0  # bump allocator position for Layout#2 inner nodes
        self.num_expands = 0
        self.num_splits = 0
        self.num_split_downs = 0

    # -- geometry ------------------------------------------------------------

    def _bitmap_bytes(self, capacity: int) -> int:
        return (capacity + 7) // 8

    def _data_extent_blocks(self, capacity: int) -> int:
        nbytes = HEADER_SIZE + self._bitmap_bytes(capacity) + capacity * ENTRY_SIZE
        return (nbytes + self.pager.block_size - 1) // self.pager.block_size

    def _alloc_inner(self, nbytes: int) -> int:
        """Allocate inner-node space; returns a byte offset.

        Layout#2 bump-allocates inside the dedicated inner file, packing
        several small inner nodes per block (the paper's reason Layout#2
        wins 0.5%-30% on lookups).  Layout#1 shares one file with data
        nodes, so inner nodes are block aligned and interleaved.
        """
        bs = self.pager.block_size
        if self.layout == 2:
            offset = self._inner_tail
            end_block = (offset + nbytes + bs - 1) // bs
            if end_block > self._inner_file.num_blocks:
                self._inner_file.allocate(end_block - self._inner_file.num_blocks)
            self._inner_tail = offset + nbytes
            return offset
        block = self._inner_file.allocate((nbytes + bs - 1) // bs)
        return block * bs

    def _entries_offset(self, block: int, capacity: int, slot: int) -> int:
        return (block * self.pager.block_size + HEADER_SIZE
                + self._bitmap_bytes(capacity) + slot * ENTRY_SIZE)

    def _bitmap_offset(self, block: int, byte_index: int) -> int:
        return block * self.pager.block_size + HEADER_SIZE + byte_index

    # -- data node construction ----------------------------------------------------

    def _initial_capacity(self, num_keys: int) -> int:
        capacity = max(16, int(num_keys / self.init_density) + 1)
        return min(capacity, self.max_data_node_entries)

    def _build_data_node(self, items: Sequence[KeyPayload],
                         capacity: Optional[int] = None,
                         prev: int = NULL_BLOCK, next_: int = NULL_BLOCK) -> int:
        """Write a fresh data node; returns its extent start block."""
        n = len(items)
        if capacity is None:
            capacity = self._initial_capacity(n)
        if n > capacity:
            raise ValueError(f"{n} items exceed capacity {capacity}")
        if n:
            model = LinearModel.fit_least_squares(
                [key for key, _ in items],
                [int(i * capacity / max(n, 1)) for i in range(n)],
            )
        else:
            model = LinearModel(0.0, 0.0)
        slots: List[KeyPayload] = []
        bitmap = bytearray(self._bitmap_bytes(capacity))
        last = -1
        for i, (key, payload) in enumerate(items):
            pred = model.predict_clamped(key, capacity)
            slot = min(max(pred, last + 1), capacity - (n - i))
            # Fill the gap run before this entry with a copy of the
            # previous entry (or of this entry for leading gaps).
            filler = items[i - 1] if i > 0 else (key, payload)
            while len(slots) < slot:
                slots.append(filler)
            slots.append((key, payload))
            bitmap[slot >> 3] |= 1 << (slot & 7)
            last = slot
        filler = items[-1] if items else (0, 0)
        while len(slots) < capacity:
            slots.append(filler)
        header = _DataHeader(capacity, n, model.slope, model.intercept, model.anchor,
                             prev, next_)
        block = self._data_file.allocate(self._data_extent_blocks(capacity))
        payload_bytes = header.pack() + bytes(bitmap) + pack_entries(slots)
        self.pager.write_bytes(self._data_file, block * self.pager.block_size, payload_bytes)
        return block

    # -- bulk load -------------------------------------------------------------------

    def bulk_load(self, items: Sequence[KeyPayload]) -> None:
        if self.root_ptr is not None:
            raise RuntimeError("index already bulk-loaded")
        with self.pager.phase("bulkload"):
            self.root_ptr = self._bulk_build(list(items))
            self._link_leaves()

    def _bulk_build(self, items: List[KeyPayload]) -> int:
        n = len(items)
        max_initial = int(self.max_data_node_entries * self.init_density)
        if n <= max_initial:
            return _pack_ptr(True, self._build_data_node(items))
        # Inner node: pick a power-of-two fanout targeting well-filled children.
        fanout = 2
        while fanout < self.max_fanout and n / fanout > max_initial / 2:
            fanout *= 2
        keys = [key for key, _ in items]
        model = LinearModel.fit_least_squares(
            keys, [int(i * fanout / n) for i in range(n)])
        partitions = self._partition(items, model, fanout)
        if max(len(p) for p in partitions) >= n:
            # Degenerate fit: fall back to a min-max model, which always
            # separates the first and last key.
            model = LinearModel.fit_min_max(keys[0], keys[-1], fanout)
            partitions = self._partition(items, model, fanout)
        maybe_ptrs: List[Optional[int]] = []
        last_ptr: Optional[int] = None
        for partition in partitions:
            if partition:
                last_ptr = self._bulk_build(partition)
                maybe_ptrs.append(last_ptr)
            else:
                # Repeated pointer: an empty model range shares its left
                # neighbour's child (ALEX semantics).
                maybe_ptrs.append(last_ptr)
        # Leading empty ranges before the first child point at it.
        first_real = next(ptr for ptr in maybe_ptrs if ptr is not None)
        pointers = [ptr if ptr is not None else first_real for ptr in maybe_ptrs]
        return _pack_ptr(False, self._write_inner(fanout, model, pointers))

    @staticmethod
    def _partition(items: List[KeyPayload], model: LinearModel,
                   fanout: int) -> List[List[KeyPayload]]:
        partitions: List[List[KeyPayload]] = [[] for _ in range(fanout)]
        for key, payload in items:
            partitions[model.predict_clamped(key, fanout)].append((key, payload))
        return partitions

    def _write_inner(self, fanout: int, model: LinearModel, pointers: List[int]) -> int:
        """Write an inner node; returns its byte offset in the inner file."""
        nbytes = HEADER_SIZE + fanout * 8
        offset = self._alloc_inner(nbytes)
        out = bytearray(HEADER_SIZE)
        _INNER_HEADER.pack_into(out, 0, 0, fanout, model.slope, model.intercept,
                                model.anchor)
        raw = bytes(out) + struct.pack(f"<{fanout}Q", *pointers)
        self.pager.write_bytes(self._inner_file, offset, raw)
        return offset

    def _link_leaves(self) -> None:
        """Chain data nodes left-to-right after a bulk load."""
        leaves: List[int] = []
        self._collect_leaves(self.root_ptr, leaves)
        for i, block in enumerate(leaves):
            header = self._read_data_header(block)
            header.prev = leaves[i - 1] if i > 0 else NULL_BLOCK
            header.next = leaves[i + 1] if i + 1 < len(leaves) else NULL_BLOCK
            self._write_data_header(block, header)

    def _collect_leaves(self, ptr: int, out: List[int]) -> None:
        if _ptr_is_data(ptr):
            if not out or out[-1] != _ptr_block(ptr):
                out.append(_ptr_block(ptr))
            return
        offset = _ptr_block(ptr)
        fanout, _model = self._read_inner_header(offset)
        seen: Optional[int] = None
        for slot in range(fanout):
            child = self._read_child_ptr(offset, slot)
            if child != seen:
                self._collect_leaves(child, out)
                seen = child

    # -- node access ---------------------------------------------------------------

    def _read_inner_header(self, offset: int) -> Tuple[int, LinearModel]:
        raw = self.pager.read_bytes(self._inner_file, offset, HEADER_SIZE)
        _type, fanout, slope, intercept, anchor = _INNER_HEADER.unpack_from(raw, 0)
        return fanout, LinearModel(slope, intercept, anchor)

    def _read_child_ptr(self, offset: int, slot: int) -> int:
        raw = self.pager.read_bytes(self._inner_file,
                                    offset + HEADER_SIZE + slot * 8, 8)
        return struct.unpack("<Q", raw)[0]

    def _read_data_header(self, block: int) -> _DataHeader:
        raw = self.pager.read_bytes(self._data_file, block * self.pager.block_size,
                                    HEADER_SIZE)
        return _DataHeader.unpack(raw)

    def _write_data_header(self, block: int, header: _DataHeader) -> None:
        self.pager.write_bytes(self._data_file, block * self.pager.block_size, header.pack())

    def _read_entry(self, block: int, capacity: int, slot: int) -> KeyPayload:
        raw = self.pager.read_bytes(self._data_file,
                                    self._entries_offset(block, capacity, slot), ENTRY_SIZE)
        return unpack_entries(raw, 1)[0]

    def _read_entries(self, block: int, capacity: int, lo: int, count: int) -> List[KeyPayload]:
        raw = self.pager.read_bytes(self._data_file,
                                    self._entries_offset(block, capacity, lo),
                                    count * ENTRY_SIZE)
        return unpack_entries(raw, count)

    def _write_entries(self, block: int, capacity: int, lo: int,
                       entries: Sequence[KeyPayload]) -> None:
        self.pager.write_bytes(self._data_file,
                               self._entries_offset(block, capacity, lo),
                               pack_entries(entries))

    def _bit_is_set(self, block: int, slot: int) -> bool:
        raw = self.pager.read_bytes(self._data_file,
                                    self._bitmap_offset(block, slot >> 3), 1)
        return bool(raw[0] & (1 << (slot & 7)))

    def _set_bit(self, block: int, slot: int) -> None:
        offset = self._bitmap_offset(block, slot >> 3)
        raw = bytearray(self.pager.read_bytes(self._data_file, offset, 1))
        raw[0] |= 1 << (slot & 7)
        self.pager.write_bytes(self._data_file, offset, bytes(raw))

    # -- traversal -------------------------------------------------------------------

    def _descend(self, key: int) -> Tuple[int, List[Tuple[int, int]]]:
        """Walk to the data node for ``key``; returns (block, inner path).

        The path holds ``(inner block, slot)`` pairs — transient state.
        """
        if self.root_ptr is None:
            raise RuntimeError("index not bulk-loaded")
        path: List[Tuple[int, int]] = []
        ptr = self.root_ptr
        while not _ptr_is_data(ptr):
            offset = _ptr_block(ptr)
            fanout, model = self._read_inner_header(offset)
            slot = model.predict_clamped(key, fanout)
            path.append((offset, slot))
            ptr = self._read_child_ptr(offset, slot)
        return _ptr_block(ptr), path

    def _exponential_search(self, block: int, header: _DataHeader, key: int) -> int:
        """Slot of the rightmost entry with key <= ``key`` (may be -1).

        Starts at the model's prediction and widens the bracket by
        doubling, probing one 16-byte entry per step (ALEX's search).
        """
        capacity = header.capacity
        pos = header.model.predict_clamped(key, capacity)
        pos_key = self._read_entry(block, capacity, pos)[0]
        if pos_key <= key:
            # Gallop right while entries stay <= key.
            bound = 1
            while pos + bound < capacity and (
                self._read_entry(block, capacity, pos + bound)[0] <= key
            ):
                bound *= 2
            lo, hi = pos + bound // 2, min(pos + bound, capacity - 1)
        else:
            bound = 1
            while pos - bound >= 0 and (
                self._read_entry(block, capacity, pos - bound)[0] > key
            ):
                bound *= 2
            lo, hi = max(pos - bound, 0), pos - bound // 2
        # Invariant: entry[lo] <= key (or lo == 0), entry[hi] may be > key.
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self._read_entry(block, capacity, mid)[0] <= key:
                lo = mid
            else:
                hi = mid - 1
        if self._read_entry(block, capacity, lo)[0] > key:
            return -1
        return lo

    # -- vectorized batch helpers ----------------------------------------------------
    #
    # The mirror-based twins below issue *exactly* the byte ranges the
    # scalar helpers issue, in the same order, but serve ranges already
    # fetched in this ``pager.batch()`` scope locally — those repeats are
    # the calls the pager would have answered from its pin cache for
    # free, so charged I/O stays bit-identical while the per-probe
    # Python overhead collapses to a dict lookup and a slice.

    def _descend_vec(self, key: int, mirror: BlockMirror,
                     inner_headers: Dict[int, Tuple[int, LinearModel]],
                     child_ptrs: Dict[Tuple[int, int], int],
                     ptr: Optional[int] = None) -> int:
        """``_descend`` through a mirror with parsed-header/pointer caches.

        ``ptr`` lets the batched caller resume from a child pointer it
        already resolved (the root level is predicted for the whole
        batch in one numpy op)."""
        if ptr is None:
            if self.root_ptr is None:
                raise RuntimeError("index not bulk-loaded")
            ptr = self.root_ptr
        while not _ptr_is_data(ptr):
            offset = _ptr_block(ptr)
            parsed = inner_headers.get(offset)
            if parsed is None:
                raw = mirror.read(offset, HEADER_SIZE)
                _type, fanout, slope, intercept, anchor = (
                    _INNER_HEADER.unpack_from(raw, 0))
                parsed = inner_headers[offset] = (
                    fanout, LinearModel(slope, intercept, anchor))
            fanout, model = parsed
            slot = model.predict_clamped(key, fanout)
            child = child_ptrs.get((offset, slot))
            if child is None:
                raw = mirror.read(offset + HEADER_SIZE + slot * 8, 8)
                child = child_ptrs[(offset, slot)] = _U64.unpack(raw)[0]
            ptr = child
        return _ptr_block(ptr)


    # -- lookup ----------------------------------------------------------------------

    def lookup(self, key: int) -> Optional[int]:
        with self.pager.phase("search"):
            block, _path = self._descend(key)
            header = self._read_data_header(block)
            if header.num_keys == 0:
                return None
            slot = self._exponential_search(block, header, key)
            if slot < 0:
                return None
            found_key, payload = self._read_entry(block, header.capacity, slot)
        if found_key != key or payload == TOMBSTONE:
            return None
        return payload

    def lookup_many(self, keys) -> List[Optional[int]]:
        """Batched lookups: descend once per distinct key with the inner
        byte ranges pinned (shared across the sorted batch), fetch the
        distinct data-node header blocks in one coalesced span, then run
        the per-key exponential searches against the pinned nodes."""
        keys = list(keys)
        if len(keys) <= 1:
            return [self.lookup(key) for key in keys]
        unique = sorted(set(keys))
        results = {}
        with self.pager.phase("search"), self.pager.batch():
            if _vectorized():
                self._lookup_many_vec(unique, results)
            else:
                node_of = {key: self._descend(key)[0] for key in unique}
                self.pager.read_span(self._data_file, node_of.values())
                headers = {}
                for key in unique:
                    block = node_of[key]
                    header = headers.get(block)
                    if header is None:
                        header = headers[block] = self._read_data_header(block)
                    if header.num_keys == 0:
                        results[key] = None
                        continue
                    slot = self._exponential_search(block, header, key)
                    if slot < 0:
                        results[key] = None
                        continue
                    found_key, payload = self._read_entry(block, header.capacity, slot)
                    results[key] = (payload if found_key == key and payload != TOMBSTONE
                                    else None)
        return [results[key] for key in keys]

    def _lookup_many_vec(self, unique: List[int], results: dict) -> None:
        """Vectorized batch body: mirror-served descent and probes, with
        the root level and the in-node slot predictions each evaluated
        for the whole batch in one numpy pass.  Pager calls (and hence
        charged I/O) match the scalar body bit for bit."""
        inner_mirror = BlockMirror(self.pager, self._inner_file)
        data_mirror = BlockMirror(self.pager, self._data_file)
        inner_headers: Dict[int, Tuple[int, LinearModel]] = {}
        # Root-level entries key on the bare slot (hot path); deeper
        # levels key on ``(node_off, slot)`` — the types cannot collide.
        child_ptrs: Dict[Any, int] = {}
        root = self.root_ptr
        if root is None:
            raise RuntimeError("index not bulk-loaded")
        if _ptr_is_data(root):
            block = _ptr_block(root)
            node_of = dict.fromkeys(unique, block)
        else:
            # Every key starts at the root, so its slot predictions can
            # be one batch op.  The root header is read first — exactly
            # when the scalar body's first descent would read it — and
            # child pointers resolve per key in batch order, preserving
            # the scalar first-touch sequence.
            root_off = _ptr_block(root)
            raw = inner_mirror.read(root_off, HEADER_SIZE)
            _type, fanout, slope, intercept, anchor = (
                _INNER_HEADER.unpack_from(raw, 0))
            root_model = LinearModel(slope, intercept, anchor)
            inner_headers[root_off] = (fanout, root_model)
            root_slots = root_model.predict_clamped_many(
                np.array(unique, dtype=np.uint64), fanout).tolist()
            node_of = {}
            unpack_u64_from = _U64.unpack_from
            bs = self.pager.block_size
            inner_blocks = inner_mirror.blocks
            inner_get = inner_blocks.get
            ptr_base = root_off + HEADER_SIZE
            for key, slot in zip(unique, root_slots):
                child = child_ptrs.get(slot)
                if child is None:
                    # Pointer decode inlined from ``inner_mirror.read``:
                    # same pager first-touch when the block is unseen,
                    # same pin-equivalent dict hit when it is.
                    offset = ptr_base + slot * 8
                    block_no = offset // bs
                    rel = offset - block_no * bs
                    if rel + 8 <= bs:
                        data = inner_get(block_no)
                        if data is None:
                            data = inner_mirror.pager.read_block(
                                inner_mirror.file, block_no)
                            inner_blocks[block_no] = data
                        child = unpack_u64_from(data, rel)[0]
                    else:
                        child = _U64.unpack(inner_mirror.read(offset, 8))[0]
                    child_ptrs[slot] = child
                if _ptr_is_data(child):
                    node_of[key] = _ptr_block(child)
                else:
                    node_of[key] = self._descend_vec(
                        key, inner_mirror, inner_headers, child_ptrs,
                        ptr=child)
        data_mirror.absorb(self.pager.read_span(self._data_file, node_of.values()))
        bs = self.pager.block_size
        data_blocks = data_mirror.blocks
        # Per-node (base, capacity, slope, intercept, anchor) — header
        # blocks were all fetched by the span above, so decoding straight
        # off the mirrored block bytes is charge-free.  Empty nodes map
        # to None.  ``base`` inlines ``_entries_offset(block, capacity, 0)``.
        node_params: Dict[int, Optional[Tuple[int, int, float, float, int]]] = {}
        unpack_header = _DATA_HEADER_HOT.unpack_from
        for block in node_of.values():
            if block not in node_params:
                (_type, capacity, num_keys, slope, intercept,
                 anchor) = unpack_header(data_blocks[block], 0)
                node_params[block] = (
                    (block * bs + HEADER_SIZE + (capacity + 7) // 8, capacity,
                     slope, intercept, anchor)
                    if num_keys else None)
        # One model evaluation for the whole batch: gather each key's node
        # model parameters into parallel arrays and run a single anchored
        # multiply-add.  Element-wise this applies exactly the float64 ops
        # of per-node ``predict_clamped_many`` (same slope/intercept per
        # lane), so predicted slots are identical.  ``items`` and
        # ``params_list`` stay index-aligned so the search loop threads
        # positions through without per-key dict lookups.
        items = list(node_of.items())
        params_list = [node_params[block] for _key, block in items]
        gathered = [(item[0], params, i)
                    for i, (item, params) in enumerate(zip(items, params_list))
                    if params is not None]
        pos_list: List[int] = [0] * len(items)
        if gathered:
            pred_keys = [g[0] for g in gathered]
            _bases, _caps, slopes, intercepts, anchors = zip(
                *(g[1] for g in gathered))
            diffs = anchored_diff(np.array(pred_keys, dtype=np.uint64),
                                  np.array(anchors, dtype=np.uint64))
            positions = truncate_positions(
                np.array(slopes) * diffs + np.array(intercepts))
            np.clip(positions, 0, np.array(_caps, dtype=np.int64) - 1,
                    out=positions)
            for g, pos in zip(gathered, positions.tolist()):
                pos_list[g[2]] = pos
        unpack_entry = _ENTRY.unpack_from
        for (key, _block), params, pos in zip(items, params_list, pos_list):
            if params is None:
                results[key] = None
                continue
            base, capacity = params[0], params[1]
            slot = _search_node_vec(data_mirror, base, capacity, key, pos)
            if slot < 0:
                results[key] = None
                continue
            offset = base + slot * ENTRY_SIZE
            block_no = offset // bs
            rel = offset - block_no * bs
            if rel + ENTRY_SIZE <= bs:
                # The winning slot was just probed, so its block is
                # mirrored; decode in place (scalar re-reads it through
                # the pin cache — equally charge-free).
                found_key, payload = unpack_entry(data_blocks[block_no], rel)
            else:
                found_key, payload = _ENTRY.unpack(
                    data_mirror.read(offset, ENTRY_SIZE))
            results[key] = (payload if found_key == key and payload != TOMBSTONE
                            else None)

    # -- insert ----------------------------------------------------------------------

    def insert(self, key: int, payload: int) -> None:
        with self.pager.phase("search"):
            block, path = self._descend(key)
            header = self._read_data_header(block)
            slot = self._exponential_search(block, header, key) if header.num_keys else -1
            if slot >= 0:
                found_key, found_payload = self._read_entry(block, header.capacity, slot)
                if found_key == key:
                    if found_payload != TOMBSTONE:
                        raise KeyError(f"duplicate key {key}")
                    # Re-inserting a deleted key: rewrite the payload run.
                    with self.pager.phase("insert"):
                        self._overwrite_payload_run(block, header, slot, key, payload)
                    return
        # ALEX runs the SMO *before* inserting into a node at the density
        # threshold, so the insert below always finds a gap.  A sideways
        # split whose slot boundary misses the key range can leave one
        # side still at the threshold; widths shrink every round and the
        # split-down mechanism terminates the loop.
        rounds = 0
        while header.num_keys + 1 > int(header.capacity * self.full_density):
            rounds += 1
            if rounds > 200:
                raise RuntimeError("SMO failed to make room after 200 rounds")
            with self.pager.phase("smo"):
                self._smo(block, header, path)
            with self.pager.phase("search"):
                block, path = self._descend(key)
                header = self._read_data_header(block)
                slot = (self._exponential_search(block, header, key)
                        if header.num_keys else -1)
        with self.pager.phase("insert"):
            self._insert_into_node(block, header, slot + 1, key, payload)
        with self.pager.phase("maintenance"):
            header.num_keys += 1
            header.num_inserts += 1
            self._write_data_header(block, header)

    def _insert_into_node(self, block: int, header: _DataHeader, position: int,
                          key: int, payload: int) -> None:
        """Place an entry at its sorted position inside the gapped array.

        ``position`` is the unclamped sorted insert index (0..capacity);
        ``position == capacity`` means the key is greater than every
        stored entry.
        """
        capacity = header.capacity
        if position >= capacity:
            if not self._bit_is_set(block, capacity - 1):
                # The tail slot is a gap (holding a copy <= key): claim it.
                position = capacity - 1
            else:
                self._shift_left_insert(block, header, capacity, key, payload)
                return
        if not self._bit_is_set(block, position):
            # The target slot is a gap: claim it, then overwrite the
            # following gap run with copies of the new key (S5 part 1).
            self._write_entries(block, capacity, position, [(key, payload)])
            self._set_bit(block, position)
            run = position + 1
            while run < capacity and not self._bit_is_set(block, run):
                self._write_entries(block, capacity, run, [(key, payload)])
                run += 1
            return
        # Occupied: shift right to the nearest gap (S5 part 2).
        gap = position + 1
        while gap < capacity and self._bit_is_set(block, gap):
            gap += 1
        if gap >= capacity:
            self._shift_left_insert(block, header, position, key, payload)
            return
        entries = self._read_entries(block, capacity, position, gap - position)
        self._write_entries(block, capacity, position, [(key, payload)] + entries)
        self._set_bit(block, gap)
        header.num_shifts += gap - position

    def _shift_left_insert(self, block: int, header: _DataHeader, position: int,
                           key: int, payload: int) -> None:
        """Shift the run left of ``position`` down one slot; key lands at
        ``position - 1``.  Used when no gap exists to the right."""
        capacity = header.capacity
        gap = position - 1
        while gap >= 0 and self._bit_is_set(block, gap):
            gap -= 1
        if gap < 0:
            raise RuntimeError("data node has no free slot despite density check")
        entries = self._read_entries(block, capacity, gap + 1, position - gap - 1)
        self._write_entries(block, capacity, gap, entries + [(key, payload)])
        self._set_bit(block, gap)
        header.num_shifts += position - gap

    # -- update / delete ----------------------------------------------------------------

    def update(self, key: int, payload: int) -> bool:
        with self.pager.phase("search"):
            block, _path = self._descend(key)
            header = self._read_data_header(block)
            if header.num_keys == 0:
                return False
            slot = self._exponential_search(block, header, key)
            if slot < 0:
                return False
            found_key, found_payload = self._read_entry(block, header.capacity, slot)
        if found_key != key or found_payload == TOMBSTONE:
            return False
        with self.pager.phase("insert"):
            self._overwrite_payload_run(block, header, slot, key, payload)
        return True

    def delete(self, key: int) -> bool:
        """Logical delete via a tombstone payload.

        Physically clearing the slot would leave a hole the gap-copy
        invariant cannot express; tombstones are filtered from scans and
        dropped when the node's next SMO rebuilds it.
        """
        with self.pager.phase("search"):
            block, _path = self._descend(key)
            header = self._read_data_header(block)
            if header.num_keys == 0:
                return False
            slot = self._exponential_search(block, header, key)
            if slot < 0:
                return False
            found_key, found_payload = self._read_entry(block, header.capacity, slot)
        if found_key != key or found_payload == TOMBSTONE:
            return False
        with self.pager.phase("insert"):
            self._overwrite_payload_run(block, header, slot, key, TOMBSTONE)
        return True

    def _overwrite_payload_run(self, block: int, header: _DataHeader, slot: int,
                               key: int, payload: int) -> None:
        """Rewrite an entry and the gap copies mirroring it.

        ``slot`` may point at any copy of the key; the whole contiguous
        run holding this key's value (the real slot plus its forward gap
        copies, and any copies the search landed on) must agree, because
        lookups may terminate on any of them.
        """
        capacity = header.capacity
        lo = slot
        while lo > 0 and self._read_entry(block, capacity, lo - 1)[0] == key:
            lo -= 1
        hi = slot
        while hi + 1 < capacity and self._read_entry(block, capacity, hi + 1)[0] == key:
            hi += 1
        self._write_entries(block, capacity, lo,
                            [(key, payload)] * (hi - lo + 1))

    # -- structure modification ---------------------------------------------------------

    def _read_real_entries(self, block: int, header: _DataHeader) -> List[KeyPayload]:
        """All live entries of a data node, via bitmap + entry regions."""
        capacity = header.capacity
        bitmap = self.pager.read_bytes(self._data_file, self._bitmap_offset(block, 0),
                                       self._bitmap_bytes(capacity))
        entries = self._read_entries(block, capacity, 0, capacity)
        return [
            entries[slot]
            for slot in range(capacity)
            if bitmap[slot >> 3] & (1 << (slot & 7))
            and entries[slot][1] != TOMBSTONE  # deletes reclaimed at SMO time
        ]

    def _smo(self, block: int, header: _DataHeader, path: List[Tuple[int, int]]) -> None:
        items = self._read_real_entries(block, header)
        self._data_file.free(block, self._data_extent_blocks(header.capacity))
        shrunk = len(items) < int(self.max_data_node_entries * self.init_density)
        if header.capacity < self.max_data_node_entries or shrunk:
            # Expand (or, when tombstones shrank the live set, rebuild at
            # the size the live items warrant): doubled capacity capped
            # at the maximum.
            self.num_expands += 1
            capacity = min(max(header.capacity * 2, self._initial_capacity(len(items))),
                           self.max_data_node_entries)
            new_block = self._build_data_node(items, capacity=capacity,
                                              prev=header.prev, next_=header.next)
            self._fix_sibling_links(new_block, header.prev, header.next)
            self._replace_child(path, block, new_block)
            return
        self.num_splits += 1
        self._split_data_node(block, header, items, path)

    def _split_data_node(self, block: int, header: _DataHeader,
                         items: List[KeyPayload], path: List[Tuple[int, int]]) -> None:
        """Split a full data node sideways at a parent slot boundary.

        The parent routes keys with its linear model, so the split point
        must be the key boundary of a parent slot — splitting by item
        count would strand keys in the wrong child.
        """
        if not path:
            # Root data node: grow a 2-way inner root split at the item median.
            model, split_at = self._two_way_split(items)
            left_block, right_block = self._write_split_pair(
                items, split_at, header.prev, header.next)
            root = self._write_inner(2, model, [_pack_ptr(True, left_block),
                                                _pack_ptr(True, right_block)])
            self.root_ptr = _pack_ptr(False, root)
            return
        parent_offset, slot = path[-1]
        old_ptr = _pack_ptr(True, block)
        fanout, model = self._read_inner_header(parent_offset)
        lo, hi = self._ptr_range(parent_offset, fanout, slot, old_ptr)
        if hi - lo + 1 < 2:
            # The child occupies a single parent slot: "split down" —
            # replace the data node with a 2-way inner node whose model
            # boundary is the item median, which always halves the node
            # (ALEX's fourth SMO mechanism).
            self._split_down(block, header, items, parent_offset, slot)
            return
        mid_slot = (lo + hi + 1) // 2
        # Partition with the parent's own routing function so the split
        # is consistent with later descents, float rounding included.
        split_at = _partition_point(
            items, lambda key: model.predict_clamped(key, fanout) < mid_slot)
        left_block, right_block = self._write_split_pair(
            items, split_at, header.prev, header.next)
        ptrs = ([_pack_ptr(True, left_block)] * (mid_slot - lo)
                + [_pack_ptr(True, right_block)] * (hi - mid_slot + 1))
        raw = struct.pack(f"<{len(ptrs)}Q", *ptrs)
        self.pager.write_bytes(self._inner_file,
                               parent_offset + HEADER_SIZE + lo * 8, raw)

    def _two_way_split(self, items: List[KeyPayload]) -> Tuple[LinearModel, int]:
        """A fanout-2 model splitting ``items`` near the median.

        The model is anchored at the adjacent pair around the median
        with a +0.5 margin so float truncation cannot flip the boundary;
        the returned split index is computed with the model's own
        routing function, guaranteeing consistency with descents.  If
        the margin is still eaten by rounding (astronomically tight key
        pairs), neighbouring medians are tried outward.
        """
        n = len(items)
        order = [n // 2]
        for step in range(1, n):
            if n // 2 + step < n:
                order.append(n // 2 + step)
            if n // 2 - step > 0:
                order.append(n // 2 - step)
        for mid in order:
            a, b = items[mid - 1][0], items[mid][0]
            slope = 1.0 / (b - a)
            model = LinearModel(slope=slope, intercept=0.5, anchor=a)
            split_at = _partition_point(
                items, lambda key: model.predict_clamped(key, 2) < 1)
            if 0 < split_at < n:
                return model, split_at
        raise RuntimeError("could not find a splittable boundary in data node")

    def _write_split_pair(self, items: List[KeyPayload], split_at: int,
                          prev: int, next_: int) -> Tuple[int, int]:
        """Write two sibling data nodes holding items[:split_at] / items[split_at:]."""
        left_items, right_items = items[:split_at], items[split_at:]
        left_block = self._build_data_node(left_items, prev=prev)
        right_block = self._build_data_node(right_items, next_=next_)
        left_header = self._read_data_header(left_block)
        left_header.next = right_block
        self._write_data_header(left_block, left_header)
        right_header = self._read_data_header(right_block)
        right_header.prev = left_block
        self._write_data_header(right_block, right_header)
        self._fix_sibling_links(left_block, prev, NULL_BLOCK)
        self._fix_sibling_links(right_block, NULL_BLOCK, next_)
        return left_block, right_block

    def _ptr_range(self, parent_offset: int, fanout: int, slot: int,
                   ptr: int) -> Tuple[int, int]:
        """Inclusive slot range of the parent pointing at ``ptr``."""
        lo = hi = slot
        while lo > 0 and self._read_child_ptr(parent_offset, lo - 1) == ptr:
            lo -= 1
        while hi + 1 < fanout and self._read_child_ptr(parent_offset, hi + 1) == ptr:
            hi += 1
        return lo, hi

    def _split_down(self, block: int, header: _DataHeader, items: List[KeyPayload],
                    parent_offset: int, slot: int) -> None:
        """Replace a one-slot data node with a 2-way inner node over two halves."""
        self.num_split_downs += 1
        model, split_at = self._two_way_split(items)
        left_block, right_block = self._write_split_pair(
            items, split_at, header.prev, header.next)
        inner = self._write_inner(2, model, [_pack_ptr(True, left_block),
                                             _pack_ptr(True, right_block)])
        raw = struct.pack("<Q", _pack_ptr(False, inner))
        self.pager.write_bytes(self._inner_file,
                               parent_offset + HEADER_SIZE + slot * 8, raw)

    def _fix_sibling_links(self, new_block: int, prev: int, next_: int) -> None:
        if prev != NULL_BLOCK:
            neighbor = self._read_data_header(prev)
            neighbor.next = new_block
            self._write_data_header(prev, neighbor)
        if next_ != NULL_BLOCK:
            neighbor = self._read_data_header(next_)
            neighbor.prev = new_block
            self._write_data_header(next_, neighbor)

    def _replace_child(self, path: List[Tuple[int, int]], old_block: int,
                       new_block: int) -> None:
        """Repoint the parent's slot range for ``old_block`` at a new node."""
        old_ptr = _pack_ptr(True, old_block)
        new_ptr = _pack_ptr(True, new_block)
        if not path:
            self.root_ptr = new_ptr
            return
        parent_offset, slot = path[-1]
        fanout, _model = self._read_inner_header(parent_offset)
        lo, hi = self._ptr_range(parent_offset, fanout, slot, old_ptr)
        width = hi - lo + 1
        raw = struct.pack(f"<{width}Q", *([new_ptr] * width))
        self.pager.write_bytes(self._inner_file,
                               parent_offset + HEADER_SIZE + lo * 8, raw)

    # -- scan -------------------------------------------------------------------------

    def scan(self, start_key: int, count: int) -> List[KeyPayload]:
        with self.pager.phase("scan"):
            return self._scan(start_key, count)

    def _scan(self, start_key: int, count: int) -> List[KeyPayload]:
        out: List[KeyPayload] = []
        if count <= 0 or self.root_ptr is None:
            return out
        block, _path = self._descend(start_key)
        header = self._read_data_header(block)
        if header.num_keys and start_key > 0:
            # Leftmost slot with value >= start_key.  Gap slots duplicate a
            # real entry's value, so the rightmost <= start_key slot can be
            # a *copy* sitting after the real entry — lower-bound semantics
            # (search for start_key - 1) cannot skip the real slot.
            start_slot = self._exponential_search(block, header, start_key - 1) + 1
        else:
            start_slot = 0
        while True:
            if header.num_keys:
                self._scan_node(block, header, start_slot, start_key, count, out)
            if len(out) >= count or header.next == NULL_BLOCK:
                return out[:count]
            block = header.next
            header = self._read_data_header(block)
            start_slot = 0

    def _scan_node(self, block: int, header: _DataHeader, start_slot: int,
                   start_key: int, count: int, out: List[KeyPayload]) -> None:
        """Collect live entries >= start_key, reading the bitmap block-wise.

        Follows the paper's Section 4.1: bitmap blocks are loaded one at a
        time and entry ranges fetched for their set bits.
        """
        capacity = header.capacity
        bs = self.pager.block_size
        bitmap_bytes = self._bitmap_bytes(capacity)
        byte_index = start_slot >> 3
        while byte_index < bitmap_bytes and len(out) < count:
            # Read the rest of the bitmap block this byte falls into.
            block_end = min(bitmap_bytes,
                            ((self._bitmap_offset(block, byte_index) // bs) + 1) * bs
                            - self._bitmap_offset(block, 0))
            chunk = self.pager.read_bytes(self._data_file,
                                          self._bitmap_offset(block, byte_index),
                                          block_end - byte_index)
            slots = [
                (byte_index + i) * 8 + bit
                for i, byte in enumerate(chunk)
                for bit in range(8)
                if byte & (1 << bit)
            ]
            slots = [s for s in slots if s >= start_slot and s < capacity]
            # Fetch entries in groups capped by the remaining scan need, so
            # a sparse node never costs a whole-span read.
            group_start = 0
            while group_start < len(slots) and len(out) < count:
                group = slots[group_start : group_start + (count - len(out))]
                entries = self._read_entries(block, capacity, group[0],
                                             group[-1] - group[0] + 1)
                for s in group:
                    key, payload = entries[s - group[0]]
                    if key >= start_key and payload != TOMBSTONE:
                        out.append((key, payload))
                        if len(out) >= count:
                            break
                group_start += len(group)
            byte_index = block_end

    # -- misc -------------------------------------------------------------------------

    def set_inner_memory_resident(self, resident: bool) -> None:
        if self.layout != 2:
            raise NotImplementedError("memory-resident inner nodes require Layout#2")
        self._inner_file.memory_resident = resident

    def verify(self) -> int:
        """Check tree reachability, gapped-array monotonicity, bitmap
        consistency and the sibling chain's global key order."""
        with self._free_io():
            leaves: List[int] = []
            self._collect_leaves(self.root_ptr, leaves)
            count = 0
            previous_key = -1
            previous_block = NULL_BLOCK
            for block in leaves:
                header = self._read_data_header(block)
                assert header.prev == previous_block, "broken data-node prev link"
                capacity = header.capacity
                bitmap = self.pager.read_bytes(
                    self._data_file, self._bitmap_offset(block, 0),
                    self._bitmap_bytes(capacity))
                entries = self._read_entries(block, capacity, 0, capacity)
                real = 0
                node_previous = -1
                for slot in range(capacity):
                    key = entries[slot][0]
                    if header.num_keys:
                        assert key >= node_previous, "gapped array not non-decreasing"
                    node_previous = key
                    if bitmap[slot >> 3] & (1 << (slot & 7)):
                        real += 1
                        assert key > previous_key, "real keys out of global order"
                        previous_key = key
                        if entries[slot][1] != TOMBSTONE:
                            count += 1
                assert real == header.num_keys, (
                    f"bitmap population {real} != header num_keys {header.num_keys}")
                previous_block = block
                # The next pointer must agree with the collected order.
            for left, right in zip(leaves, leaves[1:]):
                assert self._read_data_header(left).next == right, "broken next link"
            if leaves:
                assert self._read_data_header(leaves[-1]).next == NULL_BLOCK
            return count

    def init_params(self) -> dict:
        return {"layout": self.layout,
                "max_data_node_entries": self.max_data_node_entries,
                "init_density": self.init_density,
                "full_density": self.full_density,
                "max_fanout": self.max_fanout,
                "file_prefix": self._file_prefix}

    def to_meta(self) -> dict:
        return {"root_ptr": self.root_ptr, "inner_tail": self._inner_tail,
                "num_expands": self.num_expands, "num_splits": self.num_splits,
                "num_split_downs": self.num_split_downs}

    def restore_meta(self, meta: dict) -> None:
        self.root_ptr = meta["root_ptr"]
        self._inner_tail = meta["inner_tail"]
        self.num_expands = meta["num_expands"]
        self.num_splits = meta["num_splits"]
        self.num_split_downs = meta["num_split_downs"]

    def file_roles(self) -> dict:
        if self.layout != 2:
            return {self._inner_file.name: "leaf"}  # shared file: report as leaf
        return {self._inner_file.name: "inner", self._data_file.name: "leaf"}

    def height(self) -> int:
        if self.root_ptr is None:
            return 0
        depth = 1
        ptr = self.root_ptr
        while not _ptr_is_data(ptr):
            offset = _ptr_block(ptr)
            fanout, _model = self._read_inner_header(offset)
            ptr = self._read_child_ptr(offset, 0)
            depth += 1
        return depth
