"""On-disk B+-tree.

The baseline of the paper's entire evaluation: "one of the most efficient
and commonly used on-disk data structures in the database community".
One node occupies exactly one block.  Inner nodes and leaves live in
separate files so that the Section 6.2 hybrid case (inner nodes pinned in
main memory) is a one-line flag.

The tree is generic over the leaf record: a record is ``(key, data)``
with fixed-size ``data`` bytes.  The baseline index stores 8-byte
payloads; the FITing-tree reuses the same machinery with 28-byte segment
descriptors as records, which matches the paper's design of keeping each
segment's linear model *in the parent* (avoiding shortcoming S1).

Layouts (little endian):

* leaf block: ``u16 count | u16 pad | u32 next | u32 prev | u32 pad``
  then ``count`` records of ``8 + data_size`` bytes, key first, sorted.
* inner block: ``u16 count | u8 child_is_leaf | 13 pad bytes`` then
  ``count`` entries of ``u64 separator_key | u32 child_block``.  Entry
  ``i``'s separator is the minimum key of child ``i``'s subtree; routing
  picks the rightmost separator <= search key.
"""

from __future__ import annotations

import struct
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..storage import BlockFile, Pager
from .codecs import get_codec
from .interface import DiskIndex, KeyPayload
from .serial import ENTRY_SIZE, NULL_BLOCK, pack_entries, unpack_u64s
from .vectorize import enabled as _vectorized

__all__ = ["BPlusTree", "BTreeIndex"]

_LEAF_HEADER = struct.Struct("<HHIII")  # count, pad, next, prev, pad
_INNER_HEADER = struct.Struct("<HB13x")  # count, child_is_leaf
_INNER_ENTRY = struct.Struct("<QI")  # separator key, child block
_CHILD_PTR = struct.Struct("<I")
_PAYLOAD = struct.Struct("<Q")
HEADER_SIZE = 16
INNER_ENTRY_SIZE = _INNER_ENTRY.size  # 12


class _Leaf:
    """Parsed leaf node."""

    __slots__ = ("count", "next", "prev", "keys", "datas")

    def __init__(self, count: int, next_: int, prev: int,
                 keys: List[int], datas: List[bytes]) -> None:
        self.count = count
        self.next = next_
        self.prev = prev
        self.keys = keys
        self.datas = datas


class _Inner:
    """Parsed inner node."""

    __slots__ = ("count", "child_is_leaf", "keys", "children")

    def __init__(self, count: int, child_is_leaf: bool,
                 keys: List[int], children: List[int]) -> None:
        self.count = count
        self.child_is_leaf = child_is_leaf
        self.keys = keys
        self.children = children


class BPlusTree:
    """A disk-resident B+-tree over fixed-size records.

    Args:
        pager: storage access path.
        inner_file: file holding inner nodes (one node per block).
        leaf_file: file holding leaf nodes (one node per block).
        data_size: bytes of per-record data stored after the 8-byte key.
        leaf_fill: bulk-load fill factor of leaves (default 0.8, which
            reproduces the paper's 980,393 leaves for 200M keys at 4 KiB).
        inner_fill: bulk-load fill factor of inner nodes.
    """

    def __init__(
        self,
        pager: Pager,
        inner_file: BlockFile,
        leaf_file: BlockFile,
        data_size: int = 8,
        leaf_fill: float = 0.8,
        inner_fill: float = 0.8,
        codec: str = "raw",
    ) -> None:
        if data_size <= 0:
            raise ValueError(f"data size must be positive, got {data_size}")
        if not 0.1 <= leaf_fill <= 1.0 or not 0.1 <= inner_fill <= 1.0:
            raise ValueError("fill factors must be in [0.1, 1.0]")
        self.codec = get_codec(codec)
        if not self.codec.is_raw and data_size != 8:
            # The codecs compress (u64 key, u64 payload) pairs; records
            # with wider data (FITing segment descriptors) stay raw.
            raise ValueError(
                f"codec {self.codec.name!r} requires 8-byte record data, "
                f"got {data_size}")
        self.pager = pager
        self.inner_file = inner_file
        self.leaf_file = leaf_file
        self.data_size = data_size
        self.record_size = 8 + data_size
        bs = pager.block_size
        self.leaf_capacity = (bs - HEADER_SIZE) // self.record_size
        self.inner_capacity = (bs - HEADER_SIZE) // INNER_ENTRY_SIZE
        if self.leaf_capacity < 2 or self.inner_capacity < 2:
            raise ValueError(f"block size {bs} too small for record size {self.record_size}")
        self.leaf_fill = leaf_fill
        self.inner_fill = inner_fill
        # Meta (allowed in memory per the paper's meta-block convention).
        self.root_block = NULL_BLOCK
        self.root_is_leaf = True
        self.num_levels = 1
        self.num_records = 0

    # -- node (de)serialization ------------------------------------------------

    def _parse_leaf(self, data: bytes) -> _Leaf:
        count, _pad, next_, prev, _pad2 = _LEAF_HEADER.unpack_from(data, 0)
        rs = self.record_size
        if not self.codec.is_raw:
            # Compressed leaf: the codec page after the header is
            # self-framing (its own header validates the codec id).
            if not count:
                return _Leaf(0, next_, prev, [], [])
            entries = self.codec.decode(data, offset=HEADER_SIZE)
            keys = [key for key, _ in entries]
            datas = [_PAYLOAD.pack(payload) for _, payload in entries]
            return _Leaf(count, next_, prev, keys, datas)
        if rs == ENTRY_SIZE and count:
            # 16-byte records are exactly the shared u64-pair layout: one
            # flattened unpack for the keys, plain slices for the datas.
            flat = unpack_u64s(data, 2 * count, offset=HEADER_SIZE)
            keys = list(flat[0::2])
            datas = [bytes(data[HEADER_SIZE + i * rs + 8 : HEADER_SIZE + (i + 1) * rs])
                     for i in range(count)]
            return _Leaf(count, next_, prev, keys, datas)
        keys: List[int] = []
        datas: List[bytes] = []
        off = HEADER_SIZE
        for _ in range(count):
            keys.append(struct.unpack_from("<Q", data, off)[0])
            datas.append(bytes(data[off + 8 : off + rs]))
            off += rs
        return _Leaf(count, next_, prev, keys, datas)

    def _leaf_entries(self, leaf: _Leaf) -> List[Tuple[int, int]]:
        """Leaf records as (key, u64 payload) pairs for the codec."""
        return [(key, _PAYLOAD.unpack(data)[0])
                for key, data in zip(leaf.keys, leaf.datas)]

    def _leaf_fits(self, leaf: _Leaf) -> bool:
        """Post-insert capacity check: entry count for the raw layout,
        encoded byte size for a compressed codec (data-dependent)."""
        if self.codec.is_raw:
            return leaf.count <= self.leaf_capacity
        if leaf.count > self.codec.max_entries(self.pager.block_size):
            return False
        size = self.codec.encoded_size(self._leaf_entries(leaf))
        return size <= self.pager.block_size - HEADER_SIZE

    def _serialize_leaf(self, leaf: _Leaf) -> bytes:
        out = bytearray(self.pager.block_size)
        if not self.codec.is_raw:
            _LEAF_HEADER.pack_into(out, 0, leaf.count, self.codec.codec_id,
                                   leaf.next, leaf.prev, 0)
            page = self.codec.encode(self._leaf_entries(leaf))
            if len(page) > self.pager.block_size - HEADER_SIZE:
                raise ValueError("compressed leaf overflows its block")
            out[HEADER_SIZE : HEADER_SIZE + len(page)] = page
            return bytes(out)
        _LEAF_HEADER.pack_into(out, 0, leaf.count, 0, leaf.next, leaf.prev, 0)
        rs = self.record_size
        if rs == ENTRY_SIZE and leaf.count:
            payloads = unpack_u64s(b"".join(leaf.datas), leaf.count)
            out[HEADER_SIZE : HEADER_SIZE + leaf.count * rs] = pack_entries(
                list(zip(leaf.keys, payloads)))
            return bytes(out)
        off = HEADER_SIZE
        for key, data in zip(leaf.keys, leaf.datas):
            struct.pack_into("<Q", out, off, key)
            out[off + 8 : off + rs] = data
            off += rs
        return bytes(out)

    def _parse_inner(self, data: bytes) -> _Inner:
        count, child_is_leaf = _INNER_HEADER.unpack_from(data, 0)
        keys: List[int] = []
        children: List[int] = []
        off = HEADER_SIZE
        for _ in range(count):
            key, child = _INNER_ENTRY.unpack_from(data, off)
            keys.append(key)
            children.append(child)
            off += INNER_ENTRY_SIZE
        return _Inner(count, bool(child_is_leaf), keys, children)

    def _serialize_inner(self, node: _Inner) -> bytes:
        out = bytearray(self.pager.block_size)
        _INNER_HEADER.pack_into(out, 0, node.count, int(node.child_is_leaf))
        off = HEADER_SIZE
        for key, child in zip(node.keys, node.children):
            _INNER_ENTRY.pack_into(out, off, key, child)
            off += INNER_ENTRY_SIZE
        return bytes(out)

    def _read_leaf(self, block: int) -> _Leaf:
        return self._parse_leaf(self.pager.read_block(self.leaf_file, block))

    def _write_leaf(self, block: int, leaf: _Leaf) -> None:
        self.pager.write_block(self.leaf_file, block, self._serialize_leaf(leaf))

    def _read_inner(self, block: int) -> _Inner:
        return self._parse_inner(self.pager.read_block(self.inner_file, block))

    def _write_inner(self, block: int, node: _Inner) -> None:
        self.pager.write_block(self.inner_file, block, self._serialize_inner(node))

    # -- bulk load ----------------------------------------------------------------

    def bulk_load(self, records: Sequence[Tuple[int, bytes]]) -> None:
        """Build the tree bottom-up from key-sorted records."""
        if self.root_block != NULL_BLOCK:
            raise RuntimeError("tree already loaded")
        self.num_records = len(records)
        if not records:
            self.root_block = self.leaf_file.allocate(1)
            self._write_leaf(self.root_block, _Leaf(0, NULL_BLOCK, NULL_BLOCK, [], []))
            self.root_is_leaf = True
            self.num_levels = 1
            return
        if self.codec.is_raw:
            per_leaf = max(1, int(self.leaf_capacity * self.leaf_fill))
            num_leaves = (len(records) + per_leaf - 1) // per_leaf
            chunks = [records[i * per_leaf : (i + 1) * per_leaf]
                      for i in range(num_leaves)]
        else:
            # Greedy byte-budget packing; leaf_fill scales the budget the
            # way it scales the raw layout's entry count, leaving split
            # headroom for later inserts.
            budget = max(64, int(
                (self.pager.block_size - HEADER_SIZE) * self.leaf_fill))
            entries = [(key, _PAYLOAD.unpack(data)[0]) for key, data in records]
            chunks = []
            pos = 0
            while pos < len(entries):
                take = self.codec.pack_greedy(entries, pos, budget)
                chunks.append(records[pos : pos + take])
                pos += take
        num_leaves = len(chunks)
        first = self.leaf_file.allocate(num_leaves)
        level: List[Tuple[int, int]] = []  # (min key, child block)
        for i, chunk in enumerate(chunks):
            next_ = first + i + 1 if i + 1 < num_leaves else NULL_BLOCK
            prev = first + i - 1 if i > 0 else NULL_BLOCK
            leaf = _Leaf(len(chunk), next_, prev,
                         [key for key, _ in chunk], [data for _, data in chunk])
            self._write_leaf(first + i, leaf)
            level.append((chunk[0][0], first + i))
        self.num_levels = 1
        child_is_leaf = True
        while len(level) > 1:
            per_inner = max(2, int(self.inner_capacity * self.inner_fill))
            num_nodes = (len(level) + per_inner - 1) // per_inner
            start = self.inner_file.allocate(num_nodes)
            parent_level: List[Tuple[int, int]] = []
            for i in range(num_nodes):
                chunk = level[i * per_inner : (i + 1) * per_inner]
                node = _Inner(len(chunk), child_is_leaf,
                              [key for key, _ in chunk], [blk for _, blk in chunk])
                self._write_inner(start + i, node)
                parent_level.append((chunk[0][0], start + i))
            level = parent_level
            child_is_leaf = False
            self.num_levels += 1
        self.root_block = level[0][1]
        self.root_is_leaf = self.num_levels == 1

    # -- search ---------------------------------------------------------------------

    @staticmethod
    def _route(keys: List[int], key: int) -> int:
        """Index of the rightmost separator <= key (clamped to 0)."""
        lo, hi = 0, len(keys)
        while lo < hi:
            mid = (lo + hi) // 2
            if keys[mid] <= key:
                lo = mid + 1
            else:
                hi = mid
        return max(0, lo - 1)

    def _descend(self, key: int) -> Tuple[int, List[Tuple[int, int]]]:
        """Walk to the leaf for ``key``; return (leaf block, inner path).

        The path lists ``(inner block, child slot)`` pairs from the root
        down — transient state used by insert splits, never persisted.
        """
        if self.root_block == NULL_BLOCK:
            raise RuntimeError("tree not loaded; call bulk_load first")
        path: List[Tuple[int, int]] = []
        if self.root_is_leaf:
            return self.root_block, path
        block = self.root_block
        while True:
            node = self._read_inner(block)
            slot = self._route(node.keys, key)
            path.append((block, slot))
            if node.child_is_leaf:
                return node.children[slot], path
            block = node.children[slot]

    def lookup(self, key: int) -> Optional[bytes]:
        """Exact-match search; returns the record data or None."""
        leaf_block, _ = self._descend(key)
        leaf = self._read_leaf(leaf_block)
        slot = self._route(leaf.keys, key)
        if leaf.count and leaf.keys[slot] == key:
            return leaf.datas[slot]
        return None

    # -- batched search -------------------------------------------------------

    def _descend_vec(self, key: int) -> int:
        """Leaf block for ``key`` via cached numpy separator arrays.

        Issues exactly the same per-level ``read_block`` calls as
        :meth:`_descend` (charged I/O is bit-identical); only the parse
        and the in-node binary search are replaced — each inner frame's
        separator column is a cached uint64 array
        (:meth:`Pager.cached_keys`) routed with one ``np.searchsorted``
        instead of materializing ~270 Python tuples per visit.
        """
        if self.root_block == NULL_BLOCK:
            raise RuntimeError("tree not loaded; call bulk_load first")
        if self.root_is_leaf:
            return self.root_block
        pager = self.pager
        file = self.inner_file
        block = self.root_block
        key_u64 = np.uint64(key)
        while True:
            raw = pager.read_block(file, block)
            count, child_is_leaf = _INNER_HEADER.unpack_from(raw, 0)
            seps = pager.cached_keys(file, block, raw, count,
                                     HEADER_SIZE, INNER_ENTRY_SIZE)
            slot = int(np.searchsorted(seps, key_u64, side="right")) - 1
            if slot < 0:
                slot = 0
            child = _CHILD_PTR.unpack_from(
                raw, HEADER_SIZE + slot * INNER_ENTRY_SIZE + 8)[0]
            if child_is_leaf:
                return child
            block = child

    def _descend_batch(self, keys: List[int]) -> Dict[int, int]:
        """Map each key to its leaf block, sharing inner fetches.

        Runs inside an open :meth:`Pager.batch` scope: each inner block
        crossed by any key in the batch is fetched once and pinned, so a
        sorted key batch pays one descent's worth of inner I/O per
        distinct root-to-leaf path instead of per key.
        """
        leaf_of: Dict[int, int] = {}
        if _vectorized():
            for key in keys:
                leaf_of[key] = self._descend_vec(key)
            return leaf_of
        for key in keys:
            leaf_block, _ = self._descend(key)
            leaf_of[key] = leaf_block
        return leaf_of

    def _group_by_leaf(self, keys: List[int],
                       leaf_of: Dict[int, int]) -> Dict[int, List[int]]:
        """Group sorted keys by target leaf, preserving ascending order
        (both across groups and within each group) so on-demand fetches
        happen in exactly the scalar path's sequence."""
        by_leaf: Dict[int, List[int]] = {}
        for key in keys:
            by_leaf.setdefault(leaf_of[key], []).append(key)
        return by_leaf

    def lookup_many_records(self, keys: Iterable[int]) -> Dict[int, Optional[bytes]]:
        """Batched exact-match search; returns ``{key: data or None}``.

        Phase 1 descends for every distinct key (inner blocks pinned and
        shared); phase 2 fetches the distinct leaf blocks in one
        coalesced :meth:`Pager.read_span`; phase 3 searches each leaf
        once per resident key — vectorized, that is one
        ``np.searchsorted`` of the whole key group against the frame's
        cached key array, touching payload bytes only on hits.
        """
        unique = sorted(set(keys))
        out: Dict[int, Optional[bytes]] = {}
        if not unique:
            return out
        with self.pager.batch():
            leaf_of = self._descend_batch(unique)
            blocks = self.pager.read_span(self.leaf_file, leaf_of.values())
            if _vectorized():
                rs = self.record_size
                compressed = not self.codec.is_raw
                for block, group in self._group_by_leaf(unique, leaf_of).items():
                    raw = blocks[block]
                    count = _LEAF_HEADER.unpack_from(raw, 0)[0]
                    if not count:
                        for key in group:
                            out[key] = None
                        continue
                    payloads = None
                    if compressed:
                        leaf_keys, payloads = self.pager.cached_decode(
                            self.leaf_file, block, raw, self.codec,
                            offset=HEADER_SIZE)
                    else:
                        leaf_keys = self.pager.cached_keys(
                            self.leaf_file, block, raw, count, HEADER_SIZE, rs)
                    karr = np.array(group, dtype=np.uint64)
                    slots = np.searchsorted(leaf_keys, karr, side="right")
                    slots = np.maximum(slots.astype(np.int64) - 1, 0)
                    hits = leaf_keys[slots] == karr
                    for key, slot, hit in zip(group, slots.tolist(), hits.tolist()):
                        if not hit:
                            out[key] = None
                        elif compressed:
                            out[key] = _PAYLOAD.pack(int(payloads[slot]))
                        else:
                            off = HEADER_SIZE + slot * rs
                            out[key] = raw[off + 8 : off + rs]
                return out
            parsed: Dict[int, _Leaf] = {}
            for key in unique:
                block = leaf_of[key]
                leaf = parsed.get(block)
                if leaf is None:
                    leaf = parsed[block] = self._parse_leaf(blocks[block])
                slot = self._route(leaf.keys, key)
                if leaf.count and leaf.keys[slot] == key:
                    out[key] = leaf.datas[slot]
                else:
                    out[key] = None
        return out

    def floor_records(self, keys: Iterable[int]) -> Dict[int, Optional[Tuple[int, bytes]]]:
        """Batched :meth:`floor_record`; returns ``{key: (key, data) or None}``."""
        unique = sorted(set(keys))
        out: Dict[int, Optional[Tuple[int, bytes]]] = {}
        if not unique:
            return out
        with self.pager.batch():
            leaf_of = self._descend_batch(unique)
            blocks = self.pager.read_span(self.leaf_file, leaf_of.values())
            if _vectorized():
                self._floor_vec(unique, leaf_of, blocks, out)
                return out
            parsed: Dict[int, _Leaf] = {}

            def leaf_at(block: int) -> _Leaf:
                leaf = parsed.get(block)
                if leaf is None:
                    raw = blocks.get(block)
                    leaf = self._parse_leaf(raw) if raw is not None \
                        else self._read_leaf(block)
                    parsed[block] = leaf
                return leaf

            for key in unique:
                leaf = leaf_at(leaf_of[key])
                if leaf.count == 0:
                    out[key] = None
                    continue
                slot = self._route(leaf.keys, key)
                if leaf.keys[slot] > key:
                    # Key is before this leaf: answer sits in the previous
                    # leaf (fetched on demand — an edge of the key space).
                    if leaf.prev == NULL_BLOCK:
                        out[key] = None
                        continue
                    leaf = leaf_at(leaf.prev)
                    if leaf.count == 0:
                        out[key] = None
                        continue
                    slot = leaf.count - 1
                out[key] = (leaf.keys[slot], leaf.datas[slot])
        return out

    def _floor_vec(self, unique: List[int], leaf_of: Dict[int, int],
                   blocks: Dict[int, bytes], out: Dict) -> None:
        """Vectorized floor search over grouped leaves.

        Group/fetch order matches the scalar loop exactly: groups ascend
        with their smallest key, and a previous-leaf fetch (keys routed
        before the leaf's first record) happens while processing that
        group's leading keys — so the charged I/O sequence is unchanged.
        """
        rs = self.record_size
        compressed = not self.codec.is_raw
        raw_of: Dict[int, bytes] = dict(blocks)

        def raw_at(block: int) -> bytes:
            raw = raw_of.get(block)
            if raw is None:
                raw = raw_of[block] = self.pager.read_block(self.leaf_file, block)
            return raw

        def columns(block: int, raw: bytes, count: int):
            """(keys, payload-bytes-at-slot) for either leaf layout."""
            if compressed:
                leaf_keys, payloads = self.pager.cached_decode(
                    self.leaf_file, block, raw, self.codec, offset=HEADER_SIZE)
                return leaf_keys, lambda slot: _PAYLOAD.pack(int(payloads[slot]))
            leaf_keys = self.pager.cached_keys(
                self.leaf_file, block, raw, count, HEADER_SIZE, rs)
            return leaf_keys, lambda slot: raw[HEADER_SIZE + slot * rs + 8
                                               : HEADER_SIZE + (slot + 1) * rs]

        for block, group in self._group_by_leaf(unique, leaf_of).items():
            raw = raw_at(block)
            count, _pad, _next, prev, _pad2 = _LEAF_HEADER.unpack_from(raw, 0)
            if count == 0:
                for key in group:
                    out[key] = None
                continue
            leaf_keys, data_at = columns(block, raw, count)
            karr = np.array(group, dtype=np.uint64)
            slots = np.searchsorted(leaf_keys, karr, side="right")
            slots = np.maximum(slots.astype(np.int64) - 1, 0)
            before = leaf_keys[slots] > karr
            for key, slot, miss in zip(group, slots.tolist(), before.tolist()):
                if not miss:
                    out[key] = (int(leaf_keys[slot]), data_at(slot))
                    continue
                if prev == NULL_BLOCK:
                    out[key] = None
                    continue
                praw = raw_at(prev)
                pcount = _LEAF_HEADER.unpack_from(praw, 0)[0]
                if pcount == 0:
                    out[key] = None
                    continue
                pkeys, pdata_at = columns(prev, praw, pcount)
                out[key] = (int(pkeys[pcount - 1]), pdata_at(pcount - 1))

    def floor_record(self, key: int) -> Optional[Tuple[int, bytes]]:
        """Rightmost record with key <= ``key`` (FITing segment routing)."""
        leaf_block, _ = self._descend(key)
        leaf = self._read_leaf(leaf_block)
        if leaf.count == 0:
            return None
        slot = self._route(leaf.keys, key)
        if leaf.keys[slot] > key:
            # Key is before this leaf's first record: step to the previous leaf.
            if leaf.prev == NULL_BLOCK:
                return None
            leaf = self._read_leaf(leaf.prev)
            if leaf.count == 0:
                return None
            slot = leaf.count - 1
        return leaf.keys[slot], leaf.datas[slot]

    def iterate_from(self, key: int) -> Iterator[Tuple[int, bytes]]:
        """Yield records with key >= ``key`` in key order, following leaf links."""
        leaf_block, _ = self._descend(key)
        leaf = self._read_leaf(leaf_block)
        lo, hi = 0, leaf.count
        while lo < hi:
            mid = (lo + hi) // 2
            if leaf.keys[mid] < key:
                lo = mid + 1
            else:
                hi = mid
        slot = lo
        while True:
            while slot < leaf.count:
                yield leaf.keys[slot], leaf.datas[slot]
                slot += 1
            if leaf.next == NULL_BLOCK:
                return
            leaf = self._read_leaf(leaf.next)
            slot = 0

    # -- updates ---------------------------------------------------------------------

    def update(self, key: int, data: bytes) -> bool:
        """Overwrite the data of an existing record; False if absent.

        Under a compressed codec the rewritten payload can widen the
        page (a far-from-key payload inflates the FoR residual column),
        so an overflow splits the leaf like an insert would.
        """
        leaf_block, path = self._descend(key)
        leaf = self._read_leaf(leaf_block)
        slot = self._route(leaf.keys, key)
        if not leaf.count or leaf.keys[slot] != key:
            return False
        leaf.datas[slot] = data
        if self._leaf_fits(leaf):
            self._write_leaf(leaf_block, leaf)
        else:
            self._split_leaf(leaf_block, leaf, path)
        return True

    def delete(self, key: int) -> bool:
        """Remove a record without rebalancing (lazy deletion).

        Even a delete can overflow a compressed leaf: dropping a middle
        key merges two deltas into one that may need a wider bit width
        for the whole column, so the fit check runs here too.
        """
        leaf_block, path = self._descend(key)
        leaf = self._read_leaf(leaf_block)
        slot = self._route(leaf.keys, key)
        if not leaf.count or leaf.keys[slot] != key:
            return False
        del leaf.keys[slot]
        del leaf.datas[slot]
        leaf.count -= 1
        self.num_records -= 1
        if leaf.count == 0 or self._leaf_fits(leaf):
            self._write_leaf(leaf_block, leaf)
        else:
            self._split_leaf(leaf_block, leaf, path)
        return True

    def insert(self, key: int, data: bytes) -> None:
        """Insert a record, splitting nodes bottom-up as needed."""
        if len(data) != self.data_size:
            raise ValueError(f"record data must be {self.data_size} bytes, got {len(data)}")
        leaf_block, path = self._descend(key)
        leaf = self._read_leaf(leaf_block)
        slot = self._insert_slot(leaf.keys, key)
        if slot < leaf.count and leaf.keys[slot] == key:
            raise KeyError(f"duplicate key {key}")
        leaf.keys.insert(slot, key)
        leaf.datas.insert(slot, data)
        leaf.count += 1
        self.num_records += 1
        if self._leaf_fits(leaf):
            self._write_leaf(leaf_block, leaf)
            return
        self._split_leaf(leaf_block, leaf, path)

    @staticmethod
    def _insert_slot(keys: List[int], key: int) -> int:
        lo, hi = 0, len(keys)
        while lo < hi:
            mid = (lo + hi) // 2
            if keys[mid] < key:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def _split_leaf(self, block: int, leaf: _Leaf, path: List[Tuple[int, int]]) -> None:
        if not self.codec.is_raw:
            self._split_leaf_compressed(block, leaf)
            return
        mid = leaf.count // 2
        new_block = self.leaf_file.allocate(1)
        right = _Leaf(leaf.count - mid, leaf.next, block,
                      leaf.keys[mid:], leaf.datas[mid:])
        left = _Leaf(mid, new_block, leaf.prev, leaf.keys[:mid], leaf.datas[:mid])
        self._write_leaf(new_block, right)
        self._write_leaf(block, left)
        if right.next != NULL_BLOCK:
            neighbor = self._read_leaf(right.next)
            neighbor.prev = new_block
            self._write_leaf(right.next, neighbor)
        self._insert_separator(path, right.keys[0], new_block, child_is_leaf=True)

    def _split_leaf_compressed(self, block: int, leaf: _Leaf) -> None:
        """Multi-way split of an overflowing compressed leaf.

        A compressed page's size is data-dependent: one mutated payload
        can widen the whole FoR payload column, so a midpoint split is
        not guaranteed to produce two fitting halves.  Instead the leaf's
        records are greedily repacked into as many pieces as the byte
        budget requires; each new piece's separator is inserted with a
        *fresh* descent so earlier separator inserts (which may have
        split the parent) cannot stale the path.
        """
        budget = max(64, int(
            (self.pager.block_size - HEADER_SIZE) * self.leaf_fill))
        pairs = self._leaf_entries(leaf)
        pieces: List[Tuple[List[int], List[bytes]]] = []
        pos = 0
        while pos < leaf.count:
            take = self.codec.pack_greedy(pairs, pos, budget)
            pieces.append((leaf.keys[pos : pos + take],
                           leaf.datas[pos : pos + take]))
            pos += take
        piece_blocks = [block] + [self.leaf_file.allocate(1)
                                  for _ in pieces[1:]]
        old_next, old_prev = leaf.next, leaf.prev
        for i, (keys, datas) in enumerate(pieces):
            next_ = piece_blocks[i + 1] if i + 1 < len(pieces) else old_next
            prev = piece_blocks[i - 1] if i > 0 else old_prev
            self._write_leaf(piece_blocks[i],
                             _Leaf(len(keys), next_, prev, keys, datas))
        if old_next != NULL_BLOCK:
            neighbor = self._read_leaf(old_next)
            neighbor.prev = piece_blocks[-1]
            self._write_leaf(old_next, neighbor)
        for i in range(1, len(pieces)):
            sep_key = pieces[i][0][0]
            _, fresh_path = self._descend(sep_key)
            self._insert_separator(fresh_path, sep_key, piece_blocks[i],
                                   child_is_leaf=True)

    def _insert_separator(self, path: List[Tuple[int, int]], sep_key: int,
                          new_child: int, child_is_leaf: bool) -> None:
        if not path:
            # The split node was the root: grow a new root.
            old_root = self.root_block
            new_root = self.inner_file.allocate(1)
            # min key of the old root subtree: 0 works as the leftmost separator
            # because routing clamps to child 0 for any smaller key.
            node = _Inner(2, child_is_leaf, [0, sep_key], [old_root, new_child])
            self._write_inner(new_root, node)
            self.root_block = new_root
            self.root_is_leaf = False
            self.num_levels += 1
            return
        parent_block, _slot = path[-1]
        node = self._read_inner(parent_block)
        slot = self._insert_slot(node.keys, sep_key)
        node.keys.insert(slot, sep_key)
        node.children.insert(slot, new_child)
        node.count += 1
        if node.count <= self.inner_capacity:
            self._write_inner(parent_block, node)
            return
        mid = node.count // 2
        new_block = self.inner_file.allocate(1)
        right = _Inner(node.count - mid, node.child_is_leaf,
                       node.keys[mid:], node.children[mid:])
        left = _Inner(mid, node.child_is_leaf, node.keys[:mid], node.children[:mid])
        self._write_inner(new_block, right)
        self._write_inner(parent_block, left)
        self._insert_separator(path[:-1], right.keys[0], new_block, child_is_leaf=False)


class BTreeIndex(DiskIndex):
    """The paper's baseline: a disk-resident B+-tree storing uint64 payloads."""

    name = "btree"

    def __init__(self, pager: Pager, leaf_fill: float = 0.8, inner_fill: float = 0.8,
                 file_prefix: str = "btree", codec: str = "raw") -> None:
        super().__init__(pager)
        self._file_prefix = file_prefix
        device = pager.device
        self._inner_file = device.get_or_create_file(f"{file_prefix}.inner")
        self._leaf_file = device.get_or_create_file(f"{file_prefix}.leaf")
        self.tree = BPlusTree(pager, self._inner_file, self._leaf_file,
                              data_size=8, leaf_fill=leaf_fill, inner_fill=inner_fill,
                              codec=codec)

    def bulk_load(self, items: Sequence[KeyPayload]) -> None:
        with self.pager.phase("bulkload"):
            self.tree.bulk_load([(key, struct.pack("<Q", payload)) for key, payload in items])

    def lookup(self, key: int) -> Optional[int]:
        with self.pager.phase("search"):
            data = self.tree.lookup(key)
        return struct.unpack("<Q", data)[0] if data is not None else None

    def lookup_many(self, keys) -> List[Optional[int]]:
        keys = list(keys)
        if len(keys) <= 1:
            return [self.lookup(key) for key in keys]
        with self.pager.phase("search"):
            found = self.tree.lookup_many_records(keys)
        return [struct.unpack("<Q", found[key])[0] if found[key] is not None
                else None for key in keys]

    def insert(self, key: int, payload: int) -> None:
        with self.pager.phase("insert"):
            self.tree.insert(key, struct.pack("<Q", payload))

    def update(self, key: int, payload: int) -> bool:
        with self.pager.phase("insert"):
            return self.tree.update(key, struct.pack("<Q", payload))

    def delete(self, key: int) -> bool:
        """Physical deletion: the B+-tree's dense leaves shift in-block."""
        with self.pager.phase("insert"):
            return self.tree.delete(key)

    def scan(self, start_key: int, count: int) -> List[KeyPayload]:
        out: List[KeyPayload] = []
        if count <= 0:
            return out
        with self.pager.phase("scan"):
            for key, data in self.tree.iterate_from(start_key):
                out.append((key, struct.unpack("<Q", data)[0]))
                if len(out) >= count:
                    break
        return out

    def scan_range(self, low: int, high: int, batch: int = 256) -> List[KeyPayload]:
        """Range scan with a single descent: iterate the leaf sibling
        chain from ``low`` and stop past ``high``, instead of re-routing
        from the root for every ``batch``-sized chunk."""
        out: List[KeyPayload] = []
        if high < low:
            return out
        with self.pager.phase("scan"):
            for key, data in self.tree.iterate_from(low):
                if key > high:
                    break
                out.append((key, struct.unpack("<Q", data)[0]))
        return out

    def set_inner_memory_resident(self, resident: bool) -> None:
        self._inner_file.memory_resident = resident

    def verify(self) -> int:
        """Check separator ordering, leaf-chain order and record counts."""
        with self._free_io():
            tree = self.tree
            if tree.root_block == NULL_BLOCK:
                return 0
            # Walk to the leftmost leaf, then follow the sibling chain.
            block = tree.root_block
            depth = 1
            if not tree.root_is_leaf:
                while True:
                    node = tree._read_inner(block)
                    assert node.count >= 1, "empty inner node"
                    assert node.keys == sorted(node.keys), "inner separators unsorted"
                    depth += 1
                    block = node.children[0]
                    if node.child_is_leaf:
                        break
            assert depth == tree.num_levels, (
                f"height mismatch: walked {depth}, meta says {tree.num_levels}")
            count = 0
            previous_key = -1
            previous_block = NULL_BLOCK
            while block != NULL_BLOCK:
                leaf = tree._read_leaf(block)
                assert leaf.prev == previous_block, "broken prev link"
                if tree.codec.is_raw:
                    assert leaf.count <= tree.leaf_capacity, "overfull leaf"
                else:
                    assert tree._leaf_fits(leaf) or leaf.count == 0, (
                        "compressed leaf overflows its block")
                for key in leaf.keys:
                    assert key > previous_key, "leaf keys out of order"
                    previous_key = key
                count += leaf.count
                previous_block = block
                block = leaf.next
            assert count == tree.num_records, (
                f"record count mismatch: walked {count}, meta {tree.num_records}")
            return count

    def init_params(self) -> dict:
        params = {"leaf_fill": self.tree.leaf_fill, "inner_fill": self.tree.inner_fill,
                  "file_prefix": self._file_prefix}
        if not self.tree.codec.is_raw:
            params["codec"] = self.tree.codec.name
        return params

    def to_meta(self) -> dict:
        return {"root_block": self.tree.root_block,
                "root_is_leaf": self.tree.root_is_leaf,
                "num_levels": self.tree.num_levels,
                "num_records": self.tree.num_records}

    def restore_meta(self, meta: dict) -> None:
        self.tree.root_block = meta["root_block"]
        self.tree.root_is_leaf = meta["root_is_leaf"]
        self.tree.num_levels = meta["num_levels"]
        self.tree.num_records = meta["num_records"]

    def file_roles(self) -> dict:
        return {self._inner_file.name: "inner", self._leaf_file.name: "leaf"}

    def height(self) -> int:
        return self.tree.num_levels

    @property
    def num_leaf_blocks(self) -> int:
        return self._leaf_file.num_blocks
