"""Hot-range rebalancing: migrate keys between adjacent shards through
the WAL.

Range partitioning means a migration is always a *boundary move*: the
hottest shard sheds the head or tail of its range to its neighbour.  The
protocol is the classic copy / flip / purge three-phase move, with every
data movement logged in the participating shards' own WALs so a crash at
any point recovers to a consistent tier:

1. **copy** — the moving pairs are read from the source primary
   (charged) and inserted into the destination through its logged write
   path (``Shard.apply(..., log=True)``), then the destination WAL is
   flushed: the copies are durable before anything changes hands.
2. **flip** — the partition boundary moves
   (:meth:`RangePartition.set_boundary`).  This is the commit point: a
   single in-memory mutation, after which the router sends the moved
   range to the destination.
3. **purge** — the source deletes its now-foreign copies through its
   logged write path and flushes its WAL.

Crash safety comes from range *clipping*, not atomicity across shards:
the router only ever asks a shard for keys inside its partition range,
so orphans — destination copies before the flip, source leftovers after
— are unreachable.  Each shard's recovery replays its own WAL's durable
prefix exactly as always; whichever side of the flip the crash happened
on, scans and lookups return one copy of every key.  (A post-recovery
``scrub_orphans`` reclaims invisible leftovers.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from .sharded import ShardedIndex

__all__ = ["Rebalancer", "MigrationReport"]


@dataclass(frozen=True)
class MigrationReport:
    """What one boundary move did and what it cost."""

    source: int
    destination: int
    keys_moved: int
    new_boundary: int          # the flipped split key
    logged_records: int        # insert + delete records through the WALs
    elapsed_us: float          # charged simulated time, copy + purge


class Rebalancer:
    """Moves key ranges between adjacent shards of a :class:`ShardedIndex`."""

    def __init__(self, sharded: ShardedIndex) -> None:
        self.sharded = sharded
        self.migrations: List[MigrationReport] = []

    # -- hot-shard detection -------------------------------------------------

    def hottest_shard(self) -> int:
        """The shard with the most observed operations (its op-mix
        counters, i.e. traffic since the counters were last reset)."""
        def heat(shard) -> int:
            return sum(shard.op_counts.values())
        shards = self.sharded.shards
        return max(range(len(shards)), key=lambda i: heat(shards[i]))

    def plan(self, fraction: float = 0.5) -> Optional[Tuple[int, int, int]]:
        """Suggest ``(source, destination, count)``: shed ``fraction`` of
        the hottest shard's keys to its cooler adjacent neighbour.
        Returns None for a single-shard tier."""
        shards = self.sharded.shards
        if len(shards) < 2:
            return None
        src = self.hottest_shard()
        neighbours = [n for n in (src - 1, src + 1) if 0 <= n < len(shards)]
        dst = min(neighbours,
                  key=lambda n: sum(shards[n].op_counts.values()))
        with self.sharded.shards[src].primary.index._free_io():
            held = len(shards[src].primary_scan_range(0, 2**64 - 1))
        count = int(held * fraction)
        return (src, dst, count) if count > 0 else None

    # -- the migration itself ------------------------------------------------

    def migrate(self, source: int, destination: int,
                count: int) -> MigrationReport:
        """Move ``count`` keys from ``source`` into adjacent ``destination``.

        Moves the keys nearest the shared boundary (the tail of the
        source range when the destination is above it, the head when
        below) and flips the boundary between the copy and the purge.
        """
        if abs(source - destination) != 1:
            raise ValueError(
                f"range migration is a boundary move between adjacent "
                f"shards; got {source} -> {destination}")
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        sharded = self.sharded
        src = sharded.shards[source]
        dst = sharded.shards[destination]
        lo, hi = sharded.partition.range_of(source)
        stats_before = sharded.device.stats.elapsed_us

        contents = src.primary_scan_range(lo, hi - 1)
        if count >= len(contents):
            raise ValueError(
                f"cannot move {count} of shard {source}'s {len(contents)} "
                f"keys: a shard must keep at least one")
        if destination > source:
            moving = contents[-count:]        # tail of the range moves up
            new_boundary = moving[0][0]
            boundary_index = source          # boundary between src and dst
        else:
            moving = contents[:count]         # head of the range moves down
            new_boundary = moving[-1][0] + 1
            boundary_index = destination

        # 1. copy: logged inserts into the destination, made durable.
        for key, payload in moving:
            dst.apply("insert", key, payload, log=True)
        if dst.wal is not None:
            dst.wal.flush()

        # 2. flip: the commit point.
        sharded.partition.set_boundary(boundary_index, new_boundary)

        # 3. purge: logged deletes on the source, made durable.
        for key, _ in moving:
            src.apply("delete", key, log=True)
        if src.wal is not None:
            src.wal.flush()

        report = MigrationReport(
            source=source, destination=destination, keys_moved=len(moving),
            new_boundary=new_boundary,
            logged_records=2 * len(moving),
            elapsed_us=sharded.device.stats.elapsed_us - stats_before)
        self.migrations.append(report)
        return report

    def scrub_orphans(self) -> int:
        """Delete keys a shard holds outside its partition range (unreachable
        leftovers of a migration interrupted before its purge phase)."""
        removed = 0
        for shard in self.sharded.shards:
            lo, hi = self.sharded.partition.range_of(shard.shard_id)
            with shard.primary.index._free_io():
                contents = shard.primary.index.scan_range(0, 2**64 - 1)
            for key, _ in contents:
                if not lo <= key < hi:
                    shard.apply("delete", key, log=True)
                    removed += 1
            if shard.wal is not None:
                shard.wal.flush()
        return removed
