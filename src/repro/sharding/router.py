"""Batch splitting, fan-out, and merge across a range partition.

The router is the only component that understands both the partition
geometry and the shard membership.  It turns tier-level operations into
shard-local ones:

* ``lookup`` — route the key to its owning shard's replica group;
* ``lookup_many`` — split the batch by boundary (duplicates and order
  preserved), fan each sub-batch to its shard's coalesced
  ``lookup_many``, and merge the answers back into batch positions;
* ``scan`` / ``scan_range`` — clip the range against the shard ranges
  and concatenate the shard-local scans in key order (a range scan
  touches *only* the shards it overlaps — the point of range
  partitioning);
* mutations — route to the owning shard's primary.

Every split is counted (batches routed, fan-out width, boundary-crossing
scans) so the sharding experiment can report routing behaviour, and the
Hypothesis property test can assert the split/merge round-trip is
lossless.

Fault tolerance rides through the delegation: every shard-local read
the router issues goes through :meth:`Shard._serve_read`, so hedged
re-issues, health strikes and primary failover (DESIGN.md Section 17)
apply to routed batches and clipped scans exactly as to direct reads —
the router never sees a quarantined member, only the shard's answer or
its final ``StorageFault`` when the whole replica group is down.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from ..core.interface import KeyPayload
from .partition import RangePartition
from .shard import Shard

__all__ = ["Router"]


class Router:
    """Splits tier-level operations across shards and merges results."""

    def __init__(self, partition: RangePartition, shards: Sequence[Shard]) -> None:
        if partition.num_shards != len(shards):
            raise ValueError(
                f"partition cuts {partition.num_shards} ranges but "
                f"{len(shards)} shards given")
        self.partition = partition
        self.shards = list(shards)
        self.batches_routed = 0
        self.keys_routed = 0
        self.fanout_total = 0
        self.max_fanout = 0
        self.scans_routed = 0
        self.cross_shard_scans = 0

    # -- point reads ---------------------------------------------------------

    def lookup(self, key: int) -> Optional[int]:
        return self.shards[self.partition.shard_of(key)].lookup(key)

    def split_batch(self, keys: Sequence[int]) -> Dict[int, List]:
        """Partition a batch into per-shard ``[(position, key), ...]``
        groups, recording fan-out statistics."""
        split = self.partition.split_keys(keys)
        self.batches_routed += 1
        self.keys_routed += len(keys)
        self.fanout_total += len(split)
        self.max_fanout = max(self.max_fanout, len(split))
        return split

    def lookup_many(self, keys: Iterable[int]) -> List[Optional[int]]:
        """Split / fan out / merge; result order matches the input batch."""
        keys = list(keys)
        if not keys:
            return []
        split = self.split_batch(keys)
        results: List[Optional[int]] = [None] * len(keys)
        for shard_id, group in sorted(split.items()):
            answers = self.shards[shard_id].lookup_many(
                [key for _, key in group])
            for (position, _), answer in zip(group, answers):
                results[position] = answer
        return results

    # -- scans ---------------------------------------------------------------

    def scan_range(self, low: int, high: int) -> List[KeyPayload]:
        """Concatenate shard-local scans over the clipped sub-ranges."""
        parts = self.partition.split_range(low, high)
        self.scans_routed += 1
        if len(parts) > 1:
            self.cross_shard_scans += 1
        out: List[KeyPayload] = []
        for shard_id, lo, hi in parts:
            out.extend(self.shards[shard_id].scan_range(lo, hi))
        return out

    def scan(self, start_key: int, count: int) -> List[KeyPayload]:
        """Up to ``count`` pairs with key >= start_key, walking forward
        across shard boundaries until the count is filled."""
        self.scans_routed += 1
        out: List[KeyPayload] = []
        first_shard = self.partition.shard_of(start_key)
        shard_id, start = first_shard, start_key
        while shard_id < len(self.shards) and len(out) < count:
            chunk = self.shards[shard_id].scan(start, count - len(out))
            # Clip to the shard's own range: an orphan left behind by an
            # in-flight migration (or a scan past the boundary) must not
            # leak into another shard's answer.
            _, range_hi = self.partition.range_of(shard_id)
            out.extend(pair for pair in chunk if pair[0] < range_hi)
            shard_id += 1
            if shard_id < len(self.shards):
                start, _ = self.partition.range_of(shard_id)
        if shard_id - first_shard > 1:
            self.cross_shard_scans += 1
        return out[:count]
