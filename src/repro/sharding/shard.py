"""One shard: a primary replica group over independent devices.

A :class:`Shard` owns a *primary* :class:`ShardMember` (its own
:class:`~repro.storage.BlockDevice`, :class:`~repro.storage.Pager`,
optional buffer pool, any registered index class) plus zero or more
replica members with identical storage but independently charged I/O.
Writes go to the primary — logged through the shard's own
:class:`~repro.durability.WriteAheadLog` when durability is on — and the
same logical records are shipped synchronously to every replica.  Reads
fan out across the replica group under a pluggable policy
(``primary`` / ``round_robin`` / ``least_loaded``).

Replication model (DESIGN.md Section 14): shipping happens at *append*
time, i.e. statement-level synchronous replication of the logical WAL
record stream.  Replicas therefore never serve stale reads, but they can
be *ahead* of the primary's durable log prefix — after a primary crash,
:meth:`Shard.recover` rebuilds the replicas from the recovered primary
image, exactly like a production failover re-seeding its followers.

The shard also counts its observed operation mix (lookups / inserts /
updates / deletes / scans / scanned entries), which is the input the
:class:`~repro.sharding.tuner.ShardTuner` scores against the paper's
P1-P5 rules to pick this shard's index class.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..core.interface import DiskIndex, KeyPayload
from ..core.registry import make_index
from ..durability.recovery import Checkpoint, RecoveryResult, recover, take_checkpoint
from ..durability.wal import WriteAheadLog
from ..storage import HDD, BlockDevice, DiskProfile, Pager, make_buffer_pool

__all__ = ["Shard", "ShardMember", "REPLICA_POLICIES"]

REPLICA_POLICIES = ("primary", "round_robin", "least_loaded")

#: Counted operation kinds, in reporting order.
OP_KINDS = ("lookup", "insert", "update", "delete", "scan")


class ShardMember:
    """One copy of a shard's data: device + pager + index."""

    def __init__(self, index_name: str, *, profile: DiskProfile = HDD,
                 block_size: int = 4096, buffer_blocks: int = 0,
                 buffer_policy: str = "lru", write_back: bool = False,
                 flush_watermark: Optional[int] = None,
                 index_params: Optional[dict] = None) -> None:
        self.index_name = index_name
        self.device = BlockDevice(block_size, profile)
        pool = (make_buffer_pool(buffer_blocks, buffer_policy)
                if buffer_blocks > 0 else None)
        self.pager = Pager(self.device, buffer_pool=pool,
                           write_back=write_back,
                           flush_watermark=flush_watermark)
        self.index: DiskIndex = make_index(index_name, self.pager,
                                           **(index_params or {}))
        #: reads served by this member (read fan-out accounting).
        self.reads_served = 0

    @classmethod
    def adopt(cls, index: DiskIndex, index_name: str) -> "ShardMember":
        """Wrap an already-built index (the recovery path) as a member."""
        member = cls.__new__(cls)
        member.index_name = index_name
        member.index = index
        member.pager = index.pager
        member.device = index.pager.device
        member.reads_served = 0
        return member

    def dump(self) -> List[KeyPayload]:
        """All live pairs, charged as a full scan on this member."""
        return self.index.scan_range(0, 2**64 - 1)


class Shard:
    """A keyspace slice: primary + replicas + WAL + op-mix counters.

    Args:
        shard_id: position in the owning partition (for reporting).
        index_name: registry name of the index class every member runs.
        replicas: total copies including the primary (1 = no replicas).
        replica_policy: read-routing policy across the replica group.
        durability: when True, mutations log through a per-shard WAL on
            the primary's device (created after bulk load, mirroring
            ``fresh_index``'s ordering so a 1-shard tier is byte-for-byte
            comparable with an unsharded one).
        group_commit: WAL records buffered per log flush.
        **member_kwargs: storage configuration forwarded to every
            :class:`ShardMember` (profile, block_size, buffer_blocks,
            buffer_policy, write_back, flush_watermark, index_params).
    """

    def __init__(self, shard_id: int, index_name: str, *, replicas: int = 1,
                 replica_policy: str = "round_robin", durability: bool = False,
                 group_commit: int = 8, **member_kwargs) -> None:
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        if replica_policy not in REPLICA_POLICIES:
            raise ValueError(
                f"unknown replica policy {replica_policy!r}; "
                f"available: {REPLICA_POLICIES}")
        self.shard_id = shard_id
        self.index_name = index_name
        self.replica_policy = replica_policy
        self.durability = durability
        self.group_commit = group_commit
        self.member_kwargs = dict(member_kwargs)
        self.primary = ShardMember(index_name, **self.member_kwargs)
        self.replicas: List[ShardMember] = [
            ShardMember(index_name, **self.member_kwargs)
            for _ in range(replicas - 1)
        ]
        self.wal: Optional[WriteAheadLog] = None
        self._rr_cursor = 0
        self.op_counts: Dict[str, int] = {kind: 0 for kind in OP_KINDS}
        self.entries_scanned = 0
        self.shipped_records = 0

    # -- membership ----------------------------------------------------------

    @property
    def replication_factor(self) -> int:
        return 1 + len(self.replicas)

    def members(self) -> List[ShardMember]:
        return [self.primary] + self.replicas

    def devices(self) -> Iterator[BlockDevice]:
        for member in self.members():
            yield member.device

    def pagers(self) -> Iterator[Pager]:
        for member in self.members():
            yield member.pager

    # -- build ---------------------------------------------------------------

    def bulk_load(self, items: Sequence[KeyPayload]) -> None:
        """Load every member, then arm the WAL (log-after-load, as in
        ``fresh_index``: the bulk image is the recovery baseline, not a
        replayable suffix)."""
        for member in self.members():
            member.index.bulk_load(items)
        self._ensure_wal()

    def _ensure_wal(self) -> None:
        if self.durability and self.wal is None:
            self.wal = WriteAheadLog(self.primary.pager,
                                     group_commit=self.group_commit)
            self.primary.index.attach_wal(self.wal)

    # -- read path -----------------------------------------------------------

    def _reader(self) -> ShardMember:
        """Pick the member that serves the next read."""
        members = self.members()
        if len(members) == 1 or self.replica_policy == "primary":
            choice = members[0]
        elif self.replica_policy == "round_robin":
            choice = members[self._rr_cursor % len(members)]
            self._rr_cursor += 1
        else:
            # least_loaded: least charged time so far, reads served as
            # the tiebreak (free-I/O devices never accumulate time).
            choice = min(members, key=lambda m: (m.device.stats.elapsed_us,
                                                 m.reads_served))
        choice.reads_served += 1
        return choice

    def lookup(self, key: int) -> Optional[int]:
        self.op_counts["lookup"] += 1
        return self._reader().index.lookup(key)

    def lookup_many(self, keys: Iterable[int]) -> List[Optional[int]]:
        keys = list(keys)
        self.op_counts["lookup"] += len(keys)
        return self._reader().index.lookup_many(keys)

    def scan(self, start_key: int, count: int) -> List[KeyPayload]:
        self.op_counts["scan"] += 1
        out = self._reader().index.scan(start_key, count)
        self.entries_scanned += len(out)
        return out

    def scan_range(self, low: int, high: int) -> List[KeyPayload]:
        self.op_counts["scan"] += 1
        out = self._reader().index.scan_range(low, high)
        self.entries_scanned += len(out)
        return out

    # -- write path ----------------------------------------------------------

    def append_log(self, op: str, key: int, payload: int = 0) -> Optional[int]:
        """Append one logical record to this shard's WAL (if durable)."""
        self._ensure_wal()
        if self.wal is None:
            return None
        return self.wal.append(op, key, payload)

    def apply(self, op: str, key: int, payload: int = 0, *,
              log: bool = True) -> object:
        """Apply one mutation to the primary and ship it to the replicas.

        ``log=False`` is the already-logged path: the caller (the fan-out
        WAL facade or recovery replay) has appended the record itself.
        """
        if op not in ("insert", "update", "delete"):
            raise ValueError(f"unknown mutation {op!r}")
        if log:
            self.append_log(op, key, payload)
        self.op_counts[op] += 1
        if op == "insert":
            result: object = self.primary.index.insert(key, payload)
        elif op == "update":
            result = self.primary.index.update(key, payload)
        else:
            result = self.primary.index.delete(key)
        self._ship(op, key, payload)
        return result

    def _ship(self, op: str, key: int, payload: int) -> None:
        """Synchronous statement-level shipping of the logical record."""
        for member in self.replicas:
            if op == "insert":
                member.index.insert(key, payload)
            elif op == "update":
                member.index.update(key, payload)
            else:
                member.index.delete(key)
            self.shipped_records += 1

    def flush(self) -> int:
        """WAL tail first, then every member's dirty pages."""
        if self.wal is not None:
            self.wal.flush()
        return sum(member.pager.flush() for member in self.members())

    # -- lookups on the reader() policy need primary-only variants for the
    # -- router's correctness-critical paths (e.g. migration reads).

    def primary_scan_range(self, low: int, high: int) -> List[KeyPayload]:
        return self.primary.index.scan_range(low, high)

    # -- observed mix --------------------------------------------------------

    def op_mix(self) -> Dict[str, int]:
        mix = dict(self.op_counts)
        mix["entries_scanned"] = self.entries_scanned
        return mix

    def reset_op_mix(self) -> None:
        self.op_counts = {kind: 0 for kind in OP_KINDS}
        self.entries_scanned = 0

    # -- crash recovery ------------------------------------------------------

    def checkpoint(self) -> Checkpoint:
        """Durable snapshot of the primary (flushes WAL + dirty pages)."""
        self._ensure_wal()
        return take_checkpoint(self.primary.index, self.wal)

    def recover(self, checkpoint: Checkpoint) -> RecoveryResult:
        """Failover after a primary crash: redo the durable WAL prefix
        onto the checkpoint image, adopt the result as the new primary,
        and re-seed every replica from it.

        The crashed primary's data files are never trusted (they may hold
        a half-applied SMO); replicas are rebuilt because synchronous
        shipping may have applied records past the durable prefix — acked
        to nobody, so recovery must *unapply* them, and a re-seed is how
        a follower rejoins after diverging.
        """
        if self.wal is None:
            raise RuntimeError("cannot recover a shard without a WAL")
        result = recover(checkpoint, self.wal,
                         profile=self.member_kwargs.get("profile"))
        self.primary = ShardMember.adopt(result.index, self.index_name)
        self.wal = WriteAheadLog(self.primary.pager,
                                 group_commit=self.group_commit)
        # Continue the shard's sequence numbering where the durable
        # prefix ended, so post-recovery appends extend the same history.
        self.wal.next_seqno = result.last_seqno + 1
        self.wal.durable_seqno = result.last_seqno
        self.primary.index.attach_wal(self.wal)
        if self.replicas:
            items = self.primary_scan_range(0, 2**64 - 1)
            rebuilt = []
            for _ in self.replicas:
                member = ShardMember(self.index_name, **self.member_kwargs)
                member.index.bulk_load(items)
                rebuilt.append(member)
            self.replicas = rebuilt
        return result

    # -- integrity -----------------------------------------------------------

    def verify(self, key_range: Optional[Tuple[int, int]] = None) -> int:
        """Structural verify on every member, plus replica-group agreement
        and (when given the shard's ``[lo, hi)`` range) ownership checks.

        Returns the primary's live entry count.
        """
        live = self.primary.index.verify()
        for member in self.replicas:
            member.index.verify()
        with self.primary.index._free_io():
            contents = self.primary.index.scan_range(0, 2**64 - 1)
        if key_range is not None:
            lo, hi = key_range
            for key, _ in contents:
                assert lo <= key < hi, (
                    f"shard {self.shard_id} holds out-of-range key {key} "
                    f"(owns [{lo}, {hi}))")
        for member in self.replicas:
            with member.index._free_io():
                replica_contents = member.index.scan_range(0, 2**64 - 1)
            assert replica_contents == contents, (
                f"shard {self.shard_id}: replica diverged from primary")
        return live
