"""One shard: a primary replica group over independent devices.

A :class:`Shard` owns a *primary* :class:`ShardMember` (its own
:class:`~repro.storage.BlockDevice`, :class:`~repro.storage.Pager`,
optional buffer pool, any registered index class) plus zero or more
replica members with identical storage but independently charged I/O.
Writes go to the primary — logged through the shard's own
:class:`~repro.durability.WriteAheadLog` when durability is on — and the
same logical records are shipped synchronously to every replica.  Reads
fan out across the replica group under a pluggable policy
(``primary`` / ``round_robin`` / ``least_loaded``).

Replication model (DESIGN.md Section 14): shipping happens at *append*
time, i.e. statement-level synchronous replication of the logical WAL
record stream.  Replicas therefore never serve stale reads, but they can
be *ahead* of the primary's durable log prefix — after a primary crash,
:meth:`Shard.recover` rebuilds the replicas from the recovered primary
image, exactly like a production failover re-seeding its followers.

Fault tolerance (DESIGN.md Section 17): every member carries a
:class:`MemberHealth` state machine (healthy → suspect → quarantined)
driven by the storage faults that escape it — checksum failures strike
once (one rotten block makes a member *suspect*), exhausted
retries/whole-member crashes and any write-path fault quarantine
immediately.  Quarantined members leave the read rotation and stop
receiving shipped records; a quarantined *primary* triggers live
failover (:meth:`Shard._failover`): the freshest healthy replica is
promoted, caught up from the durable log prefix plus the in-memory
tail, and the log itself is rebuilt on the promoted member's device so
the sequence numbering — and therefore every already-issued commit
acknowledgment — continues unbroken.  Reads that fault (or, with
``hedge_us`` set, exceed the hedge latency budget) are re-issued on
another healthy member — hedged reads, first response wins.  A
quarantined member rejoins via :meth:`Shard.rejoin`: catch-up resync
replays the missed log suffix and byte-verifies the result, falling
back to PR 7's full re-seed only when the member is tainted (possible
half-applied write) or damaged.

The shard also counts its observed operation mix (lookups / inserts /
updates / deletes / scans / scanned entries), which is the input the
:class:`~repro.sharding.tuner.ShardTuner` scores against the paper's
P1-P5 rules to pick this shard's index class.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..core.interface import DiskIndex, KeyPayload
from ..core.registry import make_index
from ..durability.recovery import Checkpoint, RecoveryResult, recover, take_checkpoint
from ..durability.wal import LogRecord, WAL_FILE, WriteAheadLog
from ..storage import HDD, BlockDevice, DiskProfile, Pager, make_buffer_pool
from ..storage.integrity import PersistentIOError, StorageFault

__all__ = ["Shard", "ShardMember", "MemberHealth", "REPLICA_POLICIES",
           "HEALTH_STATES"]

REPLICA_POLICIES = ("primary", "round_robin", "least_loaded")

#: Health states, in escalation order.
HEALTH_STATES = ("healthy", "suspect", "quarantined")

#: Counted operation kinds, in reporting order.
OP_KINDS = ("lookup", "insert", "update", "delete", "scan")


class MemberHealth:
    """Per-member strike counter driving healthy → suspect → quarantined.

    Soft strikes (one per checksum failure escaping a read) accumulate:
    one makes the member *suspect* — it stays in rotation, but a repeat
    offense quarantines it.  Hard strikes (exhausted retries, a
    whole-member crash, any write-path fault) jump straight to
    quarantined: the device itself, not one block, is implicated.
    """

    def __init__(self, quarantine_after: int = 2) -> None:
        if quarantine_after < 1:
            raise ValueError(
                f"quarantine_after must be >= 1, got {quarantine_after}")
        self.quarantine_after = quarantine_after
        self.strikes = 0
        self.faults_seen = 0

    @property
    def state(self) -> str:
        if self.strikes == 0:
            return "healthy"
        if self.strikes < self.quarantine_after:
            return "suspect"
        return "quarantined"

    def strike(self, hard: bool = False) -> None:
        self.faults_seen += 1
        if hard:
            self.strikes = max(self.strikes + 1, self.quarantine_after)
        else:
            self.strikes += 1

    def reset(self) -> None:
        """A rejoin wipes the record; faults_seen stays for reporting."""
        self.strikes = 0


class ShardMember:
    """One copy of a shard's data: device + pager + index."""

    def __init__(self, index_name: str, *, profile: DiskProfile = HDD,
                 block_size: int = 4096, buffer_blocks: int = 0,
                 buffer_policy: str = "lru", write_back: bool = False,
                 flush_watermark: Optional[int] = None,
                 index_params: Optional[dict] = None) -> None:
        self.index_name = index_name
        self.device = BlockDevice(block_size, profile)
        pool = (make_buffer_pool(buffer_blocks, buffer_policy)
                if buffer_blocks > 0 else None)
        self.pager = Pager(self.device, buffer_pool=pool,
                           write_back=write_back,
                           flush_watermark=flush_watermark)
        self.index: DiskIndex = make_index(index_name, self.pager,
                                           **(index_params or {}))
        #: reads served by this member (read fan-out accounting).
        self.reads_served = 0
        self.health = MemberHealth()
        #: highest shard WAL seqno whose effect this member holds.
        self.applied_seqno = 0
        #: True when the member may hold a half-applied mutation (a
        #: write-path fault, or it crashed as primary): its files can
        #: never be trusted for suffix replay, only a full re-seed.
        self.tainted = False

    @classmethod
    def adopt(cls, index: DiskIndex, index_name: str) -> "ShardMember":
        """Wrap an already-built index (the recovery path) as a member.

        The index keeps whatever pager it was built with — recovery
        threads the original storage configuration (buffer pool,
        write-back, flush watermark) through ``load_index`` so an
        adopted member is *not* silently downgraded to pass-through
        defaults.
        """
        member = cls.__new__(cls)
        member.index_name = index_name
        member.index = index
        member.pager = index.pager
        member.device = index.pager.device
        member.reads_served = 0
        member.health = MemberHealth()
        member.applied_seqno = 0
        member.tainted = False
        return member

    def dump(self) -> List[KeyPayload]:
        """All live pairs, charged as a full scan on this member."""
        return self.index.scan_range(0, 2**64 - 1)


class Shard:
    """A keyspace slice: primary + replicas + WAL + op-mix counters.

    Args:
        shard_id: position in the owning partition (for reporting).
        index_name: registry name of the index class every member runs.
        replicas: total copies including the primary (1 = no replicas).
        replica_policy: read-routing policy across the replica group.
        durability: when True, mutations log through a per-shard WAL on
            the primary's device (created after bulk load, mirroring
            ``fresh_index``'s ordering so a 1-shard tier is byte-for-byte
            comparable with an unsharded one).
        group_commit: WAL records buffered per log flush.
        hedge_us: latency hedge budget for reads (virtual time).  When
            set and more than one member is servable, the first read
            attempt only gets the retries whose cumulative backoff fits
            the budget; past it, the read is re-issued on another
            healthy member (first response wins).  ``None`` disables
            hedging — reads then re-issue only on hard faults.
        quarantine_after: soft strikes before a member is quarantined.
        **member_kwargs: storage configuration forwarded to every
            :class:`ShardMember` (profile, block_size, buffer_blocks,
            buffer_policy, write_back, flush_watermark, index_params).
    """

    def __init__(self, shard_id: int, index_name: str, *, replicas: int = 1,
                 replica_policy: str = "round_robin", durability: bool = False,
                 group_commit: int = 8, hedge_us: Optional[float] = None,
                 quarantine_after: int = 2, **member_kwargs) -> None:
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        if replica_policy not in REPLICA_POLICIES:
            raise ValueError(
                f"unknown replica policy {replica_policy!r}; "
                f"available: {REPLICA_POLICIES}")
        if hedge_us is not None and hedge_us < 0:
            raise ValueError(f"hedge_us must be >= 0, got {hedge_us}")
        self.shard_id = shard_id
        self.index_name = index_name
        self.replica_policy = replica_policy
        self.durability = durability
        self.group_commit = group_commit
        self.hedge_us = hedge_us
        self.quarantine_after = quarantine_after
        self.member_kwargs = dict(member_kwargs)
        self.primary = self._new_member()
        self.replicas: List[ShardMember] = [
            self._new_member() for _ in range(replicas - 1)
        ]
        self.wal: Optional[WriteAheadLog] = None
        self._rr_cursor = 0
        self.op_counts: Dict[str, int] = {kind: 0 for kind in OP_KINDS}
        self.entries_scanned = 0
        self.shipped_records = 0
        # -- fault-tolerance counters (DESIGN.md Section 17) --
        self.failovers = 0
        self.hedged_reads = 0
        self.resyncs = 0
        self.resync_blocks = 0
        self.reseeds = 0
        self.member_faults = 0
        #: final stats of members replaced by a re-seed, so tier-level
        #: stat sums stay monotonic across membership changes.
        self.retired_stats: List[object] = []
        #: set by the owning tier: fired after any membership change so
        #: fan-out facades can re-install their per-member hooks.
        self.on_members_changed: Optional[Callable[[], None]] = None
        self._failover_result: object = None

    def _new_member(self) -> ShardMember:
        member = ShardMember(self.index_name, **self.member_kwargs)
        member.health.quarantine_after = self.quarantine_after
        return member

    def _tracer(self):
        return self.primary.pager.tracer

    def _members_changed(self) -> None:
        if self.on_members_changed is not None:
            self.on_members_changed()

    # -- membership ----------------------------------------------------------

    @property
    def replication_factor(self) -> int:
        return 1 + len(self.replicas)

    def members(self) -> List[ShardMember]:
        return [self.primary] + self.replicas

    def servable_members(self) -> List[ShardMember]:
        """Members in the read rotation (not quarantined)."""
        return [m for m in self.members() if m.health.state != "quarantined"]

    def quarantined_members(self) -> List[ShardMember]:
        return [m for m in self.members() if m.health.state == "quarantined"]

    def health_states(self) -> List[str]:
        """Member health, primary first (reporting)."""
        return [m.health.state for m in self.members()]

    def devices(self) -> Iterator[BlockDevice]:
        for member in self.members():
            yield member.device

    def pagers(self) -> Iterator[Pager]:
        for member in self.members():
            yield member.pager

    # -- build ---------------------------------------------------------------

    def bulk_load(self, items: Sequence[KeyPayload]) -> None:
        """Load every member, then arm the WAL (log-after-load, as in
        ``fresh_index``: the bulk image is the recovery baseline, not a
        replayable suffix)."""
        for member in self.members():
            member.index.bulk_load(items)
        self._ensure_wal()

    def _ensure_wal(self) -> None:
        if self.durability and self.wal is None:
            self.wal = WriteAheadLog(self.primary.pager,
                                     group_commit=self.group_commit)
            self.primary.index.attach_wal(self.wal)

    # -- read path -----------------------------------------------------------

    def _reader(self) -> ShardMember:
        """Pick the member that serves the next read.

        Only servable (non-quarantined) members rotate; with every
        member quarantined the primary is the read path of last resort —
        its fault, not a routing error, should be what the caller sees.
        """
        members = self.servable_members() or [self.primary]
        if len(members) == 1 or self.replica_policy == "primary":
            choice = members[0]
        elif self.replica_policy == "round_robin":
            choice = members[self._rr_cursor % len(members)]
            self._rr_cursor += 1
        else:
            # least_loaded: least charged time so far, reads served as
            # the tiebreak (free-I/O devices never accumulate time).
            choice = min(members, key=lambda m: (m.device.stats.elapsed_us,
                                                 m.reads_served))
        choice.reads_served += 1
        return choice

    def _hedge_cap(self, member: ShardMember) -> int:
        """Retries whose cumulative backoff fits the hedge budget.

        The pager's backoff for retry *k* is ``positioning * 2**(k-1)``;
        the cap is the largest k whose running sum stays within
        ``hedge_us``, so a member that keeps timing out hands the read
        off instead of burning the full retry ladder.
        """
        step = member.device.profile.read_positioning_us
        if step <= 0:
            return 0
        cap, total = 0, 0.0
        while cap < member.pager.max_read_retries and total + step <= self.hedge_us:
            total += step
            step *= 2
            cap += 1
        return cap

    def _serve_read(self, op: Callable[[ShardMember], object]) -> object:
        """Run one read with health-aware re-issue (hedged reads).

        The clean path is byte-for-byte the pre-fault-tolerance one pick
        through :meth:`_reader`.  A :class:`StorageFault` escaping the
        member strikes its health (possibly quarantining it, possibly
        failing the primary over) and re-issues the read on the next
        pick; with ``hedge_us`` set, the first attempt's retry ladder is
        capped to the budget so a stalling member sheds the read early.
        Both attempts' I/O stays charged — hedging buys tail latency
        with extra work, it is not free.
        """
        last_fault: Optional[StorageFault] = None
        attempts = self.replication_factor * max(self.quarantine_after, 1) + 1
        for attempt in range(attempts):
            member = self._reader()
            capped = (self.hedge_us is not None and attempt == 0
                      and len(self.servable_members()) > 1)
            try:
                if capped:
                    saved = member.pager.max_read_retries
                    member.pager.max_read_retries = min(
                        saved, self._hedge_cap(member))
                    try:
                        return op(member)
                    finally:
                        member.pager.max_read_retries = saved
                return op(member)
            except StorageFault as fault:
                last_fault = fault
                self._record_fault(
                    member, hard=isinstance(fault, PersistentIOError))
                self.hedged_reads += 1
                tracer = self._tracer()
                if tracer is not None:
                    tracer.hedged_read()
        raise last_fault  # every member struck out

    def lookup(self, key: int) -> Optional[int]:
        self.op_counts["lookup"] += 1
        return self._serve_read(lambda m: m.index.lookup(key))

    def lookup_many(self, keys: Iterable[int]) -> List[Optional[int]]:
        keys = list(keys)
        self.op_counts["lookup"] += len(keys)
        return self._serve_read(lambda m: m.index.lookup_many(keys))

    def scan(self, start_key: int, count: int) -> List[KeyPayload]:
        self.op_counts["scan"] += 1
        out = self._serve_read(lambda m: m.index.scan(start_key, count))
        self.entries_scanned += len(out)
        return out

    def scan_range(self, low: int, high: int) -> List[KeyPayload]:
        self.op_counts["scan"] += 1
        out = self._serve_read(lambda m: m.index.scan_range(low, high))
        self.entries_scanned += len(out)
        return out

    # -- health / failover ----------------------------------------------------

    def _record_fault(self, member: ShardMember, hard: bool = False) -> None:
        """Strike a member; a quarantined primary fails over."""
        self.member_faults += 1
        member.health.strike(hard=hard)
        if member is self.primary and member.health.state == "quarantined":
            self._failover()

    @staticmethod
    def _apply_to(index: DiskIndex, op: str, key: int, payload: int) -> object:
        if op == "insert":
            return index.insert(key, payload)
        if op == "update":
            return index.update(key, payload)
        return index.delete(key)

    def _log_history(self) -> Tuple[List[LogRecord], List[LogRecord]]:
        """(durable prefix, pending tail) of the shard's log.

        The durable scan is charged log-phase I/O on the device the log
        lives on.  The model's availability assumption — same as PR 5's
        repair protocol — is that the log survives its member's faults
        (``DeviceFaultModel.exclude_files``): a single-copy log is the
        recovery source, production systems mirror it.
        """
        if self.wal is None:
            return [], []
        durable = list(self.wal.durable_records())
        pending = [LogRecord.unpack(raw) for raw in self.wal.buffer]
        return durable, pending

    def _catch_up(self, member: ShardMember,
                  records: Sequence[LogRecord]) -> object:
        """Apply every record past the member's applied prefix, in order.

        Returns the last applied record's result (the failover path uses
        it to answer the in-flight mutation).  Charged I/O on the member.
        """
        result: object = None
        for record in records:
            if record.seqno <= member.applied_seqno:
                continue
            result = self._apply_to(member.index, record.op, record.key,
                                    record.payload)
            member.applied_seqno = record.seqno
        return result

    def _rebuild_wal(self, old_wal: WriteAheadLog,
                     durable: Sequence[LogRecord],
                     pending: Sequence[LogRecord]) -> None:
        """Re-write the log on the new primary's device, seqnos unbroken.

        The durable prefix is re-appended and flushed (charged log
        writes — the cost of re-homing the log), restoring the exact
        ``durable_seqno``; the pending tail is re-appended but left
        buffered, so records that were never acknowledged stay
        unacknowledged until the next group commit — the failover moves
        the commit point to the new device without ever advancing it.
        """
        new_wal = WriteAheadLog(self.primary.pager, group_commit=1)
        new_wal.group_commit = 2**62  # flush manually during the rebuild
        new_wal.next_seqno = durable[0].seqno if durable \
            else old_wal.durable_seqno + 1
        for record in durable:
            new_wal.append(record.op, record.key, record.payload)
        new_wal.flush()
        new_wal.durable_seqno = old_wal.durable_seqno
        for record in pending:
            new_wal.append(record.op, record.key, record.payload)
        assert new_wal.next_seqno == old_wal.next_seqno, \
            "failover must preserve the shard's sequence numbering"
        # Continue the old log's counters and hooks so tier-level metrics
        # and the tracer see one unbroken log (plus the rebuild flush).
        new_wal.group_commit = old_wal.group_commit
        new_wal.records_appended = old_wal.records_appended
        new_wal.flushes = old_wal.flushes + (1 if durable else 0)
        new_wal.on_flush = old_wal.on_flush
        self.wal = new_wal
        self.primary.index.attach_wal(new_wal)

    def _failover(self) -> None:
        """Promote the freshest healthy replica over a quarantined primary.

        Commit point: the instant ``self.primary`` flips.  Before it, the
        promoted member is caught up from the durable log prefix plus the
        in-memory tail (normally a no-op — synchronous shipping keeps
        replicas current; the exception is a mutation whose primary apply
        faulted after its record was appended), and so is every other
        healthy replica.  After it, the log is rebuilt on the new
        primary's device with identical sequence numbering.  Acknowledged
        writes all live in the durable prefix, which is re-applied and
        re-written — zero are lost; the unacknowledged tail is preserved
        but stays unacknowledged.
        """
        old = self.primary
        old.tainted = True  # may hold a half-applied SMO: re-seed only
        durable, pending = self._log_history()
        history = durable + pending
        while True:
            candidates = [m for m in self.replicas
                          if m.health.state != "quarantined"]
            if not candidates:
                raise PersistentIOError(
                    f"shard{self.shard_id}", -1,
                    "primary quarantined with no healthy replica to promote")
            promote = max(candidates, key=lambda m: m.applied_seqno)
            try:
                self._failover_result = self._catch_up(promote, history)
            except StorageFault:
                promote.health.strike(hard=True)
                promote.tainted = True
                continue
            break
        for member in self.replicas:
            if member is promote or member.health.state == "quarantined":
                continue
            try:
                self._catch_up(member, history)
            except StorageFault:
                self.member_faults += 1
                member.health.strike(hard=True)
                member.tainted = True
        self.replicas.remove(promote)
        self.replicas.append(old)
        self.primary = promote
        if self.wal is not None:
            old_wal = self.wal
            self._rebuild_wal(old_wal, durable, pending)
            # The demoted member must not log or gate its page flushes on
            # the dead log; it rejoins via re-seed (tainted), never replay.
            old.index.wal = None
            old.pager.set_wal(None)
        self.failovers += 1
        tracer = self._tracer()
        if tracer is not None:
            tracer.failover()
        self._members_changed()

    # -- rejoin / resync ------------------------------------------------------

    def rejoin(self, member: ShardMember) -> str:
        """Bring a quarantined replica back into rotation.

        The caller must have cleared the member's fault condition first
        (``DeviceFaultModel.clear_crash`` / replaced the model — the
        operator swapped the enclosure).  Returns ``"resync"`` when the
        member caught up by replaying the missed WAL suffix (charged log
        reads + member writes, byte-verified against the primary) or
        ``"reseed"`` when it needed PR 7's full rebuild — a tainted
        member, media damage, or a gap the log no longer covers.
        """
        if member not in self.replicas:
            raise ValueError("can only rejoin a current replica")
        if member.health.state != "quarantined":
            raise ValueError("member is not quarantined")
        mode = "reseed"
        if self.wal is not None and not member.tainted \
                and self._try_resync(member):
            mode = "resync"
        else:
            member = self._reseed(member)
        member.health.reset()
        member.tainted = False
        member.applied_seqno = (self.wal.current_lsn
                                if self.wal is not None else 0)
        self._members_changed()
        return mode

    def _try_resync(self, member: ShardMember) -> bool:
        """Catch-up resync: replay the missed log suffix, verify bytes.

        Fails (returning False, leaving the re-seed fallback to the
        caller) when the log no longer covers the member's gap, when the
        replay itself faults, or when the byte audit finds divergence
        (media damage the replay cannot paper over).
        """
        device_stats = self.wal.pager.device.stats
        reads_before = device_stats.reads
        durable, pending = self._log_history()
        scan_blocks = device_stats.reads - reads_before
        missed = [r for r in durable + pending
                  if r.seqno > member.applied_seqno]
        # The suffix must bridge the gap exactly: applied+1 .. current.
        expect = member.applied_seqno + 1
        for record in missed:
            if record.seqno != expect:
                return False
            expect += 1
        if expect != self.wal.current_lsn + 1:
            return False
        try:
            self._catch_up(member, missed)
        except StorageFault:
            return False
        if not self._byte_identical(member):
            return False
        self.resyncs += 1
        self.resync_blocks += scan_blocks
        tracer = self._tracer()
        if tracer is not None:
            tracer.resync(scan_blocks)
        return True

    def _byte_identical(self, member: ShardMember) -> bool:
        """Free byte audit of a member's data files against the primary.

        Both sides are flushed first (WAL before data) so device bytes,
        not dirty frames, are compared; the log file is excluded — only
        the primary carries one.  Identical op streams over identical
        bulk images yield identical physical layouts, so any difference
        is damage, not drift.
        """
        if self.wal is not None:
            self.wal.flush()
        self.primary.pager.flush()
        member.pager.flush()
        ours = {name: f for name, f in self.primary.device.files.items()
                if name != WAL_FILE}
        theirs = {name: f for name, f in member.device.files.items()
                  if name != WAL_FILE}
        if set(ours) != set(theirs):
            return False
        for name, mine in ours.items():
            other = theirs[name]
            if mine.num_blocks != other.num_blocks:
                return False
            for a, b in zip(mine.blocks, other.blocks):
                if bytes(a) != bytes(b):
                    return False
        return True

    def _reseed(self, member: ShardMember) -> ShardMember:
        """PR 7 fallback: rebuild the member from a full primary scan."""
        fresh = self._new_member()
        fresh.index.bulk_load(self.primary_scan_range(0, 2**64 - 1))
        self.retired_stats.append(member.device.stats)
        self.replicas[self.replicas.index(member)] = fresh
        self.reseeds += 1
        return fresh

    # -- write path ----------------------------------------------------------

    def append_log(self, op: str, key: int, payload: int = 0) -> Optional[int]:
        """Append one logical record to this shard's WAL (if durable)."""
        self._ensure_wal()
        if self.wal is None:
            return None
        return self.wal.append(op, key, payload)

    def apply(self, op: str, key: int, payload: int = 0, *,
              log: bool = True) -> object:
        """Apply one mutation to the primary and ship it to the replicas.

        ``log=False`` is the already-logged path: the caller (the fan-out
        WAL facade or recovery replay) has appended the record itself.

        A storage fault on the primary's apply quarantines it (the write
        may be half-applied — its files are no longer trusted) and fails
        over; the in-flight record is then re-applied on the new primary
        by the failover's catch-up, so the mutation is never lost even
        though the faulted device never completed it.
        """
        if op not in ("insert", "update", "delete"):
            raise ValueError(f"unknown mutation {op!r}")
        if log:
            self.append_log(op, key, payload)
        self.op_counts[op] += 1
        seqno = self.wal.current_lsn if self.wal is not None else None
        try:
            if op == "insert":
                result: object = self.primary.index.insert(key, payload)
            elif op == "update":
                result = self.primary.index.update(key, payload)
            else:
                result = self.primary.index.delete(key)
        except StorageFault:
            self.primary.tainted = True
            self._record_fault(self.primary, hard=True)  # fails over or raises
            if seqno is not None:
                # The failover's catch-up replayed the in-flight record
                # on the new primary *and* every healthy replica — its
                # replay result answers this call, and shipping again
                # would double-apply.
                return self._failover_result
            # No log to replay from: re-apply directly, then ship.
            result = self._apply_to(self.primary.index, op, key, payload)
            self._ship(op, key, payload)
            return result
        if seqno is not None:
            self.primary.applied_seqno = seqno
        self._ship(op, key, payload)
        return result

    def _ship(self, op: str, key: int, payload: int) -> None:
        """Synchronous statement-level shipping of the logical record.

        Quarantined members are skipped — they catch up at rejoin.  A
        fault mid-apply quarantines the member as tainted (its copy may
        hold half the mutation) but never fails the write: the primary
        applied it, and that is what the client was promised.
        """
        seqno = self.wal.current_lsn if self.wal is not None else 0
        for member in self.replicas:
            if member.health.state == "quarantined":
                continue
            try:
                self._apply_to(member.index, op, key, payload)
            except StorageFault:
                member.tainted = True
                self.member_faults += 1
                member.health.strike(hard=True)
                continue
            self.shipped_records += 1
            if seqno:
                member.applied_seqno = seqno

    def flush(self) -> int:
        """WAL tail first, then every member's dirty pages."""
        if self.wal is not None:
            self.wal.flush()
        return sum(member.pager.flush() for member in self.members())

    # -- lookups on the reader() policy need primary-only variants for the
    # -- router's correctness-critical paths (e.g. migration reads).

    def primary_scan_range(self, low: int, high: int) -> List[KeyPayload]:
        return self.primary.index.scan_range(low, high)

    # -- observed mix --------------------------------------------------------

    def op_mix(self) -> Dict[str, int]:
        mix = dict(self.op_counts)
        mix["entries_scanned"] = self.entries_scanned
        return mix

    def reset_op_mix(self) -> None:
        self.op_counts = {kind: 0 for kind in OP_KINDS}
        self.entries_scanned = 0

    # -- crash recovery ------------------------------------------------------

    def _pager_kwargs(self) -> dict:
        """Rebuild the members' pager configuration for recovery paths."""
        kwargs = self.member_kwargs
        buffer_blocks = kwargs.get("buffer_blocks", 0)
        pool = (make_buffer_pool(buffer_blocks,
                                 kwargs.get("buffer_policy", "lru"))
                if buffer_blocks > 0 else None)
        return {"buffer_pool": pool,
                "write_back": kwargs.get("write_back", False),
                "flush_watermark": kwargs.get("flush_watermark")}

    def checkpoint(self) -> Checkpoint:
        """Durable snapshot of the primary (flushes WAL + dirty pages)."""
        self._ensure_wal()
        return take_checkpoint(self.primary.index, self.wal)

    def recover(self, checkpoint: Checkpoint) -> RecoveryResult:
        """Failover after a primary crash: redo the durable WAL prefix
        onto the checkpoint image, adopt the result as the new primary,
        and re-seed every replica from it.

        The crashed primary's data files are never trusted (they may hold
        a half-applied SMO); replicas are rebuilt because synchronous
        shipping may have applied records past the durable prefix — acked
        to nobody, so recovery must *unapply* them, and a re-seed is how
        a follower rejoins after diverging.  The adopted primary keeps
        the shard's storage configuration (buffer pool, write-back,
        flush watermark) via ``pager_kwargs``.
        """
        if self.wal is None:
            raise RuntimeError("cannot recover a shard without a WAL")
        result = recover(checkpoint, self.wal,
                         profile=self.member_kwargs.get("profile"),
                         pager_kwargs=self._pager_kwargs())
        self.primary = ShardMember.adopt(result.index, self.index_name)
        self.primary.health.quarantine_after = self.quarantine_after
        self.primary.applied_seqno = result.last_seqno
        self.wal = WriteAheadLog(self.primary.pager,
                                 group_commit=self.group_commit)
        # Continue the shard's sequence numbering where the durable
        # prefix ended, so post-recovery appends extend the same history.
        self.wal.next_seqno = result.last_seqno + 1
        self.wal.durable_seqno = result.last_seqno
        self.primary.index.attach_wal(self.wal)
        if self.replicas:
            items = self.primary_scan_range(0, 2**64 - 1)
            rebuilt = []
            for _ in self.replicas:
                member = self._new_member()
                member.index.bulk_load(items)
                member.applied_seqno = result.last_seqno
                rebuilt.append(member)
            self.replicas = rebuilt
        self._members_changed()
        return result

    # -- integrity -----------------------------------------------------------

    def verify(self, key_range: Optional[Tuple[int, int]] = None) -> int:
        """Structural verify on every member, plus replica-group agreement
        and (when given the shard's ``[lo, hi)`` range) ownership checks.

        Quarantined members are exempt from the agreement check: they
        stopped receiving shipped records and are *expected* to lag
        until :meth:`rejoin` catches them up.

        Returns the primary's live entry count.
        """
        live = self.primary.index.verify()
        for member in self.replicas:
            if member.health.state == "quarantined":
                continue
            member.index.verify()
        with self.primary.index._free_io():
            contents = self.primary.index.scan_range(0, 2**64 - 1)
        if key_range is not None:
            lo, hi = key_range
            for key, _ in contents:
                assert lo <= key < hi, (
                    f"shard {self.shard_id} holds out-of-range key {key} "
                    f"(owns [{lo}, {hi}))")
        for member in self.replicas:
            if member.health.state == "quarantined":
                continue
            with member.index._free_io():
                replica_contents = member.index.scan_range(0, 2**64 - 1)
            assert replica_contents == contents, (
                f"shard {self.shard_id}: replica diverged from primary")
        return live
