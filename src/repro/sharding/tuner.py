"""Workload-aware per-shard index selection (the paper's P1-P5 as a
scoring function).

The paper's conclusion — and the premise of this tier — is that *no
single on-disk index wins every operation mix* (confirmed at memory
scale by Wongkham et al. 2022, and exploited per-replica by the
extend-dist divergent-tuning work).  The tuner therefore scores each
shard's **observed** op mix against a per-class cost table and picks the
cheapest class *for that shard*, so a tier can run e.g. ``hybrid-alex``
on its read-only range and ``btree`` on its write-heavy range at the
same time.

The cost table is *measured*, not guessed: charged positionings per
operation on this repository's own storage model (uniform ops over a
60K-key dense-integer load, no buffer pool, so the numbers are the
intrinsic per-op disk touches).  Each entry traces to one of the paper's
design principles:

* ``lookup`` — P1 (reduce tree height) and P4 (models live in the
  parent): ALEX's model descent touches fewer levels than the B+-tree
  (2.65 vs 3.0), and the hybrid (learned inner over B+-tree leaves)
  is lower still at 2.40 because its whole inner level is one compact
  model array.
* ``insert`` — P2 (lightweight SMOs): the B+-tree's local split writes a
  handful of blocks (4.0 effective per insert at a write-heavy mix)
  while ALEX's gapped-array expansions rewrite whole node ranges (7.9).
  Hybrids are read-only (Table 5), so their insert cost is infinite and
  the tuner only assigns them to mutation-free mixes.
* ``scan`` — P3 (cheap next-item fetch): chained B+-tree/hybrid leaves
  ride the sequential rate (3.0 / 2.4 per 100-entry scan) while ALEX
  hops between gapped nodes with a positioning each (4.05).
* P5 (buffer co-design) enters through the *tier*, not the table: each
  shard has its own pool, so shrinking a shard's working set (the
  rebalancer) or picking a flatter class raises its hit rate.

Scores are positionings per operation of the observed mix — device
independent (HDD and SSD charge the same *count*; only the per-event
microseconds differ), so one table serves both profiles.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from .shard import Shard, ShardMember
from .sharded import ShardedIndex

__all__ = ["ShardTuner", "COST_TABLE", "READ_ONLY_CLASSES"]

_INF = float("inf")

#: Measured charged positionings per operation (see module docstring).
#: ``scan`` is per scan *operation* (100 entries at the paper's default).
COST_TABLE: Dict[str, Dict[str, float]] = {
    "btree":       {"lookup": 3.00, "insert": 4.00, "update": 3.10,
                    "delete": 3.10, "scan": 3.00},
    "alex":        {"lookup": 2.65, "insert": 7.90, "update": 2.75,
                    "delete": 2.75, "scan": 4.05},
    "hybrid-alex": {"lookup": 2.40, "insert": _INF, "update": _INF,
                    "delete": _INF, "scan": 2.40},
}

#: Classes the paper evaluates read-only (Table 5): assignable only to
#: shards whose observed mix has zero mutations.
READ_ONLY_CLASSES = frozenset(
    name for name, costs in COST_TABLE.items()
    if costs["insert"] == _INF)

_MUTATION_KINDS = ("insert", "update", "delete")


class ShardTuner:
    """Scores shard op mixes against :data:`COST_TABLE` and (optionally)
    rebuilds shards onto their chosen class.

    Args:
        candidates: class names to consider (default: the whole table).
        cost_table: override the measured table (tests inject synthetic
            costs; production recalibration would re-measure).
    """

    def __init__(self, candidates: Optional[Sequence[str]] = None,
                 cost_table: Optional[Mapping[str, Mapping[str, float]]] = None
                 ) -> None:
        self.cost_table = {name: dict(costs) for name, costs in
                           (cost_table or COST_TABLE).items()}
        self.candidates = list(candidates or self.cost_table)
        unknown = [c for c in self.candidates if c not in self.cost_table]
        if unknown:
            raise ValueError(f"no cost entries for candidates {unknown}")

    # -- scoring -------------------------------------------------------------

    def score(self, mix: Mapping[str, int]) -> Dict[str, float]:
        """Expected positionings per op of each candidate on ``mix``.

        ``mix`` maps op kind to observed count (a shard's
        :meth:`~repro.sharding.shard.Shard.op_mix`).  Read-only classes
        score infinite on any mix with mutations.
        """
        total_ops = sum(mix.get(kind, 0)
                        for kind in ("lookup", "scan") + _MUTATION_KINDS)
        scores: Dict[str, float] = {}
        for name in self.candidates:
            costs = self.cost_table[name]
            if total_ops == 0:
                # Nothing observed: rank by lookup cost (the paper's
                # default workload), writable classes only.
                scores[name] = (costs["lookup"]
                                if costs["insert"] != _INF else _INF)
                continue
            # Skip zero-count terms: 0 * inf is NaN, and a class must
            # not be penalized for ops the shard never sees.
            weighted = sum(mix.get(kind, 0) * costs[kind]
                           for kind in ("lookup", "scan") + _MUTATION_KINDS
                           if mix.get(kind, 0) > 0)
            scores[name] = weighted / total_ops
        return scores

    def choose(self, mix: Mapping[str, int]) -> str:
        """The cheapest candidate for ``mix`` (ties break toward the
        earlier candidate, i.e. the table's order)."""
        scores = self.score(mix)
        best = min(self.candidates, key=lambda name: scores[name])
        if scores[best] == _INF:
            raise ValueError(
                f"no writable candidate among {self.candidates}")
        return best

    # -- applying a choice ---------------------------------------------------

    def retune(self, sharded: ShardedIndex, *,
               reset_mix: bool = True) -> Dict[int, str]:
        """Choose per shard from its observed mix; rebuild divergers.

        Returns ``{shard_id: chosen_class}``.  Shards already running
        their chosen class are untouched.  The rebuild (dump + bulk
        load on fresh member storage) is charged I/O under the
        ``"maintenance"`` phase — conversion is an SMO writ large, and
        the experiment reports what it cost.
        """
        plan: Dict[int, str] = {}
        for shard in sharded.shards:
            choice = self.choose(shard.op_mix())
            plan[shard.shard_id] = choice
            if choice != shard.index_name:
                self.convert(shard, choice)
            if reset_mix:
                shard.reset_op_mix()
        return plan

    def convert(self, shard: Shard, index_name: str) -> None:
        """Rebuild every member of ``shard`` onto ``index_name``.

        The dump reads through the old primary (charged), the loads
        write through the new members (charged).  Durability carries
        over: a converted shard gets a fresh WAL whose numbering
        continues the old one — the rebuild is its own checkpoint, so
        dropping the old log loses nothing.
        """
        with shard.primary.pager.phase("maintenance"):
            items = shard.primary.index.scan_range(0, 2**64 - 1)
        old_wal = shard.wal
        members: List[ShardMember] = []
        for _ in shard.members():
            member = ShardMember(index_name, **shard.member_kwargs)
            with member.pager.phase("maintenance"):
                member.index.bulk_load(items)
            members.append(member)
        shard.index_name = index_name
        shard.primary, shard.replicas = members[0], members[1:]
        shard.wal = None
        shard._ensure_wal()
        if shard.wal is not None and old_wal is not None:
            shard.wal.next_seqno = old_wal.next_seqno
            shard.wal.durable_seqno = old_wal.next_seqno - 1
