"""The sharded tier: a :class:`DiskIndex` made of independent shards.

:class:`ShardedIndex` composes a :class:`~repro.sharding.partition.RangePartition`,
N :class:`~repro.sharding.shard.Shard` replica groups and a
:class:`~repro.sharding.router.Router` behind the ordinary
:class:`~repro.core.DiskIndex` interface, so every existing consumer —
the workload runner, the serving engine, the differential oracle, the
fault injector — drives a whole sharded tier exactly as it drives one
index.

That compatibility is carried by three *fan-out facades*:

* :class:`_FanoutDevice` — presents the union of every member device:
  ``stats`` sums the per-device :class:`~repro.storage.StorageStats`
  fresh on each access (so ``snapshot()``/``diff()`` keep working), and
  ``files`` merges the per-device file tables under ``s<i>:``- and
  ``s<i>r<j>:``-prefixed names.  ``charge_latch_wait`` lands on shard
  0's primary device so the serving engine's latch charges appear in
  the aggregate clock.
* :class:`_FanoutPager` — ``flush``/``flushes``/``drop_dirty`` fan out
  to every member pager, and assigning ``on_block_access`` installs a
  prefixing wrapper on each member so the serving engine's frame
  latches (and any tracer hook) see distinct per-shard block names.
* :class:`_FanoutWal` — a tier-level log view over the per-shard WALs.
  ``append`` routes each record to the owning shard's log and assigns a
  *global* sequence number (the append order across shards);
  ``durable_seqno`` is the end of the longest global prefix whose
  per-shard records are all durable, which is exactly what group-commit
  acknowledgement needs.  Crash effects (``drop_unflushed`` /
  ``tear_tail_block``) hit every shard — whole-cluster power loss;
  single-shard crashes go through :meth:`Shard.recover` directly.

Writes route to the owning shard's primary; the plain mutation methods
stay unlogged and the ``durable_*`` paths log first, matching the base
class convention, so the runner and the serving engine both do the right
thing without knowing the index is sharded.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import fields as dataclass_fields
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.interface import DiskIndex, KeyPayload
from ..storage.device import StorageStats
from .partition import RangePartition
from .router import Router
from .shard import Shard

__all__ = ["ShardedIndex", "combine_stats", "member_prefix"]


def member_prefix(shard_id: int, member_index: int) -> str:
    """The file-name prefix of one member's device in the merged view."""
    if member_index == 0:
        return f"s{shard_id}:"
    return f"s{shard_id}r{member_index}:"


def combine_stats(stats: Iterable[StorageStats]) -> StorageStats:
    """Field-wise sum of several :class:`StorageStats` (dicts merged)."""
    total = StorageStats()
    for s in stats:
        for f in dataclass_fields(StorageStats):
            value = getattr(s, f.name)
            if isinstance(value, dict):
                merged = getattr(total, f.name)
                for key, v in value.items():
                    merged[key] = merged.get(key, 0) + v
            else:
                setattr(total, f.name, getattr(total, f.name) + value)
    return total


class _FanoutDevice:
    """Union view over every member device (see module docstring)."""

    def __init__(self, owner: "ShardedIndex") -> None:
        self._owner = owner

    def _devices(self):
        for shard in self._owner.shards:
            for member in shard.members():
                yield member.device

    @property
    def stats(self) -> StorageStats:
        # Retired stats (members replaced by a re-seed) stay in the sum
        # so the tier's aggregate counters never move backwards across a
        # membership change.
        live = [d.stats for d in self._devices()]
        retired = [s for shard in self._owner.shards
                   for s in shard.retired_stats]
        return combine_stats(live + retired)

    @property
    def files(self) -> Dict[str, object]:
        merged: Dict[str, object] = {}
        for shard in self._owner.shards:
            for j, member in enumerate(shard.members()):
                prefix = member_prefix(shard.shard_id, j)
                for name, handle in member.device.files.items():
                    merged[prefix + name] = handle
        return merged

    @property
    def block_size(self) -> int:
        return self._owner.shards[0].primary.device.block_size

    @property
    def allocated_bytes(self) -> int:
        return sum(d.allocated_bytes for d in self._devices())

    @property
    def live_bytes(self) -> int:
        return sum(d.live_bytes for d in self._devices())

    def charge_latch_wait(self, cost_us: float) -> None:
        # One canonical device carries the serving engine's latch
        # charges; the combined stats sum it in like any other member.
        self._owner.shards[0].primary.device.charge_latch_wait(cost_us)


class _FanoutPager:
    """Pager facade fanning control operations to every member pager."""

    def __init__(self, owner: "ShardedIndex") -> None:
        self._owner = owner
        self._hook = None

    def _pagers(self):
        for shard in self._owner.shards:
            for member in shard.members():
                yield member.pager

    @property
    def device(self) -> _FanoutDevice:
        return self._owner.device

    @property
    def stats(self) -> StorageStats:
        return self.device.stats

    @property
    def block_size(self) -> int:
        return self.device.block_size

    @property
    def buffer_pool(self):
        pools = [p.buffer_pool for p in self._pagers()
                 if p.buffer_pool is not None]
        return _FanoutPool(pools) if pools else None

    @property
    def flushes(self) -> int:
        return sum(p.flushes for p in self._pagers())

    @property
    def flushed_blocks(self) -> int:
        return sum(p.flushed_blocks for p in self._pagers())

    @property
    def dirty_blocks(self) -> int:
        return sum(p.dirty_blocks for p in self._pagers())

    def flush(self, file_name: Optional[str] = None) -> int:
        if file_name is not None:
            raise ValueError("per-file flush is shard-local; flush the whole tier")
        return self._owner.flush_pages()

    def drop_dirty(self) -> int:
        return sum(p.drop_dirty() for p in self._pagers())

    @contextmanager
    def batch(self):
        """Pin scope spanning every member pager."""
        stack = []
        try:
            for pager in self._pagers():
                ctx = pager.batch()
                ctx.__enter__()
                stack.append(ctx)
            yield
        finally:
            for ctx in reversed(stack):
                ctx.__exit__(None, None, None)

    @contextmanager
    def phase(self, name: str):
        stack = []
        try:
            for pager in self._pagers():
                ctx = pager.phase(name)
                ctx.__enter__()
                stack.append(ctx)
            yield
        finally:
            for ctx in reversed(stack):
                ctx.__exit__(None, None, None)

    # -- access hook ---------------------------------------------------------

    @property
    def on_block_access(self):
        return self._hook

    @on_block_access.setter
    def on_block_access(self, hook) -> None:
        self._hook = hook
        for shard in self._owner.shards:
            for j, member in enumerate(shard.members()):
                if hook is None:
                    member.pager.on_block_access = None
                else:
                    prefix = member_prefix(shard.shard_id, j)
                    member.pager.on_block_access = (
                        lambda mode, name, block_no, _h=hook, _p=prefix:
                        _h(mode, _p + name, block_no))


class _FanoutPool:
    """Minimal pool view: the runner only reads ``dirty_evictions``."""

    def __init__(self, pools) -> None:
        self._pools = list(pools)

    @property
    def dirty_evictions(self) -> int:
        return sum(pool.dirty_evictions for pool in self._pools)


class _FanoutWal:
    """Tier-level WAL view mapping global seqnos to per-shard records."""

    def __init__(self, owner: "ShardedIndex") -> None:
        self._owner = owner
        #: global append order: entry g-1 is ``(shard_id, shard_seqno)``.
        self._records: List[Tuple[int, int]] = []
        self._durable_idx = 0

    def _wals(self):
        for shard in self._owner.shards:
            shard._ensure_wal()
            if shard.wal is not None:
                yield shard.wal

    # -- append path ---------------------------------------------------------

    def append(self, op: str, key: int, payload: int = 0) -> int:
        shard = self._owner.shards[self._owner.partition.shard_of(key)]
        shard_seqno = shard.append_log(op, key, payload)
        if shard_seqno is None:
            raise RuntimeError("append on a shard without durability")
        self._records.append((shard.shard_id, shard_seqno))
        return len(self._records)

    def flush(self) -> None:
        for wal in self._wals():
            wal.flush()

    @property
    def durable_seqno(self) -> int:
        """End of the longest globally-ordered prefix whose records are
        all durable in their shard's log."""
        shards = self._owner.shards
        while self._durable_idx < len(self._records):
            shard_id, shard_seqno = self._records[self._durable_idx]
            wal = shards[shard_id].wal
            if wal is None or wal.durable_seqno < shard_seqno:
                break
            self._durable_idx += 1
        return self._durable_idx

    @property
    def group_commit(self) -> int:
        return max((wal.group_commit for wal in self._wals()), default=1)

    @group_commit.setter
    def group_commit(self, value: int) -> None:
        for wal in self._wals():
            wal.group_commit = value

    # -- accounting ----------------------------------------------------------

    @property
    def records_appended(self) -> int:
        return sum(wal.records_appended for wal in self._wals())

    @property
    def flushes(self) -> int:
        return sum(wal.flushes for wal in self._wals())

    @property
    def pending(self) -> int:
        return sum(wal.pending for wal in self._wals())

    @property
    def log_blocks(self) -> int:
        return sum(wal.log_blocks for wal in self._wals())

    # -- crash surface (whole-cluster power loss) -----------------------------

    def drop_unflushed(self) -> int:
        return sum(wal.drop_unflushed() for wal in self._wals())

    def tear_tail_block(self) -> bool:
        torn = False
        for wal in self._wals():
            torn = wal.tear_tail_block() or torn
        return torn


class ShardedIndex(DiskIndex):
    """A range-partitioned, replicated tier behind the DiskIndex API.

    Build one with :func:`repro.sharding.make_sharded_index` (or the
    registry re-export) rather than by hand: the factory cuts the
    partition, builds the shards, and wires the facades.
    """

    name = "sharded"

    def __init__(self, shards: Sequence[Shard], partition: RangePartition) -> None:
        if partition.num_shards != len(shards):
            raise ValueError(
                f"partition cuts {partition.num_shards} ranges but "
                f"{len(shards)} shards given")
        self.shards = list(shards)
        self.partition = partition
        self.router = Router(partition, self.shards)
        self.device = _FanoutDevice(self)
        self.pager = _FanoutPager(self)
        self.wal = (_FanoutWal(self)
                    if any(s.durability for s in self.shards) else None)
        self.tracer = None
        for shard in self.shards:
            shard.on_members_changed = self._on_members_changed

    def _on_members_changed(self) -> None:
        """A shard promoted/re-seeded a member: re-install per-member
        hooks (the access-hook setter is idempotent) so the new member's
        pager reports under its prefixed name like its predecessor."""
        self.pager.on_block_access = self.pager.on_block_access

    # -- topology ------------------------------------------------------------

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def replication_factor(self) -> int:
        return max(shard.replication_factor for shard in self.shards)

    def composition(self) -> List[str]:
        """Per-shard index class names, e.g. ``["hybrid-alex", "btree"]``."""
        return [shard.index_name for shard in self.shards]

    # -- fault tolerance (DESIGN.md Section 17) -------------------------------

    @property
    def failovers(self) -> int:
        return sum(shard.failovers for shard in self.shards)

    @property
    def hedged_reads(self) -> int:
        return sum(shard.hedged_reads for shard in self.shards)

    @property
    def resyncs(self) -> int:
        return sum(shard.resyncs for shard in self.shards)

    @property
    def resync_blocks(self) -> int:
        return sum(shard.resync_blocks for shard in self.shards)

    @property
    def reseeds(self) -> int:
        return sum(shard.reseeds for shard in self.shards)

    @property
    def member_faults(self) -> int:
        return sum(shard.member_faults for shard in self.shards)

    def set_hedge(self, hedge_us: Optional[float]) -> None:
        """Set the read-hedge latency budget on every shard."""
        for shard in self.shards:
            shard.hedge_us = hedge_us

    def health_summary(self) -> Dict[int, List[str]]:
        """Member health per shard, primary first."""
        return {shard.shard_id: shard.health_states()
                for shard in self.shards}

    def rejoin_quarantined(self) -> Dict[str, int]:
        """Rejoin every quarantined *replica* (catch-up resync with
        re-seed fallback — :meth:`Shard.rejoin`).  A quarantined primary
        is not touched: it either already failed over (and sits in the
        replica list, rejoinable here) or has no healthy peer to take
        over.  Returns ``{"resync": n, "reseed": m}``.
        """
        modes = {"resync": 0, "reseed": 0}
        for shard in self.shards:
            for member in list(shard.replicas):
                if member.health.state == "quarantined":
                    modes[shard.rejoin(member)] += 1
        return modes

    def _owner(self, key: int) -> Shard:
        return self.shards[self.partition.shard_of(key)]

    # -- DiskIndex required operations ---------------------------------------

    def bulk_load(self, items: Sequence[KeyPayload]) -> None:
        self.check_bulk_items(items)
        split: Dict[int, List[KeyPayload]] = {}
        for key, payload in items:
            split.setdefault(self.partition.shard_of(key), []).append(
                (key, payload))
        for shard in self.shards:
            shard.bulk_load(split.get(shard.shard_id, []))

    def lookup(self, key: int) -> Optional[int]:
        return self.router.lookup(key)

    def lookup_many(self, keys: Iterable[int]) -> List[Optional[int]]:
        return self.router.lookup_many(keys)

    def insert(self, key: int, payload: int) -> None:
        self._owner(key).apply("insert", key, payload, log=False)

    def update(self, key: int, payload: int) -> bool:
        return bool(self._owner(key).apply("update", key, payload, log=False))

    def delete(self, key: int) -> bool:
        return bool(self._owner(key).apply("delete", key, log=False))

    def scan(self, start_key: int, count: int) -> List[KeyPayload]:
        return self.router.scan(start_key, count)

    def scan_range(self, low: int, high: int, batch: int = 256) -> List[KeyPayload]:
        return self.router.scan_range(low, high)

    # -- durability ----------------------------------------------------------

    def attach_wal(self, wal) -> None:
        raise NotImplementedError(
            "a sharded tier owns one WAL per shard; construct it with "
            "durability=True instead of attaching a log afterwards")

    def flush(self) -> int:
        return sum(shard.flush() for shard in self.shards)

    def flush_pages(self) -> int:
        """Dirty-page flush only (the pager facade's ``flush``): each
        member pager's own WAL barrier orders its log ahead of data."""
        written = 0
        for shard in self.shards:
            if shard.wal is not None:
                shard.wal.flush()
            for member in shard.members():
                written += member.pager.flush()
        return written

    # -- observability -------------------------------------------------------

    def attach_tracer(self, tracer) -> None:
        raise NotImplementedError(
            "tracer binding is per-device; attach it to a member index "
            "(shard.primary.index.attach_tracer) instead of the tier")

    # -- optional hooks ------------------------------------------------------

    def set_inner_memory_resident(self, resident: bool) -> None:
        for shard in self.shards:
            for member in shard.members():
                member.index.set_inner_memory_resident(resident)

    def height(self) -> int:
        return max(shard.primary.index.height() for shard in self.shards)

    def verify(self) -> int:
        """Verify every shard (structure, replica agreement, range
        ownership); returns total live entries across primaries."""
        return sum(
            shard.verify(key_range=self.partition.range_of(shard.shard_id))
            for shard in self.shards)

    def file_roles(self) -> dict:
        roles: Dict[str, str] = {}
        for shard in self.shards:
            for j, member in enumerate(shard.members()):
                prefix = member_prefix(shard.shard_id, j)
                for name, role in member.index.file_roles().items():
                    roles[prefix + name] = role
        return roles

    @contextmanager
    def _free_io(self):
        stack = []
        try:
            for shard in self.shards:
                for member in shard.members():
                    ctx = member.index._free_io()
                    ctx.__enter__()
                    stack.append(ctx)
            yield
        finally:
            for ctx in reversed(stack):
                ctx.__exit__(None, None, None)

    # -- per-shard reporting (RunResult.per_shard) ----------------------------

    def per_shard_snapshot(self) -> List[dict]:
        """Capture per-member counters; pass to :meth:`per_shard_delta`.

        Stats and read counts are keyed by member identity, not list
        position: failover reorders the member list and a re-seed swaps
        a member out entirely, and a positional diff across either would
        subtract one device's history from another's.
        """
        return [
            {
                "stats": {id(m): m.device.stats.snapshot()
                          for m in shard.members()},
                "ops": dict(shard.op_counts),
                "entries_scanned": shard.entries_scanned,
                "reads_served": {id(m): m.reads_served
                                 for m in shard.members()},
                "shipped_records": shard.shipped_records,
                "log_records": shard.wal.records_appended if shard.wal else 0,
                "log_flushes": shard.wal.flushes if shard.wal else 0,
                "failovers": shard.failovers,
                "hedged_reads": shard.hedged_reads,
                "resync_blocks": shard.resync_blocks,
            }
            for shard in self.shards
        ]

    def per_shard_delta(self, snapshot: List[dict]) -> Dict[int, dict]:
        """What each shard did since ``snapshot``, for ``RunResult``."""
        out: Dict[int, dict] = {}
        for shard, before in zip(self.shards, snapshot):
            members = shard.members()
            # Members replaced since the snapshot (re-seeds) start fresh:
            # a new device's full stats are its own delta.
            deltas = []
            for member in members:
                earlier = before["stats"].get(id(member))
                if earlier is not None:
                    deltas.append(member.device.stats.diff(earlier))
                else:
                    deltas.append(member.device.stats.snapshot())
            total = combine_stats(deltas)
            lo, hi = self.partition.range_of(shard.shard_id)
            out[shard.shard_id] = {
                "index": shard.index_name,
                "range": [lo, hi],
                "replicas": shard.replication_factor,
                "ops": {
                    kind: shard.op_counts[kind] - before["ops"].get(kind, 0)
                    for kind in shard.op_counts
                },
                "entries_scanned":
                    shard.entries_scanned - before["entries_scanned"],
                "reads": total.reads,
                "writes": total.writes,
                "elapsed_us": total.elapsed_us,
                "read_positionings": total.read_positionings,
                "write_positionings": total.write_positionings,
                "reads_served": [
                    member.reads_served
                    - before["reads_served"].get(id(member), 0)
                    for member in members
                ],
                "health": shard.health_states(),
                "failovers": shard.failovers - before.get("failovers", 0),
                "hedged_reads":
                    shard.hedged_reads - before.get("hedged_reads", 0),
                "resync_blocks":
                    shard.resync_blocks - before.get("resync_blocks", 0),
                "shipped_records":
                    shard.shipped_records - before["shipped_records"],
                "log_records":
                    (shard.wal.records_appended if shard.wal else 0)
                    - before["log_records"],
                "log_flushes":
                    (shard.wal.flushes if shard.wal else 0)
                    - before["log_flushes"],
            }
        return out
