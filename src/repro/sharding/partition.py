"""Range partitioning of the uint64 keyspace.

A :class:`RangePartition` splits ``[0, 2^64)`` into N contiguous,
half-open ranges: shard ``i`` owns ``[boundary[i-1], boundary[i])`` with
the implicit outer bounds 0 and ``2^64``.  Range partitioning (rather
than hashing) is what keeps scans shard-local: a ``scan_range`` touches
exactly the shards whose ranges overlap the query — the property
Google's disk-based learned-index deployment (Abu-Libdeh et al. 2020)
shards around, and the one the router's split/merge logic relies on.

Boundaries are *mutable* through :meth:`set_boundary` — the rebalancer
moves a boundary between two adjacent shards after it has migrated the
keys across — but every mutation must keep the boundary list strictly
increasing, so the ranges always tile the keyspace with no gap and no
overlap (the property the Hypothesis round-trip tests pin down).
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List, Sequence, Tuple

__all__ = ["RangePartition", "KEYSPACE_END"]

#: One past the largest uint64 key — the exclusive upper bound of the
#: last shard's range.
KEYSPACE_END = 2**64


class RangePartition:
    """N contiguous key ranges tiling ``[0, 2^64)``.

    Args:
        boundaries: strictly increasing split keys; ``len(boundaries)+1``
            is the shard count.  An empty list is the degenerate single
            shard owning the whole keyspace.
    """

    def __init__(self, boundaries: Sequence[int] = ()) -> None:
        bounds = [int(b) for b in boundaries]
        previous = 0
        for b in bounds:
            if not 0 < b < KEYSPACE_END:
                raise ValueError(f"boundary {b} outside (0, 2^64)")
            if b <= previous:
                raise ValueError(
                    f"boundaries must be strictly increasing; got {b} after "
                    f"{previous}")
            previous = b
        self.boundaries: List[int] = bounds

    @classmethod
    def from_keys(cls, keys: Sequence[int], shards: int) -> "RangePartition":
        """Quantile boundaries: each shard starts with ~len(keys)/shards
        of the sample.  ``keys`` must be sorted ascending."""
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if shards == 1:
            return cls()
        if len(keys) < shards:
            raise ValueError(
                f"need at least {shards} sample keys to cut {shards} ranges; "
                f"got {len(keys)}")
        bounds = []
        n = len(keys)
        for i in range(1, shards):
            b = int(keys[(i * n) // shards])
            if bounds and b <= bounds[-1]:
                raise ValueError(
                    "sample keys too clustered to cut distinct boundaries; "
                    "pass explicit boundaries instead")
            bounds.append(b)
        return cls(bounds)

    # -- geometry ------------------------------------------------------------

    @property
    def num_shards(self) -> int:
        return len(self.boundaries) + 1

    def shard_of(self, key: int) -> int:
        """The shard whose half-open range contains ``key``."""
        if not 0 <= key < KEYSPACE_END:
            raise ValueError(f"key {key} out of uint64 range")
        return bisect_right(self.boundaries, key)

    def range_of(self, shard_id: int) -> Tuple[int, int]:
        """Shard ``shard_id``'s half-open range ``[lo, hi)``."""
        if not 0 <= shard_id < self.num_shards:
            raise IndexError(
                f"shard {shard_id} out of range for {self.num_shards} shards")
        lo = self.boundaries[shard_id - 1] if shard_id > 0 else 0
        hi = (self.boundaries[shard_id]
              if shard_id < len(self.boundaries) else KEYSPACE_END)
        return lo, hi

    # -- splitting -----------------------------------------------------------

    def split_keys(self, keys: Sequence[int]) -> Dict[int, List[Tuple[int, int]]]:
        """Group a key batch by owning shard, keeping batch positions.

        Returns ``{shard_id: [(position, key), ...]}`` with each shard's
        list in batch order.  Duplicates survive (each occurrence keeps
        its own position), so the router's merge restores the original
        batch losslessly.
        """
        split: Dict[int, List[Tuple[int, int]]] = {}
        for position, key in enumerate(keys):
            split.setdefault(self.shard_of(key), []).append((position, key))
        return split

    def split_range(self, low: int, high: int) -> List[Tuple[int, int, int]]:
        """Clip an inclusive key range against the shard ranges.

        Returns ``[(shard_id, lo, hi)]`` — inclusive sub-ranges, in key
        (and therefore shard) order — covering exactly ``[low, high]``.
        Empty when ``high < low``.
        """
        if high < low:
            return []
        parts: List[Tuple[int, int, int]] = []
        first = self.shard_of(low)
        last = self.shard_of(min(high, KEYSPACE_END - 1))
        for sid in range(first, last + 1):
            range_lo, range_hi = self.range_of(sid)
            parts.append((sid, max(low, range_lo), min(high, range_hi - 1)))
        return parts

    # -- rebalancing ---------------------------------------------------------

    def set_boundary(self, index: int, key: int) -> None:
        """Move one split key (the rebalancer's final, atomic step).

        ``index`` addresses ``boundaries[index]`` — the split between
        shards ``index`` and ``index+1``.  The new key must stay strictly
        between the neighbouring boundaries so the ranges keep tiling.
        """
        if not 0 <= index < len(self.boundaries):
            raise IndexError(f"no boundary {index}")
        lo = self.boundaries[index - 1] if index > 0 else 0
        hi = (self.boundaries[index + 1]
              if index + 1 < len(self.boundaries) else KEYSPACE_END)
        if not lo < key < hi:
            raise ValueError(
                f"boundary {key} must stay strictly inside ({lo}, {hi})")
        self.boundaries[index] = int(key)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RangePartition({self.boundaries!r})"
