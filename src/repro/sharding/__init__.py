"""Sharded, replicated storage tier with workload-aware routing.

See DESIGN.md Section 14.  The public surface:

* :func:`make_sharded_index` — build a :class:`ShardedIndex` (the whole
  tier behind the ordinary :class:`~repro.core.DiskIndex` interface);
* :class:`RangePartition` / :class:`Router` / :class:`Shard` — the
  pieces, for tests and tools that need to reach inside;
* :class:`ShardTuner` — P1-P5 scoring of observed per-shard op mixes,
  choosing index classes divergently per shard;
* :class:`Rebalancer` — WAL-logged boundary moves between adjacent
  shards.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from ..storage import HDD, DiskProfile
from .partition import KEYSPACE_END, RangePartition
from .rebalance import MigrationReport, Rebalancer
from .router import Router
from .shard import (HEALTH_STATES, MemberHealth, REPLICA_POLICIES, Shard,
                    ShardMember)
from .sharded import ShardedIndex, combine_stats, member_prefix
from .tuner import COST_TABLE, READ_ONLY_CLASSES, ShardTuner

__all__ = [
    "KEYSPACE_END", "RangePartition", "Router", "Shard", "ShardMember",
    "ShardedIndex", "ShardTuner", "Rebalancer", "MigrationReport",
    "MemberHealth", "HEALTH_STATES",
    "REPLICA_POLICIES", "COST_TABLE", "READ_ONLY_CLASSES",
    "combine_stats", "member_prefix", "make_sharded_index",
]


def make_sharded_index(index_names: Union[str, Sequence[str]],
                       shards: Optional[int] = None, *,
                       boundaries: Optional[Sequence[int]] = None,
                       sample_keys: Optional[Sequence[int]] = None,
                       replicas: int = 1,
                       replica_policy: str = "round_robin",
                       durability: bool = False, group_commit: int = 8,
                       hedge_us: Optional[float] = None,
                       quarantine_after: int = 2,
                       profile: DiskProfile = HDD, block_size: int = 4096,
                       buffer_blocks: int = 0, buffer_policy: str = "lru",
                       write_back: bool = False,
                       flush_watermark: Optional[int] = None,
                       index_params: Optional[dict] = None) -> ShardedIndex:
    """Build a sharded tier.

    Args:
        index_names: one registry name for a uniform tier, or one name
            per shard for a divergent one (its length fixes the shard
            count).
        shards: shard count (required when ``index_names`` is a single
            name and no explicit ``boundaries`` are given).
        boundaries: explicit partition split keys
            (``len(boundaries) + 1`` shards); otherwise quantile
            boundaries are cut from ``sample_keys`` (normally the bulk
            keys).
        replicas: copies per shard including the primary.
        replica_policy: read routing across a replica group —
            ``primary`` / ``round_robin`` / ``least_loaded``.
        durability: give every shard its own WAL (armed after bulk
            load), making the tier's ``durable_*`` paths and the fan-out
            WAL facade live.
        hedge_us: read-hedge latency budget (virtual µs) per shard; None
            disables hedging (reads re-issue only on hard faults).
        quarantine_after: soft health strikes before a member leaves
            the read rotation (DESIGN.md Section 17).
        group_commit / profile / block_size / buffer_blocks /
        buffer_policy / write_back / flush_watermark / index_params:
            per-member storage configuration, identical across members.
    """
    if isinstance(index_names, str):
        names: Optional[list] = None
        uniform = index_names
    else:
        names = list(index_names)
        uniform = None
        if shards is not None and shards != len(names):
            raise ValueError(
                f"{len(names)} per-shard index names but shards={shards}")
        shards = len(names)

    if boundaries is not None:
        partition = RangePartition(boundaries)
        if shards is not None and shards != partition.num_shards:
            raise ValueError(
                f"{len(partition.boundaries)} boundaries cut "
                f"{partition.num_shards} ranges but shards={shards}")
    elif shards is None:
        raise ValueError("pass shards=N, per-shard index_names, or boundaries")
    elif shards == 1:
        partition = RangePartition()
    elif sample_keys is not None:
        partition = RangePartition.from_keys(sample_keys, shards)
    else:
        # No sample: cut the uint64 keyspace evenly.
        step = KEYSPACE_END // shards
        partition = RangePartition([step * i for i in range(1, shards)])

    if names is None:
        names = [uniform] * partition.num_shards

    built = [
        Shard(shard_id, name, replicas=replicas,
              replica_policy=replica_policy, durability=durability,
              group_commit=group_commit, hedge_us=hedge_us,
              quarantine_after=quarantine_after, profile=profile,
              block_size=block_size, buffer_blocks=buffer_blocks,
              buffer_policy=buffer_policy, write_back=write_back,
              flush_watermark=flush_watermark, index_params=index_params)
        for shard_id, name in enumerate(names)
    ]
    return ShardedIndex(built, partition)
