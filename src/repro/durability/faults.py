"""Crash-fault injection.

A "crash" in the simulator is the moment the process state diverges from
the durable state: everything in memory — the group-commit buffer, the
index's meta block, any half-finished SMO — is gone, and the device may
additionally hold one *torn* block from the flush that was in flight.
:class:`FaultInjector` decides *when* that moment happens (at a fixed
operation index or probabilistically) and applies its storage effects to
the write-ahead log; :mod:`repro.durability.recovery` then rebuilds the
index from a checkpoint plus the log's surviving prefix, never trusting
the crashed device's index files (which a mid-SMO crash leaves in an
arbitrary state).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..storage.faults import DeviceFaultModel
from .wal import WriteAheadLog

__all__ = ["CrashError", "CrashReport", "FaultInjector"]


class CrashError(RuntimeError):
    """Raised by the injector at the crash point; carries the op index."""

    def __init__(self, op_index: int) -> None:
        super().__init__(f"simulated crash before operation {op_index}")
        self.op_index = op_index


@dataclass(frozen=True)
class CrashReport:
    """What the crash destroyed."""

    op_index: int
    dropped_records: int        # group-commit buffer records lost with RAM
    torn_block: bool            # last log block left half-written
    dropped_dirty_pages: int = 0  # write-back pages lost before any flush


class FaultInjector:
    """Kills a run at a chosen operation or probabilistically.

    Args:
        crash_at_op: crash immediately before this 0-based operation
            index (None = no deterministic crash point).
        crash_probability: per-operation crash probability, drawn from a
            seeded RNG so runs are reproducible.
        seed: RNG seed for the probabilistic mode.
        torn_tail: when True, the crash also tears the last flushed log
            block — the flush in flight at power loss — so recovery must
            cut the log at the CRC mismatch.
        device_faults: optional
            :class:`~repro.storage.faults.DeviceFaultModel` injecting
            media faults (bit rot, torn data writes, transient/persistent
            read errors) alongside the crash machinery — :meth:`arm`
            attaches it to a device.  Crashes destroy volatile state;
            device faults damage the medium itself; one injector can
            drive both from one seeded schedule.
    """

    def __init__(self, crash_at_op: Optional[int] = None,
                 crash_probability: float = 0.0, seed: int = 0,
                 torn_tail: bool = False,
                 device_faults: Optional[DeviceFaultModel] = None) -> None:
        self.crash_at_op = crash_at_op
        self.crash_probability = crash_probability
        self.torn_tail = torn_tail
        self.device_faults = device_faults
        self.rng = random.Random(seed)
        self.fired = False

    def arm(self, device) -> None:
        """Attach the device-level fault model (if any) to ``device``."""
        if self.device_faults is not None:
            device.fault_model = self.device_faults

    def maybe_crash(self, op_index: int) -> None:
        """Raise :class:`CrashError` if this operation is the crash point."""
        if self.fired:
            return
        deterministic = self.crash_at_op is not None and op_index >= self.crash_at_op
        probabilistic = (self.crash_probability > 0.0
                         and self.rng.random() < self.crash_probability)
        if deterministic or probabilistic:
            self.fired = True
            raise CrashError(op_index)

    def crash(self, wal: Optional[WriteAheadLog], op_index: int = 0,
              pager=None) -> CrashReport:
        """Apply the crash's storage effects: drop the unflushed group-commit
        buffer, drop any write-back dirty pages still in RAM, and
        (optionally) tear the tail log block."""
        self.fired = True
        dropped = wal.drop_unflushed() if wal is not None else 0
        dropped_pages = pager.drop_dirty() if pager is not None else 0
        torn = bool(self.torn_tail and wal is not None and wal.tear_tail_block())
        return CrashReport(op_index=op_index, dropped_records=dropped,
                           torn_block=torn, dropped_dirty_pages=dropped_pages)
