"""WAL-assisted block repair and full restore.

When the storage layer refuses to serve a block (``ChecksumError``,
``PersistentIOError``), the data is not lost: the latest
:class:`~repro.durability.recovery.Checkpoint` plus the WAL's durable
prefix determine the committed state of *every* block, because replay is
deterministic — the same logical operations applied to the same
checkpoint image produce byte-identical file layouts.  Repair exploits
this in two modes:

``repair_blocks``
    in-place repair of specific blocks.  Safe whenever the live index is
    at an operation boundary (or the fault escaped a *read-only*
    operation, which mutates nothing): flush the WAL so every
    acknowledged write is durable, rebuild the committed image on a
    scratch device via :func:`~repro.durability.recovery.recover`, and
    write the rebuilt payloads of just the bad blocks back through the
    live pager (under the ``"repair"`` phase; the write also remaps a
    grown defect in the fault model, as real drives do).  Zero
    acknowledged writes are lost — they are all in checkpoint + WAL.

``restore_index``
    full restore after a fault escaped a *mutating* operation.  The live
    structure may hold a half-applied SMO spread over blocks nobody can
    enumerate, so single-block repair is unsound; instead every block
    whose envelope checksum diverges from the rebuilt image is rewritten
    and the index's in-memory meta is reset from the rebuilt index.
    Because the faulted operation logged before it applied, the flush +
    replay *includes* it: after the restore the operation is complete
    and must not be re-executed.

The WAL scan is charged to the live device (repair pays real simulated
I/O for reading the log); the replay itself runs on the scratch device,
modeling a repair process with its own working storage.

:class:`SelfHealer` packages both modes behind a ``handle(fault)``
call for the workload runner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..storage.integrity import (ChecksumError, PersistentIOError,
                                 StorageFault, block_crc)
from .recovery import Checkpoint, recover
from .wal import WriteAheadLog

__all__ = ["RepairResult", "SelfHealer", "repair_blocks", "restore_index"]


@dataclass
class RepairResult:
    """What one repair pass rebuilt and what it cost."""

    repaired: List[Tuple[str, int]] = field(default_factory=list)
    #: blocks that could not be repaired (the WAL's own blocks — the log
    #: is the recovery *source*, not a repair target — or blocks the
    #: rebuilt image does not contain)
    skipped: List[Tuple[str, int]] = field(default_factory=list)
    records_replayed: int = 0
    full_restore: bool = False
    #: simulated time charged to the live device (WAL scan + repair writes)
    repair_us: float = 0.0

    @property
    def blocks_repaired(self) -> int:
        return len(self.repaired)


def _rebuild(index, checkpoint: Checkpoint, wal: WriteAheadLog):
    """Flush the WAL (zero lost acknowledged writes) and rebuild the
    committed image on a scratch device."""
    wal.flush()
    return recover(checkpoint, wal)


def repair_blocks(index, checkpoint: Checkpoint,
                  bad_blocks, wal: Optional[WriteAheadLog] = None,
                  quarantine: bool = False) -> RepairResult:
    """Rebuild specific corrupt blocks from checkpoint + WAL redo.

    ``bad_blocks`` is an iterable of ``(file_name, block_no)`` — e.g. a
    :class:`~repro.storage.integrity.ScrubReport`'s ``bad_blocks`` or
    the coordinates carried by a single ``StorageFault``.  With
    ``quarantine=True`` each repaired payload is additionally pinned in
    the buffer pool so a persistently flaky device copy is never
    consulted again until a scrub verifies it.
    """
    wal = wal if wal is not None else index.wal
    if wal is None:
        raise ValueError("block repair needs the WAL that covers the index")
    pager = index.pager
    device = pager.device
    start_us = device.stats.elapsed_us
    recovery = _rebuild(index, checkpoint, wal)
    rebuilt_files = recovery.index.pager.device.files
    result = RepairResult(records_replayed=recovery.records_applied)
    by_file: Dict[str, List[Tuple[int, bytes]]] = {}
    for file_name, block_no in sorted(set(bad_blocks)):
        source = rebuilt_files.get(file_name)
        if (file_name == wal.file.name or source is None
                or block_no >= source.num_blocks):
            result.skipped.append((file_name, block_no))
            continue
        by_file.setdefault(file_name, []).append(
            (block_no, bytes(source.blocks[block_no])))
    with pager.phase("repair"):
        for file_name, pairs in sorted(by_file.items()):
            live = device.get_file(file_name)
            pager.write_blocks(live, pairs, through=True)
            for block_no, data in pairs:
                if quarantine:
                    pager.quarantine(file_name, block_no, data)
                result.repaired.append((file_name, block_no))
    device.stats.repaired_blocks += len(result.repaired)
    if index.tracer is not None and result.repaired:
        index.tracer.blocks_repaired(len(result.repaired))
    result.repair_us = device.stats.elapsed_us - start_us
    return result


def restore_index(index, checkpoint: Checkpoint,
                  wal: Optional[WriteAheadLog] = None) -> RepairResult:
    """Restore the whole live index to its committed state in place.

    Used when a storage fault escaped a mutating operation: the live
    files may hold a half-applied structural change, and the medium that
    triggered the fault cannot be trusted to report which blocks are good
    (bit rot leaves the checksum envelope pointing at the *old* content).
    So the restore trusts nothing on the live device: dirty write-back
    frames from the torn operation are discarded, every block of the
    rebuilt committed image is written back over the live file, and the
    index object's in-memory meta is reset from the rebuilt one.  The
    interrupted operation was logged before it applied, so the restored
    state *includes* it.  ``repaired`` lists only the blocks whose live
    content actually diverged from the rebuilt image.
    """
    wal = wal if wal is not None else index.wal
    if wal is None:
        raise ValueError("restore needs the WAL that covers the index")
    pager = index.pager
    device = pager.device
    start_us = device.stats.elapsed_us
    recovery = _rebuild(index, checkpoint, wal)
    rebuilt = recovery.index
    result = RepairResult(records_replayed=recovery.records_applied,
                          full_restore=True)
    # The half-applied operation's buffered pages must never reach disk.
    pager.drop_dirty()
    with pager.phase("repair"):
        for file_name, source in sorted(rebuilt.pager.device.files.items()):
            if file_name == wal.file.name:  # pragma: no cover - recover() deletes it
                continue
            live = device.get_or_create_file(file_name)
            if live.num_blocks < source.num_blocks:
                live.allocate(source.num_blocks - live.num_blocks)
            diverged = [
                no for no in range(source.num_blocks)
                if block_crc(bytes(live.blocks[no])) != source.checksums[no]
            ]
            pairs = [(no, bytes(source.blocks[no]))
                     for no in range(source.num_blocks)]
            if pairs:
                pager.write_blocks(live, pairs, through=True)
                result.repaired.extend((file_name, no) for no in diverged)
            # Blocks past the rebuilt image's end are unreferenced after
            # the meta reset; re-stamp their envelopes so a later scrub
            # does not flag the garbage a torn operation left there.
            for no in range(source.num_blocks, live.num_blocks):
                live.checksums[no] = block_crc(bytes(live.blocks[no]))
    index.restore_meta(rebuilt.to_meta())
    pager.drop_last_block()
    device.stats.repaired_blocks += len(result.repaired)
    if index.tracer is not None and result.repaired:
        index.tracer.blocks_repaired(len(result.repaired))
    result.repair_us = device.stats.elapsed_us - start_us
    return result


class SelfHealer:
    """Fault handler wiring detection to the matching repair mode.

    Attach one to :func:`repro.workloads.run_workload` (the ``healer``
    argument): when a storage fault escapes an operation, the runner
    calls :meth:`handle` and either re-executes the operation (faults
    escaping read-only operations — the repaired state excludes nothing)
    or moves on (faults escaping mutating operations — the full restore
    replayed the operation from its WAL record).

    Args:
        index: the live index to heal in place.
        checkpoint: the committed base image repairs rebuild from.
        wal: the covering log; defaults to the index's attached WAL.
        max_repairs: hard cap on repair passes, so a device failing
            faster than it can be repaired terminates instead of looping.
    """

    def __init__(self, index, checkpoint: Checkpoint,
                 wal: Optional[WriteAheadLog] = None,
                 max_repairs: int = 100) -> None:
        self.index = index
        self.checkpoint = checkpoint
        self.wal = wal if wal is not None else index.wal
        if self.wal is None:
            raise ValueError("SelfHealer needs a WAL covering the index")
        self.max_repairs = max_repairs
        self.repairs: List[RepairResult] = []
        self.unhandled = 0

    @property
    def blocks_repaired(self) -> int:
        return sum(r.blocks_repaired for r in self.repairs)

    def handle(self, fault: Exception, mutating: bool = False) -> Optional[str]:
        """Attempt to heal ``fault``; returns the action taken.

        ``"retry"`` — the block was repaired in place; re-execute the
        operation.  ``"applied"`` — a mutating operation was absorbed
        into a full restore (its WAL record replayed); do *not*
        re-execute.  ``None`` — unhealable (not a storage fault, the
        WAL's own blocks, or the repair budget is exhausted).
        """
        if not isinstance(fault, StorageFault):
            return None
        if not isinstance(fault, (ChecksumError, PersistentIOError)):
            return None  # pragma: no cover - transients die in the pager
        if fault.file_name == self.wal.file.name:
            self.unhandled += 1
            return None  # a single-copy log cannot be rebuilt from itself
        if len(self.repairs) >= self.max_repairs:
            self.unhandled += 1
            return None
        if mutating:
            self.repairs.append(restore_index(self.index, self.checkpoint, self.wal))
            return "applied"
        self.repairs.append(repair_blocks(
            self.index, self.checkpoint, [(fault.file_name, fault.block_no)],
            self.wal, quarantine=isinstance(fault, PersistentIOError)))
        return "retry"
