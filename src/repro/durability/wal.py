"""Block-structured write-ahead log.

The WAL is an ordinary file on the simulated :class:`~repro.storage.BlockDevice`,
so every log flush is charged real simulated I/O and shows up in
:class:`~repro.storage.StorageStats` under the ``"log"`` phase.  Records
are *logical*: ``(op, seqno, key, payload)`` for insert/update/delete —
the paper's indexes rewrite whole blocks during SMOs, so physical
(page-delta) logging would be as large as the data itself, while logical
records are 25 bytes regardless of what the operation restructures.

Layout: each flush packs the buffered records into freshly allocated
blocks.  A block is ``crc32 | record count | records... | zero padding``;
the CRC covers the record area so recovery can detect a *torn* block (a
crash in the middle of the device's final flush) and cut the log there.
Flushes never reopen a previously written block — exactly the economics
of group commit: a batch of one record still costs a full block write,
so larger batches amortize the per-flush block cost.

Group commit: ``append`` buffers records in memory and flushes every
``group_commit`` records (or on an explicit :meth:`flush`).  Records
still in the buffer at a crash are *lost* — they were never
acknowledged — which is what :class:`repro.durability.FaultInjector`
simulates by dropping the buffer.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import Iterator, List

from ..storage.integrity import StorageFault
from ..storage.pager import Pager

__all__ = ["LogRecord", "WriteAheadLog", "WAL_FILE"]

#: Default name of the log file on the device.
WAL_FILE = "wal"

_OP_CODES = {"insert": 0, "update": 1, "delete": 2}
_OP_NAMES = {code: op for op, code in _OP_CODES.items()}

_RECORD = struct.Struct("<BQQQ")      # op code, seqno, key, payload
_BLOCK_HEADER = struct.Struct("<IH")  # crc32 of record area, record count


@dataclass(frozen=True)
class LogRecord:
    """One logical operation: what to replay, not which bytes changed."""

    op: str
    seqno: int
    key: int
    payload: int

    def pack(self) -> bytes:
        return _RECORD.pack(_OP_CODES[self.op], self.seqno, self.key, self.payload)

    @classmethod
    def unpack(cls, raw: bytes) -> "LogRecord":
        code, seqno, key, payload = _RECORD.unpack(raw)
        return cls(op=_OP_NAMES[code], seqno=seqno, key=key, payload=payload)


class WriteAheadLog:
    """Group-committed logical log written through a :class:`Pager`.

    Args:
        pager: access path to the device the log lives on (normally the
            same device as the index, as in a single-disk DBMS).
        group_commit: records buffered per flush.  1 = flush every
            operation (classic force-at-commit); larger values batch.
        file_name: device file holding the log blocks.
    """

    def __init__(self, pager: Pager, group_commit: int = 1,
                 file_name: str = WAL_FILE) -> None:
        if group_commit < 1:
            raise ValueError(f"group_commit must be >= 1, got {group_commit}")
        self.pager = pager
        self.group_commit = group_commit
        self.file = pager.device.get_or_create_file(file_name)
        # Register as the pager's log-before-data barrier: under
        # write-back, no dirty data page reaches the device before the
        # WAL records covering it are durable.
        pager.set_wal(self)
        self.buffer: List[bytes] = []
        self.next_seqno = 1
        self.durable_seqno = 0
        self.flushes = 0
        self.records_appended = 0
        #: optional hook ``(records, blocks)`` fired after each group
        #: commit reaches the device (set by :class:`repro.obs.Tracer`).
        self.on_flush = None

    # -- geometry ------------------------------------------------------------

    @property
    def records_per_block(self) -> int:
        return (self.pager.block_size - _BLOCK_HEADER.size) // _RECORD.size

    @property
    def pending(self) -> int:
        """Appended but not yet durable records (lost if we crash now)."""
        return len(self.buffer)

    @property
    def current_lsn(self) -> int:
        """Highest sequence number appended so far (durable or not).

        Because the index logs before it applies, this LSN covers every
        page write that has happened up to now — the write-back pager
        stamps dirty pages with it and refuses to flush them until
        ``durable_seqno`` catches up.
        """
        return self.next_seqno - 1

    @property
    def log_blocks(self) -> int:
        return self.file.num_blocks

    # -- append path ---------------------------------------------------------

    def append(self, op: str, key: int, payload: int = 0) -> int:
        """Buffer one logical record; flush at the group-commit boundary.

        Returns the record's sequence number.  The caller applies the
        operation to the index *after* appending (log-before-data), but
        the record only becomes durable at the next flush.
        """
        if op not in _OP_CODES:
            raise ValueError(f"unknown log op {op!r}")
        seqno = self.next_seqno
        self.next_seqno += 1
        self.buffer.append(LogRecord(op, seqno, key, payload).pack())
        self.records_appended += 1
        if len(self.buffer) >= self.group_commit:
            self.flush()
        return seqno

    def flush(self) -> None:
        """Force all buffered records to the device (one group commit)."""
        if not self.buffer:
            return
        per_block = self.records_per_block
        bs = self.pager.block_size
        pairs = []
        for start in range(0, len(self.buffer), per_block):
            chunk = self.buffer[start:start + per_block]
            area = b"".join(chunk)
            block = bytearray(bs)
            _BLOCK_HEADER.pack_into(block, 0, zlib.crc32(area), len(chunk))
            block[_BLOCK_HEADER.size:_BLOCK_HEADER.size + len(area)] = area
            pairs.append((self.file.allocate(1), bytes(block)))
        # One coalesced device write, bypassing the pager's caches: the
        # blocks are freshly allocated (nothing cached can alias them),
        # and going through the buffer pool here could evict a dirty data
        # frame whose log-before-data barrier would re-enter this very
        # flush while ``durable_seqno`` is still stale.
        with self.pager.phase("log"):
            self.pager.device.write_blocks(self.file, pairs)
        blocks_written = len(pairs)
        self.durable_seqno = self.next_seqno - 1
        self.flushes += 1
        records = len(self.buffer)
        self.buffer.clear()
        if self.on_flush is not None:
            self.on_flush(records, blocks_written)

    # -- crash surface (used by the fault injector) ---------------------------

    def drop_unflushed(self) -> int:
        """Discard the in-memory buffer, as a power loss would; returns
        how many acknowledged-to-nobody records were lost."""
        lost = len(self.buffer)
        self.buffer.clear()
        return lost

    def tear_tail_block(self) -> bool:
        """Corrupt the tail half of the last log block *in place*.

        Models a crash midway through the device's final flush: the block
        header (and its CRC) were written, the tail of the record area was
        not.  No I/O is charged — nothing completed.  Returns False when
        there is no block to tear.
        """
        if self.file.num_blocks == 0:
            return False
        block = self.file.blocks[self.file.num_blocks - 1]
        _, count = _BLOCK_HEADER.unpack_from(bytes(block[:_BLOCK_HEADER.size]), 0)
        # Cut inside the *occupied* record area, not the zero padding —
        # otherwise a small group commit's tear would miss every record
        # and the CRC would still pass.
        used = max(count, 1) * _RECORD.size
        half = _BLOCK_HEADER.size + used // 2
        block[half:] = b"\xff" * (len(block) - half)
        # The pager may still hold the intact image of this block.
        self.pager.invalidate_file(self.file.name)
        return True

    # -- recovery scan -------------------------------------------------------

    def durable_records(self) -> Iterator[LogRecord]:
        """Yield the longest valid prefix of the on-disk log, in order.

        Reads are charged under the ``"log"`` phase (recovery pays real
        I/O).  The scan stops at the first block whose CRC does not match
        its record area — everything at or past a torn block is treated
        as never written, which is safe because blocks are flushed in
        sequence-number order.  A block the storage layer itself refuses
        to serve (its checksum envelope is stale — the torn tail mutated
        bytes behind the device's back — or the medium is bad) cuts the
        log the same way.

        The first record anchors the expected sequence: a log rebuilt
        mid-history (post-recovery appends, a failover's re-written log)
        starts above 1, and its prefix is just as valid.
        """
        expected = None
        with self.pager.phase("log"):
            for block_no in range(self.file.num_blocks):
                try:
                    raw = self.pager.read_block(self.file, block_no)
                except StorageFault:
                    return  # unreadable block: cut the log here
                crc, count = _BLOCK_HEADER.unpack_from(raw, 0)
                if count > self.records_per_block:
                    return
                area = raw[_BLOCK_HEADER.size:_BLOCK_HEADER.size + count * _RECORD.size]
                if zlib.crc32(area) != crc:
                    return  # torn block: cut the log here
                for i in range(count):
                    record = LogRecord.unpack(area[i * _RECORD.size:(i + 1) * _RECORD.size])
                    if expected is None:
                        expected = record.seqno
                    if record.seqno != expected:
                        return
                    expected += 1
                    yield record
