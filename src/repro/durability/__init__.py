"""Durability: write-ahead logging, group commit, crash faults, recovery.

The paper's evaluation stops at clean shutdowns; this package adds the
layer a disk-resident deployment cannot live without (cf. Abu-Libdeh et
al., "Learned Indexes for a Google-scale Disk-based Database"):

* :class:`WriteAheadLog` — block-structured logical log written through
  the simulated device, charged under the ``"log"`` I/O phase, with
  group commit batching N operations per flush;
* :class:`FaultInjector` — kills a run at a chosen or random operation,
  dropping the unflushed commit buffer and optionally tearing the last
  log block (a flush caught mid-write);
* :func:`take_checkpoint` / :func:`recover` — redo-from-checkpoint
  recovery that replays the WAL's CRC-valid prefix against a saved index
  image, never trusting the crashed device's index files;
* :func:`repair_blocks` / :func:`restore_index` / :class:`SelfHealer` —
  WAL-assisted repair of blocks the storage layer's checksum envelope
  refuses to serve, rebuilding committed contents from checkpoint + redo
  with zero lost acknowledged writes.
"""

from .faults import CrashError, CrashReport, FaultInjector
from .recovery import Checkpoint, RecoveryResult, recover, take_checkpoint
from .repair import RepairResult, SelfHealer, repair_blocks, restore_index
from .wal import WAL_FILE, LogRecord, WriteAheadLog

__all__ = [
    "Checkpoint",
    "CrashError",
    "CrashReport",
    "FaultInjector",
    "LogRecord",
    "RecoveryResult",
    "RepairResult",
    "SelfHealer",
    "WAL_FILE",
    "WriteAheadLog",
    "recover",
    "repair_blocks",
    "restore_index",
    "take_checkpoint",
]
