"""Durability: write-ahead logging, group commit, crash faults, recovery.

The paper's evaluation stops at clean shutdowns; this package adds the
layer a disk-resident deployment cannot live without (cf. Abu-Libdeh et
al., "Learned Indexes for a Google-scale Disk-based Database"):

* :class:`WriteAheadLog` — block-structured logical log written through
  the simulated device, charged under the ``"log"`` I/O phase, with
  group commit batching N operations per flush;
* :class:`FaultInjector` — kills a run at a chosen or random operation,
  dropping the unflushed commit buffer and optionally tearing the last
  log block (a flush caught mid-write);
* :func:`take_checkpoint` / :func:`recover` — redo-from-checkpoint
  recovery that replays the WAL's CRC-valid prefix against a saved index
  image, never trusting the crashed device's index files.
"""

from .faults import CrashError, CrashReport, FaultInjector
from .recovery import Checkpoint, RecoveryResult, recover, take_checkpoint
from .wal import WAL_FILE, LogRecord, WriteAheadLog

__all__ = [
    "Checkpoint",
    "CrashError",
    "CrashReport",
    "FaultInjector",
    "LogRecord",
    "RecoveryResult",
    "WAL_FILE",
    "WriteAheadLog",
    "recover",
    "take_checkpoint",
]
