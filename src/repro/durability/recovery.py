"""Checkpointing and WAL-replay recovery.

Recovery follows the classic redo-from-checkpoint protocol:

1. a :class:`Checkpoint` captures the whole device image plus the
   index's meta block (via :func:`repro.core.save_index`) together with
   the log sequence number it covers;
2. after a crash, :func:`recover` reopens the checkpoint image on a
   fresh device, scans the crashed device's WAL for its longest valid
   prefix (CRC-checked, so torn blocks cut the log), and redoes every
   record past the checkpoint LSN through the index's normal
   insert/update/delete path.

The crashed device's *index* files are never read: a crash mid-SMO
leaves them in an arbitrary state, and the checkpoint + logical redo is
the only state recovery trusts.  Both the WAL scan (on the crashed
device) and the replay (on the recovered device) are charged simulated
I/O, so recovery time is a measured metric, not an estimate.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import Optional

from ..core.interface import DiskIndex
from ..core.persistence import load_index, save_index
from ..storage import DiskProfile
from .wal import WriteAheadLog

__all__ = ["Checkpoint", "RecoveryResult", "take_checkpoint", "recover"]


@dataclass(frozen=True)
class Checkpoint:
    """A device+meta image and the highest seqno whose effect it contains."""

    image: bytes
    lsn: int

    @property
    def size_bytes(self) -> int:
        return len(self.image)


@dataclass
class RecoveryResult:
    """Outcome of one recovery: the rebuilt index and what replay cost."""

    index: DiskIndex
    last_seqno: int        # highest record redone (== durable prefix end)
    records_scanned: int
    records_applied: int
    wal_scan_us: float     # simulated time reading the log
    replay_us: float       # simulated time redoing operations

    @property
    def recovery_us(self) -> float:
        return self.wal_scan_us + self.replay_us


def take_checkpoint(index: DiskIndex, wal: Optional[WriteAheadLog] = None) -> Checkpoint:
    """Snapshot the index (device image + meta block) as a checkpoint.

    The WAL is flushed first so the checkpoint LSN is a durable point;
    records at or below the LSN are skipped during replay.  Under a
    write-back pager the dirty pages are then flushed too (a checkpoint
    is one of the three flush points), so the imaged device holds every
    buffered write — log strictly before data.
    """
    if wal is None:
        wal = getattr(index, "wal", None)
    if wal is not None:
        wal.flush()
    index.pager.flush()
    buffer = io.BytesIO()
    save_index(index, buffer)
    return Checkpoint(image=buffer.getvalue(),
                      lsn=wal.durable_seqno if wal is not None else 0)


def recover(checkpoint: Checkpoint, wal: WriteAheadLog,
            profile: Optional[DiskProfile] = None,
            pager_kwargs: Optional[dict] = None) -> RecoveryResult:
    """Rebuild a post-crash index: checkpoint image + WAL redo.

    Args:
        checkpoint: taken before the crash with :func:`take_checkpoint`.
        wal: the crashed run's log (its device holds the durable blocks).
        profile: optionally recover onto a different latency model.
        pager_kwargs: storage configuration (buffer pool, write-back,
            flush watermark) for the rebuilt index's pager, so recovery
            hands back an index with the same caching behavior it
            crashed with rather than bare pass-through defaults.
    """
    # 1. Scan the surviving log prefix off the crashed device.
    scan_start = wal.pager.stats.elapsed_us
    records = list(wal.durable_records())
    wal_scan_us = wal.pager.stats.elapsed_us - scan_start

    # 2. Reopen the checkpoint image on a fresh device.
    index = load_index(io.BytesIO(checkpoint.image), profile=profile,
                       pager_kwargs=pager_kwargs)
    device = index.pager.device
    # The image carries the log as it stood at checkpoint time; that copy
    # is stale (replay works off the crashed device) so reclaim it.
    if wal.file.name in device.files:
        index.pager.invalidate_file(wal.file.name)
        device.delete_file(wal.file.name)

    # 3. Redo everything past the checkpoint LSN, in sequence order.
    replay_start = device.stats.elapsed_us
    last_seqno = checkpoint.lsn
    applied = 0
    for record in records:
        if record.seqno <= checkpoint.lsn:
            continue
        if record.op == "insert":
            index.insert(record.key, record.payload)
        elif record.op == "update":
            index.update(record.key, record.payload)
        else:
            index.delete(record.key)
        last_seqno = record.seqno
        applied += 1
    replay_us = device.stats.elapsed_us - replay_start

    return RecoveryResult(index=index, last_seqno=last_seqno,
                          records_scanned=len(records), records_applied=applied,
                          wal_scan_us=wal_scan_us, replay_us=replay_us)
