"""Workload generation and execution (Section 5.2 of the paper)."""

from .runner import RunResult, bulk_load_timed, run_workload
from .spec import (DISTRIBUTIONS, WORKLOADS, Operation, WorkloadSpec,
                   build_workload, workload_names)

__all__ = [
    "DISTRIBUTIONS",
    "Operation",
    "RunResult",
    "WORKLOADS",
    "WorkloadSpec",
    "build_workload",
    "bulk_load_timed",
    "run_workload",
    "workload_names",
]
