"""Workload execution and metric collection.

Runs an operation stream against a :class:`~repro.core.DiskIndex` and
collects every metric the paper reports:

* throughput (operations per simulated second) and average latency;
* tail latency — p50 / p99 / standard deviation (Figure 12);
* average fetched blocks per operation, split into inner and leaf
  components via the index's ``file_roles()`` (Table 4 / Figure 4);
* per-phase I/O time — search / insert / SMO / maintenance (Figure 6);
* bulk-load time and on-disk storage usage (Figures 7 and 10);
* write-ahead-log traffic and group-commit accounting when the index has
  a WAL attached, plus crash/recovery bookkeeping when a
  :class:`~repro.durability.FaultInjector` kills the run mid-stream;
* latency histogram digests per op type (always), and — when a
  :class:`~repro.obs.Tracer` is attached — per-phase µs and per-op block
  histograms scoped from the trace events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..core.interface import DiskIndex
from ..durability.faults import CrashError, FaultInjector
from ..obs.metrics import Histogram, io_bounds, latency_bounds
from ..storage import Pager, StorageFault
from .spec import Operation

__all__ = ["RunResult", "run_workload", "bulk_load_timed"]

#: Per-operation cap on heal-and-retry rounds: a device corrupting one
#: operation's blocks faster than they can be repaired surfaces the fault
#: instead of spinning.
_MAX_HEAL_ATTEMPTS = 5


@dataclass
class RunResult:
    """All metrics of one workload execution."""

    workload: str
    index_name: str
    num_ops: int
    sim_elapsed_us: float
    throughput_ops_per_s: float
    mean_latency_us: float
    p50_latency_us: float
    p99_latency_us: float
    std_latency_us: float
    blocks_read_per_op: float
    blocks_written_per_op: float
    inner_blocks_per_op: float
    leaf_blocks_per_op: float
    time_by_phase_us: Dict[str, float] = field(default_factory=dict)
    reads_by_phase: Dict[str, int] = field(default_factory=dict)
    writes_by_phase: Dict[str, int] = field(default_factory=dict)
    bulkload_us: float = 0.0
    allocated_bytes: int = 0
    live_bytes: int = 0
    latencies_us: Optional[np.ndarray] = None
    # -- durability accounting (zero unless the index has a WAL attached) --
    log_records: int = 0       # logical records appended during the run
    log_flushes: int = 0       # group commits forced to the device
    log_blocks_written: int = 0  # device blocks written under the "log" phase
    crashed_at_op: Optional[int] = None  # op index a fault injector fired at
    recovery_us: float = 0.0   # filled by callers that run recovery afterwards
    # -- batched execution (see run_workload's ``batch`` argument) --
    batch: int = 1             # lookup group size the run executed with
    read_positionings: int = 0   # reads charged the random-positioning cost
    write_positionings: int = 0  # writes charged the random-positioning cost
    coalesced_runs: int = 0      # multi-block contiguous runs coalesced
    coalesced_blocks: int = 0    # blocks covered by those runs
    # -- write-back accounting (zero unless the pager buffers writes) --
    flushes: int = 0           # explicit/watermark dirty flushes that wrote
    dirty_evictions: int = 0   # dirty frames written back at eviction
    # -- self-healing storage (zero on a clean device) --
    io_retries: int = 0          # transient read errors absorbed with backoff
    checksum_failures: int = 0   # reads the checksum envelope refused to serve
    repaired_blocks: int = 0     # blocks rebuilt from checkpoint + WAL redo
    healed_faults: int = 0       # storage faults a SelfHealer absorbed
    # -- observability (histogram digests: count/mean/p50/p90/p99/max) --
    p90_latency_us: float = 0.0
    max_latency_us: float = 0.0
    #: per op type ("lookup"/"insert"/"scan") latency digest; always filled.
    op_latency_histograms: Dict[str, dict] = field(default_factory=dict)
    #: per phase, the per-op µs digest — only when a tracer was attached.
    phase_latency_histograms: Optional[Dict[str, dict]] = None
    #: per op type, the blocks-touched-per-op digest — only when traced.
    op_io_histograms: Optional[Dict[str, dict]] = None
    # -- concurrent serving (defaults describe the single-client path) --
    clients: int = 1
    #: per client id: op counts, latency digests (overall and per op
    #: type), latch/commit-wait counters, snapshot counters, and the
    #: max dispatch gap — only filled by the serving path.
    per_client: Dict[int, dict] = field(default_factory=dict)
    #: per client id, per phase, the per-op µs digest — only when the
    #: serving path ran with a tracer attached.
    client_phase_histograms: Optional[Dict[int, Dict[str, dict]]] = None
    commit_groups: int = 0       # group-commit flushes that acknowledged writers
    mean_commit_group: float = 0.0  # writers acknowledged per group
    committed_writes: int = 0    # writes acknowledged durable
    commit_waits: int = 0        # writers that blocked awaiting a group flush
    commit_wait_us: float = 0.0  # total virtual time spent blocked on commits
    latch_waits: int = 0         # ops stalled on a conflicting frame latch
    latch_wait_us: float = 0.0   # total simulated latch-stall time
    read_latch_wait_us: float = 0.0   # latch stalls charged to reads/scans
    write_latch_wait_us: float = 0.0  # latch stalls charged to inserts
    snapshot_reads: int = 0      # reads served at snapshot isolation
    snapshot_suppressed: int = 0  # snapshot reads hiding a not-yet-durable key
    # -- robustness (zero unless deadlines/admission/faults are in play) --
    shed_ops: int = 0            # ops rejected at admission or after retries
    deadline_misses: int = 0     # completed ops that blew their deadline
    op_retries: int = 0          # storage-fault re-executions (serving path)
    # -- sharded tier (defaults describe an unsharded index) --
    shards: int = 1              # range-partitioned shards behind the index
    replicas: int = 1            # copies per shard including the primary
    #: per shard id: index class, key range, op counts, per-member I/O
    #: and read fan-out, replication and log traffic — only filled when
    #: the index is a :class:`repro.sharding.ShardedIndex`.
    per_shard: Dict[int, dict] = field(default_factory=dict)
    # -- fault tolerance (zero unless the tier absorbed member faults) --
    failovers: int = 0           # primary promotions during the run
    hedged_reads: int = 0        # reads re-issued to another replica
    resync_blocks: int = 0       # log blocks scanned by catch-up resyncs

    @property
    def flushes_per_committed_write(self) -> float:
        """Log flushes amortized per acknowledged write (serving path)."""
        if self.committed_writes == 0:
            return 0.0
        return self.log_flushes / self.committed_writes

    def phase_latency_us(self, phase: str) -> float:
        """Average simulated time per op spent in a phase (Figure 6)."""
        if self.num_ops == 0:
            return 0.0
        return self.time_by_phase_us.get(phase, 0.0) / self.num_ops

    @property
    def positionings_per_op(self) -> float:
        """Accesses charged the random-positioning cost, per operation."""
        if self.num_ops == 0:
            return 0.0
        return (self.read_positionings + self.write_positionings) / self.num_ops

    @property
    def ops_per_log_flush(self) -> float:
        """Average operations amortized over one group commit."""
        if self.log_flushes == 0:
            return 0.0
        return self.log_records / self.log_flushes


def bulk_load_timed(index: DiskIndex, items: Sequence[Tuple[int, int]]) -> float:
    """Bulk load and return the simulated microseconds it took."""
    stats = index.pager.stats
    before = stats.elapsed_us
    index.bulk_load(items)
    return stats.elapsed_us - before


def _lookup_groups(ops: Sequence[Operation], batch: int):
    """Yield ``(start_index, [ops])`` units: runs of consecutive lookups
    capped at ``batch``, and every other operation as a singleton — so the
    stream executes in its original order."""
    pending_start = 0
    pending: list = []
    for i, op in enumerate(ops):
        if op[0] == "lookup":
            if not pending:
                pending_start = i
            pending.append(op)
            if len(pending) >= batch:
                yield pending_start, pending
                pending = []
        else:
            if pending:
                yield pending_start, pending
                pending = []
            yield i, [op]
    if pending:
        yield pending_start, pending


def run_workload(index: DiskIndex, ops: Sequence[Operation], workload: str = "",
                 scan_length: int = 100, keep_latencies: bool = False,
                 validate: bool = False,
                 fault_injector: Optional[FaultInjector] = None,
                 tracer=None, batch: int = 1, healer=None,
                 clients: int = 1,
                 client_ops: Optional[Sequence[Sequence[Operation]]] = None,
                 snapshot_reads: bool = True,
                 commit_group: Optional[int] = None,
                 commit_timeout_us: Optional[float] = 10_000.0,
                 latching: bool = True,
                 shards: Optional[int] = None,
                 replicas: Optional[int] = None,
                 deadline_us: Optional[float] = None,
                 retry_budget: int = 0,
                 max_inflight_writes: Optional[int] = None,
                 max_queue_delay_us: Optional[float] = None) -> RunResult:
    """Execute ``ops`` against a loaded index and collect metrics.

    Args:
        index: a bulk-loaded index.
        ops: the operation stream from :func:`build_workload`.
        workload: label recorded in the result.
        scan_length: elements per scan operation (paper: 100).
        keep_latencies: retain the raw per-op latency array.
        validate: check each lookup returns the paper's key+1 payload
            (used by integration tests; benchmark runs skip it).
        fault_injector: optional crash injector.  When it fires, the run
            stops at that operation, the WAL's unflushed buffer is
            dropped (and its tail block optionally torn), and the result
            covers only the executed prefix with ``crashed_at_op`` set —
            the caller then recovers via :func:`repro.durability.recover`.
        tracer: optional :class:`repro.obs.Tracer`; defaults to the one
            attached to the index (``index.attach_tracer``), if any.
            Each operation runs inside an op-scoped trace span, and the
            result gains per-phase and per-op-type histogram digests.
            With no tracer, every pre-existing metric is computed exactly
            as before — the traced and untraced counters are identical.
        batch: group up to this many *consecutive lookups* into one
            :meth:`DiskIndex.lookup_many` call (the batched execution
            engine).  Inserts and scans flush the pending group first, so
            operation ordering — and therefore every result — is
            identical to ``batch=1``.  A group's simulated cost is shared
            equally across its operations for latency reporting.  With a
            tracer, one span covers each group.  Incompatible with
            ``fault_injector`` (crash-at-op semantics are per-op).
        healer: optional :class:`repro.durability.SelfHealer`.  A
            ``StorageFault`` escaping an operation is handed to it: after
            an in-place repair the operation is re-executed (``"retry"``),
            after a full restore of a half-applied mutation it is counted
            done (``"applied"`` — the WAL replay included it).  Repair
            I/O is charged to the device, so the healed operation's
            latency includes it.  Unhealable faults propagate.  Requires
            ``batch=1`` (fault attribution is per-op).
        clients: interleave the op stream over this many concurrent
            client sessions through the :mod:`repro.serving` engine
            (``ops`` is dealt round-robin via
            :func:`~repro.serving.split_ops`).  The default 1 with no
            ``client_ops`` runs the original single-stream path — every
            metric of that path is computed exactly as before.
        client_ops: explicit per-client op streams (overrides the
            round-robin split; implies the serving path even for one
            stream).  ``ops`` is ignored when given.
        snapshot_reads / commit_group / commit_timeout_us / latching:
            serving-engine knobs, forwarded to
            :class:`~repro.serving.ServingEngine`.  Ignored on the
            single-client path.
        deadline_us / retry_budget / max_inflight_writes /
        max_queue_delay_us: robustness knobs of the serving engine
            (DESIGN.md Section 17) — per-op deadlines, per-client
            storage-fault retry budgets, and the write admission gate.
            Setting any of them implies the serving path, even at
            ``clients=1`` (a deadline or retry budget silently ignored
            would be worse than a slower code path).
        shards / replicas: assert the index's sharded topology.  A
            :class:`repro.sharding.ShardedIndex` carries its own shard
            count and replication factor; passing these makes the call
            self-documenting and fails fast on a mismatch (an unsharded
            index is topology 1/1).  Either way a sharded run's result
            gains ``shards`` / ``replicas`` / ``per_shard``.

    On the serving path, latencies are *client-perceived*: an op's latch
    stalls and a write's group-commit wait are part of its latency, the
    result gains the serving counters (latch/commit waits, snapshot
    reads, commit-group sizes) and per-client digests in
    ``per_client``, and ``validate`` weakens for lookups to "the
    paper's payload or not-yet-visible" — under snapshot isolation a
    racing read may legitimately miss a key another client just wrote
    (the commit-order oracle test asserts exact equivalence instead).

    Mutating operations go through the ``durable_*`` log-then-apply path
    whenever the index has a WAL attached; on a clean finish the WAL's
    tail batch is flushed so the run ends fully durable, and a write-back
    pager then flushes its dirty pages in coalesced runs (the workload
    phase boundary is one of the three flush points).
    """
    actual_shards = getattr(index, "num_shards", 1)
    actual_replicas = getattr(index, "replication_factor", 1)
    if shards is not None and shards != actual_shards:
        raise ValueError(
            f"run_workload(shards={shards}) but the index has "
            f"{actual_shards} shard(s); build it with make_sharded_index")
    if replicas is not None and replicas != actual_replicas:
        raise ValueError(
            f"run_workload(replicas={replicas}) but the index replicates "
            f"{actual_replicas}x")
    if batch < 1:
        raise ValueError("batch must be >= 1")
    if batch > 1 and fault_injector is not None:
        raise ValueError("fault injection is per-op; run it with batch=1")
    if batch > 1 and healer is not None:
        raise ValueError("self-healing is per-op; run it with batch=1")
    robustness = (deadline_us is not None or retry_budget
                  or max_inflight_writes is not None
                  or max_queue_delay_us is not None)
    if clients != 1 or client_ops is not None or robustness:
        if batch > 1:
            raise ValueError("the serving engine schedules per-op; use batch=1")
        if healer is not None:
            raise ValueError("self-healing is not supported on the serving path")
        return _run_serving(
            index, ops, workload=workload, scan_length=scan_length,
            keep_latencies=keep_latencies, validate=validate,
            fault_injector=fault_injector, tracer=tracer, clients=clients,
            client_ops=client_ops, snapshot_reads=snapshot_reads,
            commit_group=commit_group, commit_timeout_us=commit_timeout_us,
            latching=latching, deadline_us=deadline_us,
            retry_budget=retry_budget,
            max_inflight_writes=max_inflight_writes,
            max_queue_delay_us=max_queue_delay_us)
    pager: Pager = index.pager
    device = pager.device
    wal = index.wal
    if tracer is None:
        tracer = getattr(index, "tracer", None)
    phase_hists: Dict[str, Histogram] = {}
    io_hists: Dict[str, Histogram] = {}
    start = device.stats.snapshot()
    file_reads_before = {name: f.reads for name, f in device.files.items()}
    log_records_before = wal.records_appended if wal is not None else 0
    log_flushes_before = wal.flushes if wal is not None else 0
    flushes_before = pager.flushes
    dirty_evictions_before = (pager.buffer_pool.dirty_evictions
                              if pager.buffer_pool is not None else 0)
    shard_view = (index.per_shard_snapshot()
                  if hasattr(index, "per_shard_snapshot") else None)
    failovers_before = getattr(index, "failovers", 0)
    hedged_before = getattr(index, "hedged_reads", 0)
    resync_blocks_before = getattr(index, "resync_blocks", 0)
    latencies = np.empty(len(ops), dtype=np.float64)
    executed = len(ops)
    crashed_at: Optional[int] = None
    healed_faults = 0

    def apply_op(kind: str, key: int) -> None:
        if kind == "lookup":
            result = index.lookup(key)
            if validate and result != key + 1:
                raise AssertionError(
                    f"lookup({key}) returned {result}, expected {key + 1}")
        elif kind == "insert":
            if wal is not None:
                index.durable_insert(key, key + 1)
            else:
                index.insert(key, key + 1)
        elif kind == "scan":
            result = index.scan(key, scan_length)
            if validate and (not result or result[0][0] != key):
                raise AssertionError(f"scan({key}) did not start at the key")
        else:
            raise ValueError(f"unknown operation kind {kind!r}")

    try:
        if batch == 1:
            for i, (kind, key) in enumerate(ops):
                if fault_injector is not None:
                    fault_injector.maybe_crash(i)
                before_us = device.stats.elapsed_us
                event = None
                attempts = 0
                while True:
                    if tracer is not None:
                        tracer.begin_op(kind, key, i)
                    try:
                        apply_op(kind, key)
                    except StorageFault as fault:
                        if tracer is not None:
                            tracer.end_op()  # the span the fault cut short
                        attempts += 1
                        action = None
                        if healer is not None and attempts <= _MAX_HEAL_ATTEMPTS:
                            action = healer.handle(
                                fault, mutating=(kind == "insert"))
                        if action == "retry":
                            healed_faults += 1
                            continue
                        if action == "applied":
                            # the full restore replayed this operation's
                            # WAL record — executing it again would
                            # double-apply
                            healed_faults += 1
                            break
                        raise
                    if tracer is not None:
                        event = tracer.end_op()
                    break
                # healed ops pay for their failed attempts and the repair
                latencies[i] = device.stats.elapsed_us - before_us
                if event is not None:
                    for phase, us in event["us_by_phase"].items():
                        hist = phase_hists.get(phase)
                        if hist is None:
                            hist = phase_hists[phase] = Histogram(latency_bounds())
                        hist.record(us)
                    blocks = (sum(event["reads"].values())
                              + sum(event["writes"].values()))
                    hist = io_hists.get(kind)
                    if hist is None:
                        hist = io_hists[kind] = Histogram(io_bounds())
                    hist.record(blocks)
        else:
            for unit_start, group in _lookup_groups(ops, batch):
                kind, key = group[0]
                size = len(group)
                if tracer is not None:
                    tracer.begin_op(kind, key, unit_start)
                before_us = device.stats.elapsed_us
                if kind == "lookup" and size > 1:
                    keys = [k for _, k in group]
                    results = index.lookup_many(keys)
                    if validate:
                        for k, result in zip(keys, results):
                            if result != k + 1:
                                raise AssertionError(
                                    f"lookup({k}) returned {result}, "
                                    f"expected {k + 1}")
                else:
                    apply_op(kind, key)
                # the group's simulated cost, shared evenly per op
                share = (device.stats.elapsed_us - before_us) / size
                latencies[unit_start : unit_start + size] = share
                if tracer is not None:
                    event = tracer.end_op()
                    for phase, us in event["us_by_phase"].items():
                        hist = phase_hists.get(phase)
                        if hist is None:
                            hist = phase_hists[phase] = Histogram(latency_bounds())
                        for _ in range(size):
                            hist.record(us / size)
                    blocks = (sum(event["reads"].values())
                              + sum(event["writes"].values()))
                    hist = io_hists.get(kind)
                    if hist is None:
                        hist = io_hists[kind] = Histogram(io_bounds())
                    for _ in range(size):
                        hist.record(blocks / size)
    except CrashError as crash:
        crashed_at = crash.op_index
        executed = crash.op_index
        latencies = latencies[:executed]
        fault_injector.crash(wal, crash.op_index, pager=pager)
    else:
        if wal is not None:
            wal.flush()  # make the tail group commit durable
        # Phase boundary: a write-back pager flushes its dirty pages in
        # coalesced runs (after the WAL, preserving log-before-data), so
        # the measured run ends with the device image fully written.
        pager.flush()

    delta = device.stats.diff(start)
    roles = index.file_roles()
    inner_reads = 0
    leaf_reads = 0
    for name, handle in device.files.items():
        file_delta = handle.reads - file_reads_before.get(name, 0)
        if roles.get(name) == "inner":
            inner_reads += file_delta
        else:
            leaf_reads += file_delta

    # Histogram digests per op type, from the same latency samples the
    # scalar percentiles use (so disabled-tracing runs pay one extra pass
    # over an array they already hold, and no change to existing fields).
    op_hists: Dict[str, Histogram] = {}
    for i in range(executed):
        kind = ops[i][0]
        hist = op_hists.get(kind)
        if hist is None:
            hist = op_hists[kind] = Histogram(latency_bounds())
        hist.record(float(latencies[i]))

    n = max(executed, 1)
    sim_s = delta.elapsed_us / 1e6
    return RunResult(
        workload=workload,
        index_name=index.name,
        num_ops=executed,
        sim_elapsed_us=delta.elapsed_us,
        throughput_ops_per_s=executed / sim_s if sim_s > 0 else float("inf"),
        mean_latency_us=float(latencies.mean()) if executed else 0.0,
        p50_latency_us=float(np.percentile(latencies, 50)) if executed else 0.0,
        p99_latency_us=float(np.percentile(latencies, 99)) if executed else 0.0,
        std_latency_us=float(latencies.std()) if executed else 0.0,
        blocks_read_per_op=delta.reads / n,
        blocks_written_per_op=delta.writes / n,
        inner_blocks_per_op=inner_reads / n,
        leaf_blocks_per_op=leaf_reads / n,
        time_by_phase_us=dict(delta.time_by_phase),
        reads_by_phase=dict(delta.reads_by_phase),
        writes_by_phase=dict(delta.writes_by_phase),
        allocated_bytes=device.allocated_bytes,
        live_bytes=device.live_bytes,
        latencies_us=latencies if keep_latencies else None,
        log_records=(wal.records_appended - log_records_before) if wal is not None else 0,
        log_flushes=(wal.flushes - log_flushes_before) if wal is not None else 0,
        log_blocks_written=delta.writes_by_phase.get("log", 0),
        crashed_at_op=crashed_at,
        batch=batch,
        read_positionings=delta.read_positionings,
        write_positionings=delta.write_positionings,
        coalesced_runs=delta.coalesced_runs,
        coalesced_blocks=delta.coalesced_blocks,
        flushes=pager.flushes - flushes_before,
        dirty_evictions=(
            pager.buffer_pool.dirty_evictions - dirty_evictions_before
            if pager.buffer_pool is not None else 0),
        io_retries=delta.io_retries,
        checksum_failures=delta.checksum_failures,
        repaired_blocks=delta.repaired_blocks,
        healed_faults=healed_faults,
        p90_latency_us=float(np.percentile(latencies, 90)) if executed else 0.0,
        max_latency_us=float(latencies.max()) if executed else 0.0,
        op_latency_histograms={k: h.summary() for k, h in op_hists.items()},
        phase_latency_histograms=(
            {p: h.summary() for p, h in phase_hists.items()}
            if tracer is not None else None),
        op_io_histograms=(
            {k: h.summary() for k, h in io_hists.items()}
            if tracer is not None else None),
        shards=actual_shards,
        replicas=actual_replicas,
        per_shard=(index.per_shard_delta(shard_view)
                   if shard_view is not None else {}),
        failovers=getattr(index, "failovers", 0) - failovers_before,
        hedged_reads=getattr(index, "hedged_reads", 0) - hedged_before,
        resync_blocks=(getattr(index, "resync_blocks", 0)
                       - resync_blocks_before),
    )


def _client_digest(session, phase_hists=None) -> dict:
    """One client's slice of a serving run, as histogram digests."""
    overall = Histogram(latency_bounds())
    by_kind: Dict[str, Histogram] = {}
    for kind, us in zip(session.op_kinds, session.latencies_us):
        overall.record(us)
        hist = by_kind.get(kind)
        if hist is None:
            hist = by_kind[kind] = Histogram(latency_bounds())
        hist.record(us)
    digest = {
        "ops": session.completed,
        "latency": overall.summary(),
        "op_latency_histograms": {k: h.summary() for k, h in by_kind.items()},
        "latch_waits": session.latch_waits,
        "latch_wait_us": session.latch_wait_us,
        "commit_waits": session.commit_waits,
        "commit_wait_us": session.commit_wait_us,
        "snapshot_reads": session.snapshot_reads,
        "snapshot_suppressed": session.snapshot_suppressed,
        "committed_writes": session.committed_writes,
        "shed_ops": session.shed_ops,
        "deadline_misses": session.deadline_misses,
        "retries_used": session.retries_used,
        "max_dispatch_gap": session.max_dispatch_gap(),
    }
    if phase_hists is not None:
        digest["phase_latency_histograms"] = {
            p: h.summary() for p, h in phase_hists.items()}
    return digest


def _run_serving(index: DiskIndex, ops: Sequence[Operation], *, workload: str,
                 scan_length: int, keep_latencies: bool, validate: bool,
                 fault_injector: Optional[FaultInjector], tracer,
                 clients: int, client_ops, snapshot_reads: bool,
                 commit_group: Optional[int],
                 commit_timeout_us: Optional[float],
                 latching: bool, deadline_us: Optional[float],
                 retry_budget: int, max_inflight_writes: Optional[int],
                 max_queue_delay_us: Optional[float]) -> RunResult:
    """The multi-client branch of :func:`run_workload`.

    Deals ``ops`` into per-client streams (unless explicit ones are
    given), drives :class:`repro.serving.ServingEngine`, and folds its
    report into the common :class:`RunResult` shape plus the serving
    extras.  Latencies here are client-perceived — device time plus
    latch stalls plus group-commit waits — so tails widen with
    contention even though the device does the same work.
    """
    # Imported lazily: repro.serving imports this package for the
    # Operation alias, so a module-level import would be circular.
    from ..serving import ServingEngine, split_ops

    pager: Pager = index.pager
    device = pager.device
    wal = index.wal
    if tracer is None:
        tracer = getattr(index, "tracer", None)
    if client_ops is not None:
        streams = [list(stream) for stream in client_ops]
    else:
        streams = split_ops(ops, clients)

    start = device.stats.snapshot()
    file_reads_before = {name: f.reads for name, f in device.files.items()}
    log_records_before = wal.records_appended if wal is not None else 0
    log_flushes_before = wal.flushes if wal is not None else 0
    flushes_before = pager.flushes
    dirty_evictions_before = (pager.buffer_pool.dirty_evictions
                              if pager.buffer_pool is not None else 0)
    shard_view = (index.per_shard_snapshot()
                  if hasattr(index, "per_shard_snapshot") else None)
    failovers_before = getattr(index, "failovers", 0)
    hedged_before = getattr(index, "hedged_reads", 0)
    resync_blocks_before = getattr(index, "resync_blocks", 0)

    engine = ServingEngine(
        index, streams, scan_length=scan_length, validate=validate,
        snapshot_reads=snapshot_reads, latching=latching,
        commit_group=commit_group, commit_timeout_us=commit_timeout_us,
        tracer=tracer, fault_injector=fault_injector,
        deadline_us=deadline_us, retry_budget=retry_budget,
        max_inflight_writes=max_inflight_writes,
        max_queue_delay_us=max_queue_delay_us)
    report = engine.run()

    delta = device.stats.diff(start)
    roles = index.file_roles()
    inner_reads = 0
    leaf_reads = 0
    for name, handle in device.files.items():
        file_delta = handle.reads - file_reads_before.get(name, 0)
        if roles.get(name) == "inner":
            inner_reads += file_delta
        else:
            leaf_reads += file_delta

    latencies = report.latencies_us
    executed = report.executed
    op_hists: Dict[str, Histogram] = {}
    for kind, us in zip(report.op_kinds, latencies):
        hist = op_hists.get(kind)
        if hist is None:
            hist = op_hists[kind] = Histogram(latency_bounds())
        hist.record(float(us))

    traced = tracer is not None
    client_hists = report.client_phase_hists if traced else {}
    per_client = {
        s.client_id: _client_digest(
            s, (client_hists or {}).get(s.client_id) if traced else None)
        for s in report.sessions
    }

    n = max(executed, 1)
    sim_s = delta.elapsed_us / 1e6
    return RunResult(
        workload=workload,
        index_name=index.name,
        num_ops=executed,
        sim_elapsed_us=delta.elapsed_us,
        throughput_ops_per_s=executed / sim_s if sim_s > 0 else float("inf"),
        mean_latency_us=float(latencies.mean()) if executed else 0.0,
        p50_latency_us=float(np.percentile(latencies, 50)) if executed else 0.0,
        p99_latency_us=float(np.percentile(latencies, 99)) if executed else 0.0,
        std_latency_us=float(latencies.std()) if executed else 0.0,
        blocks_read_per_op=delta.reads / n,
        blocks_written_per_op=delta.writes / n,
        inner_blocks_per_op=inner_reads / n,
        leaf_blocks_per_op=leaf_reads / n,
        time_by_phase_us=dict(delta.time_by_phase),
        reads_by_phase=dict(delta.reads_by_phase),
        writes_by_phase=dict(delta.writes_by_phase),
        allocated_bytes=device.allocated_bytes,
        live_bytes=device.live_bytes,
        latencies_us=latencies if keep_latencies else None,
        log_records=(wal.records_appended - log_records_before) if wal is not None else 0,
        log_flushes=(wal.flushes - log_flushes_before) if wal is not None else 0,
        log_blocks_written=delta.writes_by_phase.get("log", 0),
        crashed_at_op=report.crashed_at_op,
        read_positionings=delta.read_positionings,
        write_positionings=delta.write_positionings,
        coalesced_runs=delta.coalesced_runs,
        coalesced_blocks=delta.coalesced_blocks,
        flushes=pager.flushes - flushes_before,
        dirty_evictions=(
            pager.buffer_pool.dirty_evictions - dirty_evictions_before
            if pager.buffer_pool is not None else 0),
        io_retries=delta.io_retries,
        checksum_failures=delta.checksum_failures,
        repaired_blocks=delta.repaired_blocks,
        p90_latency_us=float(np.percentile(latencies, 90)) if executed else 0.0,
        max_latency_us=float(latencies.max()) if executed else 0.0,
        op_latency_histograms={k: h.summary() for k, h in op_hists.items()},
        phase_latency_histograms=(
            {p: h.summary() for p, h in report.phase_hists.items()}
            if traced else None),
        op_io_histograms=(
            {k: h.summary() for k, h in report.io_hists.items()}
            if traced else None),
        clients=len(streams),
        per_client=per_client,
        client_phase_histograms=(
            {cid: {p: h.summary() for p, h in hists.items()}
             for cid, hists in (client_hists or {}).items()}
            if traced else None),
        commit_groups=len(report.commit_groups),
        mean_commit_group=report.mean_commit_group,
        committed_writes=report.committed_writes,
        commit_waits=report.commit_waits,
        commit_wait_us=report.commit_wait_us,
        latch_waits=report.latch_waits,
        latch_wait_us=report.latch_wait_us,
        read_latch_wait_us=report.read_latch_wait_us,
        write_latch_wait_us=report.write_latch_wait_us,
        snapshot_reads=report.snapshot_reads,
        snapshot_suppressed=report.snapshot_suppressed,
        shed_ops=report.shed_ops,
        deadline_misses=report.deadline_misses,
        op_retries=report.op_retries,
        shards=getattr(index, "num_shards", 1),
        replicas=getattr(index, "replication_factor", 1),
        per_shard=(index.per_shard_delta(shard_view)
                   if shard_view is not None else {}),
        failovers=getattr(index, "failovers", 0) - failovers_before,
        hedged_reads=getattr(index, "hedged_reads", 0) - hedged_before,
        resync_blocks=(getattr(index, "resync_blocks", 0)
                       - resync_blocks_before),
    )
