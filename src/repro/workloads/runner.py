"""Workload execution and metric collection.

Runs an operation stream against a :class:`~repro.core.DiskIndex` and
collects every metric the paper reports:

* throughput (operations per simulated second) and average latency;
* tail latency — p50 / p99 / standard deviation (Figure 12);
* average fetched blocks per operation, split into inner and leaf
  components via the index's ``file_roles()`` (Table 4 / Figure 4);
* per-phase I/O time — search / insert / SMO / maintenance (Figure 6);
* bulk-load time and on-disk storage usage (Figures 7 and 10).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..core.interface import DiskIndex
from ..storage import Pager
from .spec import Operation

__all__ = ["RunResult", "run_workload", "bulk_load_timed"]


@dataclass
class RunResult:
    """All metrics of one workload execution."""

    workload: str
    index_name: str
    num_ops: int
    sim_elapsed_us: float
    throughput_ops_per_s: float
    mean_latency_us: float
    p50_latency_us: float
    p99_latency_us: float
    std_latency_us: float
    blocks_read_per_op: float
    blocks_written_per_op: float
    inner_blocks_per_op: float
    leaf_blocks_per_op: float
    time_by_phase_us: Dict[str, float] = field(default_factory=dict)
    reads_by_phase: Dict[str, int] = field(default_factory=dict)
    writes_by_phase: Dict[str, int] = field(default_factory=dict)
    bulkload_us: float = 0.0
    allocated_bytes: int = 0
    live_bytes: int = 0
    latencies_us: Optional[np.ndarray] = None

    def phase_latency_us(self, phase: str) -> float:
        """Average simulated time per op spent in a phase (Figure 6)."""
        if self.num_ops == 0:
            return 0.0
        return self.time_by_phase_us.get(phase, 0.0) / self.num_ops


def bulk_load_timed(index: DiskIndex, items: Sequence[Tuple[int, int]]) -> float:
    """Bulk load and return the simulated microseconds it took."""
    stats = index.pager.stats
    before = stats.elapsed_us
    index.bulk_load(items)
    return stats.elapsed_us - before


def run_workload(index: DiskIndex, ops: Sequence[Operation], workload: str = "",
                 scan_length: int = 100, keep_latencies: bool = False,
                 validate: bool = False) -> RunResult:
    """Execute ``ops`` against a loaded index and collect metrics.

    Args:
        index: a bulk-loaded index.
        ops: the operation stream from :func:`build_workload`.
        workload: label recorded in the result.
        scan_length: elements per scan operation (paper: 100).
        keep_latencies: retain the raw per-op latency array.
        validate: check each lookup returns the paper's key+1 payload
            (used by integration tests; benchmark runs skip it).
    """
    pager: Pager = index.pager
    device = pager.device
    start = device.stats.snapshot()
    file_reads_before = {name: f.reads for name, f in device.files.items()}
    latencies = np.empty(len(ops), dtype=np.float64)

    for i, (kind, key) in enumerate(ops):
        before_us = device.stats.elapsed_us
        if kind == "lookup":
            result = index.lookup(key)
            if validate and result != key + 1:
                raise AssertionError(
                    f"lookup({key}) returned {result}, expected {key + 1}")
        elif kind == "insert":
            index.insert(key, key + 1)
        elif kind == "scan":
            result = index.scan(key, scan_length)
            if validate and (not result or result[0][0] != key):
                raise AssertionError(f"scan({key}) did not start at the key")
        else:
            raise ValueError(f"unknown operation kind {kind!r}")
        latencies[i] = device.stats.elapsed_us - before_us

    delta = device.stats.diff(start)
    roles = index.file_roles()
    inner_reads = 0
    leaf_reads = 0
    for name, handle in device.files.items():
        file_delta = handle.reads - file_reads_before.get(name, 0)
        if roles.get(name) == "inner":
            inner_reads += file_delta
        else:
            leaf_reads += file_delta

    n = max(len(ops), 1)
    sim_s = delta.elapsed_us / 1e6
    return RunResult(
        workload=workload,
        index_name=index.name,
        num_ops=len(ops),
        sim_elapsed_us=delta.elapsed_us,
        throughput_ops_per_s=len(ops) / sim_s if sim_s > 0 else float("inf"),
        mean_latency_us=float(latencies.mean()) if len(ops) else 0.0,
        p50_latency_us=float(np.percentile(latencies, 50)) if len(ops) else 0.0,
        p99_latency_us=float(np.percentile(latencies, 99)) if len(ops) else 0.0,
        std_latency_us=float(latencies.std()) if len(ops) else 0.0,
        blocks_read_per_op=delta.reads / n,
        blocks_written_per_op=delta.writes / n,
        inner_blocks_per_op=inner_reads / n,
        leaf_blocks_per_op=leaf_reads / n,
        time_by_phase_us=dict(delta.time_by_phase),
        reads_by_phase=dict(delta.reads_by_phase),
        writes_by_phase=dict(delta.writes_by_phase),
        allocated_bytes=device.allocated_bytes,
        live_bytes=device.live_bytes,
        latencies_us=latencies if keep_latencies else None,
    )
