"""Workload specifications — the six types of Section 5.2.

1. **Lookup-Only** — bulk load every key, then random lookups of
   existing keys.
2. **Scan-Only** — same index; each operation looks up a start key and
   scans the next 99 elements (``scan_length = 100``).
3. **Write-Only** — bulk load half of a key pool, insert the other half.
4. **Read-Heavy** — 90% lookups / 10% inserts, interleaved exactly as
   the paper does: 2 inserts then 18 lookups, repeated.
5. **Write-Heavy** — 18 inserts then 2 lookups, repeated.
6. **Balanced** — 10 inserts then 10 lookups, repeated.

Lookup keys in the mixed workloads are drawn uniformly from the keys
present at that point (the paper: "the search keys for the lookup in the
Mixed workloads are evenly distributed").
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

__all__ = ["WorkloadSpec", "WORKLOADS", "Operation", "DISTRIBUTIONS",
           "build_workload", "workload_names"]

#: (op, key) — op is "lookup", "insert" or "scan"; payload is key + 1 by
#: the paper's convention and scans use the workload's scan length.
Operation = Tuple[str, int]


@dataclass(frozen=True)
class WorkloadSpec:
    """One workload type.

    ``round_pattern`` is the exact op interleaving of one round ("I" =
    insert, "L" = lookup, "S" = scan); the paper specifies these rounds
    verbatim for the mixed workloads.
    """

    name: str
    round_pattern: str
    bulk_all: bool  # bulk load the whole dataset (read-only workloads)

    @property
    def insert_fraction(self) -> float:
        return self.round_pattern.count("I") / len(self.round_pattern)

    @property
    def has_writes(self) -> bool:
        return "I" in self.round_pattern


WORKLOADS = {
    "lookup_only": WorkloadSpec("lookup_only", "L", bulk_all=True),
    "scan_only": WorkloadSpec("scan_only", "S", bulk_all=True),
    "write_only": WorkloadSpec("write_only", "I", bulk_all=False),
    "read_heavy": WorkloadSpec("read_heavy", "II" + "L" * 18, bulk_all=False),
    "write_heavy": WorkloadSpec("write_heavy", "I" * 18 + "LL", bulk_all=False),
    "balanced": WorkloadSpec("balanced", "I" * 10 + "L" * 10, bulk_all=False),
}


def workload_names() -> List[str]:
    return list(WORKLOADS)


#: Lookup/scan target distributions accepted by ``build_workload``.
DISTRIBUTIONS = ("uniform", "zipfian", "latest", "hotspot")


class _KeyPicker:
    """Samples an index into a growing population under a distribution.

    The paper's workloads sample lookup keys uniformly ("evenly
    distributed"); the skewed modes are extensions (YCSB's request
    distributions) for contention studies:

    * ``"uniform"`` — every present key equally likely.
    * ``"zipfian"`` — Zipf(s) ranks via the bounded inverse-CDF
      approximation ``rank = floor(n * u^(1/(1-s)))``, scattered over
      the population with a multiplicative hash so hot keys are spread
      across the key space rather than clustered at one end.
    * ``"latest"`` — the same Zipf(s) ranks counted back from the most
      recently inserted key (rank 0 = newest), *not* scattered: recency
      is the point.  Over a static population this skews toward the
      bulk-load order's tail.
    * ``"hotspot"`` — with probability ``hotspot_probability`` pick
      uniformly inside the hot set (the first
      ``ceil(hotspot_fraction * n)`` keys in population order), else
      uniformly from the cold remainder.
    """

    _SCATTER = 2654435761  # Knuth's multiplicative hash constant

    def __init__(self, rng: random.Random, distribution: str, zipf_s: float,
                 hotspot_fraction: float = 0.2,
                 hotspot_probability: float = 0.8) -> None:
        if distribution not in DISTRIBUTIONS:
            raise ValueError(
                f"distribution must be one of {DISTRIBUTIONS}, got {distribution!r}")
        if distribution in ("zipfian", "latest") and not 0.0 < zipf_s < 1.0:
            raise ValueError(f"zipf_s must be in (0, 1), got {zipf_s}")
        if distribution == "hotspot":
            if not 0.0 < hotspot_fraction <= 1.0:
                raise ValueError(
                    f"hotspot_fraction must be in (0, 1], got {hotspot_fraction}")
            if not 0.0 <= hotspot_probability <= 1.0:
                raise ValueError(
                    f"hotspot_probability must be in [0, 1], got {hotspot_probability}")
        self._rng = rng
        self._distribution = distribution
        self._exponent = 1.0 / (1.0 - zipf_s) if 0.0 < zipf_s < 1.0 else 1.0
        self._hot_fraction = hotspot_fraction
        self._hot_probability = hotspot_probability

    def _zipf_rank(self, n: int) -> int:
        rank = int(n * (self._rng.random() ** self._exponent))
        return min(rank, n - 1)

    def pick(self, n: int) -> int:
        if n <= 0:
            raise ValueError("cannot pick from an empty population")
        if self._distribution == "uniform":
            return self._rng.randrange(n)
        if self._distribution == "zipfian":
            return (self._zipf_rank(n) * self._SCATTER) % n
        if self._distribution == "latest":
            return n - 1 - self._zipf_rank(n)
        # hotspot
        hot_n = min(max(1, int(self._hot_fraction * n)), n)
        if n == hot_n or self._rng.random() < self._hot_probability:
            return self._rng.randrange(hot_n)
        return hot_n + self._rng.randrange(n - hot_n)


def build_workload(spec: WorkloadSpec, keys: np.ndarray, num_ops: int,
                   seed: int = 17, lookup_distribution: str = "uniform",
                   zipf_s: float = 0.99, hotspot_fraction: float = 0.2,
                   hotspot_probability: float = 0.8,
                   ) -> Tuple[List[Tuple[int, int]], List[Operation]]:
    """Materialize (bulk items, operation stream) for a dataset.

    For read-only workloads the whole dataset is bulk loaded and
    ``num_ops`` start/lookup keys are sampled from it.  For write
    workloads the dataset is split: the first half (sorted random
    sample) is bulk loaded, inserts consume the withheld half, and
    mixed-workload lookups target keys present at that moment.

    ``lookup_distribution`` picks the lookup/scan target distribution —
    see :data:`DISTRIBUTIONS` and :class:`_KeyPicker` (an extension; the
    paper samples uniformly).  ``zipf_s`` parameterizes the zipfian and
    latest modes; ``hotspot_fraction`` / ``hotspot_probability`` the
    hotspot mode.
    """
    if num_ops <= 0:
        raise ValueError(f"num_ops must be positive, got {num_ops}")
    rng = random.Random(seed)
    picker = _KeyPicker(rng, lookup_distribution, zipf_s,
                        hotspot_fraction=hotspot_fraction,
                        hotspot_probability=hotspot_probability)
    n = len(keys)
    if spec.bulk_all:
        bulk_items = [(int(k), int(k) + 1) for k in keys]
        op_kind = "scan" if "S" in spec.round_pattern else "lookup"
        ops = [(op_kind, int(keys[picker.pick(n)])) for _ in range(num_ops)]
        return bulk_items, ops

    num_inserts = sum(
        1 for i in range(num_ops)
        if spec.round_pattern[i % len(spec.round_pattern)] == "I"
    )
    if num_inserts >= n:
        raise ValueError(
            f"workload needs {num_inserts} insert keys but the dataset has only "
            f"{n} keys; pass a larger dataset or fewer operations")
    withheld_positions = set(rng.sample(range(n), num_inserts))
    bulk_keys = [int(keys[i]) for i in range(n) if i not in withheld_positions]
    insert_keys = [int(keys[i]) for i in sorted(withheld_positions)]
    rng.shuffle(insert_keys)

    bulk_items = [(k, k + 1) for k in bulk_keys]
    present = list(bulk_keys)
    ops: List[Operation] = []
    insert_cursor = 0
    for i in range(num_ops):
        kind = spec.round_pattern[i % len(spec.round_pattern)]
        if kind == "I":
            key = insert_keys[insert_cursor]
            insert_cursor += 1
            ops.append(("insert", key))
            present.append(key)
        elif kind == "L":
            ops.append(("lookup", present[picker.pick(len(present))]))
        else:
            ops.append(("scan", present[picker.pick(len(present))]))
    return bulk_items, ops
