"""Piecewise linear approximation (PLA) of sorted key arrays.

Two segmentation algorithms appear in the paper:

* ``shrinking_cone_segments`` — the greedy algorithm of the original
  FITing-tree (Galakatos et al., SIGMOD 2019).  The anchor is the first
  point of the segment and a feasible-slope cone is narrowed as points
  stream in.
* ``optimal_segments`` — the optimal streaming algorithm of O'Rourke
  (CACM 1981) as used by the PGM-index.  It maintains the exact convex
  feasible region of (slope, intercept) pairs, so it produces the
  minimum number of segments for a given error bound.  Section 4.2 of
  the paper replaces FITing-tree's greedy segmentation with this
  algorithm in the on-disk port; we do the same and keep the greedy one
  for ablations.

Both guarantee ``|predicted_pos - true_pos| <= epsilon`` for every key
covered by a segment.  Cross products are computed with exact Python
integers, so there is no precision failure even for keys near ``2**64``
(the C++ originals need ``__int128`` for the same reason).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from .linear import LinearModel, anchored_diff, truncate_slots

__all__ = ["Segment", "SegmentArray", "optimal_segments",
           "shrinking_cone_segments"]


@dataclass
class Segment:
    """One PLA segment over ``keys[first_pos : first_pos + length]``.

    ``model`` predicts *absolute* positions in the source array; callers
    that store per-segment arrays subtract ``first_pos``.
    """

    first_key: int
    first_pos: int
    length: int
    model: LinearModel

    @property
    def last_pos(self) -> int:
        return self.first_pos + self.length - 1

    def predict_relative(self, key: int) -> float:
        """Predicted offset inside this segment (0-based)."""
        return self.model.predict(key) - self.first_pos


class SegmentArray:
    """Struct-of-arrays form of a sorted run of anchored linear segments.

    Holds the per-segment ``first_key``/``slope``/``intercept``/``anchor``
    columns as numpy arrays so a whole ``lookup_many`` batch resolves its
    segments (one ``np.searchsorted``) and predicted positions (one
    anchored multiply-add) in two vectorized passes, bit-identical to
    looping :meth:`LinearModel.predict` per key (DESIGN.md §15).

    Used at batch time over segment descriptors the caller already paid
    charged I/O to fetch — it is a compute cache, never a routing
    shortcut, so the charged cost model is untouched.
    """

    __slots__ = ("first_keys", "slopes", "intercepts", "anchors")

    def __init__(self, first_keys, slopes, intercepts, anchors=None):
        self.first_keys = np.asarray(first_keys, dtype=np.uint64)
        self.slopes = np.asarray(slopes, dtype=np.float64)
        self.intercepts = np.asarray(intercepts, dtype=np.float64)
        self.anchors = (self.first_keys if anchors is None
                        else np.asarray(anchors, dtype=np.uint64))

    def __len__(self) -> int:
        return len(self.first_keys)

    @classmethod
    def from_segments(cls, segments: Sequence[Segment]) -> "SegmentArray":
        return cls([s.first_key for s in segments],
                   [s.model.slope for s in segments],
                   [s.model.intercept for s in segments],
                   [s.model.anchor for s in segments])

    def resolve(self, keys) -> np.ndarray:
        """Floor-segment index per key: the rightmost segment whose
        ``first_key`` is <= the key, clamped to segment 0."""
        keys = np.asarray(keys, dtype=np.uint64)
        idx = np.searchsorted(self.first_keys, keys, side="right")
        idx = idx.astype(np.int64) - 1
        return np.clip(idx, 0, None, out=idx)

    def predict(self, keys, idx=None) -> np.ndarray:
        """Predicted float positions for all keys in one vectorized pass;
        ``idx`` (from :meth:`resolve`) maps each key to its segment."""
        keys = np.asarray(keys, dtype=np.uint64)
        if idx is None:
            idx = self.resolve(keys)
        diff = anchored_diff(keys, self.anchors[idx])
        return self.slopes[idx] * diff + self.intercepts[idx]

    def predict_slots(self, keys, sizes, idx=None) -> np.ndarray:
        """Truncated predicted slots clamped per key to ``[0, size - 1]``
        where ``sizes`` aligns with ``keys``."""
        slots = truncate_positions(self.predict(keys, idx))
        sizes = np.asarray(sizes, dtype=np.int64)
        np.clip(slots, 0, sizes - 1, out=slots)
        return slots


def _check_sorted_unique(keys: Sequence[int]) -> None:
    for i in range(1, len(keys)):
        if keys[i] <= keys[i - 1]:
            raise ValueError(
                f"keys must be strictly increasing; violation at index {i}: "
                f"{keys[i - 1]} >= {keys[i]}"
            )


def shrinking_cone_segments(keys: Sequence[int], epsilon: int) -> List[Segment]:
    """Greedy FITing-tree segmentation with error bound ``epsilon``.

    The model of each segment passes through its first point; the slope
    is the midpoint of the surviving cone.
    """
    if epsilon < 0:
        raise ValueError(f"epsilon must be non-negative, got {epsilon}")
    _check_sorted_unique(keys)
    segments: List[Segment] = []
    n = len(keys)
    i = 0
    while i < n:
        anchor_key = keys[i]
        anchor_pos = i
        # Slopes are rationals (dy, dx) compared by cross multiplication.
        lo_dy, lo_dx = 0, 1  # lower bound 0: positions never decrease
        hi_dy, hi_dx = 1, 0  # upper bound +infinity
        j = i + 1
        while j < n:
            dx = keys[j] - anchor_key
            rel = j - anchor_pos
            new_lo = (rel - epsilon, dx)
            new_hi = (rel + epsilon, dx)
            # Tighten: lo = max(lo, new_lo), hi = min(hi, new_hi).
            cand_lo_dy, cand_lo_dx = (
                new_lo if new_lo[0] * lo_dx > lo_dy * new_lo[1] else (lo_dy, lo_dx)
            )
            cand_hi_dy, cand_hi_dx = (
                new_hi if new_hi[0] * hi_dx < hi_dy * new_hi[1] else (hi_dy, hi_dx)
            )
            if cand_lo_dy * cand_hi_dx > cand_hi_dy * cand_lo_dx:
                break  # cone emptied: the point cannot be covered
            lo_dy, lo_dx = cand_lo_dy, cand_lo_dx
            hi_dy, hi_dx = cand_hi_dy, cand_hi_dx
            j += 1
        length = j - i
        if length == 1:
            slope = 0.0
        else:
            lo = lo_dy / lo_dx
            hi = hi_dy / hi_dx if hi_dx else lo
            slope = (lo + hi) / 2.0
        model = LinearModel(slope=slope, intercept=float(anchor_pos), anchor=anchor_key)
        segments.append(Segment(anchor_key, anchor_pos, length, model))
        i = j
    return segments


class _OptimalPLA:
    """O'Rourke's online feasible-region algorithm (PGM variant).

    Maintains upper/lower convex hulls of the shifted points and the
    extreme feasible lines as a "rectangle" of four points, exactly as in
    the PGM-index reference implementation, but with exact integer cross
    products.
    """

    def __init__(self, epsilon: int) -> None:
        if epsilon < 0:
            raise ValueError(f"epsilon must be non-negative, got {epsilon}")
        self.epsilon = epsilon
        self.reset()

    def reset(self) -> None:
        self.points_in_hull = 0
        self.first_x = 0  # the anchor: all stored xs are relative to it
        self.last_x: int | None = None
        self.rect: List[Tuple[int, int]] = [(0, 0)] * 4
        self.upper: List[Tuple[int, int]] = []
        self.lower: List[Tuple[int, int]] = []
        self.upper_start = 0
        self.lower_start = 0

    @staticmethod
    def _cross(o: Tuple[int, int], a: Tuple[int, int], b: Tuple[int, int]) -> int:
        return (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0])

    @staticmethod
    def _slope_lt(p: Tuple[int, int], q: Tuple[int, int]) -> bool:
        """Compare slopes of vectors p, q (positive dx assumed)."""
        return p[1] * q[0] < q[1] * p[0]

    def add_point(self, x: int, y: int) -> bool:
        """Feed the next point; False means it opens a new segment."""
        if self.points_in_hull > 0 and self.last_x is not None and x <= self.last_x:
            raise ValueError(f"x values must be strictly increasing, got {x} after {self.last_x}")
        eps = self.epsilon
        if self.points_in_hull == 0:
            self.first_x = x
        # Work in coordinates relative to the segment's first x so the
        # final slope/intercept floats never see full-magnitude keys.
        rx = x - self.first_x
        p1 = (rx, y + eps)
        p2 = (rx, y - eps)

        if self.points_in_hull == 0:
            self.last_x = x
            self.rect[0], self.rect[1] = p1, p2
            self.upper = [p1]
            self.lower = [p2]
            self.upper_start = self.lower_start = 0
            self.points_in_hull = 1
            return True

        if self.points_in_hull == 1:
            self.last_x = x
            self.rect[2], self.rect[3] = p2, p1
            self.upper.append(p1)
            self.lower.append(p2)
            self.points_in_hull = 2
            return True

        slope1 = (self.rect[2][0] - self.rect[0][0], self.rect[2][1] - self.rect[0][1])
        slope2 = (self.rect[3][0] - self.rect[1][0], self.rect[3][1] - self.rect[1][1])
        outside1 = self._slope_lt((p1[0] - self.rect[2][0], p1[1] - self.rect[2][1]), slope1)
        outside2 = self._slope_lt(slope2, (p2[0] - self.rect[3][0], p2[1] - self.rect[3][1]))
        if outside1 or outside2:
            # Leave the hull intact: the caller extracts the finished
            # segment's model with current_model() and then calls reset().
            return False
        self.last_x = x

        if self._slope_lt((p1[0] - self.rect[1][0], p1[1] - self.rect[1][1]), slope2):
            # Update the max-slope extreme line: it now passes through p1
            # and the lower-hull point minimizing the slope to p1.
            min_i = self.lower_start
            min_vec = (self.lower[min_i][0] - p1[0], self.lower[min_i][1] - p1[1])
            for i in range(self.lower_start + 1, len(self.lower)):
                vec = (self.lower[i][0] - p1[0], self.lower[i][1] - p1[1])
                if self._slope_lt(min_vec, vec):
                    break
                min_vec = vec
                min_i = i
            self.rect[1] = self.lower[min_i]
            self.rect[3] = p1
            self.lower_start = min_i
            # Maintain the upper hull with p1.
            end = len(self.upper)
            while end >= self.upper_start + 2 and (
                self._cross(self.upper[end - 2], self.upper[end - 1], p1) <= 0
            ):
                end -= 1
            del self.upper[end:]
            self.upper.append(p1)

        if self._slope_lt(slope1, (p2[0] - self.rect[0][0], p2[1] - self.rect[0][1])):
            # Update the min-slope extreme line symmetrically.
            max_i = self.upper_start
            max_vec = (self.upper[max_i][0] - p2[0], self.upper[max_i][1] - p2[1])
            for i in range(self.upper_start + 1, len(self.upper)):
                vec = (self.upper[i][0] - p2[0], self.upper[i][1] - p2[1])
                if self._slope_lt(vec, max_vec):
                    break
                max_vec = vec
                max_i = i
            self.rect[0] = self.upper[max_i]
            self.rect[2] = p2
            self.upper_start = max_i
            end = len(self.lower)
            while end >= self.lower_start + 2 and (
                self._cross(self.lower[end - 2], self.lower[end - 1], p2) >= 0
            ):
                end -= 1
            del self.lower[end:]
            self.lower.append(p2)

        self.points_in_hull += 1
        return True

    def current_model(self) -> LinearModel:
        """Feasible model for the points fed since the last reset/break.

        The returned model is anchored at the segment's first x, so its
        float intercept stays within the (small) position range.
        """
        if self.points_in_hull == 0:
            raise ValueError("no points in the current segment")
        if self.points_in_hull == 1:
            return LinearModel(slope=0.0,
                               intercept=(self.rect[0][1] + self.rect[1][1]) / 2.0,
                               anchor=self.first_x)
        r0, r1, r2, r3 = self.rect
        min_slope = (r2[1] - r0[1]) / (r2[0] - r0[0])
        max_slope = (r3[1] - r1[1]) / (r3[0] - r1[0])
        slope = (min_slope + max_slope) / 2.0
        # Intersection of the two extreme lines fixes the intercept; all
        # coordinates here are relative to the anchor.
        d1 = (r2[0] - r0[0], r2[1] - r0[1])
        d2 = (r3[0] - r1[0], r3[1] - r1[1])
        denom = d1[0] * d2[1] - d1[1] * d2[0]
        if denom == 0:
            ix, iy = float(r0[0]), float(r0[1])
        else:
            t = ((r1[0] - r0[0]) * d2[1] - (r1[1] - r0[1]) * d2[0]) / denom
            ix = r0[0] + t * d1[0]
            iy = r0[1] + t * d1[1]
        intercept = iy - ix * slope
        return LinearModel(slope=slope, intercept=intercept, anchor=self.first_x)


def optimal_segments(keys: Sequence[int], epsilon: int) -> List[Segment]:
    """Optimal streaming PLA of a strictly-increasing key array."""
    _check_sorted_unique(keys)
    segments: List[Segment] = []
    n = len(keys)
    if n == 0:
        return segments
    pla = _OptimalPLA(epsilon)
    start = 0
    for i in range(n):
        if not pla.add_point(keys[i], i):
            segments.append(Segment(keys[start], start, i - start, pla.current_model()))
            pla.reset()
            pla.add_point(keys[i], i)
            start = i
    segments.append(Segment(keys[start], start, n - start, pla.current_model()))
    return segments
