"""FMCD — Fastest Minimum Conflict Degree model construction (LIPP).

LIPP (Wu et al., VLDB 2021) builds each node by finding a linear model
that spreads a sorted key set over ``L`` slots with the smallest maximum
number of keys colliding in one slot (the *conflict degree*).  We follow
the reference implementation: a two-pointer scan grows the tolerated
conflict degree ``D`` until the induced slot width ``Ut`` separates all
but ``D``-sized clusters; if ``D`` grows past ``size / 3`` the method
falls back to a min-max model.

Table 3 of the paper profiles every dataset by the conflict degree of a
whole-dataset FMCD model, which :func:`conflict_degree` computes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .linear import LinearModel

__all__ = ["FmcdResult", "build_fmcd_model", "conflict_degree", "lipp_node_slots"]


def lipp_node_slots(item_count: int, build_gap_count: int = 4) -> int:
    """Slots allocated for a LIPP node holding ``item_count`` keys.

    The paper's O11: items < 100,000 get ``5 * item_count`` slots
    (``build_gap_count = 4``), items in [100,000, 1,000,000) get
    ``2 * item_count``, larger nodes get ``1.2 * item_count``.
    """
    if item_count <= 0:
        raise ValueError(f"item count must be positive, got {item_count}")
    if item_count < 100_000:
        return item_count * (build_gap_count + 1)
    if item_count < 1_000_000:
        return item_count * 2
    return int(item_count * 1.2)


@dataclass
class FmcdResult:
    """Outcome of FMCD construction for one node."""

    model: LinearModel
    num_slots: int
    conflict_degree: int
    fallback: bool  # True when the min-max fallback was used


def build_fmcd_model(keys: Sequence[int], num_slots: int) -> FmcdResult:
    """Fit a linear model over ``num_slots`` slots with minimal conflicts.

    Mirrors ``build_tree_bulk_fmcd`` in the LIPP reference code: the
    tolerated conflict degree ``D`` starts at 1 and grows whenever two
    keys ``D`` apart are closer than the slot width ``Ut`` derived from
    the remaining key span.
    """
    n = len(keys)
    if n == 0:
        raise ValueError("cannot build a model over zero keys")
    if num_slots < 2 or n == 1:
        model = LinearModel(slope=0.0, intercept=0.0)
        return FmcdResult(model=model, num_slots=max(num_slots, 1), conflict_degree=n,
                          fallback=True)

    big_l = num_slots
    i = 0
    d = 1
    fallback = n < 4  # too few keys for the two-pointer scan to make sense
    if not fallback:
        ut = (keys[n - 1 - d] - keys[d]) / float(big_l - 2) + 1e-6
        while i < n - 1 - d:
            while i + d < n and keys[i + d] - keys[i] >= ut:
                i += 1
            if i + d >= n:
                break
            d += 1
            if d * 3 > n:
                break
            ut = (keys[n - 1 - d] - keys[d]) / float(big_l - 2) + 1e-6
        fallback = d * 3 > n

    if not fallback and keys[n - 1 - d] > keys[d]:
        ut = (keys[n - 1 - d] - keys[d]) / float(big_l - 2) + 1e-6
        slope = 1.0 / ut
        # Anchor at the first key so the float intercept stays small:
        # b' = a*A + b with A = keys[0], algebraically identical to the
        # LIPP reference formula but free of uint64-scale cancellation.
        anchor = int(keys[0])
        rel_hi = int(keys[n - 1 - d]) - anchor
        rel_lo = int(keys[d]) - anchor
        intercept = (big_l - slope * (float(rel_hi) + float(rel_lo))) / 2.0
        model = LinearModel(slope=slope, intercept=intercept, anchor=anchor)
    else:
        fallback = True
        model = LinearModel.fit_min_max(keys[0], keys[-1], big_l)

    degree = _max_conflict(keys, model, big_l)
    return FmcdResult(model=model, num_slots=big_l, conflict_degree=degree, fallback=fallback)


def _max_conflict(keys: Sequence[int], model: LinearModel, num_slots: int) -> int:
    """Maximum number of keys mapped to a single slot (keys are sorted)."""
    best = 0
    run = 0
    prev_slot = None
    for key in keys:
        slot = model.predict_clamped(key, num_slots)
        if slot == prev_slot:
            run += 1
        else:
            run = 1
            prev_slot = slot
        if run > best:
            best = run
    return best


def conflict_degree(keys: Sequence[int], build_gap_count: int = 4) -> int:
    """Dataset conflict degree as profiled in Table 3 of the paper.

    Builds a single FMCD model over the whole (sorted, unique) key set
    with LIPP's root-node slot allocation and reports the maximum slot
    collision count.
    """
    slots = lipp_node_slots(len(keys), build_gap_count)
    return build_fmcd_model(list(keys), slots).conflict_degree
