"""Model substrate: linear models, PLA segmentation, FMCD."""

from .fmcd import FmcdResult, build_fmcd_model, conflict_degree, lipp_node_slots
from .linear import LinearModel
from .pla import Segment, optimal_segments, shrinking_cone_segments

__all__ = [
    "FmcdResult",
    "LinearModel",
    "Segment",
    "build_fmcd_model",
    "conflict_degree",
    "lipp_node_slots",
    "optimal_segments",
    "shrinking_cone_segments",
]
