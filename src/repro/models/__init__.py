"""Model substrate: linear models, PLA segmentation, FMCD."""

from .fmcd import FmcdResult, build_fmcd_model, conflict_degree, lipp_node_slots
from .linear import LinearModel, anchored_diff, truncate_positions, truncate_slots
from .pla import Segment, SegmentArray, optimal_segments, shrinking_cone_segments
from .zonemap import FenceZonemap

__all__ = [
    "FenceZonemap",
    "FmcdResult",
    "LinearModel",
    "Segment",
    "SegmentArray",
    "anchored_diff",
    "build_fmcd_model",
    "conflict_degree",
    "lipp_node_slots",
    "optimal_segments",
    "shrinking_cone_segments",
    "truncate_positions",
    "truncate_slots",
]
