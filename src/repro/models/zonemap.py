"""LeCo-style compressed fence array: the zonemap inner level.

The raw hybrid index routes through a full learned inner index over one
fence key per leaf, and the raw PGM descends compressed-free PLA
descriptor levels.  When leaves are codec-compressed, the fence set is
small enough that the structure *of the fences themselves* dominates
inner-level I/O — the finding of the SIGMOD 2024 follow-up ("Making
In-Memory Learned Indexes Efficient on Disk": LeCo-Zonemap-Disk in
SNIPPETS.md).  So under a compressed codec both the hybrid and the PGM
replace their inner level with this zonemap: the sorted fence keys are
delta-compressed into ``KIND_KEYS`` codec pages, one page per block, and
routing is

1. an in-memory bisect over the per-page maxima (``page_lasts`` — a few
   hundred ints, the meta-block convention that already holds the PGM
   root and every index's ``to_meta``), then
2. exactly one charged block read + an in-page ``searchsorted``.

Fence ``i``'s value is implicit: its ordinal.  Both users map ordinals
linearly (hybrid: leaf block = base + ordinal; PGM: data page ordinal),
so fence pages store bare keys — 5-7 bits per fence under ``FoRCodec``
against the raw layouts' 12-24 bytes per entry.

Charge identity (DESIGN.md Section 15/16): :meth:`route_many` issues one
coalesced ``read_span`` over the distinct fence pages of the batch in
both execution modes; scalar and vectorized differ only in how the page
bytes are searched.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.codecs import get_codec
from ..core.vectorize import enabled as _vectorized

__all__ = ["FenceZonemap"]


class FenceZonemap:
    """Compressed sorted fence keys with implicit ordinal values.

    ``route(key)`` returns the ordinal of the first fence ``>= key`` (a
    ceiling search), or ``None`` when the key exceeds every fence —
    mirroring how the hybrid's inner index routes a lookup to the one
    leaf whose max key bounds it.
    """

    def __init__(self, pager, file, codec, base_block: int,
                 page_lasts: List[int], page_starts: List[int],
                 count: int) -> None:
        self.pager = pager
        self.file = file
        self.codec = get_codec(codec)
        self.base_block = base_block
        #: Max fence key of each page — the in-memory routing boundary.
        self.page_lasts = page_lasts
        #: Cumulative fence count before each page (len == num pages).
        self.page_starts = page_starts
        self.count = count

    # -- construction --------------------------------------------------------

    @classmethod
    def build(cls, pager, file, fences: Sequence[int], codec) -> "FenceZonemap":
        """Pack sorted ``fences`` into codec key pages, one per block."""
        codec = get_codec(codec)
        fences = list(fences)
        pages: List[bytes] = []
        page_lasts: List[int] = []
        page_starts: List[int] = []
        pos = 0
        while pos < len(fences):
            take = codec.pack_keys_greedy(fences, pos, pager.block_size)
            page_starts.append(pos)
            page_lasts.append(fences[pos + take - 1])
            pages.append(codec.encode_keys(fences[pos : pos + take]))
            pos += take
        base = file.allocate(len(pages)) if pages else 0
        bs = pager.block_size
        pager.write_blocks(file, [
            (base + i, page + b"\x00" * (bs - len(page)))
            for i, page in enumerate(pages)])
        return cls(pager, file, codec, base, page_lasts, page_starts, len(fences))

    # -- routing -------------------------------------------------------------

    def _page_keys(self, page: int, raw: bytes) -> np.ndarray:
        return self.pager.cached_meta(
            self.file, self.base_block + page, raw,
            lambda data: self.codec.decode_keys(data))

    def route(self, key: int) -> Optional[int]:
        """Ordinal of the first fence >= ``key`` (one charged read)."""
        page = bisect_left(self.page_lasts, key)
        if page >= len(self.page_lasts):
            return None
        raw = self.pager.read_block(self.file, self.base_block + page)
        if _vectorized():
            keys = self._page_keys(page, raw)
            slot = int(np.searchsorted(keys, np.uint64(key), side="left"))
        else:
            keys = self.codec.decode_keys(raw).tolist()
            slot = bisect_left(keys, key)
        return self.page_starts[page] + slot

    def route_many(self, keys: Sequence[int]) -> Dict[int, Optional[int]]:
        """Batched :meth:`route` with one coalesced fence-page span.

        The distinct fence pages of the batch are fetched in a single
        ``read_span`` in both execution modes, so charged I/O is
        bit-identical whichever in-page search runs.
        """
        out: Dict[int, Optional[int]] = {}
        by_page: Dict[int, List[int]] = {}
        for key in keys:
            page = bisect_left(self.page_lasts, key)
            if page >= len(self.page_lasts):
                out[key] = None
            else:
                by_page.setdefault(page, []).append(key)
        if not by_page:
            return out
        span = self.pager.read_span(
            self.file, [self.base_block + page for page in by_page])
        for page, group in by_page.items():
            raw = span[self.base_block + page]
            start = self.page_starts[page]
            if _vectorized():
                fence_keys = self._page_keys(page, raw)
                slots = np.searchsorted(
                    fence_keys, np.array(group, dtype=np.uint64), side="left")
                for key, slot in zip(group, slots.tolist()):
                    out[key] = start + slot
            else:
                fence_keys = self.codec.decode_keys(raw).tolist()
                for key in group:
                    out[key] = start + bisect_left(fence_keys, key)
        return out

    # -- integrity / persistence --------------------------------------------

    def verify(self) -> int:
        """Decode every fence page; check strict global sort order and
        that the in-memory boundaries match the stored pages."""
        previous = -1
        total = 0
        for page in range(len(self.page_lasts)):
            raw = self.pager.read_block(self.file, self.base_block + page)
            fence_keys = self.codec.decode_keys(raw).tolist()
            assert fence_keys, "empty zonemap page"
            assert self.page_starts[page] == total, "page start drift"
            for fence in fence_keys:
                assert fence > previous, "zonemap fences out of order"
                previous = fence
            assert fence_keys[-1] == self.page_lasts[page], (
                "page max does not match in-memory boundary")
            total += len(fence_keys)
        assert total == self.count, (
            f"fence count mismatch: walked {total}, meta {self.count}")
        return total

    @property
    def num_blocks(self) -> int:
        return len(self.page_lasts)

    def to_meta(self) -> dict:
        return {"base_block": self.base_block,
                "page_lasts": list(self.page_lasts),
                "page_starts": list(self.page_starts),
                "count": self.count}

    @classmethod
    def attach(cls, pager, file, codec, meta: dict) -> "FenceZonemap":
        return cls(pager, file, codec, meta["base_block"],
                   list(meta["page_lasts"]), list(meta["page_starts"]),
                   meta["count"])
