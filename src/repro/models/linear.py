"""Linear models used by every learned index in the paper.

All four studied indexes (FITing-tree, PGM, ALEX, LIPP) predict positions
with a linear function.  Keys are 64-bit unsigned integers, so a naive
``slope * key + intercept`` in float64 loses up to ~2**64 * 2**-52 ≈ 4096
positions to cancellation — far beyond the error bound ε = 64.  Every
model is therefore *anchored*: ``pos = slope * (key - anchor) + intercept``
with the subtraction performed on exact Python integers before the float
conversion, exactly as the C++ reference implementations anchor their
segments at the first key.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["LinearModel"]


@dataclass
class LinearModel:
    """``pos = slope * (key - anchor) + intercept``.

    ``anchor`` is an integer key (typically the first key the model was
    fit on); ``key - anchor`` is computed with exact integer arithmetic,
    so the float multiply only ever sees the small in-segment offset.
    """

    slope: float
    intercept: float
    anchor: int = 0

    def predict(self, key: int) -> float:
        return self.slope * float(int(key) - self.anchor) + self.intercept

    def predict_clamped(self, key: int, size: int) -> int:
        """Predicted slot in ``[0, size - 1]``."""
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        pos = int(self.predict(key))
        if pos < 0:
            return 0
        if pos >= size:
            return size - 1
        return pos

    @classmethod
    def fit_least_squares(cls, keys: Sequence[int], positions: Sequence[int]) -> "LinearModel":
        """Ordinary least squares fit of positions on keys (ALEX-style).

        A single point (or all-equal keys) degenerates to a constant model.
        """
        if len(keys) == 0:
            raise ValueError("cannot fit a model to zero points")
        anchor = int(keys[0])
        xs = np.asarray([int(k) - anchor for k in keys], dtype=np.float64)
        ys = np.asarray(positions, dtype=np.float64)
        if xs.size == 1 or keys[0] == keys[-1]:
            return cls(slope=0.0, intercept=float(ys[0]), anchor=anchor)
        x_mean = float(xs.mean())
        y_mean = float(ys.mean())
        xc = xs - x_mean
        denom = float(np.dot(xc, xc))
        if denom == 0.0:
            return cls(slope=0.0, intercept=y_mean, anchor=anchor)
        slope = float(np.dot(xc, ys - y_mean)) / denom
        intercept = y_mean - slope * x_mean
        return cls(slope=slope, intercept=intercept, anchor=anchor)

    @classmethod
    def fit_min_max(cls, first_key: int, last_key: int, size: int) -> "LinearModel":
        """Spread ``[first_key, last_key]`` evenly over ``size`` slots.

        This is LIPP's fallback when FMCD fails, and ALEX's model for
        evenly partitioning a key range across children.
        """
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        if last_key <= first_key:
            return cls(slope=0.0, intercept=0.0, anchor=int(first_key))
        slope = (size - 1) / float(int(last_key) - int(first_key))
        return cls(slope=slope, intercept=0.0, anchor=int(first_key))
