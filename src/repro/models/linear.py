"""Linear models used by every learned index in the paper.

All four studied indexes (FITing-tree, PGM, ALEX, LIPP) predict positions
with a linear function.  Keys are 64-bit unsigned integers, so a naive
``slope * key + intercept`` in float64 loses up to ~2**64 * 2**-52 ≈ 4096
positions to cancellation — far beyond the error bound ε = 64.  Every
model is therefore *anchored*: ``pos = slope * (key - anchor) + intercept``
with the subtraction performed on exact Python integers before the float
conversion, exactly as the C++ reference implementations anchor their
segments at the first key.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["LinearModel", "NUMPY_MIN", "anchored_diff",
           "truncate_positions", "truncate_slots"]

#: Minimum numpy release the vectorized paths are tested against
#: (record-dtype ``np.frombuffer`` views, NEP-50-stable uint64 casts).
#: Mirrored by the ``numpy>=`` floor in ``pyproject.toml``.
NUMPY_MIN = (1, 22)


def _check_numpy_version() -> None:
    parts = np.__version__.split(".")
    try:
        major = int(parts[0])
        minor = int("".join(ch for ch in parts[1] if ch.isdigit()) or "0")
    except (IndexError, ValueError):  # pragma: no cover - dev builds
        return
    if (major, minor) < NUMPY_MIN:
        floor = ".".join(map(str, NUMPY_MIN))
        raise ImportError(
            f"repro requires numpy >= {floor} but found numpy "
            f"{np.__version__}.  The vectorized lookup paths rely on "
            "record-dtype np.frombuffer views and modern uint64->float64 "
            f"cast semantics; upgrade with: pip install 'numpy>={floor}'")


_check_numpy_version()

#: Float positions are clipped to this magnitude before the int64 cast in
#: the clamped-slot paths; anything beyond it clamps to the ends of the
#: slot range anyway, and the cast itself stays exact below 2**63.
_SLOT_CLIP = 1e18


def anchored_diff(keys: np.ndarray, anchor) -> np.ndarray:
    """``float64(int(key) - anchor)`` for a uint64 key array, exactly.

    ``anchor`` is a uint64 scalar or a per-key uint64 array.  The
    subtraction wraps modulo 2**64 in uint64, then each side of the
    anchor converts its *magnitude* to float64 — the same
    round-to-nearest-even conversion CPython applies in
    ``float(int(key) - anchor)`` — so the result is bit-identical to the
    scalar path even for keys near 2**64.
    """
    a = np.asarray(anchor, dtype=np.uint64)
    d = keys - a
    out = d.astype(np.float64)
    below = keys < a
    if below.any():
        out[below] = -((np.uint64(0) - d[below]).astype(np.float64))
    return out


def truncate_positions(positions: np.ndarray) -> np.ndarray:
    """``int(pos)`` vectorized: truncation toward zero, exactly like the
    scalar cast for every position that matters.

    ``astype(int64)`` truncates toward zero like Python ``int()``; the
    pre-clip keeps the cast in-range, and since every caller clamps the
    result into a slot/window range far below the clip magnitude, the
    clipped extremes land on the same clamped slot as the scalar path.
    """
    pos = np.clip(positions, -_SLOT_CLIP, _SLOT_CLIP)
    return pos.astype(np.int64)


def truncate_slots(positions: np.ndarray, size: int) -> np.ndarray:
    """``int(pos)`` then clamp to ``[0, size - 1]``, vectorized."""
    slots = truncate_positions(positions)
    return np.clip(slots, 0, size - 1, out=slots)


@dataclass
class LinearModel:
    """``pos = slope * (key - anchor) + intercept``.

    ``anchor`` is an integer key (typically the first key the model was
    fit on); ``key - anchor`` is computed with exact integer arithmetic,
    so the float multiply only ever sees the small in-segment offset.
    """

    slope: float
    intercept: float
    anchor: int = 0

    def predict(self, key: int) -> float:
        return self.slope * float(int(key) - self.anchor) + self.intercept

    def predict_clamped(self, key: int, size: int) -> int:
        """Predicted slot in ``[0, size - 1]``."""
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        pos = int(self.predict(key))
        if pos < 0:
            return 0
        if pos >= size:
            return size - 1
        return pos

    def predict_many(self, keys) -> np.ndarray:
        """Float positions for a whole batch in one anchored numpy op.

        Bit-identical to per-key :meth:`predict`: the anchored difference
        is exact (see :func:`anchored_diff`) and the multiply-add applies
        the same two IEEE-754 float64 operations in the same order.
        """
        keys = np.asarray(keys, dtype=np.uint64)
        return self.slope * anchored_diff(keys, self.anchor) + self.intercept

    def predict_clamped_many(self, keys, size: int) -> np.ndarray:
        """Predicted slots in ``[0, size - 1]`` for a whole batch;
        element-wise identical to :meth:`predict_clamped`."""
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        return truncate_slots(self.predict_many(keys), size)

    @classmethod
    def fit_least_squares(cls, keys: Sequence[int], positions: Sequence[int]) -> "LinearModel":
        """Ordinary least squares fit of positions on keys (ALEX-style).

        A single point (or all-equal keys) degenerates to a constant model.
        """
        if len(keys) == 0:
            raise ValueError("cannot fit a model to zero points")
        anchor = int(keys[0])
        xs = np.asarray([int(k) - anchor for k in keys], dtype=np.float64)
        ys = np.asarray(positions, dtype=np.float64)
        if xs.size == 1 or keys[0] == keys[-1]:
            return cls(slope=0.0, intercept=float(ys[0]), anchor=anchor)
        x_mean = float(xs.mean())
        y_mean = float(ys.mean())
        xc = xs - x_mean
        denom = float(np.dot(xc, xc))
        if denom == 0.0:
            return cls(slope=0.0, intercept=y_mean, anchor=anchor)
        slope = float(np.dot(xc, ys - y_mean)) / denom
        intercept = y_mean - slope * x_mean
        return cls(slope=slope, intercept=intercept, anchor=anchor)

    @classmethod
    def fit_min_max(cls, first_key: int, last_key: int, size: int) -> "LinearModel":
        """Spread ``[first_key, last_key]`` evenly over ``size`` slots.

        This is LIPP's fallback when FMCD fails, and ALEX's model for
        evenly partitioning a key range across children.
        """
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        if last_key <= first_key:
            return cls(slope=0.0, intercept=0.0, anchor=int(first_key))
        slope = (size - 1) / float(int(last_key) - int(first_key))
        return cls(slope=slope, intercept=0.0, anchor=int(first_key))
