"""Synthetic datasets with the hardness profiles of the paper's eleven.

The paper evaluates on SOSD-style datasets of 200M uint64 keys (YCSB,
FB, OSM, Covid, History, Genome, Libio, Planet, Stack, Wise, and an 800M
OSM variant).  We cannot ship those, and a scaled-down Python study does
not need them: a learned index sees a dataset only through (a) how many
PLA segments it needs per error bound and (b) its FMCD conflict degree —
exactly what Table 3 profiles.  Each generator below is tuned so that
the *relative ordering* of those two metrics across datasets matches
Table 3:

========  =========================================  =====================
name      generator                                   paper profile
========  =========================================  =====================
ycsb      uniform random                              easiest (both metrics)
fb        heavy-tailed lognormal                      hardest for PLA
osm       dense clusters + uniform background         highest conflict degree
covid     few wide normal bursts                      moderate
history   mild lognormal                              moderate
genome    many tight clusters                         hard PLA, high conflicts
libio     smooth power-law gaps                       easy conflicts, mid PLA
planet    clusters + uniform, between osm and covid   moderately hard
stack     near-uniform with jitter                    easiest conflicts
wise      gamma-distributed gaps                      mild
osm_800m  osm at 4x the base size                     scalability dataset
========  =========================================  =====================

All generators return a strictly increasing uint64 array of exactly
``n`` keys and are deterministic in ``(name, n, seed)``.
"""

from __future__ import annotations

import zlib
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

__all__ = [
    "DATASET_NAMES",
    "REPORTED_DATASETS",
    "dataset_names",
    "make_dataset",
    "items_for",
    "sample_lookup_keys",
    "generate_insert_keys",
]

#: The three datasets the paper's figures report (Section 5.1).
REPORTED_DATASETS = ("fb", "osm", "ycsb")

_KEY_SPACE = np.uint64(2**62)


def _finalize(values: np.ndarray, n: int, rng: np.random.Generator) -> np.ndarray:
    """Clip, dedupe and trim to exactly ``n`` strictly increasing uint64 keys."""
    values = np.unique(values.astype(np.uint64))
    while values.size < n:
        extra = rng.integers(0, int(_KEY_SPACE), size=n, dtype=np.uint64)
        values = np.unique(np.concatenate([values, extra]))
    if values.size > n:
        pick = np.sort(rng.choice(values.size, size=n, replace=False))
        values = values[pick]
    return values


def _uniform(n: int, rng: np.random.Generator) -> np.ndarray:
    return rng.integers(0, int(_KEY_SPACE), size=int(n * 1.05), dtype=np.uint64)


def _jittered_grid(n: int, rng: np.random.Generator) -> np.ndarray:
    """An almost perfectly linear dataset: grid positions with small jitter."""
    step = int(_KEY_SPACE) // (n + 1)
    base = np.arange(1, n + 1, dtype=np.uint64) * np.uint64(step)
    jitter = rng.integers(0, max(step // 4, 2), size=n, dtype=np.uint64)
    return base + jitter

def _lognormal(n: int, rng: np.random.Generator, sigma: float) -> np.ndarray:
    raw = rng.lognormal(mean=0.0, sigma=sigma, size=int(n * 1.2))
    scaled = raw / raw.max() * float(_KEY_SPACE) * 0.9
    return scaled.astype(np.uint64)


def _heavy_gaps(n: int, rng: np.random.Generator, sigma: float) -> np.ndarray:
    """IID heavy-tailed gaps: the slope changes constantly, so the PLA
    needs a segment every few keys — the FB-like worst case."""
    gaps = rng.lognormal(mean=0.0, sigma=sigma, size=int(n * 1.05)) + 1.0
    positions = np.cumsum(gaps)
    scaled = positions / positions[-1] * float(_KEY_SPACE) * 0.9
    return scaled.astype(np.uint64)


def _clusters(n: int, rng: np.random.Generator, num_clusters: int,
              intra_gap_max: int, background: float,
              intra_sigma: float = 0.0) -> np.ndarray:
    """Dense key clusters over a uniform background.

    Each cluster is a run of keys with gaps in ``[1, intra_gap_max]``;
    ``intra_sigma > 0`` makes the intra-cluster gaps lognormal (variable
    slope inside a cluster, costing extra PLA segments).  ``background``
    is the fraction of keys drawn uniformly over the whole key space.
    """
    n_background = int(n * background)
    n_clustered = int(n * 1.15) - n_background
    per_cluster = max(2, n_clustered // num_clusters)
    centers = rng.integers(0, int(_KEY_SPACE), size=num_clusters, dtype=np.uint64)
    parts = []
    for center in centers:
        if intra_sigma > 0:
            gaps = (rng.lognormal(0.0, intra_sigma, size=per_cluster)
                    * intra_gap_max / 2.0) + 1.0
        else:
            gaps = rng.integers(1, intra_gap_max + 1, size=per_cluster).astype(float)
        offsets = np.cumsum(gaps).astype(np.uint64)
        parts.append(center + offsets)
    uniform = rng.integers(0, int(_KEY_SPACE), size=n_background, dtype=np.uint64)
    parts.append(uniform)
    return np.concatenate(parts)


def _normal_bursts(n: int, rng: np.random.Generator, bursts: int,
                   spread: float) -> np.ndarray:
    centers = rng.integers(int(_KEY_SPACE) // 10, int(_KEY_SPACE), size=bursts)
    per = int(n * 1.15) // bursts + 1
    parts = [
        rng.normal(float(c), float(_KEY_SPACE) * spread, size=per)
        for c in centers
    ]
    values = np.abs(np.concatenate(parts))
    return np.minimum(values, float(_KEY_SPACE) * 0.99).astype(np.uint64)


def _powerlaw_gaps(n: int, rng: np.random.Generator, alpha: float) -> np.ndarray:
    gaps = rng.pareto(alpha, size=int(n * 1.05)) + 1.0
    positions = np.cumsum(gaps)
    scaled = positions / positions[-1] * float(_KEY_SPACE) * 0.9
    return scaled.astype(np.uint64)


def _gamma_gaps(n: int, rng: np.random.Generator, shape: float) -> np.ndarray:
    gaps = rng.gamma(shape, size=int(n * 1.05)) + 0.05
    positions = np.cumsum(gaps)
    scaled = positions / positions[-1] * float(_KEY_SPACE) * 0.9
    return scaled.astype(np.uint64)


def _osm_like(n: int, rng: np.random.Generator) -> np.ndarray:
    """Dense clusters with variable internal slopes plus a few gap-1 runs.

    The clusters cost the PLA many segments; the contiguous runs are
    perfectly linear (cheap for the PLA) but collapse thousands of keys
    into one FMCD slot — reproducing OSM's Table 3 profile of a hard
    PLA dataset with by far the largest conflict degree.
    """
    base = _clusters(n, rng, num_clusters=max(n // 700, 8), intra_gap_max=6,
                     background=0.05, intra_sigma=1.6)
    run_length = max(n // 25, 4)
    run_starts = rng.integers(0, int(_KEY_SPACE), size=3, dtype=np.uint64)
    runs = [start + np.arange(run_length, dtype=np.uint64) for start in run_starts]
    return np.concatenate([base] + runs)


_GENERATORS: Dict[str, Callable[[int, np.random.Generator], np.ndarray]] = {
    "ycsb": _uniform,
    "fb": lambda n, rng: _heavy_gaps(n, rng, sigma=4.0),
    "osm": _osm_like,
    "covid": lambda n, rng: _normal_bursts(n, rng, bursts=8, spread=0.0015),
    "history": lambda n, rng: _lognormal(n, rng, sigma=0.7),
    "genome": lambda n, rng: _clusters(n, rng, num_clusters=max(n // 700, 16),
                                       intra_gap_max=4, background=0.02),
    "libio": lambda n, rng: _powerlaw_gaps(n, rng, alpha=1.05),
    "planet": lambda n, rng: _clusters(n, rng, num_clusters=max(n // 700, 12),
                                       intra_gap_max=3_000_000_000_000, background=0.3),
    "stack": _jittered_grid,
    "wise": lambda n, rng: _gamma_gaps(n, rng, shape=0.35),
    "osm_800m": _osm_like,
}

#: All eleven dataset names, in the paper's Table 3 column order.
DATASET_NAMES = ("ycsb", "fb", "osm", "covid", "history", "genome",
                 "libio", "planet", "stack", "wise", "osm_800m")


def dataset_names(include_large: bool = False) -> List[str]:
    names = [name for name in DATASET_NAMES if name != "osm_800m"]
    if include_large:
        names.append("osm_800m")
    return names


def make_dataset(name: str, n: int, seed: int = 42) -> np.ndarray:
    """Generate ``n`` sorted unique uint64 keys for the named dataset.

    ``osm_800m`` is the scalability variant: the paper's 800M-key OSM.
    Callers pass a proportionally larger ``n`` (the harness uses 4x the
    base size, matching the paper's 200M -> 800M ratio).
    """
    try:
        generator = _GENERATORS[name]
    except KeyError:
        raise ValueError(f"unknown dataset {name!r}; available: {DATASET_NAMES}") from None
    if n <= 0:
        raise ValueError(f"dataset size must be positive, got {n}")
    name_tag = zlib.crc32(name.encode("utf-8"))
    rng = np.random.default_rng(np.random.SeedSequence([name_tag, seed]))
    return _finalize(generator(n, rng), n, rng)


def items_for(keys: Sequence[int]) -> List[Tuple[int, int]]:
    """Key-payload pairs with the paper's payload convention (key + 1)."""
    return [(int(key), int(key) + 1) for key in keys]


def sample_lookup_keys(keys: np.ndarray, count: int, seed: int = 7) -> List[int]:
    """Random existing keys, matching the paper's lookup workloads."""
    rng = np.random.default_rng(seed)
    picks = rng.integers(0, len(keys), size=count)
    return [int(keys[i]) for i in picks]


def generate_insert_keys(existing: np.ndarray, count: int, seed: int = 11) -> List[int]:
    """Fresh keys absent from ``existing``, drawn between existing keys.

    Inserting between existing keys (rather than uniformly) keeps the
    insert distribution aligned with the dataset's own distribution, as
    the paper's workloads do when splitting a dataset into a bulk-load
    half and an insert half.
    """
    rng = np.random.default_rng(seed)
    existing_set = set(int(k) for k in existing)
    out: List[int] = []
    n = len(existing)
    while len(out) < count:
        batch = count - len(out)
        idx = rng.integers(0, n - 1, size=batch)
        frac = rng.random(size=batch)
        for i, f in zip(idx, frac):
            lo, hi = int(existing[i]), int(existing[i + 1])
            if hi - lo <= 1:
                continue
            key = lo + 1 + int(f * (hi - lo - 1))
            if key not in existing_set:
                existing_set.add(key)
                out.append(key)
    return out[:count]
