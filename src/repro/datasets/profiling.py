"""Dataset profiling — reproduces Table 3 of the paper.

For every dataset the paper reports, per error bound, the number of PLA
segments (how hard the data is to model linearly — "a dataset with more
segments is harder to model"), the number of B+-tree leaves at 4 KiB
blocks, and the FMCD conflict degree ("a dataset with a larger conflict
degree lowers performance for LIPP").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..models import conflict_degree, optimal_segments

__all__ = ["DatasetProfile", "profile_dataset", "btree_leaf_count"]

#: Error bounds profiled in Table 3.
TABLE3_ERROR_BOUNDS = (16, 64, 256, 1024)


def btree_leaf_count(n: int, block_size: int = 4096, fill: float = 0.8) -> int:
    """Leaves of a bulk-loaded B+-tree (Table 3's "B+-tree" row).

    A 4 KiB block holds 255 16-byte entries after the header; at the
    0.8 bulk-load fill factor that is 204 per leaf — the paper's
    980,393 leaves for 200M keys.
    """
    entry_size = 16
    header_size = 16
    per_leaf = max(1, int((block_size - header_size) // entry_size * fill))
    return (n + per_leaf - 1) // per_leaf


@dataclass
class DatasetProfile:
    """One dataset's Table 3 row set."""

    name: str
    n: int
    segments_by_error: Dict[int, int] = field(default_factory=dict)
    btree_leaves: int = 0
    conflict_degree: int = 0

    def hardness_rank_metric(self, error_bound: int = 64) -> int:
        """Segment count at the default error bound (the paper's hardness proxy)."""
        return self.segments_by_error[error_bound]


def profile_dataset(name: str, keys: Sequence[int],
                    error_bounds: Tuple[int, ...] = TABLE3_ERROR_BOUNDS,
                    block_size: int = 4096) -> DatasetProfile:
    """Profile a sorted unique key array the way Table 3 does."""
    key_list: List[int] = [int(k) for k in keys]
    profile = DatasetProfile(name=name, n=len(key_list))
    for error_bound in error_bounds:
        profile.segments_by_error[error_bound] = len(
            optimal_segments(key_list, error_bound))
    profile.btree_leaves = btree_leaf_count(len(key_list), block_size)
    profile.conflict_degree = conflict_degree(key_list)
    return profile
