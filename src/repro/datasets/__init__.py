"""Synthetic datasets and Table 3 profiling."""

from .generators import (
    DATASET_NAMES,
    REPORTED_DATASETS,
    dataset_names,
    generate_insert_keys,
    items_for,
    make_dataset,
    sample_lookup_keys,
)
from .profiling import DatasetProfile, btree_leaf_count, profile_dataset

__all__ = [
    "DATASET_NAMES",
    "DatasetProfile",
    "REPORTED_DATASETS",
    "btree_leaf_count",
    "dataset_names",
    "generate_insert_keys",
    "items_for",
    "make_dataset",
    "profile_dataset",
    "sample_lookup_keys",
]
