"""Ablation and extension experiments beyond the paper's main tables.

These exercise design choices the paper discusses in prose:

* ``ablation_alex_layout`` — Section 4.1 measures Layout#2 (separate
  inner/data files) 0.5%-30% faster than Layout#1 (one file) on
  lookups; we regenerate that comparison.
* ``ablation_fiting_segmentation`` — Section 4.2 replaces the original
  greedy segmentation with PGM's optimal streaming algorithm; this
  quantifies what that substitution buys.
* ``ablation_error_bound`` — Section 5.3 notes the error bound's effect;
  sweep epsilon for the PLA-based indexes (FITing-tree, PGM).
* ``scalability`` — the paper's 800M-key OSM dataset: lookup cost as the
  dataset grows 1x -> 4x.
"""

from __future__ import annotations

from typing import Optional

from ..datasets import REPORTED_DATASETS
from ..workloads import run_workload
from .config import Scale, default_scale, fresh_index
from .experiments import INDEXES, EXPERIMENTS, ExperimentResult

__all__ = [
    "exp_ablation_alex_layout",
    "exp_ablation_fiting_segmentation",
    "exp_ablation_error_bound",
    "exp_scalability",
]


def exp_ablation_alex_layout(scale: Optional[Scale] = None) -> ExperimentResult:
    scale = scale or default_scale()
    result = ExperimentResult(
        "ablation-alex-layout",
        "Ablation: ALEX Layout#1 (one file) vs Layout#2 (inner/data files)")
    for dataset in REPORTED_DATASETS:
        row = {"dataset": dataset}
        for layout in (1, 2):
            setup = fresh_index("alex", dataset, "lookup_only", scale,
                                index_params={"layout": layout})
            res = run_workload(setup.index, setup.ops)
            row[f"layout{layout}_blocks"] = round(res.blocks_read_per_op, 2)
            row[f"layout{layout}_ops_s"] = round(res.throughput_ops_per_s, 1)
        row["speedup_pct"] = round(
            100.0 * (row["layout2_ops_s"] / row["layout1_ops_s"] - 1.0), 1)
        result.rows.append(row)
    result.notes = "The paper reports 0.5%-30% improvement for Layout#2."
    return result


def exp_ablation_fiting_segmentation(scale: Optional[Scale] = None) -> ExperimentResult:
    scale = scale or default_scale()
    result = ExperimentResult(
        "ablation-fiting-segmentation",
        "Ablation: FITing-tree greedy (original) vs streaming (optimal) segmentation")
    for dataset in REPORTED_DATASETS:
        row = {"dataset": dataset}
        for segmentation in ("greedy", "streaming"):
            setup = fresh_index("fiting", dataset, "lookup_only", scale,
                                index_params={"segmentation": segmentation})
            res = run_workload(setup.index, setup.ops)
            row[f"{segmentation}_segments"] = setup.index.num_segments
            row[f"{segmentation}_blocks"] = round(res.blocks_read_per_op, 2)
            row[f"{segmentation}_size_mib"] = round(
                setup.device.allocated_bytes / 2**20, 2)
        result.rows.append(row)
    result.notes = ("The optimal algorithm can only produce fewer segments; fewer "
                    "segments mean a smaller directory and less buffer space.")
    return result


def exp_ablation_error_bound(scale: Optional[Scale] = None,
                             error_bounds=(16, 64, 256, 1024)) -> ExperimentResult:
    scale = scale or default_scale()
    result = ExperimentResult(
        "ablation-error-bound",
        "Ablation: PLA error bound epsilon vs lookup blocks (FITing-tree / PGM)")
    for index_name, param in (("fiting", "error_bound"), ("pgm", "epsilon")):
        for dataset in REPORTED_DATASETS:
            row = {"index": index_name, "dataset": dataset}
            for epsilon in error_bounds:
                setup = fresh_index(index_name, dataset, "lookup_only", scale,
                                    index_params={param: epsilon})
                res = run_workload(setup.index, setup.ops)
                row[f"eps{epsilon}"] = round(res.blocks_read_per_op, 2)
            result.rows.append(row)
    result.notes = ("Small epsilon: more segments (taller directory); large "
                    "epsilon: wider last-mile search ranges. eps=64 keeps the "
                    "search range within a block, the paper's default.")
    return result


def exp_scalability(scale: Optional[Scale] = None,
                    factors=(1, 2, 4)) -> ExperimentResult:
    scale = scale or default_scale()
    result = ExperimentResult(
        "scalability",
        "Scalability: lookup blocks as the OSM dataset grows (paper: 200M -> 800M)")
    for name in INDEXES:
        row = {"index": name}
        for factor in factors:
            grown = scale.scaled(factor)
            setup = fresh_index(name, "osm_800m" if factor == max(factors) else "osm",
                                "lookup_only", grown)
            res = run_workload(setup.index, setup.ops)
            row[f"{factor}x_blocks"] = round(res.blocks_read_per_op, 2)
        result.rows.append(row)
    result.notes = ("Block counts grow logarithmically (or stay flat for LIPP's "
                    "exact predictions) as N quadruples.")
    return result


def exp_zipfian_buffer(scale: Optional[Scale] = None) -> ExperimentResult:
    """Extension: skewed (zipfian) lookups make the LRU buffer far more
    effective — the hot set stays cached.  The paper's lookups are
    uniform; this quantifies the buffer-vs-skew interaction of P5."""
    from ..datasets import make_dataset
    from ..storage import HDD, BlockDevice, BufferPool, Pager
    from ..workloads import WORKLOADS, build_workload, bulk_load_timed
    from ..core import make_index

    scale = scale or default_scale()
    result = ExperimentResult(
        "zipfian-buffer",
        "Extension: blocks/lookup with a 64-block LRU buffer, uniform vs zipfian access")
    keys = make_dataset("ycsb", scale.n_read, seed=scale.seed)
    for name in INDEXES:
        row = {"index": name}
        for distribution in ("uniform", "zipfian"):
            bulk, ops = build_workload(WORKLOADS["lookup_only"], keys,
                                       scale.n_lookup_ops, seed=scale.seed,
                                       lookup_distribution=distribution)
            device = BlockDevice(scale.block_size, HDD)
            pager = Pager(device, buffer_pool=BufferPool(64))
            index = make_index(name, pager)
            bulk_load_timed(index, bulk)
            res = run_workload(index, ops)
            row[f"{distribution}_blocks"] = round(res.blocks_read_per_op, 2)
        row["skew_benefit_pct"] = round(
            100.0 * (1.0 - row["zipfian_blocks"] / max(row["uniform_blocks"], 1e-9)), 1)
        result.rows.append(row)
    return result


def exp_buffer_policy(scale: Optional[Scale] = None) -> ExperimentResult:
    """Extension: LRU (the paper's policy) vs CLOCK vs FIFO replacement
    under a 64-block buffer on zipfian lookups."""
    from ..core import make_index
    from ..datasets import make_dataset
    from ..storage import HDD, BlockDevice, Pager, make_buffer_pool
    from ..workloads import WORKLOADS, build_workload, bulk_load_timed

    scale = scale or default_scale()
    result = ExperimentResult(
        "buffer-policy",
        "Extension: blocks/lookup under LRU vs CLOCK vs FIFO (64-block buffer, zipfian)")
    keys = make_dataset("ycsb", scale.n_read, seed=scale.seed)
    bulk, ops = build_workload(WORKLOADS["lookup_only"], keys,
                               scale.n_lookup_ops, seed=scale.seed,
                               lookup_distribution="zipfian")
    for name in INDEXES:
        row = {"index": name}
        for policy in ("lru", "clock", "fifo"):
            device = BlockDevice(scale.block_size, HDD)
            pager = Pager(device, buffer_pool=make_buffer_pool(64, policy))
            index = make_index(name, pager)
            bulk_load_timed(index, bulk)
            res = run_workload(index, ops)
            row[f"{policy}_blocks"] = round(res.blocks_read_per_op, 3)
        result.rows.append(row)
    result.notes = "CLOCK approximates LRU; FIFO wastes the hot set on churn."
    return result


def exp_plid(scale: Optional[Scale] = None) -> ExperimentResult:
    """Extension: PLID — the paper's design principles P1-P5 instantiated —
    against the five studied indexes on every workload type."""
    scale = scale or default_scale()
    result = ExperimentResult(
        "plid",
        "Extension: PLID (design principles P1-P5) vs the studied indexes "
        "(ops/sim-second, HDD)")
    contenders = list(INDEXES) + ["plid"]
    for workload in ("lookup_only", "scan_only", "write_only",
                     "read_heavy", "write_heavy", "balanced"):
        for dataset in REPORTED_DATASETS:
            row = {"workload": workload, "dataset": dataset}
            for name in contenders:
                setup = fresh_index(name, dataset, workload, scale)
                res = run_workload(setup.index, setup.ops, workload=workload,
                                   scan_length=scale.scan_length)
                row[name] = round(res.throughput_ops_per_s, 1)
            result.rows.append(row)
    result.notes = ("PLID: learned flat directory (model in parent, P4) over "
                    "dense linked leaves (P3), split-buffer SMO (P2), 2-3 "
                    "block lookups (P1).")
    return result


EXPERIMENTS["plid"] = exp_plid
EXPERIMENTS["buffer-policy"] = exp_buffer_policy
EXPERIMENTS["zipfian-buffer"] = exp_zipfian_buffer
EXPERIMENTS["ablation-alex-layout"] = exp_ablation_alex_layout
EXPERIMENTS["ablation-fiting-segmentation"] = exp_ablation_fiting_segmentation
EXPERIMENTS["ablation-error-bound"] = exp_ablation_error_bound
EXPERIMENTS["scalability"] = exp_scalability
