"""Plain-text rendering of experiment results."""

from __future__ import annotations

from typing import List

from .experiments import ExperimentResult

__all__ = ["format_result", "format_table", "format_chart", "format_trace_section"]


def format_table(rows: List[dict], columns: List[str]) -> str:
    """Render rows as an aligned ASCII table."""
    if not rows:
        return "(no rows)"
    widths = {
        col: max(len(col), *(len(str(row.get(col, ""))) for row in rows))
        for col in columns
    }
    header = "  ".join(col.ljust(widths[col]) for col in columns)
    rule = "-" * len(header)
    lines = [header, rule]
    for row in rows:
        lines.append("  ".join(str(row.get(col, "")).ljust(widths[col])
                               for col in columns))
    return "\n".join(lines)


def format_chart(rows, label_columns, value_column, width: int = 48) -> str:
    """Render one numeric column as horizontal ASCII bars.

    ``label_columns`` name the columns concatenated into each bar label;
    ``value_column`` is the numeric series to draw.
    """
    values = [float(row.get(value_column, 0) or 0) for row in rows]
    if not values:
        return "(no rows)"
    peak = max(values) or 1.0
    labels = [
        " ".join(str(row.get(col, "")) for col in label_columns)
        for row in rows
    ]
    label_width = max(len(label) for label in labels)
    lines = [f"{value_column} (peak {peak:g})"]
    for label, value in zip(labels, values):
        bar = "#" * max(int(value / peak * width), 1 if value > 0 else 0)
        lines.append(f"{label.ljust(label_width)} |{bar} {value:g}")
    return "\n".join(lines)


def format_trace_section(trace_path: str, top_k: int = 10) -> str:
    """Render the op-level trace exported during an experiment run:
    per-op-type costs, most expensive ops, SMO cascades, hit-rate
    timeline, and the per-phase totals that reconcile with device stats."""
    from ..obs import format_summary, load_trace, summarize

    title = f"trace ({trace_path})"
    summary = summarize(load_trace(trace_path), top_k=top_k)
    return "\n".join([title, "=" * len(title), format_summary(summary)])


def format_result(result: ExperimentResult) -> str:
    out = [result.title, "=" * len(result.title),
           format_table(result.rows, result.column_names())]
    if result.notes:
        out.append(f"note: {result.notes}")
    return "\n".join(out) + "\n"
