"""Benchmark harness: one experiment per paper table/figure."""

from .config import (PROFILES, IndexSetup, Scale, default_scale,
                     fresh_index, fresh_sharded_index)
from . import ablations  # noqa: F401  (registers the ablation experiments)
from .experiments import (
    EXPERIMENTS,
    ExperimentResult,
    experiment_ids,
    run_experiment,
)
from .report import format_chart, format_result, format_table

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "IndexSetup",
    "PROFILES",
    "Scale",
    "default_scale",
    "experiment_ids",
    "format_chart",
    "format_result",
    "format_table",
    "fresh_index",
    "fresh_sharded_index",
    "run_experiment",
]
