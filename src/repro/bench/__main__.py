"""CLI for regenerating the paper's tables and figures.

Usage::

    python -m repro.bench list
    python -m repro.bench run table3
    python -m repro.bench run fig5 --scale 0.5
    python -m repro.bench run fig3 fig5 --jobs 2
    python -m repro.bench all --jobs 4
"""

from __future__ import annotations

import argparse
import sys
import time

from .config import default_scale, set_codec, set_write_back
from .experiments import experiment_ids, run_experiment
from .report import format_result


def _jobs_worker(task):
    """Run one experiment in a worker process (top-level for pickling).

    Simulated clocks make every experiment deterministic, so the parallel
    grid produces exactly the tables the serial loop would.
    """
    experiment_id, scale_factor, write_back_blocks, codec = task
    scale = default_scale()
    if scale_factor is not None:
        scale = scale.scaled(scale_factor)
    set_write_back(write_back_blocks)
    set_codec(codec)
    started = time.time()
    result = run_experiment(experiment_id, scale)
    return experiment_id, result, time.time() - started


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures.")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list experiment ids")
    run_parser = sub.add_parser("run", help="run one or more experiments")
    # choices= is validated manually below: argparse rejects an empty
    # nargs="*" list against choices, which would break bare --wallclock.
    run_parser.add_argument("experiment", nargs="*", metavar="EXPERIMENT",
                            default=[],
                            help=f"one of: {', '.join(experiment_ids())}")
    run_parser.add_argument("--wallclock", action="store_true",
                            help="run the real wall-clock vectorization "
                                 "experiment (scalar vs vectorized "
                                 "lookup_many; charged I/O asserted "
                                 "bit-identical); may be combined with "
                                 "experiment ids")
    run_parser.add_argument("--scale", type=float, default=None,
                            help="multiply all sizes by this factor")
    run_parser.add_argument("--chart", metavar="COLUMN", default=None,
                            help="also render COLUMN as an ASCII bar chart")
    run_parser.add_argument("--trace", metavar="PATH", default=None,
                            help="export an op-level JSONL trace of every index "
                                 "the experiment touches, and print its summary")
    run_parser.add_argument("--jobs", type=int, default=1, metavar="N",
                            help="run the experiment grid across N worker "
                                 "processes (deterministic: same tables as "
                                 "--jobs 1, in the same order)")
    run_parser.add_argument("--write-back", type=int, default=0, nargs="?",
                            const=128, metavar="BLOCKS",
                            help="run every index with a write-back pager "
                                 "over a pool of at least BLOCKS frames "
                                 "(bare flag: 128); dirty pages flush in "
                                 "coalesced runs at phase boundaries")
    run_parser.add_argument("--codec", default="raw", metavar="NAME",
                            help="build every index with this leaf codec "
                                 "(raw, delta, for); indexes whose layout "
                                 "cannot compress keep their raw pages")
    all_parser = sub.add_parser("all", help="run every experiment")
    all_parser.add_argument("--scale", type=float, default=None)
    all_parser.add_argument("--jobs", type=int, default=1, metavar="N",
                            help="run the experiment grid across N worker "
                                 "processes")
    all_parser.add_argument("--write-back", type=int, default=0, nargs="?",
                            const=128, metavar="BLOCKS",
                            help="run every index with a write-back pager "
                                 "over a pool of at least BLOCKS frames")
    all_parser.add_argument("--codec", default="raw", metavar="NAME",
                            help="build every index with this leaf codec")
    report_parser = sub.add_parser(
        "report", help="assemble EXPERIMENTS.md from archived benchmark results")
    report_parser.add_argument("--results", default="benchmarks/results")
    report_parser.add_argument("--out", default="EXPERIMENTS.md")

    args = parser.parse_args(argv)
    if args.command == "report":
        from .experiments_doc import render_experiments_md

        text = render_experiments_md(args.results)
        with open(args.out, "w") as handle:
            handle.write(text)
        print(f"wrote {args.out} ({len(text.splitlines())} lines)")
        return 0
    if args.command == "list":
        for experiment_id in experiment_ids():
            print(experiment_id)
        return 0

    scale = default_scale()
    if args.scale is not None:
        scale = scale.scaled(args.scale)

    trace_path = getattr(args, "trace", None)
    targets = experiment_ids() if args.command == "all" else list(args.experiment)
    if getattr(args, "wallclock", False) and "wallclock" not in targets:
        targets.append("wallclock")
    if not targets:
        parser.error("pick at least one experiment (or pass --wallclock)")
    unknown = [eid for eid in targets if eid not in experiment_ids()]
    if unknown:
        parser.error(f"unknown experiment(s) {unknown}; "
                     f"available: {', '.join(experiment_ids())}")
    jobs = max(1, getattr(args, "jobs", 1) or 1)
    if jobs > 1 and trace_path:
        parser.error("--trace binds one tracer per process; use --jobs 1")
    write_back_blocks = getattr(args, "write_back", 0) or 0
    set_write_back(write_back_blocks)
    codec = getattr(args, "codec", "raw") or "raw"
    set_codec(codec)

    def outcomes():
        if jobs > 1 and len(targets) > 1:
            import multiprocessing

            with multiprocessing.Pool(min(jobs, len(targets))) as pool:
                tasks = [(eid, args.scale, write_back_blocks, codec)
                         for eid in targets]
                # imap keeps the serial ordering while workers overlap
                for outcome in pool.imap(_jobs_worker, tasks):
                    yield outcome
        else:
            for experiment_id in targets:
                started = time.time()
                result = run_experiment(experiment_id, scale,
                                        trace_path=trace_path)
                yield experiment_id, result, time.time() - started

    for experiment_id, result, took in outcomes():
        print(format_result(result))
        if trace_path:
            from .report import format_trace_section

            print(format_trace_section(trace_path))
            print()
        chart_column = getattr(args, "chart", None)
        if chart_column:
            from .report import format_chart

            label_columns = [c for c in result.column_names()
                             if c != chart_column][:3]
            print(format_chart(result.rows, label_columns, chart_column))
            print()
        print(f"[{experiment_id} took {took:.1f}s wall clock]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
